"""Pure-Python oracles: the slow, obviously-correct side of every pair.

Each function here defines *what the answer is* for some operation the
succinct stack implements cleverly — naive popcount loops for rank,
direct ``numpy`` counting for wavelet-tree occ, and literal string
scanning for backward search and locate.  The differential runner in
:mod:`repro.check.differential` drives the clever implementations against
these on adversarial inputs; when they disagree, the oracle wins by
definition.

The oracles also encode the repo-wide semantic decisions of DESIGN.md §9:

* the empty pattern occurs once at every text position (``len(text)``
  matches, positions ``0..len(text)-1`` — never the sentinel row);
* matching is case-insensitive with ``U == T`` (exactly what
  :func:`repro.sequence.alphabet.encode` accepts);
* sequences containing any other character (``N``, IUPAC codes, garbage)
  are *invalid*: raw index queries raise, mappers report unmapped with
  ``reason == "invalid_base"``.
"""

from __future__ import annotations

import numpy as np

from ..sequence.alphabet import is_valid, reverse_complement

#: ASCII translation normalizing a sequence the way ``encode`` reads it.
_NORMALIZE = str.maketrans("acgtuU", "ACGTTT")


def normalize(seq: str) -> str:
    """Uppercase with ``U -> T``: the canonical spelling of a sequence."""
    return seq.translate(_NORMALIZE)


# -- binary rank/select -------------------------------------------------------


def naive_rank1(bits: np.ndarray, p: int) -> int:
    """Ones in ``bits[0:p]`` by direct count."""
    return int(np.count_nonzero(np.asarray(bits)[:p]))


def naive_rank0(bits: np.ndarray, p: int) -> int:
    return p - naive_rank1(bits, p)


def naive_select1(bits: np.ndarray, k: int) -> int:
    """Position of the ``k``-th set bit (1-based ``k``); raises when absent."""
    ones = np.flatnonzero(np.asarray(bits))
    if k < 1 or k > ones.size:
        raise IndexError(f"select1({k}) out of range [1, {ones.size}]")
    return int(ones[k - 1])


# -- symbol rank (wavelet oracle) --------------------------------------------


def naive_occ(codes: np.ndarray, symbol: int, p: int) -> int:
    """Occurrences of ``symbol`` in ``codes[0:p]`` by direct count."""
    return int(np.count_nonzero(np.asarray(codes)[:p] == symbol))


def naive_count_smaller(codes: np.ndarray, symbol: int) -> int:
    """Symbols strictly smaller than ``symbol`` in the whole sequence."""
    return int(np.count_nonzero(np.asarray(codes) < symbol))


# -- exact-match search -------------------------------------------------------


def oracle_occurrences(text: str, pattern: str) -> list[int] | None:
    """All occurrence positions of ``pattern`` in ``text``, or ``None``
    when the pattern is invalid (contains non-alphabet characters).

    This is the ground truth for ``FMIndex.count``/``locate`` under the
    DESIGN.md §9 semantics, including the empty pattern and patterns
    longer than the text.
    """
    if not is_valid(pattern):
        return None
    t = normalize(text)
    p = normalize(pattern)
    if not p:
        return list(range(len(t)))
    out: list[int] = []
    start = 0
    while True:
        i = t.find(p, start)
        if i < 0:
            return out
        out.append(i)
        start = i + 1


def oracle_mapping(
    text: str, read: str
) -> tuple[list[int], list[int]] | None:
    """Both-strand ground truth for one read: ``(fwd, rc positions)``.

    ``None`` marks an invalid read — the mapper must report it unmapped
    with the ``invalid_base`` reason instead of raising or crashing.
    """
    if not is_valid(read):
        return None
    fwd = oracle_occurrences(text, read)
    rc = oracle_occurrences(text, reverse_complement(normalize(read)))
    assert fwd is not None and rc is not None
    return fwd, rc

"""Seeded generators for adversarial self-check inputs.

Everything is driven by an explicit :class:`numpy.random.Generator`, so a
``(seed, round, check)`` triple always regenerates the same case — the
property that makes a failing selfcheck run reproducible from its
one-line summary.

The generators are deliberately adversarial rather than uniform:

* bit-vector lengths cluster around block and superblock boundaries
  (``k·b·sf ± 1`` and ``k·b ± 1``), where the RRR early-exit branches
  and partial-block reads live;
* densities include all-zeros, all-ones and near-degenerate mixes;
* pattern corpora always contain the empty string, lowercase and
  ``U``-spelled variants, ``N``/IUPAC-contaminated reads, the whole
  reference, and patterns longer than the reference — the exact classes
  that found the two seed bugs this subsystem regression-guards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequence.alphabet import decode

#: Characters outside the strict alphabet that real FASTQ files contain.
IUPAC_EXTRA = "NRYSWKMBDHVn"


@dataclass(frozen=True)
class CheckProfile:
    """Knobs bounding how big/expensive one selfcheck round is."""

    name: str
    max_text: int          #: reference length upper bound
    n_patterns: int        #: patterns per corpus
    n_reads: int           #: reads per mapper/kernel round
    include_pool: bool     #: run the MapperPool pair (spawns processes)
    heavy_every: int       #: run kernel/flat checks every Nth round


PROFILES: dict[str, CheckProfile] = {
    "quick": CheckProfile("quick", max_text=300, n_patterns=10, n_reads=8,
                          include_pool=False, heavy_every=5),
    "default": CheckProfile("default", max_text=800, n_patterns=14, n_reads=12,
                            include_pool=True, heavy_every=2),
    "thorough": CheckProfile("thorough", max_text=2000, n_patterns=20, n_reads=16,
                             include_pool=True, heavy_every=1),
}


def rng_for(seed: int, round_index: int, check_index: int) -> np.random.Generator:
    """The deterministic per-(seed, round, check) generator."""
    return np.random.default_rng([seed, round_index, check_index])


# -- bit-vectors --------------------------------------------------------------


def gen_bitvector_case(rng: np.random.Generator) -> tuple[np.ndarray, int, int]:
    """One ``(bits, b, sf)`` case targeting block/superblock boundaries."""
    b = int(rng.choice([3, 5, 8, 15]))
    sf = int(rng.choice([2, 4, 8, 50]))
    sb = b * sf
    boundary_sizes = [
        1, 2, b - 1, b, b + 1, sb - 1, sb, sb + 1, 2 * sb - 1, 2 * sb, 2 * sb + 1,
    ]
    kind = rng.random()
    if kind < 0.6:
        n = int(rng.choice(boundary_sizes))
    else:
        n = int(rng.integers(1, 3 * sb + 2))
    density = float(rng.choice([0.0, 1.0, 0.05, 0.5, 0.95]))
    bits = (rng.random(n) < density).astype(np.uint8)
    return bits, b, sf


# -- texts --------------------------------------------------------------------


def gen_text(rng: np.random.Generator, profile: CheckProfile) -> str:
    """One reference text: random DNA, boundary-ish length, never empty."""
    kind = rng.random()
    if kind < 0.15:
        n = int(rng.integers(1, 8))  # tiny references
    elif kind < 0.25:
        # Low-complexity: homopolymers and short repeats stress locate.
        unit = decode(rng.integers(0, 4, size=int(rng.integers(1, 4))).astype(np.uint8))
        reps = int(rng.integers(4, max(5, profile.max_text // max(1, len(unit)))))
        return (unit * reps)[: profile.max_text]
    else:
        n = int(rng.integers(8, profile.max_text + 1))
    return decode(rng.integers(0, 4, size=n).astype(np.uint8))


# -- pattern / read corpora ---------------------------------------------------


def _substring(rng: np.random.Generator, text: str, max_len: int | None = None) -> str:
    n = len(text)
    length = int(rng.integers(1, n + 1))
    if max_len is not None:
        length = min(length, max_len)
    start = int(rng.integers(0, n - length + 1))
    return text[start : start + length]


def _mutate(rng: np.random.Generator, s: str) -> str:
    if not s:
        return s
    i = int(rng.integers(0, len(s)))
    return s[:i] + "ACGT"[int(rng.integers(0, 4))] + s[i + 1 :]


def _inject_invalid(rng: np.random.Generator, s: str) -> str:
    ch = IUPAC_EXTRA[int(rng.integers(0, len(IUPAC_EXTRA)))]
    i = int(rng.integers(0, len(s) + 1))
    return s[:i] + ch + s[i:]


def gen_pattern_corpus(
    rng: np.random.Generator, text: str, n: int, include_invalid: bool = True
) -> list[str]:
    """A pattern corpus for ``text``: edge classes first, then random.

    Always contains: the empty pattern, a lowercase spelling, a
    ``U``-spelled pattern, the whole text, and a pattern longer than the
    text.  ``include_invalid`` adds ``N``/IUPAC-contaminated entries
    (checks against raw :class:`~repro.index.fm_index.FMIndex` queries
    expect those to raise; mapper checks expect unmapped-with-reason).
    """
    corpus = [
        "",
        _substring(rng, text).lower(),
        _substring(rng, text).replace("T", "U"),
        text,
        text + decode(rng.integers(0, 4, size=4).astype(np.uint8)),  # longer than ref
    ]
    if include_invalid:
        corpus.append(_inject_invalid(rng, _substring(rng, text)))
        corpus.append("N" * int(rng.integers(1, 4)))
    while len(corpus) < n:
        r = rng.random()
        if r < 0.5:
            corpus.append(_substring(rng, text))
        elif r < 0.8:
            corpus.append(_mutate(rng, _substring(rng, text)))
        else:
            corpus.append(decode(rng.integers(0, 4, size=int(rng.integers(1, 12))).astype(np.uint8)))
    return corpus[:max(n, 7)]


def gen_read_corpus(rng: np.random.Generator, text: str, n: int) -> list[str]:
    """A read corpus for mapper/kernel checks (capped at 176 bases so the
    same reads can go through the FPGA record packing)."""
    reads = [
        "",
        _substring(rng, text, max_len=176).lower(),
        text[:176],
        _inject_invalid(rng, _substring(rng, text, max_len=40)),
    ]
    if len(text) <= 172:
        reads.append(text + "ACGT")  # longer than the reference, still packable
    while len(reads) < n:
        r = rng.random()
        if r < 0.6:
            reads.append(_substring(rng, text, max_len=176))
        else:
            reads.append(_mutate(rng, _substring(rng, text, max_len=176)))
    return reads[:max(n, 5)]

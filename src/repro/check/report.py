"""Counterexample rendering: human-readable, pytest-ready, corpus-stored.

A failing differential check produces a :class:`Counterexample` carrying
the *shrunk* inputs, what the oracle expected, and what the backend
answered.  Three renderings exist:

* :meth:`Counterexample.describe` — the terminal report;
* :meth:`Counterexample.to_pytest` — a ready-to-paste regression test
  (the check that found the bug supplies the assertion body);
* :func:`write_corpus_file` — a JSON corpus entry under ``tests/corpus/``
  that ``repro selfcheck --replay`` (and the corpus regression test)
  re-executes on every run, fuzzbench-style.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Corpus schema version, bumped on incompatible input-encoding changes.
CORPUS_VERSION = 1


@dataclass
class Counterexample:
    """One shrunk, reproducible differential failure."""

    check: str
    seed: int
    round_index: int
    inputs: dict          #: JSON-able inputs (text/pattern/bits/reads/...)
    expected: str
    actual: str
    snippet: str = ""     #: ready-to-paste pytest test body
    notes: str = ""

    def describe(self) -> str:
        lines = [
            f"FAIL [{self.check}] seed={self.seed} round={self.round_index}",
            f"  inputs:   {json.dumps(self.inputs, sort_keys=True)}",
            f"  expected: {self.expected}",
            f"  actual:   {self.actual}",
        ]
        if self.notes:
            lines.append(f"  note:     {self.notes}")
        if self.snippet:
            lines.append("  regression test (paste into tests/):")
            lines.extend("    " + ln for ln in self.snippet.splitlines())
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "version": CORPUS_VERSION,
            "check": self.check,
            "seed": self.seed,
            "round": self.round_index,
            "inputs": self.inputs,
            "expected": self.expected,
            "actual": self.actual,
        }

    @property
    def corpus_name(self) -> str:
        return f"{self.check}-seed{self.seed}-round{self.round_index}.json"


@dataclass
class CheckOutcome:
    """Per-check tally of one selfcheck run."""

    name: str
    rounds: int = 0
    failures: list[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class SelfCheckReport:
    """Aggregate outcome of one :meth:`SelfCheck.run`."""

    seed: int
    rounds: int
    profile: str
    outcomes: list[CheckOutcome] = field(default_factory=list)
    corpus_written: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> list[Counterexample]:
        return [cx for o in self.outcomes for cx in o.failures]

    def summary_lines(self) -> list[str]:
        width = max((len(o.name) for o in self.outcomes), default=8)
        lines = [
            f"selfcheck: seed={self.seed} rounds={self.rounds} profile={self.profile}"
        ]
        for o in self.outcomes:
            status = "ok" if o.ok else f"FAIL ({len(o.failures)})"
            lines.append(f"  {o.name:<{width}}  {o.rounds:>5} rounds  {status}")
        lines.append("selfcheck: PASS" if self.ok else "selfcheck: FAIL")
        return lines


def write_corpus_file(cx: Counterexample, corpus_dir: str | Path) -> Path:
    """Persist a counterexample as a corpus entry; returns the path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / cx.corpus_name
    path.write_text(json.dumps(cx.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: str | Path) -> list[dict]:
    """Load every corpus entry (sorted by name for determinism)."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    out = []
    for path in sorted(corpus_dir.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict) and "check" in doc and "inputs" in doc:
            doc["_path"] = str(path)
            out.append(doc)
    return out

"""The differential runner: every fast backend against its slow oracle.

Each :class:`Check` pairs one clever implementation with the matching
oracle from :mod:`repro.check.oracles` and knows how to

* ``generate(rng, profile)`` a JSON-able adversarial input, and
* ``verify(inputs)`` it — returning ``None`` on agreement or a *shrunk*
  :class:`~repro.check.report.Counterexample` on mismatch.

The generate/verify split is what makes corpus replay work: a stored
counterexample is just an ``inputs`` document fed straight back into
``verify``.  Exceptions inside ``verify`` count as failures (that is how
a reintroduced crash-on-``N`` bug surfaces as a shrunk counterexample
instead of killing the run).

The check pairs, in fixed registry order (the order feeds the per-check
RNG stream, so it must never be reshuffled silently):

====== ======================================================
rrr     ``RRRVector`` and ``BitVector`` vs popcount loops
wavelet ``WaveletTree`` vs direct numpy counting
fm      ``FMIndex.search/count/locate`` vs literal string scan
batch   ``FMIndex.search_batch`` vs the scalar search
mapper  ``Mapper.map_read``/``map_reads`` vs both-strand scan
kernel  FPGA functional model vs the CPU mapper (bit-identical)
flat    flat-container round-trip vs the in-memory index
pool    ``MapperPool`` workers vs the in-process mapper
ftab    jump-start-table-primed search vs the stepwise search + scan
coalesce merged-batch (coalesced) dispatch vs per-request ``map_reads``
router  sharded scatter-gather routing vs the multi-reference index
====== ======================================================
"""

from __future__ import annotations

import tempfile
import traceback
from itertools import product
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.bitvector import BitVector
from ..core.rrr import RRRVector
from ..core.wavelet_tree import WaveletTree
from ..index.builder import build_index
from ..index.flat import load_index_flat, save_index_flat
from ..index.multiref import MultiReferenceIndex
from ..mapper.mapper import Mapper
from ..mapper.results import REASON_INVALID_BASE, MappingResult
from ..sequence.alphabet import AlphabetError, encode, is_valid
from ..telemetry import get_telemetry
from .generators import (
    PROFILES,
    CheckProfile,
    gen_bitvector_case,
    gen_pattern_corpus,
    gen_read_corpus,
    gen_text,
    rng_for,
)
from .oracles import (
    naive_occ,
    naive_rank0,
    naive_rank1,
    naive_select1,
    oracle_mapping,
    oracle_occurrences,
)
from .report import (
    CheckOutcome,
    Counterexample,
    SelfCheckReport,
    load_corpus,
    write_corpus_file,
)
from .shrink import shrink_bits, shrink_list, shrink_string

#: A mismatch description: (expected, actual) rendered as strings.
Mismatch = tuple[str, str]


def _crash(exc: Exception) -> Mismatch:
    tb = traceback.format_exception_only(type(exc), exc)[-1].strip()
    return ("no exception", f"crash: {tb}")


def _guard(fn: Callable[[], Mismatch | None]) -> Mismatch | None:
    """Run a mismatch probe; an exception is itself a mismatch."""
    try:
        return fn()
    except Exception as exc:  # noqa: BLE001 - crashes are findings here
        return _crash(exc)


class Check:
    """One differential pair.  Subclasses fill in the four hooks."""

    name: str = ""
    #: Heavy checks (index rebuild + device model / file round-trip) run
    #: every ``profile.heavy_every`` rounds.
    heavy: bool = False
    #: Once-per-run checks (process-spawning ones) run in round 0 only.
    once: bool = False

    def generate(self, rng: np.random.Generator, profile: CheckProfile) -> dict:
        raise NotImplementedError

    def mismatch(self, inputs: dict) -> Mismatch | None:
        """Compare backend vs oracle on ``inputs``; ``None`` == agree."""
        raise NotImplementedError

    def shrink(self, inputs: dict) -> dict:
        """Reduce a failing ``inputs`` while it keeps failing."""
        return inputs

    def snippet(self, inputs: dict) -> str:
        """Ready-to-paste pytest body replaying ``inputs``."""
        return (
            f"def test_{self.name}_regression():\n"
            f"    from repro.check.differential import get_check\n"
            f"    assert get_check({self.name!r}).mismatch({inputs!r}) is None\n"
        )

    def verify(self, inputs: dict) -> Counterexample | None:
        found = _guard(lambda: self.mismatch(inputs))
        if found is None:
            return None
        small = self.shrink(inputs)
        result = _guard(lambda: self.mismatch(small))
        if result is None:  # shrinking over-shrank (flaky predicate): keep raw
            small, result = inputs, found
        expected, actual = result
        return Counterexample(
            check=self.name,
            seed=-1,
            round_index=-1,
            inputs=small,
            expected=expected,
            actual=actual,
            snippet=self.snippet(small),
        )

    def _still_fails(self, inputs: dict) -> bool:
        return _guard(lambda: self.mismatch(inputs)) is not None


# -- rrr ----------------------------------------------------------------------


class RRRCheck(Check):
    name = "rrr"

    def generate(self, rng, profile):
        bits, b, sf = gen_bitvector_case(rng)
        return {"bits": bits.tolist(), "b": b, "sf": sf}

    def mismatch(self, inputs):
        bits = np.array(inputs["bits"], dtype=np.uint8)
        b, sf = int(inputs["b"]), int(inputs["sf"])
        n = bits.size
        rrr = RRRVector(bits, b=b, sf=sf)
        plain = BitVector(bits)
        ones = int(np.count_nonzero(bits))
        for label, vec in (("RRRVector", rrr), ("BitVector", plain)):
            if vec.count() != ones:
                return (f"{label}.count() == {ones}", f"{vec.count()}")
            for p in range(n + 1):
                want = naive_rank1(bits, p)
                got = vec.rank1(p)
                if got != want:
                    return (f"{label}.rank1({p}) == {want}", f"{got}")
                got0 = vec.rank0(p)
                want0 = naive_rank0(bits, p)
                if got0 != want0:
                    return (f"{label}.rank0({p}) == {want0}", f"{got0}")
            many = vec.rank1_many(np.arange(n + 1, dtype=np.int64))
            want_many = np.cumsum(np.concatenate(([0], bits.astype(np.int64))))
            if not np.array_equal(np.asarray(many, dtype=np.int64), want_many):
                bad = int(np.flatnonzero(many != want_many)[0])
                return (
                    f"{label}.rank1_many at p={bad} == {int(want_many[bad])}",
                    f"{int(many[bad])}",
                )
            for k in range(1, ones + 1):
                want_s = naive_select1(bits, k)
                got_s = vec.select1(k)
                if got_s != want_s:
                    return (f"{label}.select1({k}) == {want_s}", f"{got_s}")
        for i in range(n):
            if rrr.access(i) != int(bits[i]):
                return (f"RRRVector.access({i}) == {int(bits[i])}", f"{rrr.access(i)}")
        return None

    def shrink(self, inputs):
        b, sf = int(inputs["b"]), int(inputs["sf"])

        def fails(arr: np.ndarray) -> bool:
            return self._still_fails({"bits": arr.tolist(), "b": b, "sf": sf})

        small = shrink_bits(np.array(inputs["bits"], dtype=np.uint8), fails)
        return {"bits": small.tolist(), "b": b, "sf": sf}


# -- wavelet ------------------------------------------------------------------


class WaveletCheck(Check):
    name = "wavelet"

    def generate(self, rng, profile):
        bits_case = gen_bitvector_case(rng)  # reuse the boundary b/sf draw
        _, b, sf = bits_case
        return {"text": gen_text(rng, profile), "b": b, "sf": sf}

    @staticmethod
    def _positions(n: int) -> list[int]:
        """Deterministic probe positions: exhaustive when small, a strided
        sample plus both ends otherwise (replay needs no RNG here)."""
        if n <= 300:
            return list(range(n + 1))
        step = max(1, n // 256)
        ps = set(range(0, n + 1, step))
        ps.update((0, 1, n - 1, n))
        return sorted(ps)

    def mismatch(self, inputs):
        codes = encode(inputs["text"])
        b, sf = int(inputs["b"]), int(inputs["sf"])
        tree = WaveletTree(codes, sigma=4, b=b, sf=sf)
        n = codes.size
        for sym in range(4):
            total = naive_occ(codes, sym, n)
            for p in self._positions(n):
                want = naive_occ(codes, sym, p)
                got = tree.rank(sym, p)
                if got != want:
                    return (f"rank({sym}, {p}) == {want}", f"{got}")
            counts = tree.symbol_counts()
            if int(counts[sym]) != total:
                return (f"symbol_counts()[{sym}] == {total}", f"{int(counts[sym])}")
            for k in (1, max(1, total // 2), total):
                if total == 0:
                    break
                want_s = int(np.flatnonzero(codes == sym)[k - 1])
                got_s = tree.select(sym, k)
                if got_s != want_s:
                    return (f"select({sym}, {k}) == {want_s}", f"{got_s}")
        for i in self._positions(n)[:-1]:
            if i < n and tree.access(i) != int(codes[i]):
                return (f"access({i}) == {int(codes[i])}", f"{tree.access(i)}")
        return None

    def shrink(self, inputs):
        b, sf = int(inputs["b"]), int(inputs["sf"])

        def fails(t: str) -> bool:
            return bool(t) and self._still_fails({"text": t, "b": b, "sf": sf})

        return {"text": shrink_string(inputs["text"], fails), "b": b, "sf": sf}


# -- fm (scalar search/count/locate) ------------------------------------------


def _build(inputs: dict):
    index, _ = build_index(
        inputs["text"],
        b=int(inputs.get("b", 15)),
        sf=int(inputs.get("sf", 8)),
        backend=inputs.get("backend", "rrr"),
    )
    return index


class TextPatternsCheck(Check):
    """Shared shape: a reference text plus a pattern/read corpus."""

    corpus_key = "patterns"

    def _corpus(self, rng, profile, text: str) -> list[str]:
        raise NotImplementedError

    def generate(self, rng, profile):
        text = gen_text(rng, profile)
        b = int(rng.choice([5, 15]))
        sf = int(rng.choice([4, 8]))
        backend = str(rng.choice(["rrr", "occ"]))
        return {
            "text": text,
            self.corpus_key: self._corpus(rng, profile, text),
            "b": b,
            "sf": sf,
            "backend": backend,
        }

    def shrink(self, inputs):
        out = dict(inputs)

        def corpus_fails(items: list) -> bool:
            return bool(items) and self._still_fails({**out, self.corpus_key: items})

        out[self.corpus_key] = shrink_list(list(inputs[self.corpus_key]), corpus_fails)

        def text_fails(t: str) -> bool:
            return bool(t) and self._still_fails({**out, "text": t})

        out["text"] = shrink_string(out["text"], text_fails)

        def single_fails(s: str) -> bool:
            return corpus_fails([s])

        if len(out[self.corpus_key]) == 1:  # shrink the lone survivor itself
            out[self.corpus_key] = [
                shrink_string(out[self.corpus_key][0], single_fails, budget=80)
            ]
            # A smaller survivor may free the text for further cuts (an
            # empty read, say, no longer pins any substring of the text).
            out["text"] = shrink_string(out["text"], text_fails, budget=120)
        return out


class FMCheck(TextPatternsCheck):
    name = "fm"

    def _corpus(self, rng, profile, text):
        return gen_pattern_corpus(rng, text, profile.n_patterns)

    def mismatch(self, inputs):
        index = _build(inputs)
        text = inputs["text"]
        for pat in inputs["patterns"]:
            want = oracle_occurrences(text, pat)
            if want is None:
                # Raw index queries must reject invalid patterns loudly
                # (the forgiving path lives in the mapper, not here).
                try:
                    got = index.count(pat)
                except AlphabetError:
                    continue
                return (f"count({pat!r}) raises AlphabetError", f"returned {got}")
            got = index.count(pat)
            if got != len(want):
                return (f"count({pat!r}) == {len(want)}", f"{got}")
            res = index.search(pat)
            if res.end - res.start != len(want):
                return (
                    f"search({pat!r}) interval width {len(want)}",
                    f"[{res.start}, {res.end})",
                )
            if res.start < 0 or res.end > index.n_rows:
                return (
                    f"search({pat!r}) interval within [0, {index.n_rows}]",
                    f"[{res.start}, {res.end})",
                )
            positions = sorted(int(p) for p in index.locate(pat))
            if positions != want:
                return (f"locate({pat!r}) == {want}", f"{positions}")
        return None


# -- batch vs scalar ----------------------------------------------------------


class BatchCheck(TextPatternsCheck):
    name = "batch"

    def _corpus(self, rng, profile, text):
        # search_batch shares the raw-index contract: invalid patterns
        # raise, so the differential corpus holds only encodable ones.
        return gen_pattern_corpus(
            rng, text, profile.n_patterns, include_invalid=False
        )

    def mismatch(self, inputs):
        index = _build(inputs)
        patterns = list(inputs["patterns"])
        lo, hi, steps = index.search_batch(patterns)
        for i, pat in enumerate(patterns):
            res = index.search(pat)
            got = (int(lo[i]), int(hi[i]), int(steps[i]))
            want = (res.start, res.end, res.steps)
            if got != want:
                return (
                    f"search_batch[{i}] ({pat!r}) == scalar {want}",
                    f"{got}",
                )
        return None


# -- mapper vs both-strand scan -----------------------------------------------


def _result_fingerprint(r: MappingResult) -> tuple:
    f, v = r.forward.interval, r.reverse.interval
    return (f.start, f.end, v.start, v.end, r.reason)


class MapperCheck(TextPatternsCheck):
    name = "mapper"
    corpus_key = "reads"

    def _corpus(self, rng, profile, text):
        return gen_read_corpus(rng, text, profile.n_reads)

    def mismatch(self, inputs):
        index = _build(inputs)
        mapper = Mapper(index, locate=True)
        text, reads = inputs["text"], list(inputs["reads"])
        scalar = [mapper.map_read(s, read_id=i) for i, s in enumerate(reads)]
        for i, (read, res) in enumerate(zip(reads, scalar)):
            want = oracle_mapping(text, read)
            if want is None:
                if res.reason != REASON_INVALID_BASE:
                    return (
                        f"map_read({read!r}).reason == {REASON_INVALID_BASE!r}",
                        f"{res.reason!r} (mapped={res.mapped})",
                    )
                if res.mapped:
                    return (f"invalid read {read!r} unmapped", "mapped")
                continue
            fwd_want, rc_want = want
            got_fwd = sorted(int(p) for p in (res.forward.positions if res.forward.positions is not None else []))
            got_rc = sorted(int(p) for p in (res.reverse.positions if res.reverse.positions is not None else []))
            if got_fwd != fwd_want:
                return (f"map_read({read!r}) forward at {fwd_want}", f"{got_fwd}")
            if got_rc != rc_want:
                return (f"map_read({read!r}) reverse at {rc_want}", f"{got_rc}")
        # One invalid read must never poison the batch path, and batching
        # must not change any answer.
        batched = mapper.map_reads(reads, batch=True)
        if len(batched) != len(scalar):
            return (f"map_reads returns {len(scalar)} results", f"{len(batched)}")
        for i, (a, b) in enumerate(zip(scalar, batched)):
            if _result_fingerprint(a) != _result_fingerprint(b):
                return (
                    f"batched result {i} ({reads[i]!r}) == scalar "
                    f"{_result_fingerprint(a)}",
                    f"{_result_fingerprint(b)}",
                )
        return None


# -- FPGA kernel vs CPU mapper ------------------------------------------------


class KernelCheck(TextPatternsCheck):
    name = "kernel"
    corpus_key = "reads"
    heavy = True

    def _corpus(self, rng, profile, text):
        return gen_read_corpus(rng, text, profile.n_reads)

    def generate(self, rng, profile):
        inputs = super().generate(rng, profile)
        inputs["backend"] = "rrr"  # the kernel holds the succinct structure
        return inputs

    def mismatch(self, inputs):
        from ..fpga.accelerator import FPGAAccelerator

        index = _build(inputs)
        mapper = Mapper(index, locate=False)
        reads = list(inputs["reads"])
        acc = FPGAAccelerator.for_index(index)
        run = acc.map_batch(reads)
        outcomes = sorted(run.kernel_run.outcomes, key=lambda o: o.query_id)
        if len(outcomes) != len(reads):
            return (f"{len(reads)} kernel outcomes", f"{len(outcomes)}")
        for i, (read, out) in enumerate(zip(reads, outcomes)):
            if out.query_id != i:
                return (f"outcome {i} has query_id {i}", f"{out.query_id}")
            if not is_valid(read):
                if out.mapped or out.fwd_end or out.rc_end:
                    return (
                        f"invalid read {read!r} -> all-zero outcome",
                        f"fwd=[{out.fwd_start},{out.fwd_end}) "
                        f"rc=[{out.rc_start},{out.rc_end})",
                    )
                continue
            res = mapper.map_read(read, read_id=i)
            want = (
                res.forward.interval.start, res.forward.interval.end,
                res.reverse.interval.start, res.reverse.interval.end,
            )
            got = (out.fwd_start, out.fwd_end, out.rc_start, out.rc_end)
            if got != want:
                return (f"kernel intervals for {read!r} == CPU {want}", f"{got}")
        return None


# -- flat container round-trip ------------------------------------------------


class FlatCheck(TextPatternsCheck):
    name = "flat"
    heavy = True

    def _corpus(self, rng, profile, text):
        return gen_pattern_corpus(rng, text, profile.n_patterns, include_invalid=False)

    def mismatch(self, inputs):
        mem = _build(inputs)
        with tempfile.TemporaryDirectory(prefix="selfcheck-flat-") as tmp:
            path = Path(tmp) / "index.bwvr"
            save_index_flat(mem, path)
            mapped = load_index_flat(path, verify=True)
            for pat in inputs["patterns"]:
                a, b = mem.search(pat), mapped.search(pat)
                if (a.start, a.end) != (b.start, b.end):
                    return (
                        f"mmap search({pat!r}) == in-memory [{a.start}, {a.end})",
                        f"[{b.start}, {b.end})",
                    )
                pa = sorted(int(p) for p in mem.locate(pat))
                pb = sorted(int(p) for p in mapped.locate(pat))
                if pa != pb:
                    return (f"mmap locate({pat!r}) == {pa}", f"{pb}")
            del mapped  # release the memmap before the directory goes away
        return None


# -- pool vs in-process mapper ------------------------------------------------


class PoolCheck(TextPatternsCheck):
    name = "pool"
    corpus_key = "reads"
    once = True

    def _corpus(self, rng, profile, text):
        return gen_read_corpus(rng, text, profile.n_reads)

    def generate(self, rng, profile):
        inputs = super().generate(rng, profile)
        inputs["backend"] = "rrr"
        return inputs

    def mismatch(self, inputs):
        from ..serving.pool import MapperPool

        index = _build(inputs)
        mapper = Mapper(index, locate=True)
        reads = list(inputs["reads"])
        local = [mapper.map_read(s, read_id=i) for i, s in enumerate(reads)]
        with MapperPool(index=index, workers=2) as pool:
            remote = pool.map_reads(reads, locate=True)
        if len(remote) != len(local):
            return (f"{len(local)} pool results", f"{len(remote)}")
        remote = sorted(remote, key=lambda r: r.read_id)
        for i, (a, b) in enumerate(zip(local, remote)):
            if _result_fingerprint(a) != _result_fingerprint(b):
                return (
                    f"pool result {i} ({reads[i]!r}) == local "
                    f"{_result_fingerprint(a)}",
                    f"{_result_fingerprint(b)}",
                )
        return None

    def shrink(self, inputs):
        # Every probe spawns worker processes; keep the budget tiny and
        # skip the text phase (the read list is what usually matters).
        def fails(items: list) -> bool:
            return bool(items) and self._still_fails({**inputs, "reads": items})

        reads = shrink_list(list(inputs["reads"]), fails, budget=20)
        return {**inputs, "reads": reads}


# -- ftab-primed search vs stepwise search ------------------------------------


class FtabCheck(TextPatternsCheck):
    """Jump-start table vs the stepwise chain it replaces.

    Builds the same index twice — with and without an ftab — and demands
    the full ``(start, end, steps)`` triple agree on every pattern, both
    scalar and batched, plus an exhaustive sweep of all 4^k k-mers whose
    counts are also checked against the pure-Python text scan.
    """

    name = "ftab"
    heavy = True  # two index builds + a 4^k table per round

    def _corpus(self, rng, profile, text):
        return gen_pattern_corpus(rng, text, profile.n_patterns, include_invalid=False)

    def generate(self, rng, profile):
        inputs = super().generate(rng, profile)
        inputs["ftab_k"] = int(rng.integers(1, 5))  # <= 256 entries per round
        return inputs

    def mismatch(self, inputs):
        k = int(inputs.get("ftab_k", 3))
        plain = _build(inputs)
        primed, _ = build_index(
            inputs["text"],
            b=int(inputs.get("b", 15)),
            sf=int(inputs.get("sf", 8)),
            backend=inputs.get("backend", "rrr"),
            ftab_k=k,
        )
        text = inputs["text"]
        patterns = list(inputs["patterns"])
        for pat in patterns:
            a, b = plain.search(pat), primed.search(pat)
            got = (b.start, b.end, b.steps)
            want = (a.start, a.end, a.steps)
            if got != want:
                return (f"primed search({pat!r}) == stepwise {want}", f"{got}")
        if patterns:
            lo_a, hi_a, st_a = plain.search_batch(patterns)
            lo_b, hi_b, st_b = primed.search_batch(patterns)
            for i in range(len(patterns)):
                got = (int(lo_b[i]), int(hi_b[i]), int(st_b[i]))
                want = (int(lo_a[i]), int(hi_a[i]), int(st_a[i]))
                if got != want:
                    return (
                        f"primed search_batch[{i}] ({patterns[i]!r}) == {want}",
                        f"{got}",
                    )
        # Exhaustive k-mer sweep: every table entry against both the
        # stepwise search and the literal scan.
        for kmer in map("".join, product("ACGT", repeat=k)):
            a, b = plain.search(kmer), primed.search(kmer)
            got = (b.start, b.end, b.steps)
            want = (a.start, a.end, a.steps)
            if got != want:
                return (f"table entry {kmer!r} == stepwise {want}", f"{got}")
            occurrences = oracle_occurrences(text, kmer)
            n_occ = len(occurrences) if occurrences is not None else 0
            if b.end - b.start != n_occ:
                return (
                    f"table entry {kmer!r} counts {n_occ} occurrences",
                    f"interval [{b.start}, {b.end})",
                )
        return None


# -- coalesced dispatch vs independent requests -------------------------------


class CoalesceCheck(TextPatternsCheck):
    """Merged-batch execution vs one ``map_reads`` call per request.

    The coalescer's core promise is that merging is invisible: slicing a
    shared kernel batch back apart and renumbering must reproduce each
    request's independent results bit-for-bit — including request-local
    ``read_id``/``read_name``, invalid (``N``-base) reads, and empty
    patterns.  A randomized ``max_batch_reads`` exercises the chunk
    boundaries (requests split across batches, giant lone requests).
    """

    name = "coalesce"
    corpus_key = "requests"

    def _corpus(self, rng, profile, text):
        reads = gen_read_corpus(rng, text, profile.n_reads)
        requests: list[list[str]] = []
        i = 0
        while i < len(reads):
            take = int(rng.integers(1, 5))
            requests.append(reads[i : i + take])
            i += take
        return requests

    def generate(self, rng, profile):
        inputs = super().generate(rng, profile)
        inputs["max_batch_reads"] = int(rng.integers(1, 33))
        return inputs

    @staticmethod
    def _full_fingerprint(r: MappingResult) -> tuple:
        def positions(h):
            if h.positions is None:
                return None
            return tuple(int(p) for p in h.positions)

        return (
            r.read_id,
            r.read_name,
            r.length,
            _result_fingerprint(r),
            positions(r.forward),
            positions(r.reverse),
        )

    def mismatch(self, inputs):
        from ..serving.coalescer import CoalescerConfig, RequestCoalescer

        index = _build(inputs)
        mapper = Mapper(index, locate=True)
        requests = [list(reads) for reads in inputs["requests"]]
        independent = [mapper.map_reads(reads) for reads in requests]
        coalescer = RequestCoalescer(
            mapper.map_reads,
            config=CoalescerConfig(
                max_batch_reads=int(inputs.get("max_batch_reads", 8))
            ),
        )
        merged = coalescer.map_many(requests)
        if len(merged) != len(independent):
            return (f"{len(independent)} request results", f"{len(merged)}")
        for i, (alone, shared) in enumerate(zip(independent, merged)):
            if len(shared) != len(alone):
                return (
                    f"request {i} has {len(alone)} results",
                    f"{len(shared)}",
                )
            for a, b in zip(alone, shared):
                fa, fb = self._full_fingerprint(a), self._full_fingerprint(b)
                if fa != fb:
                    return (
                        f"request {i} read {a.read_id} "
                        f"({requests[i][a.read_id]!r}) coalesced == {fa}",
                        f"{fb}",
                    )
        return None

    def shrink(self, inputs):
        out = dict(inputs)

        def requests_fail(items: list) -> bool:
            return bool(items) and self._still_fails({**out, "requests": items})

        out["requests"] = shrink_list(list(inputs["requests"]), requests_fail)
        if len(out["requests"]) == 1:  # drop reads inside the lone request

            def reads_fail(items: list) -> bool:
                return bool(items) and self._still_fails(
                    {**out, "requests": [items]}
                )

            out["requests"] = [
                shrink_list(list(out["requests"][0]), reads_fail, budget=40)
            ]

        def text_fails(t: str) -> bool:
            return bool(t) and self._still_fails({**out, "text": t})

        out["text"] = shrink_string(out["text"], text_fails)
        return out


# -- sharded routing vs the monolithic multi-reference index ------------------


class RouterCheck(Check):
    """Scatter-gather sharding vs one concatenated multi-reference index.

    The router's core promise: mapping a batch against N per-sequence
    shards and merging the per-shard strand hits by ``(catalog ordinal,
    position, strand)`` reproduces what a monolithic
    :class:`~repro.index.multiref.MultiReferenceIndex` over the same
    sequences answers, hit for hit.  The concatenated oracle filters
    boundary-spanning artifacts, so the two constructions are exactly
    equivalent — any divergence is a merge-ordering, coordinate, or
    lifecycle bug.  Three passes per round: plain fan-out, a budgeted
    fan-out squeezed to one-shard waves (forcing LRU eviction between
    waves), and a coalesced ``map_many`` whose demux must match
    per-request routing.
    """

    name = "router"
    heavy = True  # builds one flat container per sequence plus the oracle

    def generate(self, rng, profile):
        n_seqs = int(rng.integers(2, 5))
        sequences = [gen_text(rng, profile) for _ in range(n_seqs)]
        reads: list[str] = []
        for seq in sequences:  # every shard gets reads aimed at it
            reads.extend(gen_read_corpus(rng, seq, max(3, profile.n_reads // n_seqs)))
        return {
            "sequences": sequences,
            "reads": reads,
            "b": int(rng.choice([5, 15])),
            "sf": int(rng.choice([4, 8])),
            "backend": str(rng.choice(["rrr", "occ"])),
            "max_batch_reads": int(rng.integers(1, 17)),
        }

    @staticmethod
    def _fingerprint(mapping) -> tuple:
        return (
            mapping.read_id,
            tuple((h.name, h.position, h.strand) for h in mapping.hits),
        )

    @staticmethod
    def _compare(label: str, reads: list, want: list, got: list) -> Mismatch | None:
        if len(got) != len(want):
            return (f"{label}: {len(want)} mappings", f"{len(got)}")
        for i, (a, g) in enumerate(zip(want, got)):
            if a != g:
                return (f"{label}: read {i} ({reads[i]!r}) == {a}", f"{g}")
        return None

    def mismatch(self, inputs):
        from ..serving.coalescer import CoalescerConfig, RequestCoalescer
        from ..serving.router import ShardCatalog, ShardRouter

        b = int(inputs.get("b", 15))
        sf = int(inputs.get("sf", 8))
        backend = inputs.get("backend", "rrr")
        records = [(f"seq{i}", str(s)) for i, s in enumerate(inputs["sequences"])]
        reads = list(inputs["reads"])
        oracle = MultiReferenceIndex(records, b=b, sf=sf, backend=backend)
        want = [self._fingerprint(m) for m in oracle.map_reads(reads)]
        with ShardCatalog() as catalog:
            for name, seq in records:
                catalog.register_sequence(name, seq, b=b, sf=sf, backend=backend)
            router = ShardRouter(catalog)
            got = [self._fingerprint(m) for m in router.map_reads(reads)]
            found = self._compare("routed", reads, want, got)
            if found is not None:
                return found
            # Budgeted pass: the tightest budget that still fits each
            # shard alone forces one-shard waves with evictions between
            # them — answers must not change.
            catalog.deactivate_all()
            catalog.memory_budget_bytes = max(
                catalog.shard(n).bytes for n in catalog.names
            )
            got = [self._fingerprint(m) for m in router.map_reads(reads)]
            found = self._compare("budgeted", reads, want, got)
            if found is not None:
                return found
            if len(records) > 1 and catalog.evictions == 0:
                return ("budgeted fan-out evicts between waves", "0 evictions")
            # Coalesced pass: shared fan-out batches demux back to the
            # per-request answers bit-for-bit.
            catalog.memory_budget_bytes = None
            requests = [reads[i : i + 3] for i in range(0, len(reads), 3)]
            coalescer = RequestCoalescer(
                router.map_reads,
                config=CoalescerConfig(
                    max_batch_reads=int(inputs.get("max_batch_reads", 8))
                ),
            )
            merged = coalescer.map_many(requests)
            independent = [router.map_reads(req) for req in requests]
            if len(merged) != len(independent):
                return (f"{len(independent)} request results", f"{len(merged)}")
            for i, (alone, shared) in enumerate(zip(independent, merged)):
                fa = [self._fingerprint(m) for m in alone]
                fb = [self._fingerprint(m) for m in shared]
                if fa != fb:
                    return (f"coalesced request {i} == independent {fa}", f"{fb}")
        return None

    def shrink(self, inputs):
        # Every probe rebuilds one container per sequence plus the
        # oracle; keep the budget tiny and shrink only the read list.
        def fails(items: list) -> bool:
            return bool(items) and self._still_fails({**inputs, "reads": items})

        reads = shrink_list(list(inputs["reads"]), fails, budget=20)
        return {**inputs, "reads": reads}


#: Registry order is load-bearing: it feeds ``rng_for``'s check index.
#: New checks append at the end (``router``), never in the middle.
ALL_CHECKS: tuple[Check, ...] = (
    RRRCheck(),
    WaveletCheck(),
    FMCheck(),
    BatchCheck(),
    MapperCheck(),
    KernelCheck(),
    FlatCheck(),
    PoolCheck(),
    FtabCheck(),
    CoalesceCheck(),
    RouterCheck(),
)

CHECKS_BY_NAME: dict[str, Check] = {c.name: c for c in ALL_CHECKS}


def get_check(name: str) -> Check:
    """Registry lookup (used by replay and by emitted pytest snippets)."""
    try:
        return CHECKS_BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown check {name!r}; have {sorted(CHECKS_BY_NAME)}"
        ) from None


class SelfCheck:
    """The differential self-check runner behind ``repro selfcheck``."""

    def __init__(
        self,
        seed: int = 0,
        profile: str | CheckProfile = "default",
        checks: Sequence[str] | None = None,
        corpus_dir: str | Path | None = None,
        max_failures_per_check: int = 1,
    ):
        self.seed = int(seed)
        self.profile = (
            profile if isinstance(profile, CheckProfile) else PROFILES[profile]
        )
        names = list(checks) if checks else [c.name for c in ALL_CHECKS]
        self.checks = [get_check(n) for n in names]
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.max_failures_per_check = max_failures_per_check

    def _due(self, check: Check, round_index: int) -> bool:
        if check.once:
            return round_index == 0 and self.profile.include_pool
        if check.heavy:
            return round_index % self.profile.heavy_every == 0
        return True

    def run(
        self, rounds: int, progress: Callable[[str], None] | None = None
    ) -> SelfCheckReport:
        tel = get_telemetry()
        report = SelfCheckReport(
            seed=self.seed, rounds=rounds, profile=self.profile.name
        )
        outcomes = {c.name: CheckOutcome(name=c.name) for c in self.checks}
        report.outcomes = list(outcomes.values())
        check_index = {c.name: i for i, c in enumerate(ALL_CHECKS)}
        for r in range(rounds):
            for check in self.checks:
                out = outcomes[check.name]
                if not self._due(check, r):
                    continue
                if len(out.failures) >= self.max_failures_per_check:
                    continue
                rng = rng_for(self.seed, r, check_index[check.name])
                cx = _guarded_round(check, rng, self.profile)
                out.rounds += 1
                if tel.enabled:
                    tel.metrics.counter(
                        "selfcheck_rounds_total",
                        "Differential self-check rounds executed",
                        labelnames=("check",),
                    ).inc(check=check.name)
                if cx is None:
                    continue
                cx.seed, cx.round_index = self.seed, r
                out.failures.append(cx)
                if tel.enabled:
                    tel.metrics.counter(
                        "selfcheck_failures_total",
                        "Differential self-check mismatches found",
                        labelnames=("check",),
                    ).inc(check=check.name)
                if self.corpus_dir is not None:
                    report.corpus_written.append(
                        write_corpus_file(cx, self.corpus_dir)
                    )
                if progress is not None:
                    progress(cx.describe())
        return report

    def replay(self, corpus_dir: str | Path) -> SelfCheckReport:
        """Re-verify every stored counterexample (the regression guard)."""
        tel = get_telemetry()
        report = SelfCheckReport(seed=self.seed, rounds=0, profile="replay")
        outcomes: dict[str, CheckOutcome] = {}
        for doc in load_corpus(corpus_dir):
            name = doc["check"]
            if name not in CHECKS_BY_NAME:
                continue
            out = outcomes.setdefault(name, CheckOutcome(name=name))
            check = CHECKS_BY_NAME[name]
            found = _guard(lambda: check.mismatch(doc["inputs"]))
            out.rounds += 1
            if tel.enabled:
                tel.metrics.counter(
                    "selfcheck_rounds_total",
                    "Differential self-check rounds executed",
                    labelnames=("check",),
                ).inc(check=name)
            if found is not None:
                expected, actual = found
                out.failures.append(
                    Counterexample(
                        check=name,
                        seed=int(doc.get("seed", -1)),
                        round_index=int(doc.get("round", -1)),
                        inputs=doc["inputs"],
                        expected=expected,
                        actual=actual,
                        notes=f"replayed from {doc.get('_path', 'corpus')}",
                    )
                )
                if tel.enabled:
                    tel.metrics.counter(
                        "selfcheck_failures_total",
                        "Differential self-check mismatches found",
                        labelnames=("check",),
                    ).inc(check=name)
        report.outcomes = list(outcomes.values())
        return report


def _guarded_round(
    check: Check, rng: np.random.Generator, profile: CheckProfile
) -> Counterexample | None:
    """One generate+verify round; generation crashes become findings too."""
    try:
        inputs = check.generate(rng, profile)
    except Exception as exc:  # noqa: BLE001
        expected, actual = _crash(exc)
        return Counterexample(
            check=check.name,
            seed=-1,
            round_index=-1,
            inputs={},
            expected=expected,
            actual=actual,
            notes="generator crashed before verification",
        )
    return check.verify(inputs)

"""Differential self-check harness for the succinct stack.

``repro selfcheck`` drives every fast implementation (RRR vectors,
wavelet trees, FM-index scalar and batch search, the FPGA functional
model, the flat mmap container, the worker pool, the k-mer jump-start
table) against slow pure-Python oracles on seeded adversarial inputs,
shrinks any mismatch to a minimal counterexample, and stores it under
``tests/corpus/`` as a permanent regression guard.  See DESIGN.md §9.
"""

from .differential import (
    ALL_CHECKS,
    CHECKS_BY_NAME,
    Check,
    SelfCheck,
    get_check,
)
from .generators import PROFILES, CheckProfile, rng_for
from .oracles import (
    naive_occ,
    naive_rank0,
    naive_rank1,
    naive_select1,
    normalize,
    oracle_mapping,
    oracle_occurrences,
)
from .report import (
    CheckOutcome,
    Counterexample,
    SelfCheckReport,
    load_corpus,
    write_corpus_file,
)
from .shrink import shrink_bits, shrink_list, shrink_string, shrink_text_pattern

__all__ = [
    "ALL_CHECKS",
    "CHECKS_BY_NAME",
    "Check",
    "CheckOutcome",
    "CheckProfile",
    "Counterexample",
    "PROFILES",
    "SelfCheck",
    "SelfCheckReport",
    "get_check",
    "load_corpus",
    "naive_occ",
    "naive_rank0",
    "naive_rank1",
    "naive_select1",
    "normalize",
    "oracle_mapping",
    "oracle_occurrences",
    "rng_for",
    "shrink_bits",
    "shrink_list",
    "shrink_string",
    "shrink_text_pattern",
    "write_corpus_file",
]

"""Greedy counterexample shrinking (ddmin-lite).

When a differential check finds a mismatch, the raw failing input is a
random text/pattern/bit-vector of arbitrary size — correct but useless to
a human.  The shrinkers here reduce it to a (locally) minimal case that
still fails, by repeatedly deleting chunks while the caller-supplied
predicate keeps returning ``True`` ("still reproduces").

This is the classic delta-debugging loop with halving granularity, bounded
by a predicate-call budget so a pathological predicate (e.g. one that
rebuilds an index per probe) cannot stall a selfcheck run.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

S = TypeVar("S", str, list)

#: Default cap on predicate invocations per shrink.
DEFAULT_BUDGET = 400


class _Budget:
    def __init__(self, limit: int):
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _shrink_seq(seq: S, fails: Callable[[S], bool], budget: _Budget, min_len: int = 0) -> S:
    """Greedy chunk deletion: halving granularity down to single items."""
    changed = True
    while changed and budget.left > 0:
        changed = False
        chunk = max(1, len(seq) // 2)
        while chunk >= 1:
            i = 0
            while i < len(seq) and len(seq) > min_len:
                cand = seq[:i] + seq[i + chunk :]
                if len(cand) >= min_len and budget.spend() and fails(cand):
                    seq = cand
                    changed = True
                else:
                    i += chunk
                if budget.left <= 0:
                    return seq
            chunk //= 2
    return seq


def shrink_string(s: str, fails: Callable[[str], bool], budget: int = DEFAULT_BUDGET) -> str:
    """Smallest substring-by-deletion of ``s`` for which ``fails`` holds."""
    return _shrink_seq(s, fails, _Budget(budget))


def shrink_list(items: list, fails: Callable[[list], bool], budget: int = DEFAULT_BUDGET) -> list:
    """Smallest sublist of ``items`` for which ``fails`` holds."""
    return _shrink_seq(list(items), fails, _Budget(budget))


def shrink_text_pattern(
    text: str,
    pattern: str,
    fails: Callable[[str, str], bool],
    budget: int = DEFAULT_BUDGET,
) -> tuple[str, str]:
    """Jointly shrink a (text, pattern) pair.

    Shrinks the pattern first (cheap probes: no index rebuild needed in
    most predicates), then the text, then the pattern again in case the
    smaller text enabled further cuts.  The reference text is kept
    non-empty — the builders reject empty references, and a bug that only
    reproduces on the empty reference would be reported as such anyway.
    """
    b = _Budget(budget)
    pattern = _shrink_seq(pattern, lambda p: fails(text, p), b)
    text = _shrink_seq(text, lambda t: fails(t, pattern), b, min_len=1)
    pattern = _shrink_seq(pattern, lambda p: fails(text, p), b)
    return text, pattern


def shrink_bits(
    bits: np.ndarray, fails: Callable[[np.ndarray], bool], budget: int = DEFAULT_BUDGET
) -> np.ndarray:
    """Shrink a 0/1 array: chunk deletion, then sparsification.

    After length reduction, tries flipping remaining ones to zeros — a
    sparser vector of the same length is easier to reason about in an RRR
    counterexample (fewer classes involved).
    """
    b = _Budget(budget)
    as_list = list(np.asarray(bits, dtype=np.uint8).tolist())
    as_list = _shrink_seq(as_list, lambda xs: fails(np.array(xs, dtype=np.uint8)), b, min_len=1)
    arr = np.array(as_list, dtype=np.uint8)
    for i in np.flatnonzero(arr).tolist():
        if b.left <= 0:
            break
        cand = arr.copy()
        cand[i] = 0
        if b.spend() and fails(cand):
            arr = cand
    return arr

"""Approximate backward search with bounded mismatches (paper future work).

BWaveR §V lists "extend our mapping design to approximate string
matching" as future work, and §II describes the standard technique: a
modified backward search that branches on substitutions, with cost
exponential in the number of allowed mismatches — which is why production
tools cap it at one or two.

:func:`search_with_mismatches` implements that bounded-backtracking
search: at each step, besides the read's own symbol, it optionally
branches to each other symbol (spending one mismatch).  Results are
deduplicated SA intervals annotated with the number of substitutions, and
the oracle tests compare against a brute-force Hamming scan of the
reference.

This mirrors the two-pass architecture of Arram et al. (paper [7]):
reads that fail exact matching get reprocessed by the slower 1- and
2-mismatch modules; :func:`map_with_rescue` packages exactly that policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..index.fm_index import FMIndex
from ..sequence.alphabet import encode, reverse_complement

SIGMA = 4


@dataclass(frozen=True)
class ApproxHit:
    """One SA interval reachable with ``mismatches`` substitutions."""

    start: int
    end: int
    mismatches: int

    @property
    def count(self) -> int:
        return self.end - self.start


def search_with_mismatches(index: FMIndex, pattern, k: int) -> list[ApproxHit]:
    """All SA intervals matching ``pattern`` with at most ``k`` substitutions.

    Depth-first bounded backtracking over the backward-search tree.
    Intervals are pruned as soon as they empty, so the exact-match case
    (``k == 0``) degenerates to the plain search.  Overlapping intervals
    from different substitution patterns are merged per distinct
    ``(start, end)`` keeping the minimal mismatch count.
    """
    if k < 0:
        raise ValueError("mismatch budget must be >= 0")
    codes = encode(pattern) if isinstance(pattern, str) else np.asarray(pattern, dtype=np.uint8)
    backend = index.backend
    n_rows = index.n_rows
    best: dict[tuple[int, int], int] = {}

    def step(pos: int, lo: int, hi: int, used: int) -> None:
        if lo >= hi:
            return
        if pos < 0:
            key = (lo, hi)
            if key not in best or best[key] > used:
                best[key] = used
            return
        want = int(codes[pos])
        for a in range(SIGMA):
            cost = 0 if a == want else 1
            if used + cost > k:
                continue
            index.counters.bs_steps += 1
            nlo = backend.count_smaller(a) + backend.occ(a, lo)
            nhi = backend.count_smaller(a) + backend.occ(a, hi)
            step(pos - 1, nlo, nhi, used + cost)

    step(codes.size - 1, 0, n_rows, 0)
    return sorted(
        (ApproxHit(s, e, m) for (s, e), m in best.items()),
        key=lambda h: (h.mismatches, h.start),
    )


def count_with_mismatches(index: FMIndex, pattern, k: int) -> int:
    """Total occurrences within ``k`` substitutions.

    Distinct text positions can be reached through different branch
    paths only if their intervals differ, and backward search assigns
    each matching text substring to exactly one SA interval per symbol
    sequence — summing interval sizes over *distinct intervals* therefore
    counts each occurrence once.
    """
    hits = search_with_mismatches(index, pattern, k)
    # Intervals from different substitution patterns are disjoint (they
    # correspond to different matched strings), so sizes sum directly.
    return sum(h.count for h in hits)


def locate_with_mismatches(index: FMIndex, pattern, k: int) -> list[tuple[int, int]]:
    """Sorted ``(position, mismatches)`` pairs for all approximate hits."""
    if index.locate_structure is None:
        raise RuntimeError("index was built without a locate structure")
    out: list[tuple[int, int]] = []
    for hit in search_with_mismatches(index, pattern, k):
        positions = index.locate_structure.locate_range(
            hit.start, hit.end, lf=index.backend.lf
        )
        out.extend((int(p), hit.mismatches) for p in positions)
    return sorted(out)


@dataclass(frozen=True)
class RescueResult:
    """Outcome of the exact-then-approximate two-pass policy."""

    read_id: int
    strand: str
    mismatches: int
    positions: tuple[int, ...]


def map_with_rescue(index: FMIndex, reads, k: int = 2) -> list[RescueResult | None]:
    """Arram-style two-pass mapping: exact first, k-mismatch rescue second.

    Returns, per read, the best hit found (fewest mismatches, forward
    strand preferred on ties) or ``None`` when even the rescue pass finds
    nothing.
    """
    out: list[RescueResult | None] = []
    for i, read in enumerate(reads):
        best: RescueResult | None = None
        for strand, seq in (("+", read), ("-", reverse_complement(read))):
            # Pass 1 (exact) is the k=0 prefix of the bounded search; the
            # rescue pass only widens the budget when pass 1 came up empty,
            # mirroring the reconfigure-and-retry flow of Arram et al.
            exact = search_with_mismatches(index, seq, 0)
            hits = exact if exact else search_with_mismatches(index, seq, k)
            if not hits:
                continue
            top = hits[0]  # sorted by mismatch count
            positions: tuple[int, ...] = ()
            if index.locate_structure is not None:
                positions = tuple(
                    sorted(
                        int(p)
                        for p in index.locate_structure.locate_range(
                            top.start, top.end, lf=index.backend.lf
                        )
                    )
                )
            cand = RescueResult(i, strand, top.mismatches, positions)
            if best is None or cand.mismatches < best.mismatches:
                best = cand
        out.append(best)
    return out

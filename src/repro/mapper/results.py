"""Mapping results and their text output formats.

BWaveR reports, per read, the SA intervals of the forward sequence and of
its reverse complement; the host then resolves intervals to positions in
the suffix array.  :class:`MappingResult` carries exactly that, and
:func:`write_hits_tsv` / :func:`to_sam_lines` provide the downloadable
outputs of the web workflow (a plain hits table, and a minimal SAM-like
rendering for interoperability demos).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Sequence

import numpy as np

from ..index.fm_index import SearchResult


@dataclass(frozen=True)
class StrandHit:
    """One strand's search outcome for a read."""

    interval: SearchResult
    positions: np.ndarray | None = None

    @property
    def count(self) -> int:
        return self.interval.count

    @property
    def found(self) -> bool:
        return self.interval.found


#: Reason code for reads rejected by the alphabet policy (``N``, IUPAC
#: ambiguity codes, or other non-ACGT/U characters).  Such reads are
#: reported unmapped with this reason instead of raising out of the
#: mapper (DESIGN.md §9's N-policy).
REASON_INVALID_BASE = "invalid_base"


@dataclass(frozen=True)
class MappingResult:
    """Outcome of mapping one read (and its reverse complement).

    ``reason`` is ``None`` for reads that went through the search, and a
    reason code (currently only :data:`REASON_INVALID_BASE`) for reads
    the mapper refused without searching.
    """

    read_id: int
    read_name: str
    length: int
    forward: StrandHit
    reverse: StrandHit
    reason: str | None = None

    @property
    def mapped(self) -> bool:
        """True when either strand matches (the paper's "mapped read")."""
        return self.forward.found or self.reverse.found

    @property
    def total_occurrences(self) -> int:
        return self.forward.count + self.reverse.count

    @property
    def steps(self) -> int:
        """Backward-search steps consumed across both strands.

        On the FPGA the two searches run in lockstep pipelines, so the
        *hardware* step count is ``max``; this property is the *software*
        (sequential) total.  The cost models pick whichever applies.
        """
        return self.forward.interval.steps + self.reverse.interval.steps

    @property
    def hardware_steps(self) -> int:
        return max(self.forward.interval.steps, self.reverse.interval.steps)


def mapping_ratio(results: Sequence[MappingResult]) -> float:
    """Fraction of reads with at least one hit (Fig. 7's x-axis)."""
    if not results:
        return 0.0
    return sum(1 for r in results if r.mapped) / len(results)


def write_hits_tsv(results: Iterable[MappingResult], fh: IO[str]) -> int:
    """Write one row per read: name, strand counts, and positions.

    Returns the number of rows written.  This is the primary download of
    the web workflow.
    """
    fh.write("read\tlength\tfwd_count\trc_count\tfwd_positions\trc_positions\n")
    rows = 0
    for r in results:
        fpos = (
            ",".join(map(str, r.forward.positions.tolist()))
            if r.forward.positions is not None and r.forward.positions.size
            else "."
        )
        rpos = (
            ",".join(map(str, r.reverse.positions.tolist()))
            if r.reverse.positions is not None and r.reverse.positions.size
            else "."
        )
        fh.write(
            f"{r.read_name}\t{r.length}\t{r.forward.count}\t{r.reverse.count}"
            f"\t{fpos}\t{rpos}\n"
        )
        rows += 1
    return rows


def to_sam_lines(
    results: Iterable[MappingResult],
    reads: Sequence[str],
    reference_name: str = "ref",
    reference_length: int = 0,
) -> list[str]:
    """Minimal SAM rendering of exact-match results.

    One line per located occurrence (or one unmapped line per read with
    no hits).  Flags used: 0 forward, 16 reverse, 4 unmapped; CIGAR is
    always full-length ``M`` because BWaveR reports exact matches only.
    """
    lines = [
        "@HD\tVN:1.6\tSO:unknown",
        f"@SQ\tSN:{reference_name}\tLN:{reference_length}",
        "@PG\tID:bwaver-repro\tPN:bwaver-repro",
    ]
    for r in results:
        seq = reads[r.read_id]
        emitted = False
        for strand, hit, flag in (("+", r.forward, 0), ("-", r.reverse, 16)):
            if hit.positions is None:
                continue
            for pos in hit.positions.tolist():
                lines.append(
                    f"{r.read_name}\t{flag}\t{reference_name}\t{pos + 1}\t255"
                    f"\t{r.length}M\t*\t0\t0\t{seq}\t*"
                )
                emitted = True
        if not emitted:
            lines.append(f"{r.read_name}\t4\t*\t0\t0\t*\t*\t0\t0\t{seq}\t*")
    return lines

"""Exact-match read mapping over an FM-index (paper workflow step 3).

For every read :math:`\\mathcal{X}`, BWaveR maps both :math:`\\mathcal{X}`
and its reverse complement :math:`\\overline{\\mathcal{X}}` onto the
reference and reports the SA intervals of both strands; positions are
resolved on the host from the suffix array.  :class:`Mapper` implements
that contract on the software side — the FPGA kernel in
:mod:`repro.fpga.kernel` implements the same contract and the tests assert
bit-identical intervals between the two.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..index.fm_index import FMIndex, SearchResult
from ..sequence.alphabet import AlphabetError, is_valid, reverse_complement
from ..telemetry import get_telemetry
from .results import REASON_INVALID_BASE, MappingResult, StrandHit


class Mapper:
    """Both-strand exact mapper bound to an :class:`FMIndex`.

    Reads containing characters outside the alphabet (``N``, IUPAC
    codes, garbage) are *not* searched and *not* fatal: they come back
    unmapped with ``reason == REASON_INVALID_BASE`` and bump the
    ``reads_invalid`` counter, so one bad read cannot kill a batch, a
    pool task, or a web job (DESIGN.md §9).

    Parameters
    ----------
    index:
        The query index (any backend).
    locate:
        When true, SA intervals are resolved to sorted text positions
        (requires the index to carry a locate structure).  Counting-only
        mapping (the FPGA's on-device output) sets this false.
    """

    def __init__(self, index: FMIndex, locate: bool = True):
        self.index = index
        self.locate = bool(locate)
        if self.locate and index.locate_structure is None:
            raise ValueError(
                "locate=True requires an index with a locate structure; "
                "build with locate='full' or 'sampled', or pass locate=False"
            )

    def _positions(self, res: SearchResult) -> np.ndarray | None:
        if not self.locate:
            return None
        if not res.found:
            return np.zeros(0, dtype=np.int64)
        loc = self.index.locate_structure
        assert loc is not None
        return np.sort(loc.locate_range(res.start, res.end, lf=self.index.backend.lf))

    def _invalid_result(
        self, sequence: str, read_id: int, read_name: str | None
    ) -> MappingResult:
        """The N-policy outcome: unmapped, with a reason code."""
        self.index.counters.reads_invalid += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "reads_invalid_total",
                "Reads rejected by the alphabet policy (reported unmapped)",
                labelnames=("path",),
            ).inc(path="mapper")
        empty = SearchResult(start=0, end=0, steps=0)
        pos = np.zeros(0, dtype=np.int64) if self.locate else None
        return MappingResult(
            read_id=read_id,
            read_name=read_name if read_name is not None else f"read{read_id}",
            length=len(sequence),
            forward=StrandHit(empty, pos),
            reverse=StrandHit(empty, pos),
            reason=REASON_INVALID_BASE,
        )

    def map_read(self, sequence: str, read_id: int = 0, read_name: str | None = None) -> MappingResult:
        """Map one read and its reverse complement."""
        try:
            fwd = self.index.search(sequence)
            rc = self.index.search(reverse_complement(sequence))
        except AlphabetError:
            return self._invalid_result(sequence, read_id, read_name)
        return MappingResult(
            read_id=read_id,
            read_name=read_name if read_name is not None else f"read{read_id}",
            length=len(sequence),
            forward=StrandHit(fwd, self._positions(fwd)),
            reverse=StrandHit(rc, self._positions(rc)),
        )

    def map_reads(
        self,
        sequences: Sequence[str],
        names: Sequence[str] | None = None,
        batch: bool = True,
    ) -> list[MappingResult]:
        """Map many reads; ``batch=True`` uses the vectorized search path.

        Results are identical either way (tests enforce it); the batched
        path groups the per-step rank queries of all live reads, which is
        how the numpy implementation approximates the FPGA's
        many-in-flight execution.
        """
        if names is not None and len(names) != len(sequences):
            raise ValueError("names must match sequences in length")
        if not batch:
            return [
                self.map_read(s, read_id=i, read_name=names[i] if names else None)
                for i, s in enumerate(sequences)
            ]
        tel = get_telemetry()
        with tel.span("mapper.map_reads", cat="mapper", n_reads=len(sequences)):
            all_seqs = list(sequences)
            # Alphabet screen: invalid reads skip the search entirely and
            # come back unmapped with a reason code (never an exception).
            valid_idx = [i for i, s in enumerate(all_seqs) if is_valid(s)]
            seqs = [all_seqs[i] for i in valid_idx]
            rcs = [reverse_complement(s) for s in seqs]
            lo, hi, steps = self.index.search_batch(seqs + rcs)
            n = len(seqs)
            out: list[MappingResult | None] = [None] * len(all_seqs)
            for j, i in enumerate(valid_idx):
                fwd = SearchResult(start=int(lo[j]), end=int(hi[j]), steps=int(steps[j]))
                rc = SearchResult(
                    start=int(lo[n + j]), end=int(hi[n + j]), steps=int(steps[n + j])
                )
                out[i] = MappingResult(
                    read_id=i,
                    read_name=names[i] if names else f"read{i}",
                    length=len(all_seqs[i]),
                    forward=StrandHit(fwd, self._positions(fwd)),
                    reverse=StrandHit(rc, self._positions(rc)),
                )
            for i, r in enumerate(out):
                if r is None:
                    out[i] = self._invalid_result(
                        all_seqs[i], i, names[i] if names else None
                    )
        results = [r for r in out if r is not None]
        if tel.enabled:
            m = tel.metrics
            m.counter("mapper_reads_total", "Reads mapped (both strands)").inc(
                len(all_seqs)
            )
            m.counter("mapper_mapped_reads_total", "Reads with at least one hit").inc(
                sum(1 for r in results if r.mapped)
            )
        return results

    def count_occurrences(self, sequence: str) -> int:
        """Total exact occurrences on both strands (0 for invalid reads)."""
        try:
            return self.index.count(sequence) + self.index.count(
                reverse_complement(sequence)
            )
        except AlphabetError:
            self.index.counters.reads_invalid += 1
            return 0

"""512-bit query records (paper §III-C).

BWaveR models each query as a 512-bit structure "which stores the
sequence to be searched and some additional information", sized to match
the FPGA's 512-bit memory ports ("to exploit the memory burst") and able
to hold sequences "long up to 176 bases".

Layout used here (bit 0 = LSB of word 0; eight 64-bit words):

======== ======== =======================================================
bits      field    meaning
======== ======== =======================================================
0-351     bases    2-bit codes, base ``i`` in bits ``2i .. 2i+1``
352-359   length   read length in bases (0-176)
360-391   id       32-bit query identifier
392-399   flags    bit 0: reverse-complement-of record (set by the host
                   only for diagnostics; the kernel derives RC itself)
400-511   reserved zero
======== ======== =======================================================

The packing is exact and reversible; tests round-trip random reads
through :func:`pack_query`/:func:`unpack_query` and through the batched
:func:`pack_queries` used by the host-side transfer path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequence.alphabet import decode, encode

#: Query record size: one 512-bit burst word.
QUERY_BITS = 512
QUERY_WORDS = 8
#: Maximum bases a record can carry (paper: "long up to 176 bases").
MAX_QUERY_BASES = 176

_LEN_BIT = 352
_ID_BIT = 360
_FLAG_BIT = 392
FLAG_REVERSE_COMPLEMENT = 1


class QueryTooLongError(ValueError):
    """Raised when a read exceeds the 176-base record capacity."""


@dataclass(frozen=True)
class QueryRecord:
    """A decoded query record."""

    sequence: str
    query_id: int
    flags: int = 0

    @property
    def length(self) -> int:
        return len(self.sequence)


def _set_bits(words: np.ndarray, start: int, width: int, value: int) -> None:
    """Write ``value`` into ``words`` at bit offset ``start`` (LSB-first)."""
    for k in range(width):
        if value >> k & 1:
            bit = start + k
            words[bit // 64] |= np.uint64(1) << np.uint64(bit % 64)


def _get_bits(words: np.ndarray, start: int, width: int) -> int:
    value = 0
    for k in range(width):
        bit = start + k
        if int(words[bit // 64]) >> (bit % 64) & 1:
            value |= 1 << k
    return value


def pack_query(sequence: str, query_id: int, flags: int = 0) -> np.ndarray:
    """Pack one read into a 512-bit record (eight uint64 words)."""
    if len(sequence) > MAX_QUERY_BASES:
        raise QueryTooLongError(
            f"read of {len(sequence)} bases exceeds the {MAX_QUERY_BASES}-base "
            f"record capacity; split the read or use the software mapper"
        )
    if not 0 <= query_id < (1 << 32):
        raise ValueError("query_id must fit in 32 bits")
    if not 0 <= flags < (1 << 8):
        raise ValueError("flags must fit in 8 bits")
    codes = encode(sequence)
    words = np.zeros(QUERY_WORDS, dtype=np.uint64)
    for i, c in enumerate(codes):
        _set_bits(words, 2 * i, 2, int(c))
    _set_bits(words, _LEN_BIT, 8, len(sequence))
    _set_bits(words, _ID_BIT, 32, query_id)
    _set_bits(words, _FLAG_BIT, 8, flags)
    return words


def unpack_query(words: np.ndarray) -> QueryRecord:
    """Decode a 512-bit record back to a :class:`QueryRecord`."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size != QUERY_WORDS:
        raise ValueError(f"query record must be {QUERY_WORDS} words, got {words.size}")
    length = _get_bits(words, _LEN_BIT, 8)
    if length > MAX_QUERY_BASES:
        raise ValueError(f"corrupt record: length field {length} > {MAX_QUERY_BASES}")
    codes = np.array([_get_bits(words, 2 * i, 2) for i in range(length)], dtype=np.uint8)
    return QueryRecord(
        sequence=decode(codes),
        query_id=_get_bits(words, _ID_BIT, 32),
        flags=_get_bits(words, _FLAG_BIT, 8),
    )


#: Base field padded to whole words: 176 bases → 5.5 words, fold over 6.
_BASE_WORDS = (2 * MAX_QUERY_BASES + 63) // 64
_LANE_SHIFTS = (2 * np.arange(32, dtype=np.uint64))[None, None, :]


def pack_queries(sequences, start_id: int = 0) -> np.ndarray:
    """Pack many reads into an ``(n, 8)`` uint64 array (one burst per row).

    This is the buffer the host enqueues to the device; ids are assigned
    sequentially from ``start_id``.  Fully vectorized — one ``encode``
    over the concatenated reads, a scatter into an ``(n, 192)`` code
    matrix, and one shift-or fold per record — with :func:`pack_query`
    kept as the scalar oracle (tests assert bit-identical buffers).
    """
    seq_list = list(sequences)
    n = len(seq_list)
    out = np.zeros((n, QUERY_WORDS), dtype=np.uint64)
    if n == 0:
        return out
    if not 0 <= start_id <= start_id + n - 1 < (1 << 32):
        raise ValueError("query ids must fit in 32 bits")
    lengths = np.array([len(s) for s in seq_list], dtype=np.int64)
    if lengths.max(initial=0) > MAX_QUERY_BASES:
        bad = int(np.argmax(lengths > MAX_QUERY_BASES))
        raise QueryTooLongError(
            f"read {bad} has {lengths[bad]} bases (> {MAX_QUERY_BASES})"
        )
    codes = encode("".join(seq_list)).astype(np.uint64)
    mat = np.zeros((n, 32 * _BASE_WORDS), dtype=np.uint64)
    if codes.size:
        rows = np.repeat(np.arange(n), lengths)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        cols = np.arange(codes.size) - np.repeat(starts, lengths)
        mat[rows, cols] = codes
    out[:, :_BASE_WORDS] = np.bitwise_or.reduce(
        mat.reshape(n, _BASE_WORDS, 32) << _LANE_SHIFTS, axis=2
    )
    # Header fields, straight into their word/bit homes: length at bit 352
    # (word 5, bit 32), id at bit 360 (word 5 bits 40-63 + word 6 bits 0-7).
    ids = (np.uint64(start_id) + np.arange(n, dtype=np.uint64))
    out[:, _LEN_BIT // 64] |= lengths.astype(np.uint64) << np.uint64(_LEN_BIT % 64)
    out[:, _ID_BIT // 64] |= (ids & np.uint64(0xFFFFFF)) << np.uint64(_ID_BIT % 64)
    out[:, _ID_BIT // 64 + 1] |= ids >> np.uint64(64 - _ID_BIT % 64)
    return out


def unpack_queries(records: np.ndarray) -> list[QueryRecord]:
    """Decode an ``(n, 8)`` record buffer."""
    records = np.asarray(records, dtype=np.uint64)
    if records.ndim != 2 or records.shape[1] != QUERY_WORDS:
        raise ValueError("record buffer must have shape (n, 8)")
    return [unpack_query(row) for row in records]

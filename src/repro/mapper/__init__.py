"""Read mapping: exact (both strands), batched, approximate, seed-extend."""

from .batch import BatchRunReport, run_mapping_batch, run_mapping_multiprocess
from .mapper import Mapper
from .paired import (
    PairedEndMapper,
    PairMapping,
    ProperPair,
    simulate_read_pairs,
)
from .stream import StreamSummary, map_fastq_to_tsv, map_stream
from .mismatch import (
    ApproxHit,
    RescueResult,
    count_with_mismatches,
    locate_with_mismatches,
    map_with_rescue,
    search_with_mismatches,
)
from .query import (
    MAX_QUERY_BASES,
    QUERY_BITS,
    QUERY_WORDS,
    QueryRecord,
    QueryTooLongError,
    pack_queries,
    pack_query,
    unpack_queries,
    unpack_query,
)
from .results import MappingResult, StrandHit, mapping_ratio, to_sam_lines, write_hits_tsv
from .sam import paired_end_records, write_sam_multiref, write_sam_single
from .seed_extend import SeedExtendAligner, SeedExtendConfig, SeedExtendHit
from .smith_waterman import Alignment, ScoringScheme, smith_waterman, sw_score_only

__all__ = [
    "Alignment",
    "ApproxHit",
    "BatchRunReport",
    "PairMapping",
    "PairedEndMapper",
    "ProperPair",
    "StreamSummary",
    "map_fastq_to_tsv",
    "map_stream",
    "paired_end_records",
    "simulate_read_pairs",
    "write_sam_multiref",
    "write_sam_single",
    "MAX_QUERY_BASES",
    "Mapper",
    "MappingResult",
    "QUERY_BITS",
    "QUERY_WORDS",
    "QueryRecord",
    "QueryTooLongError",
    "RescueResult",
    "ScoringScheme",
    "SeedExtendAligner",
    "SeedExtendConfig",
    "SeedExtendHit",
    "StrandHit",
    "count_with_mismatches",
    "locate_with_mismatches",
    "map_with_rescue",
    "mapping_ratio",
    "pack_queries",
    "pack_query",
    "run_mapping_batch",
    "run_mapping_multiprocess",
    "search_with_mismatches",
    "smith_waterman",
    "sw_score_only",
    "to_sam_lines",
    "unpack_queries",
    "unpack_query",
    "write_hits_tsv",
]

"""Paired-end mapping: mate-pair constraints over exact hits.

Resequencing read sets (the paper's motivating workload) are usually
paired-end: two reads sequenced from the two ends of the same DNA
fragment, facing each other (FR orientation) at a roughly known
*insert size*.  Pairing dramatically disambiguates repeats — a mate
anchored in unique sequence rescues its repeat-landing partner.

This module layers pairing on top of the exact mapper:

* each mate is mapped on both strands;
* candidate pairs in FR orientation with an insert size inside
  ``[min_insert, max_insert]`` are *proper pairs*;
* among proper pairs the one with the fewest total occurrences wins
  (the uniqueness heuristic real pipelines use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..index.fm_index import FMIndex
from .mapper import Mapper


@dataclass(frozen=True)
class ProperPair:
    """A concordant placement of both mates."""

    pos1: int
    pos2: int
    strand1: str
    strand2: str
    insert_size: int


@dataclass(frozen=True)
class PairMapping:
    """Outcome for one read pair."""

    pair_id: int
    proper: tuple[ProperPair, ...]
    mate1_hits: int
    mate2_hits: int

    @property
    def is_proper(self) -> bool:
        return bool(self.proper)

    @property
    def best(self) -> ProperPair | None:
        return self.proper[0] if self.proper else None


class PairedEndMapper:
    """Map read pairs with an FR-orientation insert-size constraint.

    Parameters
    ----------
    index:
        FM-index with a locate structure.
    min_insert / max_insert:
        Accepted insert-size range (outer distance, 5'-to-5').
    """

    def __init__(self, index: FMIndex, min_insert: int = 100, max_insert: int = 600):
        if min_insert < 0 or max_insert < min_insert:
            raise ValueError(
                f"invalid insert range [{min_insert}, {max_insert}]"
            )
        self.mapper = Mapper(index, locate=True)
        self.min_insert = int(min_insert)
        self.max_insert = int(max_insert)

    def _pairs_for(
        self,
        fwd_pos: np.ndarray,
        rc_pos: np.ndarray,
        fwd_len: int,
        rc_len: int,
        strand1: str,
        strand2: str,
    ) -> list[ProperPair]:
        """FR candidates: a forward mate upstream of a reverse mate.

        Insert size = (reverse mate end) - (forward mate start); the
        reverse-complemented mate's 5' end is at its rightmost base.
        """
        out: list[ProperPair] = []
        if fwd_pos.size == 0 or rc_pos.size == 0:
            return out
        rc_sorted = np.sort(rc_pos)
        for p1 in fwd_pos.tolist():
            lo = p1 + self.min_insert - rc_len
            hi = p1 + self.max_insert - rc_len
            left = int(np.searchsorted(rc_sorted, lo, side="left"))
            right = int(np.searchsorted(rc_sorted, hi, side="right"))
            for p2 in rc_sorted[left:right].tolist():
                insert = (p2 + rc_len) - p1
                if self.min_insert <= insert <= self.max_insert and p2 >= p1:
                    if strand1 == "+":
                        # mate1 is the forward read at p1, mate2 reverse at p2
                        out.append(ProperPair(p1, p2, "+", "-", insert))
                    else:
                        # mate2 is the forward read at p1, mate1 reverse at p2
                        out.append(ProperPair(p2, p1, "-", "+", insert))
        return out

    def map_pair(self, mate1: str, mate2: str, pair_id: int = 0) -> PairMapping:
        """Map one pair; proper placements sorted by uniqueness."""
        r1 = self.mapper.map_read(mate1, read_id=2 * pair_id)
        r2 = self.mapper.map_read(mate2, read_id=2 * pair_id + 1)
        proper: list[ProperPair] = []
        # FR case A: mate1 forward, mate2 reverse.
        proper += self._pairs_for(
            r1.forward.positions, r2.reverse.positions,
            len(mate1), len(mate2), "+", "-",
        )
        # FR case B: mate2 forward, mate1 reverse.
        proper += self._pairs_for(
            r2.forward.positions, r1.reverse.positions,
            len(mate2), len(mate1), "-", "+",
        )
        proper.sort(key=lambda p: (p.insert_size, p.pos1))
        return PairMapping(
            pair_id=pair_id,
            proper=tuple(proper),
            mate1_hits=r1.total_occurrences,
            mate2_hits=r2.total_occurrences,
        )

    def map_pairs(self, pairs: Sequence[tuple[str, str]]) -> list[PairMapping]:
        return [self.map_pair(m1, m2, i) for i, (m1, m2) in enumerate(pairs)]


def simulate_read_pairs(
    reference: str,
    n_pairs: int,
    read_length: int,
    insert_mean: int = 300,
    insert_std: int = 30,
    seed: int = 0,
) -> tuple[list[tuple[str, str]], list[tuple[int, int]]]:
    """FR read pairs from a reference, with ground-truth fragment spans.

    Returns ``(pairs, truth)`` where ``truth[i]`` is
    ``(fragment_start, insert_size)``.
    """
    from ..sequence.alphabet import reverse_complement

    if read_length < 1:
        raise ValueError("read_length must be >= 1")
    rng = np.random.default_rng(seed)
    pairs: list[tuple[str, str]] = []
    truth: list[tuple[int, int]] = []
    for _ in range(n_pairs):
        insert = max(
            2 * read_length, int(round(rng.normal(insert_mean, insert_std)))
        )
        insert = min(insert, len(reference))
        start = int(rng.integers(0, len(reference) - insert + 1))
        fragment = reference[start : start + insert]
        mate1 = fragment[:read_length]
        mate2 = reverse_complement(fragment[-read_length:])
        pairs.append((mate1, mate2))
        truth.append((start, insert))
    return pairs, truth

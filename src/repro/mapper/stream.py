"""Streaming mapping: constant-memory processing of large FASTQ inputs.

The paper's workloads run to 100 M reads; materializing such a read set
in memory is neither necessary nor wise.  This module maps an *iterator*
of reads in fixed-size batches — mirroring the hardware host loop, which
"iteratively fetches query sequences from the host's memory" — writing
results incrementally and keeping only aggregate statistics resident.

Works with any read source: a list, :func:`repro.io.fastq.parse_fastq`
over an open (possibly gzipped) file, or a generator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import IO, Callable, Iterable, Iterator

from ..core.counters import CounterScope
from ..index.fm_index import FMIndex
from ..telemetry import correlate, get_telemetry
from .mapper import Mapper
from .results import MappingResult


@dataclass
class StreamSummary:
    """Aggregate outcome of a streaming run."""

    n_reads: int = 0
    n_mapped: int = 0
    n_batches: int = 0
    wall_seconds: float = 0.0
    op_counts: dict[str, int] = field(default_factory=dict)

    @property
    def mapping_ratio(self) -> float:
        return self.n_mapped / self.n_reads if self.n_reads else 0.0

    @property
    def reads_per_second(self) -> float:
        # 0.0 on a zero-duration trial (empty stream, or a clock too
        # coarse to see it) — "no throughput measured", never inf/NaN,
        # so trajectory JSON and gate statistics stay finite.
        return self.n_reads / self.wall_seconds if self.wall_seconds > 0 else 0.0


def map_stream(
    index: FMIndex,
    reads: Iterable[str],
    batch_size: int = 2048,
    locate: bool = False,
    on_batch: Callable[[list[MappingResult]], None] | None = None,
) -> Iterator[list[MappingResult]]:
    """Yield mapping results batch by batch (generator; lazy).

    ``on_batch`` (if given) is additionally invoked per batch — handy for
    progress reporting or incremental writers.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    mapper = Mapper(index, locate=locate)
    tel = get_telemetry()
    batch: list[str] = []
    offset = 0
    batch_index = 0
    for read in reads:
        batch.append(read)
        if len(batch) == batch_size:
            results = _map_stream_batch(tel, mapper, batch, offset, batch_index)
            offset += len(batch)
            batch = []
            batch_index += 1
            if on_batch is not None:
                on_batch(results)
            yield results
    if batch:
        results = _map_stream_batch(tel, mapper, batch, offset, batch_index)
        if on_batch is not None:
            on_batch(results)
        yield results


def _map_stream_batch(tel, mapper: Mapper, batch: list[str], offset: int,
                      batch_index: int) -> list[MappingResult]:
    """One stream batch under its correlation id and span."""
    if not tel.enabled:
        return _map_offset(mapper, batch, offset)
    with correlate(batch=batch_index):
        with tel.span(
            "mapper.stream_batch", cat="mapper",
            batch_index=batch_index, n_reads=len(batch),
        ):
            results = _map_offset(mapper, batch, offset)
    tel.metrics.counter(
        "mapper_stream_batches_total", "Batches through the streaming mapper"
    ).inc()
    return results


def _map_offset(mapper: Mapper, batch: list[str], offset: int) -> list[MappingResult]:
    """Map a batch, renumbering read ids to the global stream offset."""
    results = mapper.map_reads(batch)
    if offset == 0:
        return results
    return [
        MappingResult(
            read_id=r.read_id + offset,
            read_name=f"read{r.read_id + offset}",
            length=r.length,
            forward=r.forward,
            reverse=r.reverse,
            reason=r.reason,
        )
        for r in results
    ]


def map_stream_coalesced(
    coalescer,
    reads: Iterable[str],
    chunk_size: int = 256,
    max_in_flight: int = 4,
    tenant: str = "stream",
    timeout: float | None = 120.0,
) -> Iterator[list[MappingResult]]:
    """Stream reads through a :class:`~repro.serving.coalescer.RequestCoalescer`
    in bounded chunks, yielding globally renumbered result batches.

    The bounded-memory ingest path: at most ``max_in_flight`` chunks are
    resident at once (submitted but not yet consumed), so a read set far
    larger than RAM flows through in ``chunk_size`` pieces while still
    sharing kernel batches with concurrent foreground requests.  Results
    come back in stream order with stream-global ``read_id``s — the same
    contract as :func:`map_stream`.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if max_in_flight < 1:
        raise ValueError("max_in_flight must be >= 1")
    tel = get_telemetry()
    pending: list = []  # (request_handle, global_offset) in stream order
    offset = 0
    chunk: list[str] = []

    def _drain_one():
        req, off = pending.pop(0)
        results = req.result(timeout=timeout)
        tel.metrics.counter(
            "mapper_stream_batches_total", "Batches through the streaming mapper"
        ).inc()
        if off == 0:
            return results
        return [
            MappingResult(
                read_id=r.read_id + off,
                read_name=f"read{r.read_id + off}",
                length=r.length,
                forward=r.forward,
                reverse=r.reverse,
                reason=r.reason,
            )
            for r in results
        ]

    try:
        for read in reads:
            chunk.append(read)
            if len(chunk) == chunk_size:
                pending.append((coalescer.submit(chunk, tenant=tenant), offset))
                offset += len(chunk)
                chunk = []
                if len(pending) >= max_in_flight:
                    yield _drain_one()
        if chunk:
            pending.append((coalescer.submit(chunk, tenant=tenant), offset))
        while pending:
            yield _drain_one()
    finally:
        # The consumer may abandon the generator mid-stream (early
        # ``close()``/GeneratorExit, or an error above): consume every
        # in-flight handle so submitted requests are not leaked into the
        # coalescer's pending set.
        while pending:
            req, _ = pending.pop(0)
            try:
                req.result(timeout=timeout)
            except Exception:
                pass


def map_fastq_to_tsv(
    index: FMIndex,
    reads: Iterable[str],
    out: IO[str],
    batch_size: int = 2048,
    locate: bool = True,
) -> StreamSummary:
    """Stream reads through the mapper, writing the hits TSV as it goes.

    Returns the aggregate :class:`StreamSummary`; peak memory is one
    batch of results regardless of input size.
    """
    summary = StreamSummary()
    counters = index.counters
    out.write("read\tlength\tfwd_count\trc_count\tfwd_positions\trc_positions\n")
    t0 = time.perf_counter()
    with CounterScope(counters) as scope:
        for results in map_stream(index, reads, batch_size=batch_size, locate=locate):
            summary.n_batches += 1
            summary.n_reads += len(results)
            summary.n_mapped += sum(1 for r in results if r.mapped)
            _write_rows(results, out)
    summary.wall_seconds = time.perf_counter() - t0
    summary.op_counts = scope.delta
    return summary


def _write_rows(results: list[MappingResult], out: IO[str]) -> None:
    for r in results:
        fpos = (
            ",".join(map(str, r.forward.positions.tolist()))
            if r.forward.positions is not None and r.forward.positions.size
            else "."
        )
        rpos = (
            ",".join(map(str, r.reverse.positions.tolist()))
            if r.reverse.positions is not None and r.reverse.positions.size
            else "."
        )
        out.write(
            f"{r.read_name}\t{r.length}\t{r.forward.count}\t{r.reverse.count}"
            f"\t{fpos}\t{rpos}\n"
        )

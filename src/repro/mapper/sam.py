"""Full SAM output: single- and multi-reference, single- and paired-end.

The TSV hits table is BWaveR's native download; interoperating with the
wider toolchain (samtools, IGV) needs SAM.  This writer covers the
subset exact mapping produces:

* header: ``@HD``, one ``@SQ`` per reference sequence, ``@PG``;
* single-end records with flags 0/16/4, full-length ``M`` CIGAR,
  ``NH``-style hit counts in the ``NH:i`` tag;
* paired-end records with the paired flag set (0x1), proper-pair (0x2),
  mate strand/unmapped bits, ``RNEXT``/``PNEXT``/``TLEN`` filled from
  the chosen proper pair.

Flags used (SAM spec bit names): 0x1 PAIRED, 0x2 PROPER_PAIR, 0x4
UNMAPPED, 0x8 MATE_UNMAPPED, 0x10 REVERSE, 0x20 MATE_REVERSE, 0x40
FIRST_IN_PAIR, 0x80 SECOND_IN_PAIR.
"""

from __future__ import annotations

from typing import IO, Sequence

from ..index.multiref import MultiReferenceIndex
from .paired import PairMapping
from .results import MappingResult

FLAG_PAIRED = 0x1
FLAG_PROPER = 0x2
FLAG_UNMAPPED = 0x4
FLAG_MATE_UNMAPPED = 0x8
FLAG_REVERSE = 0x10
FLAG_MATE_REVERSE = 0x20
FLAG_FIRST = 0x40
FLAG_SECOND = 0x80


def sam_header(reference_name: str, reference_length: int) -> list[str]:
    return [
        "@HD\tVN:1.6\tSO:unknown",
        f"@SQ\tSN:{reference_name}\tLN:{reference_length}",
        "@PG\tID:bwaver-repro\tPN:bwaver-repro",
    ]


def single_end_records(
    results: Sequence[MappingResult],
    reads: Sequence[str],
    reference_name: str,
) -> list[str]:
    """One line per occurrence; flag-4 line for unmapped reads."""
    lines: list[str] = []
    for res in results:
        seq = reads[res.read_id]
        total_hits = res.total_occurrences
        emitted = False
        for hit, flag in ((res.forward, 0), (res.reverse, FLAG_REVERSE)):
            if hit.positions is None:
                continue
            for pos in hit.positions.tolist():
                lines.append(
                    "\t".join(
                        [
                            res.read_name,
                            str(flag),
                            reference_name,
                            str(pos + 1),
                            "255",
                            f"{res.length}M",
                            "*",
                            "0",
                            "0",
                            seq,
                            "*",
                            f"NH:i:{total_hits}",
                        ]
                    )
                )
                emitted = True
        if not emitted:
            lines.append(
                f"{res.read_name}\t{FLAG_UNMAPPED}\t*\t0\t0\t*\t*\t0\t0\t{seq}\t*"
            )
    return lines


def paired_end_records(
    pair: PairMapping,
    mate1: str,
    mate2: str,
    reference_name: str,
    name: str | None = None,
) -> list[str]:
    """Two lines for one read pair (best proper placement, or unmapped)."""
    qname = name if name is not None else f"pair{pair.pair_id}"
    best = pair.best
    if best is None:
        base = FLAG_PAIRED | FLAG_UNMAPPED | FLAG_MATE_UNMAPPED
        return [
            f"{qname}\t{base | FLAG_FIRST}\t*\t0\t0\t*\t*\t0\t0\t{mate1}\t*",
            f"{qname}\t{base | FLAG_SECOND}\t*\t0\t0\t*\t*\t0\t0\t{mate2}\t*",
        ]
    # Positions/strands per mate from the proper pair.
    m1_rev = best.strand1 == "-"
    m2_rev = best.strand2 == "-"
    flag1 = FLAG_PAIRED | FLAG_PROPER | FLAG_FIRST
    flag2 = FLAG_PAIRED | FLAG_PROPER | FLAG_SECOND
    if m1_rev:
        flag1 |= FLAG_REVERSE
        flag2 |= FLAG_MATE_REVERSE
    if m2_rev:
        flag2 |= FLAG_REVERSE
        flag1 |= FLAG_MATE_REVERSE
    tlen = best.insert_size
    lines = [
        "\t".join(
            [
                qname,
                str(flag1),
                reference_name,
                str(best.pos1 + 1),
                "255",
                f"{len(mate1)}M",
                "=",
                str(best.pos2 + 1),
                str(tlen),
                mate1,
                "*",
            ]
        ),
        "\t".join(
            [
                qname,
                str(flag2),
                reference_name,
                str(best.pos2 + 1),
                "255",
                f"{len(mate2)}M",
                "=",
                str(best.pos1 + 1),
                str(-tlen),
                mate2,
                "*",
            ]
        ),
    ]
    return lines


def write_sam_single(
    results: Sequence[MappingResult],
    reads: Sequence[str],
    out: IO[str],
    reference_name: str = "ref",
    reference_length: int = 0,
) -> int:
    """Header + single-end records; returns alignment-line count."""
    for line in sam_header(reference_name, reference_length):
        out.write(line + "\n")
    records = single_end_records(results, reads, reference_name)
    for line in records:
        out.write(line + "\n")
    return len(records)


def write_sam_multiref(
    index: MultiReferenceIndex,
    reads: Sequence[str],
    out: IO[str],
    read_names: Sequence[str] | None = None,
) -> int:
    """Map reads against a multi-reference index and emit full SAM.

    Every valid hit becomes a record with the correct per-sequence
    ``RNAME``/``POS``; unmapped reads get flag-4 lines.
    """
    for line in index.sam_header():
        out.write(line + "\n")
    out.write("@PG\tID:bwaver-repro\tPN:bwaver-repro\n")
    n = 0
    for i, read in enumerate(reads):
        qname = read_names[i] if read_names is not None else f"read{i}"
        mapping = index.map_read(read, read_id=i)
        if not mapping.mapped:
            out.write(f"{qname}\t{FLAG_UNMAPPED}\t*\t0\t0\t*\t*\t0\t0\t{read}\t*\n")
            n += 1
            continue
        nh = len(mapping.hits)
        for hit in mapping.hits:
            flag = FLAG_REVERSE if hit.strand == "-" else 0
            out.write(
                "\t".join(
                    [
                        qname,
                        str(flag),
                        hit.name,
                        str(hit.position + 1),
                        "255",
                        f"{len(read)}M",
                        "*",
                        "0",
                        "0",
                        read,
                        "*",
                        f"NH:i:{nh}",
                    ]
                )
                + "\n"
            )
            n += 1
    return n

"""Batched mapping runs with timing and operation accounting.

The evaluation harness needs, for every configuration, three things per
run: wall-clock time, the operation counts accrued (to feed the analytic
cost models), and the mapping outcomes.  :func:`run_mapping_batch`
packages those.  :func:`run_mapping_multiprocess` additionally shards a
read set over worker processes — the honest (GIL-free) way to *measure*
multi-core scaling in Python, complementing the calibrated thread model
in :mod:`repro.baseline.threading_model` that the Table I/II harness uses
for paper-scale thread counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.counters import CounterScope, OpCounters
from ..index.fm_index import FMIndex
from ..telemetry import get_telemetry
from .mapper import Mapper
from .results import MappingResult, mapping_ratio


@dataclass
class BatchRunReport:
    """Everything one measured mapping run produced."""

    n_reads: int
    read_length: int
    wall_seconds: float
    mapping_ratio: float
    op_counts: dict[str, int] = field(default_factory=dict)
    results: list[MappingResult] = field(default_factory=list)

    @property
    def reads_per_second(self) -> float:
        return self.n_reads / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def total_bs_steps(self) -> int:
        return self.op_counts.get("bs_steps", 0)


def run_mapping_batch(
    index: FMIndex,
    reads: Sequence[str],
    locate: bool = False,
    batch: bool = True,
    keep_results: bool = True,
) -> BatchRunReport:
    """Map ``reads`` (both strands), timing the mapping step only.

    ``locate=False`` measures exactly what the paper's FPGA kernel does
    (interval computation; position resolution is a separate host step).
    """
    mapper = Mapper(index, locate=locate)
    counters = index.counters
    tel = get_telemetry()
    with tel.span("mapper.batch_run", cat="mapper", n_reads=len(reads)):
        with CounterScope(counters) as scope:
            t0 = time.perf_counter()
            results = mapper.map_reads(reads, batch=batch)
            wall = time.perf_counter() - t0
    if tel.enabled:
        m = tel.metrics
        m.counter("mapper_batch_runs_total", "Measured batch mapping runs").inc()
        m.histogram(
            "mapper_batch_seconds", "Wall seconds per measured batch run"
        ).observe(wall)
    return BatchRunReport(
        n_reads=len(reads),
        read_length=len(reads[0]) if reads else 0,
        wall_seconds=wall,
        mapping_ratio=mapping_ratio(results),
        op_counts=scope.delta,
        results=results if keep_results else [],
    )


# --------------------------------------------------------------------------
# Multiprocess sharding (measured multi-core scaling).
# --------------------------------------------------------------------------

_WORKER_INDEX: FMIndex | None = None


def _init_worker(index: FMIndex) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index


def _map_shard(reads: list[str]) -> tuple[int, dict[str, int]]:
    assert _WORKER_INDEX is not None
    counters = OpCounters()
    shard_index = FMIndex(
        _WORKER_INDEX.backend,
        locate_structure=_WORKER_INDEX.locate_structure,
        counters=counters,
    )
    mapper = Mapper(shard_index, locate=False)
    results = mapper.map_reads(reads)
    mapped = sum(1 for r in results if r.mapped)
    return mapped, counters.snapshot()


def run_mapping_multiprocess(
    index: FMIndex,
    reads: Sequence[str],
    workers: int = 2,
) -> BatchRunReport:
    """Shard ``reads`` across ``workers`` processes and time the whole map.

    Counter snapshots are merged from the workers; per-read results are
    not shipped back (only aggregate mapping ratio), keeping IPC cost out
    of the measurement.
    """
    import multiprocessing as mp

    if workers < 1:
        raise ValueError("workers must be >= 1")
    reads = list(reads)
    if workers == 1 or len(reads) < workers:
        return run_mapping_batch(index, reads, keep_results=False)
    shards = [list(reads[i::workers]) for i in range(workers)]
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    t0 = time.perf_counter()
    with ctx.Pool(workers, initializer=_init_worker, initargs=(index,)) as pool:
        outcomes = pool.map(_map_shard, shards)
    wall = time.perf_counter() - t0
    merged = OpCounters()
    mapped = 0
    for shard_mapped, snap in outcomes:
        mapped += shard_mapped
        delta = OpCounters(**snap)
        merged.merge(delta)
    return BatchRunReport(
        n_reads=len(reads),
        read_length=len(reads[0]) if reads else 0,
        wall_seconds=wall,
        mapping_ratio=mapped / len(reads) if reads else 0.0,
        op_counts=merged.snapshot(),
        results=[],
    )

"""Batched mapping runs with timing and operation accounting.

The evaluation harness needs, for every configuration, three things per
run: wall-clock time, the operation counts accrued (to feed the analytic
cost models), and the mapping outcomes.  :func:`run_mapping_batch`
packages those.  :func:`run_mapping_multiprocess` additionally shards a
read set over worker processes — the honest (GIL-free) way to *measure*
multi-core scaling in Python, complementing the calibrated thread model
in :mod:`repro.baseline.threading_model` that the Table I/II harness uses
for paper-scale thread counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.counters import CounterScope
from ..index.fm_index import FMIndex
from ..telemetry import get_telemetry
from .mapper import Mapper
from .results import MappingResult, mapping_ratio


@dataclass
class BatchRunReport:
    """Everything one measured mapping run produced."""

    n_reads: int
    read_length: int
    wall_seconds: float
    mapping_ratio: float
    op_counts: dict[str, int] = field(default_factory=dict)
    results: list[MappingResult] = field(default_factory=list)

    @property
    def reads_per_second(self) -> float:
        # 0.0 (not inf) on zero wall time: these reports are serialized to
        # JSON bench/result docs, and Infinity is not valid JSON.
        return self.n_reads / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def total_bs_steps(self) -> int:
        return self.op_counts.get("bs_steps", 0)


def run_mapping_batch(
    index: FMIndex,
    reads: Sequence[str],
    locate: bool = False,
    batch: bool = True,
    keep_results: bool = True,
) -> BatchRunReport:
    """Map ``reads`` (both strands), timing the mapping step only.

    ``locate=False`` measures exactly what the paper's FPGA kernel does
    (interval computation; position resolution is a separate host step).
    """
    mapper = Mapper(index, locate=locate)
    counters = index.counters
    tel = get_telemetry()
    with tel.span("mapper.batch_run", cat="mapper", n_reads=len(reads)):
        with CounterScope(counters) as scope:
            t0 = time.perf_counter()
            results = mapper.map_reads(reads, batch=batch)
            wall = time.perf_counter() - t0
    if tel.enabled:
        m = tel.metrics
        m.counter("mapper_batch_runs_total", "Measured batch mapping runs").inc()
        m.histogram(
            "mapper_batch_seconds", "Wall seconds per measured batch run"
        ).observe(wall)
    return BatchRunReport(
        n_reads=len(reads),
        read_length=len(reads[0]) if reads else 0,
        wall_seconds=wall,
        mapping_ratio=mapping_ratio(results),
        op_counts=scope.delta,
        results=results if keep_results else [],
    )


# --------------------------------------------------------------------------
# Multiprocess sharding (measured multi-core scaling).
# --------------------------------------------------------------------------


def run_mapping_multiprocess(
    index: FMIndex,
    reads: Sequence[str],
    workers: int = 2,
    start_method: str | None = None,
    mode: str = "auto",
) -> BatchRunReport:
    """Shard ``reads`` across ``workers`` processes and time the whole map.

    The workers come from a :class:`~repro.serving.pool.MapperPool`: the
    index is published once (shared memory, or a memory-mapped flat file)
    and each worker attaches to the same physical copy — no per-worker
    pickle of the structure, and resident memory stays ~one index total
    regardless of ``workers``.  Counter snapshots are merged from the
    workers; per-read results are not shipped back (only aggregate
    mapping ratio), keeping IPC cost out of the measurement.

    ``start_method``/``mode`` are forwarded to the pool (defaults: fork
    when available; shared memory with mmap fallback).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    reads = list(reads)
    if workers == 1 or len(reads) < workers:
        return run_mapping_batch(index, reads, keep_results=False)
    from ..serving.pool import MapperPool

    with MapperPool(
        index, workers=workers, start_method=start_method, mode=mode
    ) as pool:
        outcome = pool.run_batch(reads, locate=False)
    return BatchRunReport(
        n_reads=outcome.n_reads,
        read_length=len(reads[0]) if reads else 0,
        wall_seconds=outcome.wall_seconds,
        mapping_ratio=outcome.mapping_ratio,
        op_counts=outcome.op_counts,
        results=[],
    )

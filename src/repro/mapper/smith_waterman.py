"""Smith-Waterman local alignment (the extend stage of seed-and-extend).

The paper's introduction motivates exact short-fragment mapping as the
*seeding* stage of seed-and-extend aligners, and its related work (Arram
et al. [14]) pairs an FM-index seeder with a Smith-Waterman extender.
This module supplies that extender so the repository can demonstrate the
full pipeline the paper positions itself inside
(:mod:`repro.mapper.seed_extend`, ``examples/seed_and_extend.py``).

The DP is vectorized row-wise with numpy: each row of the score matrix is
computed from the previous row with elementwise maxima; the data
dependency along the row (gap-in-query chain) is resolved with a running
maximum of ``H[j] - gap*j`` — exact for linear gap penalties, keeping the
whole kernel free of per-cell Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequence.alphabet import encode


@dataclass(frozen=True)
class ScoringScheme:
    """Linear-gap local alignment scores (defaults: +2 / -3 / -5)."""

    match: int = 2
    mismatch: int = -3
    gap: int = -5

    def __post_init__(self):
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch >= 0 or self.gap >= 0:
            raise ValueError("mismatch and gap penalties must be negative")


@dataclass(frozen=True)
class Alignment:
    """A local alignment of ``query`` against ``target``."""

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    cigar: str

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def target_span(self) -> int:
        return self.target_end - self.target_start


def sw_score_matrix(query, target, scoring: ScoringScheme = ScoringScheme()) -> np.ndarray:
    """Full Smith-Waterman H matrix, shape ``(len(q)+1, len(t)+1)``.

    Row-vectorized: only the outer loop over query symbols is Python.
    """
    q = encode(query) if isinstance(query, str) else np.asarray(query, dtype=np.uint8)
    t = encode(target) if isinstance(target, str) else np.asarray(target, dtype=np.uint8)
    m, n = q.size, t.size
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    gap = scoring.gap
    for i in range(1, m + 1):
        sub = np.where(t == q[i - 1], scoring.match, scoring.mismatch)
        diag = H[i - 1, :-1] + sub
        up = H[i - 1, 1:] + gap
        row = np.maximum(np.maximum(diag, up), 0)
        # Resolve the left-dependency chain: H[i,j] may extend H[i,j'] (j'<j)
        # with (j - j') gaps.  With linear gaps this is
        # max_j' (row_pre[j'] - gap*(j - j')) = running_max(row_pre - g*j') + g*j,
        # computed with one cumulative maximum.
        j_idx = np.arange(1, n + 1, dtype=np.int64)
        shifted = row - gap * j_idx  # candidates as left-extension sources
        run = np.maximum.accumulate(shifted)
        left_ext = np.concatenate(([np.iinfo(np.int64).min // 2], run[:-1])) + gap * j_idx
        H[i, 1:] = np.maximum(row, np.maximum(left_ext, 0))
    return H


def smith_waterman(query, target, scoring: ScoringScheme = ScoringScheme()) -> Alignment:
    """Best local alignment with traceback.

    Scores come from the vectorized matrix; the traceback re-derives
    moves cell by cell (O(alignment length), negligible next to the DP).
    """
    q = encode(query) if isinstance(query, str) else np.asarray(query, dtype=np.uint8)
    t = encode(target) if isinstance(target, str) else np.asarray(target, dtype=np.uint8)
    H = sw_score_matrix(q, t, scoring)
    i, j = np.unravel_index(int(np.argmax(H)), H.shape)
    score = int(H[i, j])
    if score == 0:
        return Alignment(0, 0, 0, 0, 0, "")
    ops: list[str] = []
    while i > 0 and j > 0 and H[i, j] > 0:
        sub = scoring.match if q[i - 1] == t[j - 1] else scoring.mismatch
        if H[i, j] == H[i - 1, j - 1] + sub:
            ops.append("M")
            i -= 1
            j -= 1
        elif H[i, j] == H[i - 1, j] + scoring.gap:
            ops.append("I")  # consumes query
            i -= 1
        elif H[i, j] == H[i, j - 1] + scoring.gap:
            ops.append("D")  # consumes target
            j -= 1
        else:  # pragma: no cover - DP invariant
            raise AssertionError("traceback found no consistent predecessor")
    ops.reverse()
    return Alignment(
        score=score,
        query_start=int(i),
        query_end=int(i) + sum(1 for o in ops if o in "MI"),
        target_start=int(j),
        target_end=int(j) + sum(1 for o in ops if o in "MD"),
        cigar=_compress_cigar(ops),
    )


def _compress_cigar(ops: list[str]) -> str:
    """Run-length encode a move list: ``MMMID`` → ``3M1I1D``."""
    if not ops:
        return ""
    out: list[str] = []
    run_ch, run_len = ops[0], 1
    for ch in ops[1:]:
        if ch == run_ch:
            run_len += 1
        else:
            out.append(f"{run_len}{run_ch}")
            run_ch, run_len = ch, 1
    out.append(f"{run_len}{run_ch}")
    return "".join(out)


def sw_score_only(query, target, scoring: ScoringScheme = ScoringScheme()) -> int:
    """Best local score without traceback (cheaper inner loop for filters)."""
    return int(sw_score_matrix(query, target, scoring).max())

"""Seed-and-extend alignment on top of the FM-index seeder.

This is the pipeline the paper's introduction motivates: "most of the
existing aligners ... rely on a seed-and-extend strategy where the
mapping of short DNA fragments is used to determine candidate loci in the
genome (seeds) to be extended by the actual alignment algorithm."

Stages:

1. **Seeding** — non-overlapping ``seed_length``-mers of the read (both
   strands) are exact-matched through the FM-index; their located
   positions, shifted by the seed's offset in the read, vote for
   candidate loci.
2. **Candidate filtering** — loci are merged within a small slack and
   ranked by vote count; at most ``max_candidates`` survive (the
   sensitivity/speed heuristic the paper describes as "minimal loss in
   sensitivity").
3. **Extension** — each candidate window is aligned with Smith-Waterman
   (:mod:`repro.mapper.smith_waterman`) and the best-scoring alignment is
   reported.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


from ..index.fm_index import FMIndex
from ..sequence.alphabet import reverse_complement
from .smith_waterman import Alignment, ScoringScheme, smith_waterman


@dataclass(frozen=True)
class SeedExtendHit:
    """Best alignment of a read, with its provenance."""

    read_id: int
    strand: str
    locus: int
    alignment: Alignment
    seed_votes: int


@dataclass(frozen=True)
class SeedExtendConfig:
    """Tunables of the pipeline (defaults sized for 100 bp reads)."""

    seed_length: int = 20
    max_seed_hits: int = 64
    max_candidates: int = 8
    locus_slack: int = 8
    window_pad: int = 16
    scoring: ScoringScheme = ScoringScheme()

    def __post_init__(self):
        if self.seed_length < 4:
            raise ValueError("seed_length must be >= 4")
        if self.max_candidates < 1 or self.max_seed_hits < 1:
            raise ValueError("candidate limits must be >= 1")


class SeedExtendAligner:
    """Approximate aligner: FM-index seeds + Smith-Waterman extension.

    Parameters
    ----------
    index:
        FM-index over the reference, built with a locate structure.
    reference:
        The reference sequence string (needed to slice extension windows;
        the succinct index alone cannot serve substrings efficiently).
    config:
        Pipeline tunables.
    """

    def __init__(self, index: FMIndex, reference: str, config: SeedExtendConfig | None = None):
        if index.locate_structure is None:
            raise ValueError("seed-and-extend requires an index with locate support")
        self.index = index
        self.reference = reference
        self.config = config if config is not None else SeedExtendConfig()

    def _seed_loci(self, seq: str) -> Counter:
        """Candidate loci voted by the read's non-overlapping seeds."""
        cfg = self.config
        votes: Counter = Counter()
        for off in range(0, max(1, len(seq) - cfg.seed_length + 1), cfg.seed_length):
            seed = seq[off : off + cfg.seed_length]
            if len(seed) < cfg.seed_length:
                break
            res = self.index.search(seed)
            if not res.found or res.count > cfg.max_seed_hits:
                # Over-repetitive seeds are discarded, as real seeders do.
                continue
            positions = self.index.locate_structure.locate_range(
                res.start, res.end, lf=self.index.backend.lf
            )
            for p in positions.tolist():
                votes[int(p) - off] += 1
        return votes

    def _merge_loci(self, votes: Counter) -> list[tuple[int, int]]:
        """Merge nearby loci and return ``(locus, votes)`` best-first."""
        if not votes:
            return []
        slack = self.config.locus_slack
        merged: list[tuple[int, int]] = []
        for locus in sorted(votes):
            if merged and locus - merged[-1][0] <= slack:
                prev_locus, prev_votes = merged[-1]
                # Keep the stronger representative of the cluster.
                if votes[locus] > prev_votes:
                    merged[-1] = (locus, prev_votes + votes[locus])
                else:
                    merged[-1] = (prev_locus, prev_votes + votes[locus])
            else:
                merged.append((locus, votes[locus]))
        merged.sort(key=lambda lv: -lv[1])
        return merged[: self.config.max_candidates]

    def align_read(self, read: str, read_id: int = 0) -> SeedExtendHit | None:
        """Best local alignment of ``read`` on either strand, or ``None``."""
        cfg = self.config
        best: SeedExtendHit | None = None
        for strand, seq in (("+", read), ("-", reverse_complement(read))):
            for locus, n_votes in self._merge_loci(self._seed_loci(seq)):
                lo = max(0, locus - cfg.window_pad)
                hi = min(len(self.reference), locus + len(seq) + cfg.window_pad)
                window = self.reference[lo:hi]
                aln = smith_waterman(seq, window, cfg.scoring)
                if aln.score <= 0:
                    continue
                shifted = Alignment(
                    score=aln.score,
                    query_start=aln.query_start,
                    query_end=aln.query_end,
                    target_start=aln.target_start + lo,
                    target_end=aln.target_end + lo,
                    cigar=aln.cigar,
                )
                cand = SeedExtendHit(read_id, strand, locus, shifted, n_votes)
                if best is None or cand.alignment.score > best.alignment.score:
                    best = cand
        return best

    def align_reads(self, reads) -> list[SeedExtendHit | None]:
        return [self.align_read(r, i) for i, r in enumerate(reads)]

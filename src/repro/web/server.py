"""WSGI application for the BWaveR web workflow.

The paper exposes the mapper "through an intuitive web application"
backed by "a Python web-server, built with Flask".  Flask is unavailable
offline, so this is a dependency-free WSGI app with the same surface:

* ``GET /`` — upload form (reference FASTA + reads FASTQ + b/sf/device);
* ``POST /jobs`` — submit a job; accepts ``application/json`` (fields
  ``reference_fasta``, ``reads_fastq``, ``b``, ``sf``, ``device``;
  file contents optionally gzip+base64 with ``*_gzip_b64`` keys — the
  paper accepts gzipped uploads) or ``multipart/form-data`` from the
  HTML form;
* ``GET /jobs`` — JSON list of jobs;
* ``GET /jobs/<id>`` — JSON status with the three-step timing breakdown;
* ``GET /jobs/<id>/results`` — the hits TSV download;
* ``POST /map`` — map reads against the server's preloaded index (the
  coalesced fast path: concurrent requests share merged kernel batches;
  requires a :class:`~repro.serving.coalescer.MappingService`);
* ``GET /health`` — liveness probe;
* ``GET /healthz`` — readiness: device health, queue depth, job counts;
* ``GET /metrics`` — Prometheus text exposition of the telemetry registry.

Tests drive the app directly through the WSGI callable; ``serve()``
wraps it in :mod:`wsgiref.simple_server` for interactive use
(``examples/webapp_demo.py``).
"""

from __future__ import annotations

import base64
import gzip
import json
import re
from typing import Callable, Iterable

from ..faults import FaultPlan, RetryPolicy
from ..serving.coalescer import CoalescerClosed, CoalescerFull
from ..serving.executor import BacklogFull
from ..telemetry import Telemetry, set_telemetry
from .jobs import JobManager, JobPolicy

#: Default request-body cap: enough for a gzip+base64 chromosome-scale
#: upload, small enough that one request cannot exhaust host memory.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

_FORM_HTML = """<!doctype html>
<html><head><title>BWaveR — hybrid DNA sequence mapper</title></head>
<body>
<h1>BWaveR (reproduction)</h1>
<p>Upload a reference (FASTA) and reads (FASTQ), pick the RRR parameters
and the execution device, and download the mapped positions.</p>
<form method="post" action="/jobs" enctype="multipart/form-data">
  <p>Reference FASTA: <input type="file" name="reference_fasta"></p>
  <p>Reads FASTQ: <input type="file" name="reads_fastq"></p>
  <p>Block size b: <input type="number" name="b" value="15" min="1" max="24"></p>
  <p>Superblock factor sf: <input type="number" name="sf" value="50" min="1"></p>
  <p>Device:
    <select name="device">
      <option value="fpga">FPGA (simulated Alveo U200)</option>
      <option value="cpu">CPU</option>
    </select></p>
  <p><input type="submit" value="Map"></p>
</form>
</body></html>
"""


class WebAppError(ValueError):
    """Client errors mapped to HTTP 400."""


def _maybe_gunzip_b64(payload: dict, key: str) -> str | None:
    """Fetch ``key`` from the JSON body, or ``key + '_gzip_b64'`` decoded."""
    if key in payload:
        value = payload[key]
        if not isinstance(value, str):
            raise WebAppError(f"field {key!r} must be a string")
        return value
    gz_key = f"{key}_gzip_b64"
    if gz_key in payload:
        try:
            return gzip.decompress(base64.b64decode(payload[gz_key])).decode("utf-8")
        except Exception as exc:
            raise WebAppError(f"field {gz_key!r} is not valid gzip+base64: {exc}") from exc
    return None


def parse_multipart(body: bytes, content_type: str) -> dict[str, str]:
    """Minimal multipart/form-data parser (text fields and file parts)."""
    m = re.search(r'boundary="?([^";]+)"?', content_type)
    if not m:
        raise WebAppError("multipart body without boundary")
    boundary = m.group(1).encode()
    fields: dict[str, str] = {}
    for part in body.split(b"--" + boundary):
        part = part.strip()
        if not part or part == b"--":
            continue
        if b"\r\n\r\n" in part:
            head, _, content = part.partition(b"\r\n\r\n")
        elif b"\n\n" in part:
            head, _, content = part.partition(b"\n\n")
        else:
            continue
        name_m = re.search(rb'name="([^"]+)"', head)
        if not name_m:
            continue
        name = name_m.group(1).decode()
        data = content.rstrip(b"\r\n")
        if data[:2] == b"\x1f\x8b":  # gzipped file part
            data = gzip.decompress(data)
        fields[name] = data.decode("utf-8", errors="replace")
    return fields


def _normalize_route(path: str) -> str:
    """Collapse path parameters so the request counter stays low-cardinality
    (``/jobs/3/results`` → ``/jobs/{id}/results``)."""
    return re.sub(r"/jobs/\d+", "/jobs/{id}", path)


class BWaveRApp:
    """The WSGI callable.

    ``fault_plan`` / ``job_policy`` / ``retry_policy`` configure the
    fault-tolerance behaviour of every job (a JSON submission may
    override the plan per job via a ``fault_plan`` object field);
    ``max_body_bytes`` caps uploads — oversized requests get HTTP 413
    without the body ever being read.

    ``telemetry`` is the :class:`~repro.telemetry.Telemetry` instance the
    app serves on ``/metrics``.  The default creates an enabled instance
    and installs it process-wide (:func:`~repro.telemetry.set_telemetry`)
    so the pipeline layers record into the same registry the endpoint
    exposes; pass an explicit instance (e.g. a disabled one) to opt out.
    """

    def __init__(
        self,
        background_jobs: bool = False,
        fault_plan: FaultPlan | None = None,
        job_policy: JobPolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        telemetry: Telemetry | None = None,
        job_workers: int = 2,
        job_backlog: int = 8,
        mapping_service=None,
        router_service=None,
    ):
        if telemetry is None:
            telemetry = Telemetry(enabled=True)
            set_telemetry(telemetry)
        self.telemetry = telemetry
        self.jobs = JobManager(
            fault_plan=fault_plan,
            policy=job_policy,
            retry_policy=retry_policy,
            job_workers=job_workers,
            job_backlog=job_backlog,
            mapping_service=mapping_service,
        )
        #: Sharded multi-genome tier (``POST /map?catalog=...``): a
        #: :class:`~repro.serving.router.RouterMappingService` or None.
        self.router_service = router_service
        self.background_jobs = background_jobs
        self.max_body_bytes = int(max_body_bytes)

    @property
    def mapping_service(self):
        return self.jobs.mapping_service

    # -- WSGI entry ---------------------------------------------------------

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        try:
            status, headers, body = self._route(environ)
        except WebAppError as exc:
            status, headers, body = self._json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500
            status, headers, body = self._json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        self._count_request(environ, status)
        start_response(status, headers)
        return [body]

    def _count_request(self, environ: dict, status: str) -> None:
        tel = self.telemetry
        if not tel.enabled:
            return
        method = environ.get("REQUEST_METHOD", "GET")
        route = _normalize_route(environ.get("PATH_INFO", "/"))
        tel.metrics.counter(
            "http_requests_total",
            "HTTP requests served, by method/route/status",
            labelnames=("method", "route", "status"),
        ).inc(method=method, route=route, status=status.split(" ", 1)[0])

    # -- routing ----------------------------------------------------------------

    def _route(self, environ: dict) -> tuple[str, list, bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        if method == "GET" and path == "/":
            return "200 OK", [("Content-Type", "text/html; charset=utf-8")], _FORM_HTML.encode()
        if method == "GET" and path == "/health":
            return self._json(200, {"status": "ok"})
        if method == "GET" and path == "/healthz":
            return self._healthz()
        if method == "GET" and path == "/metrics":
            return (
                "200 OK",
                [("Content-Type", "text/plain; version=0.0.4; charset=utf-8")],
                self.telemetry.metrics.prometheus_text().encode(),
            )
        if method == "POST" and path == "/jobs":
            return self._submit(environ)
        if method == "POST" and path == "/map":
            return self._map(environ)
        if method == "GET" and path == "/jobs":
            return self._json(200, {"jobs": [j.summary() for j in self.jobs.all_jobs()]})
        m = re.fullmatch(r"/jobs/(\d+)", path)
        if method == "GET" and m:
            job = self.jobs.get(int(m.group(1)))
            if job is None:
                return self._json(404, {"error": f"no job {m.group(1)}"})
            return self._json(200, job.summary())
        m = re.fullmatch(r"/jobs/(\d+)/results", path)
        if method == "GET" and m:
            job = self.jobs.get(int(m.group(1)))
            if job is None:
                return self._json(404, {"error": f"no job {m.group(1)}"})
            # Degraded jobs carry complete, correct results (CPU fallback).
            if job.status.value not in ("done", "degraded"):
                return self._json(409, {"error": f"job is {job.status.value}"})
            return (
                "200 OK",
                [
                    ("Content-Type", "text/tab-separated-values; charset=utf-8"),
                    (
                        "Content-Disposition",
                        f'attachment; filename="bwaver_job{job.job_id}_hits.tsv"',
                    ),
                ],
                job.results_tsv.encode(),
            )
        m = re.fullmatch(r"/jobs/(\d+)/sam", path)
        if method == "GET" and m:
            job = self.jobs.get(int(m.group(1)))
            if job is None:
                return self._json(404, {"error": f"no job {m.group(1)}"})
            if job.status.value not in ("done", "degraded"):
                return self._json(409, {"error": f"job is {job.status.value}"})
            return (
                "200 OK",
                [
                    ("Content-Type", "text/x-sam; charset=utf-8"),
                    (
                        "Content-Disposition",
                        f'attachment; filename="bwaver_job{job.job_id}.sam"',
                    ),
                ],
                job.results_sam.encode(),
            )
        return self._json(404, {"error": f"no route for {method} {path}"})

    # -- handlers ------------------------------------------------------------------

    def _healthz(self) -> tuple[str, list, bytes]:
        """Readiness document: job queue state + last device health."""
        counts = self.jobs.counts_by_status()
        device = self.jobs.last_device_health
        degraded = device is not None and device.get("state") == "failed"
        service = self.mapping_service
        return self._json(
            200,
            {
                "status": "degraded" if degraded else "ok",
                "telemetry_enabled": self.telemetry.enabled,
                "queue_depth": self.jobs.queue_depth(),
                "jobs": counts,
                "concurrency": self.jobs.concurrency(),
                "device": device,
                # Coalescer state: queue depth, batch/wait aggregates,
                # fallback count — None when no index is being served.
                "coalescer": service.stats() if service is not None else None,
                # Shard catalog state: per-shard lifecycle, worker
                # liveness, queue depth, degraded flags, LRU counters —
                # None when no catalog is being served.
                "shards": (
                    self.router_service.stats()
                    if self.router_service is not None
                    else None
                ),
            },
        )

    def _map(self, environ: dict) -> tuple[str, list, bytes]:
        """Map reads against the served index through the coalescer.

        JSON body: ``reads`` (list of sequences) or ``reads_fastq``
        (FASTQ text, optionally ``reads_fastq_gzip_b64``), optional
        ``tenant`` and ``format`` (``"json"`` default, or ``"tsv"``).
        FASTQ + TSV requests stream: chunked parse feeds the coalescer
        in bounded pieces and rows are written per returned batch, so a
        large read set never materializes as result objects at once.

        With a ``?catalog`` query parameter the request routes through
        the sharded multi-genome tier instead: ``?catalog`` (or
        ``?catalog=all``) fans out across every shard, ``?catalog=a,b``
        restricts to the named shards; results carry per-reference hits.
        """
        from urllib.parse import parse_qs

        query = parse_qs(
            environ.get("QUERY_STRING", ""), keep_blank_values=True
        )
        catalog_q = query.get("catalog")
        if catalog_q is not None:
            return self._map_catalog(environ, catalog_q[0])
        service = self.mapping_service
        if service is None:
            return self._json(
                404,
                {
                    "error": "no served index: start the server with "
                    "--map-index to enable POST /map"
                },
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_body_bytes:
            return self._json(
                413,
                {
                    "error": f"request body of {length} B exceeds the "
                    f"{self.max_body_bytes} B limit"
                },
            )
        body = environ["wsgi.input"].read(length) if length else b""
        ctype = environ.get("CONTENT_TYPE", "")
        if not ctype.startswith("application/json"):
            raise WebAppError("POST /map takes an application/json body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise WebAppError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise WebAppError("JSON body must be an object")
        tenant = str(payload.get("tenant", "default"))
        fmt = payload.get("format", "json")
        if fmt not in ("json", "tsv"):
            raise WebAppError(f"unknown format {fmt!r} (use 'json' or 'tsv')")
        reads = payload.get("reads")
        fastq_text = None
        if reads is None:
            fastq_text = _maybe_gunzip_b64(payload, "reads_fastq")
            if fastq_text is None:
                raise WebAppError("provide 'reads' (list) or 'reads_fastq'")
        elif not (isinstance(reads, list) and all(isinstance(r, str) for r in reads)):
            raise WebAppError("'reads' must be a list of strings")
        try:
            if fastq_text is not None and fmt == "tsv":
                return self._map_stream_tsv(service, fastq_text, tenant)
            if fastq_text is not None:
                from ..io.fastq import read_fastq_str

                reads = [r.sequence for r in read_fastq_str(fastq_text)]
            req = service.map_request(reads, tenant=tenant)
        except CoalescerFull as exc:
            status, headers, resp = self._json(503, {"error": str(exc)})
            headers.append(("Retry-After", "1"))
            return status, headers, resp
        except CoalescerClosed as exc:
            return self._json(503, {"error": str(exc)})
        results = req.result(timeout=0.0)
        if fmt == "tsv":
            import io as _io

            from ..mapper.results import write_hits_tsv

            buf = _io.StringIO()
            write_hits_tsv(results, buf)
            return (
                "200 OK",
                [("Content-Type", "text/tab-separated-values; charset=utf-8")],
                buf.getvalue().encode(),
            )
        return self._json(
            200,
            {
                "n_reads": len(results),
                "n_mapped": sum(1 for r in results if r.mapped),
                "tenant": tenant,
                "degraded": req.degraded,
                "batch_reads": req.batch_reads,
                "wait_ms": req.wait_seconds * 1e3,
                "results": [
                    {
                        "read": r.read_name,
                        "length": r.length,
                        "mapped": r.mapped,
                        "fwd_count": r.forward.count,
                        "rc_count": r.reverse.count,
                        "reason": r.reason,
                    }
                    for r in results
                ],
            },
        )

    def _map_stream_tsv(
        self, service, fastq_text: str, tenant: str
    ) -> tuple[str, list, bytes]:
        """Chunked ingest: FASTQ chunks feed the coalescer as independent
        requests; TSV rows are emitted per returned batch."""
        import io as _io

        from ..io.fastq import parse_fastq_chunks
        from ..mapper.stream import _write_rows, map_stream_coalesced

        def _seqs():
            for chunk in parse_fastq_chunks(_io.StringIO(fastq_text), 256):
                for rec in chunk:
                    yield rec.sequence

        out = _io.StringIO()
        out.write(
            "read\tlength\tfwd_count\trc_count\tfwd_positions\trc_positions\n"
        )
        for results in map_stream_coalesced(
            service.coalescer, _seqs(), chunk_size=256, tenant=tenant
        ):
            _write_rows(results, out)
        return (
            "200 OK",
            [("Content-Type", "text/tab-separated-values; charset=utf-8")],
            out.getvalue().encode(),
        )

    def _map_catalog(self, environ: dict, catalog_arg: str) -> tuple[str, list, bytes]:
        """``POST /map?catalog=...``: scatter-gather across the shard
        catalog, returning per-reference hits per read."""
        from ..serving.router import UnknownShardError

        service = self.router_service
        if service is None:
            return self._json(
                404,
                {
                    "error": "no served catalog: start the server with "
                    "--catalog to enable POST /map?catalog=..."
                },
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_body_bytes:
            return self._json(
                413,
                {
                    "error": f"request body of {length} B exceeds the "
                    f"{self.max_body_bytes} B limit"
                },
            )
        body = environ["wsgi.input"].read(length) if length else b""
        if not environ.get("CONTENT_TYPE", "").startswith("application/json"):
            raise WebAppError("POST /map takes an application/json body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise WebAppError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise WebAppError("JSON body must be an object")
        tenant = str(payload.get("tenant", "default"))
        reads = payload.get("reads")
        if reads is None:
            fastq_text = _maybe_gunzip_b64(payload, "reads_fastq")
            if fastq_text is None:
                raise WebAppError("provide 'reads' (list) or 'reads_fastq'")
            from ..io.fastq import read_fastq_str

            reads = [r.sequence for r in read_fastq_str(fastq_text)]
        elif not (isinstance(reads, list) and all(isinstance(r, str) for r in reads)):
            raise WebAppError("'reads' must be a list of strings")
        shards = None
        if catalog_arg and catalog_arg != "all":
            shards = [s for s in catalog_arg.split(",") if s]
        try:
            req = service.map_request(reads, tenant=tenant, shards=shards)
        except UnknownShardError as exc:
            raise WebAppError(f"unknown shard {exc.args[0]!r}") from exc
        except CoalescerFull as exc:
            status, headers, resp = self._json(503, {"error": str(exc)})
            headers.append(("Retry-After", "1"))
            return status, headers, resp
        except CoalescerClosed as exc:
            return self._json(503, {"error": str(exc)})
        mappings = req.result(timeout=0.0)
        return self._json(
            200,
            {
                "n_reads": len(mappings),
                "n_mapped": sum(1 for m in mappings if m.mapped),
                "tenant": tenant,
                "shards": list(shards) if shards else list(service.router.catalog.names),
                "degraded": req.degraded,
                "batch_reads": req.batch_reads,
                "wait_ms": req.wait_seconds * 1e3,
                "results": [
                    {
                        "read": f"read{m.read_id}",
                        "n_hits": len(m.hits),
                        "hits": [
                            {
                                "ref": h.name,
                                "position": h.position,
                                "strand": h.strand,
                            }
                            for h in m.hits
                        ],
                    }
                    for m in mappings
                ],
            },
        )

    def _submit(self, environ: dict) -> tuple[str, list, bytes]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_body_bytes:
            # Reject before reading: an oversized declared body must not
            # be buffered into host memory at all.
            return self._json(
                413,
                {
                    "error": f"request body of {length} B exceeds the "
                    f"{self.max_body_bytes} B limit"
                },
            )
        body = environ["wsgi.input"].read(length) if length else b""
        ctype = environ.get("CONTENT_TYPE", "")
        fault_plan = None
        if ctype.startswith("application/json"):
            try:
                payload = json.loads(body.decode("utf-8"))
            except json.JSONDecodeError as exc:
                raise WebAppError(f"invalid JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise WebAppError("JSON body must be an object")
            reference = _maybe_gunzip_b64(payload, "reference_fasta")
            reads = _maybe_gunzip_b64(payload, "reads_fastq")
            b = payload.get("b", 15)
            sf = payload.get("sf", 50)
            device = payload.get("device", "fpga")
            plan_doc = payload.get("fault_plan")
            if plan_doc is not None:
                if not isinstance(plan_doc, dict):
                    raise WebAppError("fault_plan must be a JSON object")
                try:
                    fault_plan = FaultPlan.from_dict(plan_doc)
                except (TypeError, ValueError) as exc:
                    raise WebAppError(f"invalid fault_plan: {exc}") from exc
        elif ctype.startswith("multipart/form-data"):
            fields = parse_multipart(body, ctype)
            reference = fields.get("reference_fasta")
            reads = fields.get("reads_fastq")
            b = fields.get("b", "15")
            sf = fields.get("sf", "50")
            device = fields.get("device", "fpga")
        else:
            raise WebAppError(
                f"unsupported content type {ctype!r}; use application/json "
                f"or multipart/form-data"
            )
        if not reference:
            raise WebAppError("missing reference_fasta")
        if not reads:
            raise WebAppError("missing reads_fastq")
        try:
            b_i, sf_i = int(b), int(sf)
        except (TypeError, ValueError) as exc:
            raise WebAppError(f"b and sf must be integers: {exc}") from exc
        if device not in ("cpu", "fpga"):
            raise WebAppError(f"unknown device {device!r}")
        try:
            job = self.jobs.submit(
                reference_fasta=reference,
                reads_fastq=reads,
                b=b_i,
                sf=sf_i,
                device=device,  # type: ignore[arg-type]
                background=self.background_jobs,
                fault_plan=fault_plan,
            )
        except BacklogFull as exc:
            status, headers, body = self._json(
                503, {"error": str(exc), "concurrency": self.jobs.concurrency()}
            )
            headers.append(("Retry-After", "5"))
            return status, headers, body
        return self._json(201, job.summary())

    @staticmethod
    def _json(code: int, doc: dict) -> tuple[str, list, bytes]:
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 409: "Conflict",
                   413: "Payload Too Large", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        return (
            f"{code} {reasons.get(code, 'Unknown')}",
            [("Content-Type", "application/json; charset=utf-8")],
            json.dumps(doc).encode(),
        )


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    background_jobs: bool = True,
    job_workers: int = 2,
    job_backlog: int = 8,
    map_index_fasta: str | None = None,
    map_pool_workers: int = 0,
    coalesce: bool = True,
    coalesce_window_ms: float = 2.0,
    coalesce_max_batch: int = 512,
    catalog_manifest: str | None = None,
    shard_memory_budget_mb: float | None = None,
    shard_workers: int = 0,
):
    """Run the app under a threading wsgiref server (blocking).

    ``map_index_fasta`` preloads a reference and serves it on
    ``POST /map`` through a request coalescer (window/size bounds from
    the ``coalesce_*`` knobs, optionally behind a ``map_pool_workers``
    shared-memory pool).  The server is threaded — concurrency is what
    gives the coalescer batches to merge.

    ``catalog_manifest`` loads a shard catalog manifest and serves it on
    ``POST /map?catalog=...`` through a scatter-gather router;
    ``shard_memory_budget_mb`` bounds resident shard bytes (LRU
    activation) and ``shard_workers`` gives each active shard its own
    worker pool.
    """
    from socketserver import ThreadingMixIn
    from wsgiref.simple_server import WSGIServer, make_server

    class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
        daemon_threads = True
        # The socketserver default accept backlog (5) resets connections
        # under the exact burst traffic the coalescer exists to absorb.
        request_queue_size = 128

    mapping_service = None
    if map_index_fasta is not None:
        from ..index.builder import build_index
        from ..io.fasta import read_fasta
        from ..serving.coalescer import CoalescerConfig, MappingService

        ref = read_fasta(map_index_fasta)[0]
        index, _report = build_index(ref.sequence)
        mapping_service = MappingService(
            index,
            pool_workers=map_pool_workers,
            coalesce=coalesce,
            config=CoalescerConfig(
                window_seconds=coalesce_window_ms / 1e3,
                max_batch_reads=coalesce_max_batch,
            ),
        )
        print(
            f"serving index over {ref.name!r} ({len(ref.sequence)} bp) on "
            f"POST /map (coalesce={'on' if coalesce else 'off'}, "
            f"window={coalesce_window_ms}ms, max_batch={coalesce_max_batch}, "
            f"pool_workers={map_pool_workers})"
        )
    router_service = None
    if catalog_manifest is not None:
        from ..serving.coalescer import CoalescerConfig
        from ..serving.router import (
            RouterMappingService,
            ShardCatalog,
            ShardRouter,
        )

        budget = (
            int(shard_memory_budget_mb * 1024 * 1024)
            if shard_memory_budget_mb is not None
            else None
        )
        catalog = ShardCatalog.from_manifest(
            catalog_manifest,
            memory_budget_bytes=budget,
            pool_workers=shard_workers,
        )
        router_service = RouterMappingService(
            ShardRouter(catalog),
            coalesce=coalesce,
            config=CoalescerConfig(
                window_seconds=coalesce_window_ms / 1e3,
                max_batch_reads=coalesce_max_batch,
            ),
        )
        print(
            f"serving catalog of {len(catalog)} shard(s) "
            f"{list(catalog.names)} on POST /map?catalog=... "
            f"(budget={'none' if budget is None else f'{budget} B'}, "
            f"shard_workers={shard_workers})"
        )
    app = BWaveRApp(
        background_jobs=background_jobs,
        job_workers=job_workers,
        job_backlog=job_backlog,
        mapping_service=mapping_service,
        router_service=router_service,
    )
    with make_server(
        host, port, app, server_class=_ThreadingWSGIServer
    ) as httpd:
        print(f"BWaveR web app listening on http://{host}:{port}/")
        try:
            httpd.serve_forever()
        finally:
            app.jobs.shutdown()
            if router_service is not None:
                router_service.close()

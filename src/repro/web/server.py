"""WSGI application for the BWaveR web workflow.

The paper exposes the mapper "through an intuitive web application"
backed by "a Python web-server, built with Flask".  Flask is unavailable
offline, so this is a dependency-free WSGI app with the same surface:

* ``GET /`` — upload form (reference FASTA + reads FASTQ + b/sf/device);
* ``POST /jobs`` — submit a job; accepts ``application/json`` (fields
  ``reference_fasta``, ``reads_fastq``, ``b``, ``sf``, ``device``;
  file contents optionally gzip+base64 with ``*_gzip_b64`` keys — the
  paper accepts gzipped uploads) or ``multipart/form-data`` from the
  HTML form;
* ``GET /jobs`` — JSON list of jobs;
* ``GET /jobs/<id>`` — JSON status with the three-step timing breakdown;
* ``GET /jobs/<id>/results`` — the hits TSV download;
* ``GET /health`` — liveness probe;
* ``GET /healthz`` — readiness: device health, queue depth, job counts;
* ``GET /metrics`` — Prometheus text exposition of the telemetry registry.

Tests drive the app directly through the WSGI callable; ``serve()``
wraps it in :mod:`wsgiref.simple_server` for interactive use
(``examples/webapp_demo.py``).
"""

from __future__ import annotations

import base64
import gzip
import json
import re
from typing import Callable, Iterable

from ..faults import FaultPlan, RetryPolicy
from ..serving.executor import BacklogFull
from ..telemetry import Telemetry, set_telemetry
from .jobs import JobManager, JobPolicy

#: Default request-body cap: enough for a gzip+base64 chromosome-scale
#: upload, small enough that one request cannot exhaust host memory.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

_FORM_HTML = """<!doctype html>
<html><head><title>BWaveR — hybrid DNA sequence mapper</title></head>
<body>
<h1>BWaveR (reproduction)</h1>
<p>Upload a reference (FASTA) and reads (FASTQ), pick the RRR parameters
and the execution device, and download the mapped positions.</p>
<form method="post" action="/jobs" enctype="multipart/form-data">
  <p>Reference FASTA: <input type="file" name="reference_fasta"></p>
  <p>Reads FASTQ: <input type="file" name="reads_fastq"></p>
  <p>Block size b: <input type="number" name="b" value="15" min="1" max="24"></p>
  <p>Superblock factor sf: <input type="number" name="sf" value="50" min="1"></p>
  <p>Device:
    <select name="device">
      <option value="fpga">FPGA (simulated Alveo U200)</option>
      <option value="cpu">CPU</option>
    </select></p>
  <p><input type="submit" value="Map"></p>
</form>
</body></html>
"""


class WebAppError(ValueError):
    """Client errors mapped to HTTP 400."""


def _maybe_gunzip_b64(payload: dict, key: str) -> str | None:
    """Fetch ``key`` from the JSON body, or ``key + '_gzip_b64'`` decoded."""
    if key in payload:
        value = payload[key]
        if not isinstance(value, str):
            raise WebAppError(f"field {key!r} must be a string")
        return value
    gz_key = f"{key}_gzip_b64"
    if gz_key in payload:
        try:
            return gzip.decompress(base64.b64decode(payload[gz_key])).decode("utf-8")
        except Exception as exc:
            raise WebAppError(f"field {gz_key!r} is not valid gzip+base64: {exc}") from exc
    return None


def parse_multipart(body: bytes, content_type: str) -> dict[str, str]:
    """Minimal multipart/form-data parser (text fields and file parts)."""
    m = re.search(r'boundary="?([^";]+)"?', content_type)
    if not m:
        raise WebAppError("multipart body without boundary")
    boundary = m.group(1).encode()
    fields: dict[str, str] = {}
    for part in body.split(b"--" + boundary):
        part = part.strip()
        if not part or part == b"--":
            continue
        if b"\r\n\r\n" in part:
            head, _, content = part.partition(b"\r\n\r\n")
        elif b"\n\n" in part:
            head, _, content = part.partition(b"\n\n")
        else:
            continue
        name_m = re.search(rb'name="([^"]+)"', head)
        if not name_m:
            continue
        name = name_m.group(1).decode()
        data = content.rstrip(b"\r\n")
        if data[:2] == b"\x1f\x8b":  # gzipped file part
            data = gzip.decompress(data)
        fields[name] = data.decode("utf-8", errors="replace")
    return fields


def _normalize_route(path: str) -> str:
    """Collapse path parameters so the request counter stays low-cardinality
    (``/jobs/3/results`` → ``/jobs/{id}/results``)."""
    return re.sub(r"/jobs/\d+", "/jobs/{id}", path)


class BWaveRApp:
    """The WSGI callable.

    ``fault_plan`` / ``job_policy`` / ``retry_policy`` configure the
    fault-tolerance behaviour of every job (a JSON submission may
    override the plan per job via a ``fault_plan`` object field);
    ``max_body_bytes`` caps uploads — oversized requests get HTTP 413
    without the body ever being read.

    ``telemetry`` is the :class:`~repro.telemetry.Telemetry` instance the
    app serves on ``/metrics``.  The default creates an enabled instance
    and installs it process-wide (:func:`~repro.telemetry.set_telemetry`)
    so the pipeline layers record into the same registry the endpoint
    exposes; pass an explicit instance (e.g. a disabled one) to opt out.
    """

    def __init__(
        self,
        background_jobs: bool = False,
        fault_plan: FaultPlan | None = None,
        job_policy: JobPolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        telemetry: Telemetry | None = None,
        job_workers: int = 2,
        job_backlog: int = 8,
    ):
        if telemetry is None:
            telemetry = Telemetry(enabled=True)
            set_telemetry(telemetry)
        self.telemetry = telemetry
        self.jobs = JobManager(
            fault_plan=fault_plan,
            policy=job_policy,
            retry_policy=retry_policy,
            job_workers=job_workers,
            job_backlog=job_backlog,
        )
        self.background_jobs = background_jobs
        self.max_body_bytes = int(max_body_bytes)

    # -- WSGI entry ---------------------------------------------------------

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        try:
            status, headers, body = self._route(environ)
        except WebAppError as exc:
            status, headers, body = self._json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500
            status, headers, body = self._json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        self._count_request(environ, status)
        start_response(status, headers)
        return [body]

    def _count_request(self, environ: dict, status: str) -> None:
        tel = self.telemetry
        if not tel.enabled:
            return
        method = environ.get("REQUEST_METHOD", "GET")
        route = _normalize_route(environ.get("PATH_INFO", "/"))
        tel.metrics.counter(
            "http_requests_total",
            "HTTP requests served, by method/route/status",
            labelnames=("method", "route", "status"),
        ).inc(method=method, route=route, status=status.split(" ", 1)[0])

    # -- routing ----------------------------------------------------------------

    def _route(self, environ: dict) -> tuple[str, list, bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        if method == "GET" and path == "/":
            return "200 OK", [("Content-Type", "text/html; charset=utf-8")], _FORM_HTML.encode()
        if method == "GET" and path == "/health":
            return self._json(200, {"status": "ok"})
        if method == "GET" and path == "/healthz":
            return self._healthz()
        if method == "GET" and path == "/metrics":
            return (
                "200 OK",
                [("Content-Type", "text/plain; version=0.0.4; charset=utf-8")],
                self.telemetry.metrics.prometheus_text().encode(),
            )
        if method == "POST" and path == "/jobs":
            return self._submit(environ)
        if method == "GET" and path == "/jobs":
            return self._json(200, {"jobs": [j.summary() for j in self.jobs.all_jobs()]})
        m = re.fullmatch(r"/jobs/(\d+)", path)
        if method == "GET" and m:
            job = self.jobs.get(int(m.group(1)))
            if job is None:
                return self._json(404, {"error": f"no job {m.group(1)}"})
            return self._json(200, job.summary())
        m = re.fullmatch(r"/jobs/(\d+)/results", path)
        if method == "GET" and m:
            job = self.jobs.get(int(m.group(1)))
            if job is None:
                return self._json(404, {"error": f"no job {m.group(1)}"})
            # Degraded jobs carry complete, correct results (CPU fallback).
            if job.status.value not in ("done", "degraded"):
                return self._json(409, {"error": f"job is {job.status.value}"})
            return (
                "200 OK",
                [
                    ("Content-Type", "text/tab-separated-values; charset=utf-8"),
                    (
                        "Content-Disposition",
                        f'attachment; filename="bwaver_job{job.job_id}_hits.tsv"',
                    ),
                ],
                job.results_tsv.encode(),
            )
        m = re.fullmatch(r"/jobs/(\d+)/sam", path)
        if method == "GET" and m:
            job = self.jobs.get(int(m.group(1)))
            if job is None:
                return self._json(404, {"error": f"no job {m.group(1)}"})
            if job.status.value not in ("done", "degraded"):
                return self._json(409, {"error": f"job is {job.status.value}"})
            return (
                "200 OK",
                [
                    ("Content-Type", "text/x-sam; charset=utf-8"),
                    (
                        "Content-Disposition",
                        f'attachment; filename="bwaver_job{job.job_id}.sam"',
                    ),
                ],
                job.results_sam.encode(),
            )
        return self._json(404, {"error": f"no route for {method} {path}"})

    # -- handlers ------------------------------------------------------------------

    def _healthz(self) -> tuple[str, list, bytes]:
        """Readiness document: job queue state + last device health."""
        counts = self.jobs.counts_by_status()
        device = self.jobs.last_device_health
        degraded = device is not None and device.get("state") == "failed"
        return self._json(
            200,
            {
                "status": "degraded" if degraded else "ok",
                "telemetry_enabled": self.telemetry.enabled,
                "queue_depth": self.jobs.queue_depth(),
                "jobs": counts,
                "concurrency": self.jobs.concurrency(),
                "device": device,
            },
        )

    def _submit(self, environ: dict) -> tuple[str, list, bytes]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_body_bytes:
            # Reject before reading: an oversized declared body must not
            # be buffered into host memory at all.
            return self._json(
                413,
                {
                    "error": f"request body of {length} B exceeds the "
                    f"{self.max_body_bytes} B limit"
                },
            )
        body = environ["wsgi.input"].read(length) if length else b""
        ctype = environ.get("CONTENT_TYPE", "")
        fault_plan = None
        if ctype.startswith("application/json"):
            try:
                payload = json.loads(body.decode("utf-8"))
            except json.JSONDecodeError as exc:
                raise WebAppError(f"invalid JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise WebAppError("JSON body must be an object")
            reference = _maybe_gunzip_b64(payload, "reference_fasta")
            reads = _maybe_gunzip_b64(payload, "reads_fastq")
            b = payload.get("b", 15)
            sf = payload.get("sf", 50)
            device = payload.get("device", "fpga")
            plan_doc = payload.get("fault_plan")
            if plan_doc is not None:
                if not isinstance(plan_doc, dict):
                    raise WebAppError("fault_plan must be a JSON object")
                try:
                    fault_plan = FaultPlan.from_dict(plan_doc)
                except (TypeError, ValueError) as exc:
                    raise WebAppError(f"invalid fault_plan: {exc}") from exc
        elif ctype.startswith("multipart/form-data"):
            fields = parse_multipart(body, ctype)
            reference = fields.get("reference_fasta")
            reads = fields.get("reads_fastq")
            b = fields.get("b", "15")
            sf = fields.get("sf", "50")
            device = fields.get("device", "fpga")
        else:
            raise WebAppError(
                f"unsupported content type {ctype!r}; use application/json "
                f"or multipart/form-data"
            )
        if not reference:
            raise WebAppError("missing reference_fasta")
        if not reads:
            raise WebAppError("missing reads_fastq")
        try:
            b_i, sf_i = int(b), int(sf)
        except (TypeError, ValueError) as exc:
            raise WebAppError(f"b and sf must be integers: {exc}") from exc
        if device not in ("cpu", "fpga"):
            raise WebAppError(f"unknown device {device!r}")
        try:
            job = self.jobs.submit(
                reference_fasta=reference,
                reads_fastq=reads,
                b=b_i,
                sf=sf_i,
                device=device,  # type: ignore[arg-type]
                background=self.background_jobs,
                fault_plan=fault_plan,
            )
        except BacklogFull as exc:
            status, headers, body = self._json(
                503, {"error": str(exc), "concurrency": self.jobs.concurrency()}
            )
            headers.append(("Retry-After", "5"))
            return status, headers, body
        return self._json(201, job.summary())

    @staticmethod
    def _json(code: int, doc: dict) -> tuple[str, list, bytes]:
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 409: "Conflict",
                   413: "Payload Too Large", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        return (
            f"{code} {reasons.get(code, 'Unknown')}",
            [("Content-Type", "application/json; charset=utf-8")],
            json.dumps(doc).encode(),
        )


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    background_jobs: bool = True,
    job_workers: int = 2,
    job_backlog: int = 8,
):
    """Run the app under wsgiref (blocking); returns never."""
    from wsgiref.simple_server import make_server

    app = BWaveRApp(
        background_jobs=background_jobs,
        job_workers=job_workers,
        job_backlog=job_backlog,
    )
    with make_server(host, port, app) as httpd:
        print(f"BWaveR web app listening on http://{host}:{port}/")
        httpd.serve_forever()

"""Pipeline job management for the BWaveR web workflow (paper §III-D).

A job executes the paper's three steps over an uploaded reference/reads
pair:

1. *BWT and SA computation* — FASTA → suffix array + BWT;
2. *BWT encoding* — the succinct structure at the requested (b, sf);
3. *Sequence mapping* — FASTQ reads through the software mapper or the
   simulated FPGA accelerator.

Each stage's wall time is recorded on the job (the web UI shows the
same three-step breakdown as the paper's Fig. 4 coloring), and the
result is a downloadable hits table.  Jobs run either synchronously
(``background=False``, used by tests and the WSGI app's default) or on a
daemon thread.
"""

from __future__ import annotations

import io
import itertools
import threading
import time
import traceback
from dataclasses import dataclass, field
from enum import Enum
from typing import Literal

from ..fpga.accelerator import FPGAAccelerator
from ..index.builder import build_index
from ..io.fasta import read_fasta_str
from ..io.fastq import read_fastq_str
from ..mapper.mapper import Mapper
from ..mapper.results import mapping_ratio, write_hits_tsv

Device = Literal["cpu", "fpga"]


class JobStatus(Enum):
    """Lifecycle of a pipeline job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"


@dataclass
class Job:
    """One pipeline execution and its lifecycle."""

    job_id: int
    reference_fasta: str
    reads_fastq: str
    b: int = 15
    sf: int = 50
    device: Device = "fpga"
    status: JobStatus = JobStatus.QUEUED
    error: str = ""
    stage_seconds: dict[str, float] = field(default_factory=dict)
    n_reads: int = 0
    n_mapped: int = 0
    reference_name: str = ""
    reference_length: int = 0
    modeled_device_seconds: float | None = None
    results_tsv: str = ""
    results_sam: str = ""
    qc: dict = field(default_factory=dict)
    qc_warnings: list[str] = field(default_factory=list)

    def summary(self) -> dict:
        """JSON-able status document served by ``GET /jobs/<id>``."""
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "error": self.error,
            "device": self.device,
            "b": self.b,
            "sf": self.sf,
            "reference": self.reference_name,
            "reference_length": self.reference_length,
            "n_reads": self.n_reads,
            "n_mapped": self.n_mapped,
            "mapping_ratio": (self.n_mapped / self.n_reads) if self.n_reads else 0.0,
            "stage_seconds": dict(self.stage_seconds),
            "modeled_device_seconds": self.modeled_device_seconds,
            "qc": dict(self.qc),
            "qc_warnings": list(self.qc_warnings),
        }


class JobManager:
    """Creates, runs and looks up jobs."""

    def __init__(self):
        self._jobs: dict[int, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def submit(
        self,
        reference_fasta: str,
        reads_fastq: str,
        b: int = 15,
        sf: int = 50,
        device: Device = "fpga",
        background: bool = False,
    ) -> Job:
        if device not in ("cpu", "fpga"):
            raise ValueError(f"unknown device {device!r} (expected 'cpu' or 'fpga')")
        with self._lock:
            job = Job(
                job_id=next(self._ids),
                reference_fasta=reference_fasta,
                reads_fastq=reads_fastq,
                b=int(b),
                sf=int(sf),
                device=device,
            )
            self._jobs[job.job_id] = job
        if background:
            threading.Thread(target=self._run, args=(job,), daemon=True).start()
        else:
            self._run(job)
        return job

    def get(self, job_id: int) -> Job | None:
        return self._jobs.get(job_id)

    def all_jobs(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    # -- pipeline ---------------------------------------------------------------

    def _run(self, job: Job) -> None:
        job.status = JobStatus.RUNNING
        try:
            self._execute(job)
            job.status = JobStatus.DONE
        except Exception as exc:  # surface any stage failure on the job
            job.status = JobStatus.ERROR
            job.error = f"{type(exc).__name__}: {exc}"
            job.stage_seconds.setdefault("failed_at", time.time())
            job.results_tsv = ""
            # Keep the traceback server-side for debugging, not in the UI.
            job._traceback = traceback.format_exc()  # type: ignore[attr-defined]

    def _execute(self, job: Job) -> None:
        records = read_fasta_str(job.reference_fasta, on_invalid="random")
        if not records:
            raise ValueError("reference FASTA contains no records")
        ref = records[0]
        if len(records) > 1:
            raise ValueError(
                "multi-record references are not supported; upload one sequence"
            )
        if not ref.sequence:
            raise ValueError(f"reference {ref.name!r} is empty")
        job.reference_name = ref.name
        job.reference_length = len(ref.sequence)

        reads = read_fastq_str(job.reads_fastq)
        if not reads:
            raise ValueError("reads FASTQ contains no records")
        job.n_reads = len(reads)

        # QC pass before spending build/map time; warnings surface on the
        # status document but never block the job.
        from ..io.qc import qc_reads

        qc = qc_reads(reads)
        job.qc = qc.to_dict()
        job.qc_warnings = qc.warnings()

        # Step 1 + 2: build (the builder reports both stage times).
        index, report = build_index(ref.sequence, b=job.b, sf=job.sf)
        job.stage_seconds["bwt_sa_computation"] = report.sa_bwt_seconds
        job.stage_seconds["bwt_encoding"] = report.encode_seconds

        # Step 3: mapping, on the requested device.
        seqs = [r.sequence for r in reads]
        names = [r.name for r in reads]
        t0 = time.perf_counter()
        if job.device == "fpga":
            acc = FPGAAccelerator.for_index(index)
            run = acc.map_batch(seqs)
            job.modeled_device_seconds = run.modeled_seconds
            # Host-side locate from the returned intervals.
            mapper = Mapper(index, locate=True)
            results = mapper.map_reads(seqs, names=names)
        else:
            mapper = Mapper(index, locate=True)
            results = mapper.map_reads(seqs, names=names)
        job.stage_seconds["sequence_mapping"] = time.perf_counter() - t0

        job.n_mapped = round(mapping_ratio(results) * len(results))
        buf = io.StringIO()
        write_hits_tsv(results, buf)
        job.results_tsv = buf.getvalue()
        sam_buf = io.StringIO()
        from ..mapper.sam import write_sam_single

        write_sam_single(
            results,
            seqs,
            sam_buf,
            reference_name=job.reference_name,
            reference_length=job.reference_length,
        )
        job.results_sam = sam_buf.getvalue()

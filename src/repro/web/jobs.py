"""Pipeline job management for the BWaveR web workflow (paper §III-D).

A job executes the paper's three steps over an uploaded reference/reads
pair:

1. *BWT and SA computation* — FASTA → suffix array + BWT;
2. *BWT encoding* — the succinct structure at the requested (b, sf);
3. *Sequence mapping* — FASTQ reads through the software mapper or the
   simulated FPGA accelerator.

Each stage's wall time is recorded on the job (the web UI shows the
same three-step breakdown as the paper's Fig. 4 coloring), and the
result is a downloadable hits table.  Jobs run either synchronously
(``background=False``, used by tests and the WSGI app's default) or
through a bounded executor (:class:`~repro.serving.executor.BoundedExecutor`):
at most ``job_workers`` jobs run concurrently, at most ``job_backlog``
wait queued, and submissions beyond that raise
:class:`~repro.serving.executor.BacklogFull` (HTTP 503 at the server).

Jobs are fault-tolerant.  A :class:`~repro.faults.FaultPlan` (configured
on the manager or per submission) scripts device faults; the pipeline
applies per-stage deadlines and a per-job retry budget
(:class:`JobPolicy`), and when the device path cannot be salvaged the
job completes through the bit-identical CPU mapper in the ``DEGRADED``
terminal state — distinct from ``ERROR``, because the user still gets
correct results.  Fault and retry counters surface on the job summary.
"""

from __future__ import annotations

import io
import itertools
import threading
import time
import traceback
from dataclasses import dataclass, field
from enum import Enum
from typing import Literal

from ..faults import FaultError, FaultPlan, RetryPolicy
from ..fpga.accelerator import FPGAAccelerator
from ..index.builder import build_index
from ..io.fasta import read_fasta_str
from ..io.fastq import read_fastq_str
from ..mapper.mapper import Mapper
from ..mapper.results import mapping_ratio, write_hits_tsv
from ..serving.executor import BacklogFull, BoundedExecutor
from ..telemetry import correlate, get_telemetry

Device = Literal["cpu", "fpga"]


class JobStatus(Enum):
    """Lifecycle of a pipeline job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"
    #: Completed with correct results, but through the CPU fallback after
    #: the device retry budget was exhausted.
    DEGRADED = "degraded"


class StageDeadlineExceeded(RuntimeError):
    """A pipeline stage overran its configured wall-clock deadline."""


@dataclass(frozen=True)
class JobPolicy:
    """Per-job reliability policy.

    ``stage_deadline_seconds`` is either one deadline applied to every
    stage or a ``{stage_name: seconds}`` mapping (stages: ``parse_inputs``,
    ``bwt_sa_computation``, ``bwt_encoding``, ``sequence_mapping``).
    Deadlines are checked when a stage completes — pure-Python stages
    cannot be preempted, so an overrun is detected, not interrupted.
    ``max_map_attempts`` is the job-level retry budget for the device
    mapping stage (each attempt internally carries the accelerator's own
    per-batch retry ladder).
    """

    stage_deadline_seconds: float | dict[str, float] | None = None
    max_map_attempts: int = 2

    def deadline_for(self, stage: str) -> float | None:
        if self.stage_deadline_seconds is None:
            return None
        if isinstance(self.stage_deadline_seconds, dict):
            return self.stage_deadline_seconds.get(stage)
        return float(self.stage_deadline_seconds)


@dataclass
class Job:
    """One pipeline execution and its lifecycle."""

    job_id: int
    reference_fasta: str
    reads_fastq: str
    b: int = 15
    sf: int = 50
    device: Device = "fpga"
    status: JobStatus = JobStatus.QUEUED
    error: str = ""
    stage_seconds: dict[str, float] = field(default_factory=dict)
    n_reads: int = 0
    n_mapped: int = 0
    reference_name: str = ""
    reference_length: int = 0
    modeled_device_seconds: float | None = None
    results_tsv: str = ""
    results_sam: str = ""
    qc: dict = field(default_factory=dict)
    qc_warnings: list[str] = field(default_factory=list)
    fault_plan: FaultPlan | None = None
    #: Failure bookkeeping (dedicated fields — ``stage_seconds`` holds
    #: only durations).
    failed_stage: str = ""
    failed_at: float | None = None
    #: Fault-tolerance ledger.
    degraded: bool = False
    degraded_reason: str = ""
    retries: int = 0
    map_attempts: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    _current_stage: str = field(default="", repr=False)

    def summary(self) -> dict:
        """JSON-able status document served by ``GET /jobs/<id>``."""
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "error": self.error,
            "device": self.device,
            "b": self.b,
            "sf": self.sf,
            "reference": self.reference_name,
            "reference_length": self.reference_length,
            "n_reads": self.n_reads,
            "n_mapped": self.n_mapped,
            "mapping_ratio": (self.n_mapped / self.n_reads) if self.n_reads else 0.0,
            "stage_seconds": dict(self.stage_seconds),
            "modeled_device_seconds": self.modeled_device_seconds,
            "qc": dict(self.qc),
            "qc_warnings": list(self.qc_warnings),
            "failed_stage": self.failed_stage,
            "failed_at": self.failed_at,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "retries": self.retries,
            "map_attempts": self.map_attempts,
            "fault_counts": dict(self.fault_counts),
        }

    def _merge_fault_counts(self, counts: dict[str, int]) -> None:
        for kind, n in counts.items():
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + n


class JobManager:
    """Creates, runs and looks up jobs.

    Parameters
    ----------
    fault_plan:
        Default fault scenario applied to every job's device stage
        (submissions may override per job).
    policy:
        Stage deadlines and the job-level mapping retry budget.
    retry_policy:
        The accelerator's per-batch recovery ladder.
    job_workers, job_backlog:
        Background-execution caps: at most ``job_workers`` jobs run
        concurrently and at most ``job_backlog`` wait queued; a
        submission beyond both raises
        :class:`~repro.serving.executor.BacklogFull`.
    mapping_service:
        Optional :class:`~repro.serving.coalescer.MappingService` — a
        preloaded served index behind a request coalescer.  Jobs still
        build per-upload indexes; the service is the shared-index fast
        path (``POST /map``) that merges concurrent small requests into
        shared kernel batches.  Owned by the manager: ``shutdown`` closes
        it after the job executor drains.
    """

    def __init__(
        self,
        fault_plan: FaultPlan | None = None,
        policy: JobPolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        job_workers: int = 2,
        job_backlog: int = 8,
        mapping_service=None,
    ):
        self._jobs: dict[int, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else JobPolicy()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.executor = BoundedExecutor(
            workers=job_workers, backlog=job_backlog, name="web-jobs"
        )
        self.mapping_service = mapping_service
        #: Health snapshot of the device used by the most recent FPGA job
        #: (what ``GET /healthz`` reports).
        self.last_device_health: dict | None = None

    def counts_by_status(self) -> dict[str, int]:
        """Job tallies per lifecycle state (the /healthz queue view)."""
        counts = {status.value: 0 for status in JobStatus}
        for job in self._jobs.values():
            counts[job.status.value] += 1
        return counts

    def queue_depth(self) -> int:
        """Jobs submitted but not yet in a terminal state."""
        counts = self.counts_by_status()
        return counts["queued"] + counts["running"]

    def concurrency(self) -> dict:
        """Executor caps and occupancy (the /healthz concurrency view)."""
        return {
            "job_workers": self.executor.workers,
            "job_backlog": self.executor.backlog,
            "pending": self.executor.pending(),
            "queued": self.executor.queued(),
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop the background executor (queued jobs are drained first),
        then the mapping service's coalescer and pool."""
        self.executor.shutdown(wait=wait)
        if self.mapping_service is not None:
            self.mapping_service.close()

    def submit(
        self,
        reference_fasta: str,
        reads_fastq: str,
        b: int = 15,
        sf: int = 50,
        device: Device = "fpga",
        background: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> Job:
        if device not in ("cpu", "fpga"):
            raise ValueError(f"unknown device {device!r} (expected 'cpu' or 'fpga')")
        with self._lock:
            job = Job(
                job_id=next(self._ids),
                reference_fasta=reference_fasta,
                reads_fastq=reads_fastq,
                b=int(b),
                sf=int(sf),
                device=device,
                fault_plan=fault_plan if fault_plan is not None else self.fault_plan,
            )
            self._jobs[job.job_id] = job
        if background:
            try:
                self.executor.submit(lambda: self._run(job))
            except BacklogFull:
                # The job never ran; drop it so the rejected submission
                # leaves no QUEUED ghost in listings.
                with self._lock:
                    self._jobs.pop(job.job_id, None)
                raise
        else:
            self._run(job)
        return job

    def get(self, job_id: int) -> Job | None:
        return self._jobs.get(job_id)

    def all_jobs(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    # -- pipeline ---------------------------------------------------------------

    def _run(self, job: Job) -> None:
        job.status = JobStatus.RUNNING
        tel = get_telemetry()
        gauge = tel.metrics.gauge("web_jobs_running", "Jobs currently executing")
        gauge.inc()
        try:
            with correlate(job_id=job.job_id):
                with tel.span(
                    "web.job", cat="web", job_id=job.job_id, device=job.device,
                ):
                    self._execute(job)
            job.status = JobStatus.DEGRADED if job.degraded else JobStatus.DONE
        except Exception as exc:  # surface any stage failure on the job
            job.status = JobStatus.ERROR
            job.error = f"{type(exc).__name__}: {exc}"
            job.failed_stage = job._current_stage
            job.failed_at = time.time()
            job.results_tsv = ""
            # Keep the traceback server-side for debugging, not in the UI.
            job._traceback = traceback.format_exc()  # type: ignore[attr-defined]
        finally:
            gauge.dec()
            tel.metrics.counter(
                "web_jobs_total", "Jobs finished, by terminal status",
                labelnames=("status",),
            ).inc(status=job.status.value)
            stage_hist = tel.metrics.histogram(
                "web_job_stage_seconds", "Wall seconds per job pipeline stage",
                labelnames=("stage",),
            )
            for stage, seconds in job.stage_seconds.items():
                stage_hist.observe(seconds, stage=stage)
            tel.log.info(
                "web.job.finished",
                job_id=job.job_id,
                status=job.status.value,
                device=job.device,
                n_reads=job.n_reads,
                n_mapped=job.n_mapped,
                degraded=job.degraded,
                retries=job.retries,
                error=job.error,
            )

    def _check_deadline(self, job: Job, stage: str, elapsed: float) -> None:
        deadline = self.policy.deadline_for(stage)
        if deadline is not None and elapsed > deadline:
            raise StageDeadlineExceeded(
                f"stage {stage!r} took {elapsed:.3f}s, over its "
                f"{deadline:.3f}s deadline"
            )

    def _execute(self, job: Job) -> None:
        tel = get_telemetry()
        job._current_stage = "parse_inputs"
        t_parse = time.perf_counter()
        with tel.span("web.stage.parse_inputs", cat="web"):
            records = self._parse_reference(job)
        ref = records[0]

        reads = read_fastq_str(job.reads_fastq)
        if not reads:
            raise ValueError("reads FASTQ contains no records")
        job.n_reads = len(reads)

        # QC pass before spending build/map time; warnings surface on the
        # status document but never block the job.
        from ..io.qc import qc_reads

        qc = qc_reads(reads)
        job.qc = qc.to_dict()
        job.qc_warnings = qc.warnings()
        self._check_deadline(job, "parse_inputs", time.perf_counter() - t_parse)

        # Step 1 + 2: build (the builder reports both stage times).
        job._current_stage = "bwt_sa_computation"
        with tel.span("web.stage.build_index", cat="web", b=job.b, sf=job.sf):
            index, report = build_index(ref.sequence, b=job.b, sf=job.sf)
        job.stage_seconds["bwt_sa_computation"] = report.sa_bwt_seconds
        job.stage_seconds["bwt_encoding"] = report.encode_seconds
        self._check_deadline(job, "bwt_sa_computation", report.sa_bwt_seconds)
        job._current_stage = "bwt_encoding"
        self._check_deadline(job, "bwt_encoding", report.encode_seconds)

        # Step 3: mapping, on the requested device.
        job._current_stage = "sequence_mapping"
        seqs = [r.sequence for r in reads]
        names = [r.name for r in reads]
        t0 = time.perf_counter()
        with tel.span("web.stage.sequence_mapping", cat="web", device=job.device):
            if job.device == "fpga":
                self._map_on_device(job, index, seqs)
            # Final results always come from the host-side locate pass (for
            # the fpga device this is the paper's host locate step; when the
            # device degraded, it doubles as the bit-identical CPU fallback).
            mapper = Mapper(index, locate=True)
            results = mapper.map_reads(seqs, names=names)
        elapsed = time.perf_counter() - t0
        job.stage_seconds["sequence_mapping"] = elapsed
        if job.device == "cpu":
            self._check_deadline(job, "sequence_mapping", elapsed)

        job.n_mapped = round(mapping_ratio(results) * len(results))
        buf = io.StringIO()
        write_hits_tsv(results, buf)
        job.results_tsv = buf.getvalue()
        sam_buf = io.StringIO()
        from ..mapper.sam import write_sam_single

        write_sam_single(
            results,
            seqs,
            sam_buf,
            reference_name=job.reference_name,
            reference_length=job.reference_length,
        )
        job.results_sam = sam_buf.getvalue()

    def _parse_reference(self, job: Job):
        records = read_fasta_str(job.reference_fasta, on_invalid="random")
        if not records:
            raise ValueError("reference FASTA contains no records")
        ref = records[0]
        if len(records) > 1:
            raise ValueError(
                "multi-record references are not supported; upload one sequence"
            )
        if not ref.sequence:
            raise ValueError(f"reference {ref.name!r} is empty")
        job.reference_name = ref.name
        job.reference_length = len(ref.sequence)
        return records

    def _map_on_device(self, job: Job, index, seqs: list[str]) -> None:
        """Device mapping under the job-level retry budget.

        Each attempt runs the accelerator (which carries its own
        per-batch ladder).  An attempt fails the job-level budget when
        the accelerator raises (``cpu_fallback`` disabled in its policy)
        or the stage overruns its deadline; exhausting the budget —
        like the accelerator's own internal degradation — completes the
        job via the CPU path in the ``DEGRADED`` state.
        """
        deadline = self.policy.deadline_for("sequence_mapping")
        acc = FPGAAccelerator.for_index(
            index, fault_plan=job.fault_plan, retry_policy=self.retry_policy
        )
        try:
            self._run_map_attempts(job, acc, seqs, deadline)
        finally:
            self.last_device_health = acc.health.to_dict()

    def _run_map_attempts(
        self, job: Job, acc: FPGAAccelerator, seqs: list[str], deadline: float | None
    ) -> None:
        last_failure = ""
        for attempt in range(1, max(1, self.policy.max_map_attempts) + 1):
            job.map_attempts = attempt
            t0 = time.perf_counter()
            try:
                run = acc.map_batch(seqs)
            except FaultError as exc:
                job.retries += 1
                job._merge_fault_counts({type(exc).__name__: 1})
                last_failure = f"{type(exc).__name__}: {exc}"
                continue
            job.retries += run.retries
            job._merge_fault_counts(run.fault_counts)
            elapsed = time.perf_counter() - t0
            if deadline is not None and elapsed > deadline:
                job._merge_fault_counts({"StageDeadlineExceeded": 1})
                last_failure = (
                    f"mapping attempt took {elapsed:.3f}s, over its "
                    f"{deadline:.3f}s deadline"
                )
                continue
            job.modeled_device_seconds = run.modeled_seconds
            if run.degraded:
                job.degraded = True
                job.degraded_reason = (
                    "accelerator retry budget exhausted "
                    f"({run.retries} retries, {run.reprograms} reprograms); "
                    "results served from the CPU fallback"
                )
            return
        job.degraded = True
        job.degraded_reason = (
            f"device mapping failed {job.map_attempts} attempt(s) "
            f"(last: {last_failure}); results served from the CPU fallback"
        )

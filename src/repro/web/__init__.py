"""The BWaveR web workflow (paper §III-D) as a stdlib WSGI app."""

from .jobs import Job, JobManager, JobStatus
from .server import BWaveRApp, WebAppError, parse_multipart, serve

__all__ = [
    "BWaveRApp",
    "Job",
    "JobManager",
    "JobStatus",
    "WebAppError",
    "parse_multipart",
    "serve",
]

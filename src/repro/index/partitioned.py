"""Partitioned indexes for references beyond the on-chip capacity.

Paper §V future work: "allow reference sequences longer than 100
millions bp".  The single-structure design is capacity-bound — the whole
succinct BWT must sit in the device's BRAM/URAM pool.  The standard
scale-out is **partitioning**: split the reference into chunks that
individually fit, index each chunk, and run every query batch against
each chunk in turn (the paper's own suggestion that its single-FPGA
design "can be easily replicated").

Correctness at the seams: consecutive chunks **overlap** by
``overlap >= max_query_length - 1`` bases, so any occurrence crossing a
chunk boundary lies entirely inside some chunk; hits found twice in an
overlap are deduplicated by their global position.

Performance model: each chunk swap re-pays the BWT-load overhead, so
the partitioned accelerator's modeled time is
``sum(load_i) + max(kernel, transfer)`` per chunk — exposed via
:meth:`PartitionedIndex.modeled_fpga_seconds` so the long-reference
trade-off (capacity vs reload cost) is quantifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.counters import OpCounters
from ..fpga.cost_model import DEFAULT_COST_MODEL, FPGACostModel
from ..sequence.alphabet import reverse_complement
from .builder import build_index
from .fm_index import FMIndex


@dataclass(frozen=True)
class Chunk:
    """One partition: its half-open global span and its index."""

    start: int
    end: int
    index: FMIndex


class PartitionedIndex:
    """A long reference as overlapping, individually-indexed chunks.

    Parameters
    ----------
    reference:
        The full reference string.
    chunk_bases:
        Chunk payload size (excluding overlap).  Pick so one chunk's
        structure fits the target device — see
        :func:`repro.fpga.device.max_reference_bases`.
    max_query_length:
        Upper bound on query length; fixes the seam overlap at
        ``max_query_length - 1``.
    """

    def __init__(
        self,
        reference: str,
        chunk_bases: int,
        max_query_length: int = 176,
        b: int = 15,
        sf: int = 50,
        counters: OpCounters | None = None,
    ):
        if chunk_bases < max_query_length:
            raise ValueError(
                f"chunk_bases ({chunk_bases}) must be >= max_query_length "
                f"({max_query_length})"
            )
        if max_query_length < 1:
            raise ValueError("max_query_length must be >= 1")
        self.reference_length = len(reference)
        self.max_query_length = int(max_query_length)
        self.overlap = self.max_query_length - 1
        self.chunks: list[Chunk] = []
        start = 0
        while start < len(reference):
            end = min(len(reference), start + chunk_bases + self.overlap)
            text = reference[start:end]
            index, _ = build_index(text, b=b, sf=sf, counters=counters)
            self.chunks.append(Chunk(start=start, end=end, index=index))
            if end == len(reference):
                break
            start += chunk_bases

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def structure_bytes_per_chunk(self) -> list[int]:
        return [c.index.backend.size_in_bytes() for c in self.chunks]

    # -- queries -------------------------------------------------------------

    def locate(self, pattern: str) -> np.ndarray:
        """Sorted global positions of all occurrences (deduplicated)."""
        if len(pattern) > self.max_query_length:
            raise ValueError(
                f"pattern of {len(pattern)} bases exceeds the partition's "
                f"max_query_length ({self.max_query_length}); rebuild with a "
                f"larger bound"
            )
        hits: set[int] = set()
        for chunk in self.chunks:
            for p in chunk.index.locate(pattern).tolist():
                hits.add(chunk.start + p)
        return np.array(sorted(hits), dtype=np.int64)

    def count(self, pattern: str) -> int:
        return int(self.locate(pattern).size)

    def map_read(self, read: str) -> dict[str, np.ndarray]:
        """Both strands; global positions per strand."""
        return {
            "+": self.locate(read),
            "-": self.locate(reverse_complement(read)),
        }

    def map_reads(self, reads: Sequence[str]) -> list[dict[str, np.ndarray]]:
        return [self.map_read(r) for r in reads]

    # -- device cost model -------------------------------------------------------

    def modeled_fpga_seconds(
        self,
        hw_steps_total: int,
        n_reads: int,
        cost_model: FPGACostModel = DEFAULT_COST_MODEL,
    ) -> float:
        """Modeled device time for one batch run across all chunks.

        Every chunk pays its own structure load (the device is
        reprogrammed between chunks) and processes the full query batch;
        ``hw_steps_total`` is the per-chunk step budget (conservatively
        the same for every chunk: unmapped-in-this-chunk reads terminate
        early, which the caller's measured counts already reflect).
        """
        total = 0.0
        for size in self.structure_bytes_per_chunk():
            total += cost_model.run_seconds(size, hw_steps_total, n_reads)
        return total

    def __repr__(self) -> str:
        return (
            f"PartitionedIndex(length={self.reference_length}, "
            f"chunks={self.n_chunks}, overlap={self.overlap})"
        )

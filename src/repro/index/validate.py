"""Structure self-validation ("fsck" for the index).

The web workflow persists indexes and reloads them across runs; before
committing hours of mapping to a loaded structure, a paranoid consumer
can verify its internal invariants.  :func:`validate_index` checks:

1. **C-array consistency** — ``C[a+1] - C[a]`` must equal
   ``Occ(a, n_rows)`` for every symbol (the BWT permutes the text, so
   symbol totals agree), and ``C[sigma]`` must equal ``n_rows``;
2. **LF bijectivity (sampled)** — the last-first mapping is a
   permutation: sampled rows map injectively and every image is in range;
3. **Occ monotonicity (sampled)** — ``Occ(a, i)`` is non-decreasing in
   ``i`` with unit steps;
4. **locate/search agreement (sampled)** — patterns extracted from the
   suffix array's own rows must be found at their positions;
5. **suffix-array order (sampled)** — Eq. 1 on random adjacent pairs
   (when a locate structure with a full SA is attached).

Failures raise :class:`IndexValidationError` naming the broken
invariant; success returns a small report of what was checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sequence.sampled_sa import FullSA
from .fm_index import FMIndex

SIGMA = 4


class IndexValidationError(RuntimeError):
    """An index invariant does not hold."""


@dataclass
class ValidationReport:
    """What was verified, with sample sizes."""

    n_rows: int = 0
    checks: dict[str, int] = field(default_factory=dict)

    def record(self, name: str, samples: int) -> None:
        self.checks[name] = samples


def validate_index(
    index: FMIndex,
    samples: int = 64,
    seed: int = 0,
) -> ValidationReport:
    """Verify the index's invariants; raise on the first violation."""
    backend = index.backend
    n_rows = backend.n_rows
    rng = np.random.default_rng(seed)
    report = ValidationReport(n_rows=n_rows)

    # 1. C array.
    total = sum(backend.occ(a, n_rows) for a in range(SIGMA))
    c_span = [backend.count_smaller(a) for a in range(SIGMA)]
    if c_span != sorted(c_span):
        raise IndexValidationError("C array is not non-decreasing")
    if c_span[0] != 1:
        raise IndexValidationError(
            f"C[0] must be 1 (the sentinel), got {c_span[0]}"
        )
    for a in range(SIGMA - 1):
        span = c_span[a + 1] - c_span[a]
        occ_a = backend.occ(a, n_rows)
        if span != occ_a:
            raise IndexValidationError(
                f"C-array span for symbol {a} is {span} but Occ({a}, n) = {occ_a}"
            )
    if 1 + total != n_rows:
        raise IndexValidationError(
            f"symbol totals ({total}) + sentinel != matrix rows ({n_rows})"
        )
    report.record("c_array", SIGMA)

    # 2. LF bijectivity on a sample.
    rows = rng.choice(n_rows, size=min(samples, n_rows), replace=False)
    images = [backend.lf(int(r)) for r in rows]
    if len(set(images)) != len(images):
        raise IndexValidationError("LF mapping is not injective on the sample")
    if any(not 0 <= i < n_rows for i in images):
        raise IndexValidationError("LF image out of range")
    report.record("lf_bijective", len(rows))

    # 3. Occ monotonicity with unit steps.
    for a in range(SIGMA):
        positions = np.sort(rng.choice(n_rows + 1, size=min(samples, n_rows + 1), replace=False))
        values = [backend.occ(a, int(p)) for p in positions]
        for (p1, v1), (p2, v2) in zip(zip(positions, values), zip(positions[1:], values[1:])):
            if not (0 <= v2 - v1 <= p2 - p1):
                raise IndexValidationError(
                    f"Occ({a}, ·) not monotone with unit steps between "
                    f"{p1} and {p2}: {v1} -> {v2}"
                )
    report.record("occ_monotone", SIGMA * min(samples, n_rows + 1))

    # 4/5. SA-backed checks when a full SA is present.
    loc = index.locate_structure
    if isinstance(loc, FullSA):
        sa = loc.sa
        n = n_rows - 1
        if not np.array_equal(np.sort(sa), np.arange(n_rows)):
            raise IndexValidationError("suffix array is not a permutation")
        if n >= 8:
            # Patterns recovered from the index itself (via LF extraction,
            # independent of any stored text) must be located back at the
            # positions they were extracted from.
            from .extract import TextExtractor

            extractor = TextExtractor(backend, sa, sample_rate=max(1, n // 8))
            for _ in range(min(samples, 32)):
                start = int(rng.integers(0, n - 7))
                pattern = extractor.extract(start, 8)
                hits = index.locate(pattern)
                if start not in hits.tolist():
                    raise IndexValidationError(
                        f"pattern extracted at {start} not located there"
                    )
            report.record("locate_roundtrip", min(samples, 32))
    return report

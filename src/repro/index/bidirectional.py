"""Bidirectional FM-index: extend matches in either direction.

The plain FM-index extends matches only leftward (backward search).
The bidirectional variant (Lam et al. 2009's 2BWT, the engine inside
SOAP2 and modern aligners) maintains *synchronized* intervals over the
BWT of the text and of its reverse, allowing a match to grow on either
end.  That unlocks the **pigeonhole** strategy for approximate matching
the paper lists as future work: for one substitution, split the read in
half — the error lies in one half, so the other half matches exactly
and can be extended across the error from the middle outward, pruning
enormously compared to blind backtracking
(``benchmarks/bench_ablation_mismatch.py`` quantifies the step savings).

Synchronization invariant: if ``[lo, hi)`` is the SA interval of pattern
``P`` in the text ``T``, then ``[lo_r, hi_r)`` is the SA interval of
``reverse(P)`` in ``reverse(T)`` and ``hi - lo == hi_r - lo_r``.

* ``extend_left(a)`` updates ``[lo, hi)`` by ordinary backward search;
  the reverse interval shifts by the count of occurrences of symbols
  *smaller than* ``a`` within the current interval (computed with one
  Occ pair per smaller symbol) and shrinks to the new width.
* ``extend_right(a)`` is the mirror image, driven by the reverse index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counters import OpCounters
from ..sequence.alphabet import encode
from .builder import build_index

SIGMA = 4


@dataclass(frozen=True)
class BiInterval:
    """Synchronized (forward, reverse) SA intervals of one pattern."""

    lo: int
    hi: int
    lo_r: int
    hi_r: int

    @property
    def count(self) -> int:
        return max(0, self.hi - self.lo)

    @property
    def empty(self) -> bool:
        return self.hi <= self.lo


class BidirectionalFMIndex:
    """Two synchronized FM-indexes (text and reversed text).

    Parameters
    ----------
    text:
        The reference string (or 2-bit code array).
    b, sf:
        RRR parameters for both underlying structures.
    ftab_k:
        When set, both underlying indexes precompute k-mer jump-start
        tables and :meth:`search` seeds its synchronized interval from
        one table read per direction instead of ``k`` extension steps.
    """

    def __init__(self, text, b: int = 15, sf: int = 50,
                 counters: OpCounters | None = None,
                 ftab_k: int | None = None):
        codes = encode(text) if isinstance(text, str) else np.asarray(text, dtype=np.uint8)
        self.counters = counters if counters is not None else OpCounters()
        self.fwd, _ = build_index(codes, b=b, sf=sf, locate="full",
                                  counters=self.counters, ftab_k=ftab_k)
        self.rev, _ = build_index(codes[::-1].copy(), b=b, sf=sf, locate="none",
                                  counters=self.counters, ftab_k=ftab_k)
        self.n_rows = self.fwd.n_rows

    # -- interval algebra ---------------------------------------------------------

    def whole(self) -> BiInterval:
        """The empty-pattern interval (every row, both directions)."""
        return BiInterval(0, self.n_rows, 0, self.n_rows)

    def extend_left(self, iv: BiInterval, a: int) -> BiInterval:
        """Prepend symbol ``a``: ``P -> aP``."""
        if not 0 <= a < SIGMA:
            raise ValueError(f"symbol {a} outside DNA alphabet")
        if iv.empty:
            return BiInterval(iv.lo, iv.lo, iv.lo_r, iv.lo_r)
        self.counters.bs_steps += 1
        backend = self.fwd.backend
        lo = backend.count_smaller(a) + backend.occ(a, iv.lo)
        hi = backend.count_smaller(a) + backend.occ(a, iv.hi)
        # Occurrences of strictly-smaller symbols inside [iv.lo, iv.hi)
        # shift the reverse interval's start (plus the sentinel if the
        # interval contains the row whose BWT char is $).
        smaller = 0
        for c in range(a):
            smaller += backend.occ(c, iv.hi) - backend.occ(c, iv.lo)
        # The sentinel sorts before every symbol; its (single) occurrence
        # inside the interval also shifts the reverse start.
        if iv.lo <= backend.dollar_pos < iv.hi:
            smaller += 1
        lo_r = iv.lo_r + smaller
        hi_r = lo_r + (hi - lo)
        return BiInterval(lo, hi, lo_r, hi_r)

    def extend_right(self, iv: BiInterval, a: int) -> BiInterval:
        """Append symbol ``a``: ``P -> Pa`` (mirror via the reverse index)."""
        if not 0 <= a < SIGMA:
            raise ValueError(f"symbol {a} outside DNA alphabet")
        if iv.empty:
            return BiInterval(iv.lo, iv.lo, iv.lo_r, iv.lo_r)
        self.counters.bs_steps += 1
        backend = self.rev.backend
        lo_r = backend.count_smaller(a) + backend.occ(a, iv.lo_r)
        hi_r = backend.count_smaller(a) + backend.occ(a, iv.hi_r)
        smaller = 0
        for c in range(a):
            smaller += backend.occ(c, iv.hi_r) - backend.occ(c, iv.lo_r)
        d = backend.dollar_pos
        if iv.lo_r <= d < iv.hi_r:
            smaller += 1
        lo = iv.lo + smaller
        hi = lo + (hi_r - lo_r)
        return BiInterval(lo, hi, lo_r, hi_r)

    # -- searches --------------------------------------------------------------------

    def empty_pattern(self) -> BiInterval:
        """The empty pattern's interval: every row but the sentinel's, in
        both orientations (DESIGN.md §9) — ``count == len(text)``."""
        lo = min(1, self.n_rows)
        return BiInterval(lo, self.n_rows, lo, self.n_rows)

    def search(self, pattern) -> BiInterval:
        """Exact search (leftward), returning the synchronized interval.

        With jump-start tables attached (``ftab_k``), the length-``k``
        suffix's forward interval comes from the forward table and the
        reverse interval of the *reversed* suffix from the reverse
        table — the two are synchronized by the invariant that equal
        strings have equal counts in text and reversed text.  Entries
        that emptied inside the seed region fall back to the stepwise
        chain, so results stay bit-identical with and without tables.
        """
        codes = encode(pattern) if isinstance(pattern, str) else np.asarray(pattern)
        if codes.size == 0:
            return self.empty_pattern()
        ftab_f = self.fwd.ftab if self.fwd.use_ftab else None
        ftab_r = self.rev.ftab if self.rev.use_ftab else None
        if (
            ftab_f is not None
            and ftab_r is not None
            and ftab_r.k == ftab_f.k
            and codes.size >= ftab_f.k
        ):
            k = ftab_f.k
            lo, hi, st = ftab_f.lookup(codes)
            if st == k and lo < hi:
                rev_kmer = np.ascontiguousarray(codes[-k:][::-1])
                lo_r, hi_r, st_r = ftab_r.lookup(rev_kmer)
                if st_r == k and hi_r - lo_r == hi - lo:
                    self.counters.ftab_lookups += 2
                    iv = BiInterval(lo, hi, lo_r, hi_r)
                    for a in codes[:-k][::-1]:
                        iv = self.extend_left(iv, int(a))
                        if iv.empty:
                            break
                    return iv
        iv = self.whole()
        for a in codes[::-1]:
            iv = self.extend_left(iv, int(a))
            if iv.empty:
                break
        return iv

    def search_from_middle(self, pattern, split: int | None = None) -> BiInterval:
        """Exact search growing outward from ``pattern[split]``.

        Matches the plain search's interval exactly (tests enforce it);
        exists because outward growth is the primitive the pigeonhole
        strategy composes.
        """
        codes = encode(pattern) if isinstance(pattern, str) else np.asarray(pattern)
        m = int(codes.size)
        if m == 0:
            return self.empty_pattern()
        split = m // 2 if split is None else split
        if not 0 <= split < m:
            raise ValueError(f"split {split} out of range [0, {m})")
        iv = self.extend_left(self.whole(), int(codes[split]))
        for j in range(split + 1, m):
            iv = self.extend_right(iv, int(codes[j]))
            if iv.empty:
                return iv
        for j in range(split - 1, -1, -1):
            iv = self.extend_left(iv, int(codes[j]))
            if iv.empty:
                return iv
        return iv

    def locate(self, iv: BiInterval) -> np.ndarray:
        """Text positions of a forward interval."""
        if iv.empty:
            return np.zeros(0, dtype=np.int64)
        loc = self.fwd.locate_structure
        return np.sort(loc.locate_range(iv.lo, iv.hi, lf=self.fwd.backend.lf))

    # -- pigeonhole 1-mismatch search ------------------------------------------------

    def search_one_mismatch(self, pattern) -> list[tuple[BiInterval, int]]:
        """All intervals matching with exactly 0 or 1 substitution.

        Pigeonhole over two halves: case A anchors the exact right half
        and extends left, substituting at each left position; case B
        anchors the exact left half and extends right.  Returns
        ``(interval, mismatch_position)`` pairs with ``-1`` marking the
        exact match; intervals are distinct by construction (each matched
        string differs).
        """
        codes = encode(pattern) if isinstance(pattern, str) else np.asarray(pattern)
        m = int(codes.size)
        out: list[tuple[BiInterval, int]] = []
        exact = self.search(codes)
        if not exact.empty:
            out.append((exact, -1))
        if m < 2:
            # Single symbol: substitutions are the other three symbols.
            for a in range(SIGMA):
                if m == 1 and a != int(codes[0]):
                    iv = self.extend_left(self.whole(), a)
                    if not iv.empty:
                        out.append((iv, 0))
            return out
        split = m // 2
        # Case A: error in the left half [0, split); right half exact.
        iv0 = self.whole()
        right_exact = iv0
        for j in range(m - 1, split - 1, -1):
            right_exact = self.extend_left(right_exact, int(codes[j]))
            if right_exact.empty:
                break
        if not right_exact.empty:
            self._branch_left(codes, split - 1, right_exact, out)
        # Case B: error in the right half [split, m); left half exact.
        left_exact = self.extend_left(self.whole(), int(codes[0]))
        for j in range(1, split):
            if left_exact.empty:
                break
            left_exact = self.extend_right(left_exact, int(codes[j]))
        if not left_exact.empty:
            self._branch_right(codes, split, left_exact, out)
        return out

    def _branch_left(self, codes, pos, iv, out):
        """Extend leftward from ``pos`` down to 0, spending one mismatch.

        Exact extensions descend; the first (and only) substitution at
        position ``j`` completes the remaining prefix exactly.  The
        all-exact path is the 0-mismatch match, reported by ``search``.
        """
        stack = [(pos, iv)]
        while stack:
            j, cur = stack.pop()
            if j < 0:
                continue
            want = int(codes[j])
            for a in range(SIGMA):
                nxt = self.extend_left(cur, a)
                if nxt.empty:
                    continue
                if a == want:
                    stack.append((j - 1, nxt))
                else:
                    done = nxt
                    ok = True
                    for jj in range(j - 1, -1, -1):
                        done = self.extend_left(done, int(codes[jj]))
                        if done.empty:
                            ok = False
                            break
                    if ok:
                        out.append((done, j))

    def _branch_right(self, codes, pos, iv, out):
        """Extend rightward from ``pos`` to the end, spending one mismatch."""
        m = int(np.asarray(codes).size)
        stack = [(pos, iv)]
        while stack:
            j, cur = stack.pop()
            if j >= m:
                continue
            want = int(codes[j])
            for a in range(SIGMA):
                nxt = self.extend_right(cur, a)
                if nxt.empty:
                    continue
                if a == want:
                    if j + 1 < m:
                        stack.append((j + 1, nxt))
                    # Exact completion of the right half is the 0-mismatch
                    # case, already reported by `search`.
                else:
                    done = nxt
                    ok = True
                    for jj in range(j + 1, m):
                        done = self.extend_right(done, int(codes[jj]))
                        if done.empty:
                            ok = False
                            break
                    if ok:
                        out.append((done, j))

    def size_in_bytes(self) -> int:
        """Both structures (the bidirectional index costs ~2x one)."""
        return self.fwd.backend.size_in_bytes() + self.rev.backend.size_in_bytes()

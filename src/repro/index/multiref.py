"""Multi-sequence references: one index over many named sequences.

Real references are multi-FASTA (chromosomes, contigs, plasmids), while
the core FM-index addresses a single text.  The standard construction —
used by BWA and Bowtie2, and adopted here — concatenates the sequences
and indexes the concatenation, then:

* translates global hit positions back to ``(sequence, local position)``
  through the offset table, and
* **filters hits that span a sequence boundary** (an artifact of the
  concatenation — such a match does not exist in any real sequence).

Because spanning hits must be removed, ``count`` on a multi-reference
index necessarily locates; the pure-counting fast path of the
single-sequence index remains available per record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.counters import OpCounters
from ..sequence.alphabet import is_valid, reverse_complement
from .builder import Backend, build_index


@dataclass(frozen=True)
class ReferenceHit:
    """One occurrence localized to a named sequence."""

    name: str
    position: int
    strand: str  # '+' or '-'


@dataclass(frozen=True)
class MultiRefMapping:
    """All valid occurrences of one read across the reference set."""

    read_id: int
    hits: tuple[ReferenceHit, ...]

    @property
    def mapped(self) -> bool:
        return bool(self.hits)


class MultiReferenceIndex:
    """FM-index over a set of named sequences.

    Parameters
    ----------
    records:
        ``(name, sequence)`` pairs (or objects with ``.name`` and
        ``.sequence``, e.g. :class:`~repro.io.fasta.FastaRecord`).
    b, sf, backend:
        Forwarded to :func:`~repro.index.builder.build_index`.
    """

    def __init__(
        self,
        records: Sequence,
        b: int = 15,
        sf: int = 50,
        backend: Backend = "rrr",
        counters: OpCounters | None = None,
    ):
        pairs = []
        for rec in records:
            if hasattr(rec, "name") and hasattr(rec, "sequence"):
                pairs.append((rec.name, rec.sequence))
            else:
                name, seq = rec
                pairs.append((str(name), str(seq)))
        if not pairs:
            raise ValueError("at least one reference sequence is required")
        names = [n for n, _ in pairs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate sequence names: {dupes}")
        if any(not s for _, s in pairs):
            empty = [n for n, s in pairs if not s]
            raise ValueError(f"empty sequences: {empty}")
        self.names: tuple[str, ...] = tuple(names)
        # name -> registration ordinal; hit ordering and coordinate
        # translation are O(1) per lookup instead of O(S) list scans
        # (the serving router reuses the same scheme for cross-shard
        # merge ordering).
        self.ordinals: dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.lengths = np.array([len(s) for _, s in pairs], dtype=np.int64)
        # offsets[i] = global start of sequence i; final entry = total.
        self.offsets = np.concatenate(([0], np.cumsum(self.lengths)))
        concatenated = "".join(s for _, s in pairs)
        self.index, self.build_report = build_index(
            concatenated, b=b, sf=sf, backend=backend, locate="full", counters=counters
        )

    # -- coordinate translation ---------------------------------------------------

    def to_global(self, name: str, position: int) -> int:
        """``(sequence, local)`` → global concatenation coordinate."""
        try:
            idx = self.ordinals[name]
        except KeyError:
            raise KeyError(f"unknown sequence {name!r}") from None
        if not 0 <= position < self.lengths[idx]:
            raise IndexError(
                f"position {position} out of range for {name!r} "
                f"(length {self.lengths[idx]})"
            )
        return int(self.offsets[idx]) + position

    def to_local(self, global_pos: int) -> tuple[str, int]:
        """Global coordinate → ``(sequence name, local position)``."""
        total = int(self.offsets[-1])
        if not 0 <= global_pos < total:
            raise IndexError(f"global position {global_pos} out of range [0, {total})")
        idx = int(np.searchsorted(self.offsets, global_pos, side="right")) - 1
        return self.names[idx], global_pos - int(self.offsets[idx])

    def _valid_hits(self, positions: np.ndarray, length: int) -> list[tuple[str, int]]:
        """Drop concatenation-boundary-spanning hits; localize the rest."""
        out: list[tuple[str, int]] = []
        for p in positions.tolist():
            idx = int(np.searchsorted(self.offsets, p, side="right")) - 1
            local = p - int(self.offsets[idx])
            if local + length <= int(self.lengths[idx]):
                out.append((self.names[idx], local))
        return out

    # -- queries ---------------------------------------------------------------------

    def locate(self, pattern: str) -> list[tuple[str, int]]:
        """All valid ``(sequence, position)`` occurrences of ``pattern``."""
        positions = self.index.locate(pattern)
        return self._valid_hits(positions, len(pattern))

    def count(self, pattern: str) -> int:
        """Valid occurrences (boundary-spanning artifacts excluded)."""
        return len(self.locate(pattern))

    def map_read(self, read: str, read_id: int = 0) -> MultiRefMapping:
        """Both-strand mapping with per-sequence coordinates.

        Invalid reads (``N``/IUPAC bases) come back unmapped, matching
        the single-reference mapper's N-policy.
        """
        if not is_valid(read):
            self.index.counters.reads_invalid += 1
            return MultiRefMapping(read_id=read_id, hits=())
        hits: list[ReferenceHit] = []
        for strand, seq in (("+", read), ("-", reverse_complement(read))):
            for name, pos in self.locate(seq):
                hits.append(ReferenceHit(name=name, position=pos, strand=strand))
        hits.sort(key=lambda h: (self.ordinals[h.name], h.position, h.strand))
        return MultiRefMapping(read_id=read_id, hits=tuple(hits))

    def map_reads(self, reads: Sequence[str]) -> list[MultiRefMapping]:
        return [self.map_read(r, i) for i, r in enumerate(reads)]

    # -- info -------------------------------------------------------------------------

    @property
    def n_sequences(self) -> int:
        return len(self.names)

    @property
    def total_length(self) -> int:
        return int(self.offsets[-1])

    def sequence_length(self, name: str) -> int:
        try:
            return int(self.lengths[self.ordinals[name]])
        except KeyError:
            raise KeyError(f"unknown sequence {name!r}") from None

    def sam_header(self) -> list[str]:
        """``@SQ`` lines for SAM output over this reference set."""
        lines = ["@HD\tVN:1.6\tSO:unknown"]
        for name, length in zip(self.names, self.lengths.tolist()):
            lines.append(f"@SQ\tSN:{name}\tLN:{length}")
        return lines

    def __repr__(self) -> str:
        return (
            f"MultiReferenceIndex(sequences={self.n_sequences}, "
            f"total={self.total_length} bp)"
        )

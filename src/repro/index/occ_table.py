"""Checkpointed occurrence table: the classic FM-index backend.

This is the "re-sampling of the index data" approach the paper contrasts
with succinct structures (§I): BWA and Bowtie2 keep the BWT itself in
2-bit packed form plus absolute symbol counts sampled every ``d`` rows;
``Occ(a, i)`` reads the nearest checkpoint at or below ``i`` and scans the
few packed words in between with bit tricks.

It implements the same backend protocol as
:class:`repro.core.bwt_structure.BWTStructure` (``occ``, ``occ_many``,
``count_smaller``, ``access``, ``lf``, ``n_rows``, ``size_in_bytes``), so
the FM-index, the mapper, and the Bowtie2-like baseline can swap backends
freely — which is exactly what the structure ablation measures.

Packing: 32 bases per 64-bit word, base ``j`` of a word in bits
``2j .. 2j+1`` (LSB-first, consistent with :mod:`repro.core.bitvector`).
Counting a symbol inside a word is three boolean ops and a popcount:
XOR with the symbol pattern turns matches into ``00`` pairs, and
``~y & (~y >> 1) & 0x5555...`` leaves one set bit per match.
"""

from __future__ import annotations

import numpy as np

from ..core.bitvector import popcount_u64
from ..core.counters import GLOBAL_COUNTERS, OpCounters
from ..sequence.bwt import BWT, count_array

SIGMA = 4
BASES_PER_WORD = 32
_LOW_PAIR_MASK = np.uint64(0x5555555555555555)
#: Per-symbol XOR patterns: symbol code repeated in every 2-bit lane.
_SYMBOL_PATTERNS = np.array(
    [int(f"{c:02b}" * 32, 2) for c in range(SIGMA)], dtype=np.uint64
)


def pack_2bit(codes: np.ndarray) -> np.ndarray:
    """Pack 2-bit codes into uint64 words, 32 bases per word."""
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    n_words = (n + BASES_PER_WORD - 1) // BASES_PER_WORD
    padded = np.zeros(n_words * BASES_PER_WORD, dtype=np.uint64)
    padded[:n] = codes
    lanes = padded.reshape(-1, BASES_PER_WORD)
    shifts = (2 * np.arange(BASES_PER_WORD, dtype=np.uint64))[None, :]
    return (lanes << shifts).sum(axis=1, dtype=np.uint64) if n_words else np.zeros(0, dtype=np.uint64)


def unpack_2bit(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_2bit`."""
    words = np.asarray(words, dtype=np.uint64)
    shifts = (2 * np.arange(BASES_PER_WORD, dtype=np.uint64))[None, :]
    lanes = (words[:, None] >> shifts) & np.uint64(3)
    return lanes.reshape(-1)[:n].astype(np.uint8)


def count_symbol_prefix(word: np.uint64, symbol: int, upto: int) -> int:
    """Occurrences of ``symbol`` among the first ``upto`` bases of a word."""
    if upto == 0:
        return 0
    y = np.uint64(word) ^ _SYMBOL_PATTERNS[symbol]
    ny = ~y
    hits = ny & (ny >> np.uint64(1)) & _LOW_PAIR_MASK
    if upto < BASES_PER_WORD:
        hits &= (np.uint64(1) << np.uint64(2 * upto)) - np.uint64(1)
    return int(popcount_u64(np.array([hits]))[0])


class OccTable:
    """BWA/Bowtie-style FM-index backend with ``d``-row checkpoints.

    Parameters
    ----------
    bwt:
        The transformed reference.
    checkpoint_words:
        Checkpoint spacing in 64-bit words; the row spacing is
        ``32 * checkpoint_words`` (BWA's default layout corresponds to
        ``checkpoint_words=4`` → one checkpoint per 128 rows).
    counters:
        Operation counters (``occ_checkpoint_ranks`` / ``occ_scan_chars``).
    """

    def __init__(
        self,
        bwt: BWT,
        checkpoint_words: int = 4,
        counters: OpCounters | None = None,
    ):
        if checkpoint_words < 1:
            raise ValueError("checkpoint spacing must be >= 1 word")
        self.bwt = bwt
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self.dollar_pos = bwt.dollar_pos
        self.n_rows = bwt.length
        self.checkpoint_words = int(checkpoint_words)
        self.d_rows = BASES_PER_WORD * self.checkpoint_words
        sym = bwt.symbols_without_sentinel()
        self.n_sym = int(sym.size)
        self.words = pack_2bit(sym)
        # Checkpoints: counts of each symbol strictly before every
        # checkpoint boundary (row multiples of d_rows in sentinel-free
        # coordinates), shape (n_checkpoints, 4).
        n_checkpoints = self.words.size // self.checkpoint_words + 1
        cum = np.zeros((n_checkpoints, SIGMA), dtype=np.int64)
        if self.n_sym:
            onehot = np.zeros((self.n_sym, SIGMA), dtype=np.int64)
            onehot[np.arange(self.n_sym), sym.astype(np.int64)] = 1
            full_cum = np.concatenate(
                [np.zeros((1, SIGMA), dtype=np.int64), np.cumsum(onehot, axis=0)]
            )
            boundaries = np.minimum(
                np.arange(n_checkpoints) * self.d_rows, self.n_sym
            )
            cum = full_cum[boundaries]
        if cum.size and cum.max() <= np.iinfo(np.uint32).max:
            self.checkpoints = cum.astype(np.uint32)
        else:
            self.checkpoints = cum
        text_codes = sym  # BWT permutes the text; counts are equal
        self.C = count_array(text_codes, sigma=SIGMA)

    # -- backend protocol ------------------------------------------------------

    def occ(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in ``BWT[0:i]`` (sentinel row aware)."""
        if not 0 <= symbol < SIGMA:
            raise ValueError(f"symbol {symbol} outside DNA alphabet")
        if not 0 <= i <= self.n_rows:
            raise IndexError(f"occ position {i} out of range [0, {self.n_rows}]")
        j = i - 1 if i > self.dollar_pos else i
        return self._rank_sym(symbol, j)

    def _rank_sym(self, symbol: int, j: int) -> int:
        c = self.counters
        c.occ_checkpoint_ranks += 1
        cp = j // self.d_rows
        count = int(self.checkpoints[cp, symbol])
        base = cp * self.d_rows
        remaining = j - base
        word_idx = cp * self.checkpoint_words
        c.occ_scan_chars += remaining
        while remaining >= BASES_PER_WORD:
            count += count_symbol_prefix(self.words[word_idx], symbol, BASES_PER_WORD)
            word_idx += 1
            remaining -= BASES_PER_WORD
        if remaining:
            count += count_symbol_prefix(self.words[word_idx], symbol, remaining)
        return count

    def occ_many(self, symbol: int, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`occ`."""
        p = np.asarray(positions, dtype=np.int64)
        if p.size == 0:
            return np.zeros(0, dtype=np.int64)
        j = np.where(p > self.dollar_pos, p - 1, p)
        cp = j // self.d_rows
        counts = self.checkpoints[cp, symbol].astype(np.int64)
        base = cp * self.d_rows
        # Charge counters exactly as the scalar path would.
        self.counters.occ_checkpoint_ranks += int(p.size)
        self.counters.occ_scan_chars += int((j - base).sum())
        # Scan whole words vectorized: for each query, sum matches over its
        # checkpoint-local words.  Queries share few distinct (cp, span)
        # combos; handle by looping over word offsets within a checkpoint
        # (bounded by checkpoint_words, a small constant).
        pattern = _SYMBOL_PATTERNS[symbol]
        padded_words = np.concatenate([self.words, np.zeros(1, dtype=np.uint64)])
        for w in range(self.checkpoint_words):
            word_start = base + w * BASES_PER_WORD
            upto = np.clip(j - word_start, 0, BASES_PER_WORD)
            active = upto > 0
            if not np.any(active):
                break
            widx = np.minimum(cp[active] * self.checkpoint_words + w, self.words.size)
            y = padded_words[widx] ^ pattern
            ny = ~y
            hits = ny & (ny >> np.uint64(1)) & _LOW_PAIR_MASK
            partial = upto[active] < BASES_PER_WORD
            masks = np.where(
                partial,
                (np.uint64(1) << (2 * upto[active]).astype(np.uint64)) - np.uint64(1),
                np.uint64(0xFFFFFFFFFFFFFFFF),
            )
            counts[active] += popcount_u64(hits & masks)
        return counts

    def occ2_many(
        self, symbol: int, lo_positions: np.ndarray, hi_positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`occ_many` at both interval boundaries.

        A single vectorized pass serves the concatenated bound sets, so
        the checkpoint gather and the per-word popcount scan are shared
        between ``lo`` and ``hi`` instead of running twice.  Results and
        counter charges match two :meth:`occ_many` calls.
        """
        plo = np.asarray(lo_positions, dtype=np.int64)
        phi = np.asarray(hi_positions, dtype=np.int64)
        counts = self.occ_many(symbol, np.concatenate([plo, phi]))
        return counts[: plo.size], counts[plo.size :]

    def count_smaller(self, symbol: int) -> int:
        return int(self.C[symbol])

    # -- zero-copy rehydration ----------------------------------------------

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The packed table as (metadata, named arrays); no copies."""
        meta = {
            "checkpoint_words": self.checkpoint_words,
            "dollar_pos": int(self.dollar_pos),
            "n_rows": int(self.n_rows),
            "n_sym": int(self.n_sym),
        }
        arrays = {
            "words": self.words,
            "checkpoints": self.checkpoints,
            "C": self.C,
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        meta: dict,
        arrays: dict[str, np.ndarray],
        bwt: BWT | None = None,
        counters: OpCounters | None = None,
    ) -> "OccTable":
        """Rehydrate around externally owned buffers without repacking."""
        self = cls.__new__(cls)
        self.checkpoint_words = int(meta["checkpoint_words"])
        self.d_rows = BASES_PER_WORD * self.checkpoint_words
        self.dollar_pos = int(meta["dollar_pos"])
        self.n_rows = int(meta["n_rows"])
        self.n_sym = int(meta["n_sym"])
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self.words = arrays["words"]
        self.checkpoints = arrays["checkpoints"]
        self.C = arrays["C"]
        self.bwt = bwt
        return self

    def access(self, i: int) -> int:
        """BWT symbol at row ``i``; ``-1`` for the sentinel row."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        if i == self.dollar_pos:
            return -1
        j = i - 1 if i > self.dollar_pos else i
        word = int(self.words[j // BASES_PER_WORD])
        return (word >> (2 * (j % BASES_PER_WORD))) & 3

    def lf(self, i: int) -> int:
        sym = self.access(i)
        if sym == -1:
            return 0
        return self.count_smaller(sym) + self.occ(sym, i)

    def lf_many(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lf`: one 2-bit gather plus one
        :meth:`occ_many` per distinct symbol.  Identical to the scalar
        path row by row."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        j = np.where(rows > self.dollar_pos, rows - 1, rows)
        if self.words.size:
            words = self.words[j // BASES_PER_WORD]
            shifts = (2 * (j % BASES_PER_WORD)).astype(np.uint64)
            syms = ((words >> shifts) & np.uint64(3)).astype(np.int64)
        else:
            syms = np.zeros(rows.size, dtype=np.int64)
        syms[rows == self.dollar_pos] = -1
        out = np.zeros(rows.size, dtype=np.int64)
        for a in range(SIGMA):
            m = syms == a
            if np.any(m):
                out[m] = int(self.C[a]) + self.occ_many(a, rows[m])
        return out

    def size_in_bytes(self, include_shared: bool = True) -> int:
        """Packed BWT + checkpoints + C (``include_shared`` accepted for
        protocol compatibility; there are no shared tables here)."""
        return int(self.words.nbytes + self.checkpoints.nbytes + self.C.nbytes + 8)

    def build_batch_cache(self) -> None:
        """No-op: this backend's batch path needs no extra scratch."""

    def __repr__(self) -> str:
        return (
            f"OccTable(n={self.n_rows - 1}, d={self.d_rows}, "
            f"bytes={self.size_in_bytes()})"
        )

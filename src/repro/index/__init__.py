"""FM-index layer: backward search over pluggable rank backends."""

from .bidirectional import BidirectionalFMIndex, BiInterval
from .build_stream import (
    BuildResumeError,
    StreamingRRREncoder,
    build_index_blockwise,
)
from .builder import BuildReport, build_index, encode_existing_bwt
from .extract import TextExtractor
from .flat import (
    FlatWriter,
    attach_index_from_buffer,
    detect_index_format,
    load_any_index_auto,
    load_index_auto,
    load_index_flat,
    load_multiref_index_flat,
    save_index_flat,
    save_multiref_index_flat,
    verify_flat_index,
)
from .fm_index import FMIndex, SearchResult
from .ftab import DEFAULT_FTAB_K, Ftab, build_ftab
from .multiref import MultiReferenceIndex, MultiRefMapping, ReferenceHit
from .occ_table import OccTable, pack_2bit, unpack_2bit
from .partitioned import Chunk, PartitionedIndex
from .serialization import (
    IndexFormatError,
    load_index,
    load_multiref_index,
    save_index,
    save_multiref_index,
)
from .validate import IndexValidationError, ValidationReport, validate_index

__all__ = [
    "BiInterval",
    "BidirectionalFMIndex",
    "BuildReport",
    "BuildResumeError",
    "Chunk",
    "DEFAULT_FTAB_K",
    "FMIndex",
    "FlatWriter",
    "Ftab",
    "IndexFormatError",
    "IndexValidationError",
    "MultiRefMapping",
    "MultiReferenceIndex",
    "OccTable",
    "PartitionedIndex",
    "ReferenceHit",
    "SearchResult",
    "StreamingRRREncoder",
    "TextExtractor",
    "ValidationReport",
    "attach_index_from_buffer",
    "build_ftab",
    "build_index",
    "build_index_blockwise",
    "detect_index_format",
    "encode_existing_bwt",
    "load_any_index_auto",
    "load_index",
    "load_index_auto",
    "load_index_flat",
    "load_multiref_index",
    "load_multiref_index_flat",
    "pack_2bit",
    "save_index",
    "save_index_flat",
    "save_multiref_index",
    "save_multiref_index_flat",
    "unpack_2bit",
    "validate_index",
    "verify_flat_index",
]

"""FM-index layer: backward search over pluggable rank backends."""

from .bidirectional import BidirectionalFMIndex, BiInterval
from .builder import BuildReport, build_index, encode_existing_bwt
from .extract import TextExtractor
from .fm_index import FMIndex, SearchResult
from .multiref import MultiReferenceIndex, MultiRefMapping, ReferenceHit
from .occ_table import OccTable, pack_2bit, unpack_2bit
from .partitioned import Chunk, PartitionedIndex
from .serialization import (
    IndexFormatError,
    load_index,
    load_multiref_index,
    save_index,
    save_multiref_index,
)
from .validate import IndexValidationError, ValidationReport, validate_index

__all__ = [
    "BiInterval",
    "BidirectionalFMIndex",
    "BuildReport",
    "Chunk",
    "FMIndex",
    "IndexFormatError",
    "IndexValidationError",
    "MultiRefMapping",
    "MultiReferenceIndex",
    "OccTable",
    "PartitionedIndex",
    "ReferenceHit",
    "SearchResult",
    "TextExtractor",
    "ValidationReport",
    "build_index",
    "encode_existing_bwt",
    "load_index",
    "load_multiref_index",
    "pack_2bit",
    "save_index",
    "save_multiref_index",
    "unpack_2bit",
    "validate_index",
]

"""Flat zero-copy index container: build once, map everywhere, copy never.

The ``.npz`` path in :mod:`repro.index.serialization` stores the *raw*
BWT and re-encodes the succinct structure on every load — robust, but it
decompresses and copies every array and pays the full wavelet-tree
encoding cost per process.  This module provides the production-serving
alternative BWaveR's architecture implies: the index is a shared,
read-only artifact, so the *encoded* layout (every RRR node's classes,
partial sums and offset stream, the C array, the packed Occ words, the
suffix array) is written to a versioned binary container whose array
segments are 64-byte aligned.  Opening the container is ``np.memmap``
plus a JSON manifest read — O(1) in the index size — and the arrays page
in lazily from the OS page cache, so N processes mapping the same file
share one physical copy.

Container layout (little-endian)::

    bytes 0..7    magic  b"BWVRFLT1"
    bytes 8..11   uint32 container format version (1)
    bytes 12..15  uint32 manifest length M in bytes
    bytes 16..23  uint64 data_start (64-byte aligned file offset)
    bytes 24..    manifest: UTF-8 JSON {"meta": ..., "segments": [...]}
    data_start..  segments, each 64-byte aligned, raw C-order array bytes

Each manifest segment entry records ``name``, ``dtype`` (numpy dtype
string), ``shape``, ``offset`` (relative to ``data_start``), ``nbytes``
and ``crc32`` — the same per-array checksum scheme the fault framework
uses for the ``.npz`` archives.  Checksums are verified on demand
(``verify=True`` or :func:`verify_flat_index`), not on open: touching
every page on open would defeat the O(1) attach that is the point of the
format.  All structural failures raise
:class:`~repro.index.serialization.IndexFormatError`.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import time
import zlib
from pathlib import Path

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..core.counters import OpCounters
from ..sequence.bwt import BWT
from ..sequence.sampled_sa import FullSA, SampledSA
from ..telemetry import get_telemetry
from .fm_index import FMIndex
from .ftab import Ftab
from .occ_table import OccTable
from .serialization import IndexFormatError, load_index, load_multiref_index

MAGIC = b"BWVRFLT1"
FLAT_VERSION = 1
ALIGN = 64
_HEADER = struct.Struct("<8sIIQ")  # magic, version, manifest_len, data_start


def _align_up(n: int, align: int = ALIGN) -> int:
    return (n + align - 1) // align * align


# --------------------------------------------------------------------------
# Export: FMIndex -> (meta, named segments)
# --------------------------------------------------------------------------


def export_index(index: FMIndex) -> tuple[dict, dict[str, np.ndarray]]:
    """Decompose ``index`` into a JSON-able meta dict and named arrays.

    Segment names: ``bwt_codes`` and ``sa`` (the raw transform, shared
    with locate), ``backend/...`` (the encoded succinct layout),
    ``locate/...`` for locate structures with their own storage, and
    ``ftab/...`` for the optional k-mer jump-start table (a versioned
    optional segment group — containers written without it load fine,
    and readers predating it ignore unknown ``meta`` keys).
    """
    backend = index.backend
    if isinstance(backend, BWTStructure):
        kind = "rrr"
    elif isinstance(backend, OccTable):
        kind = "occ"
    else:
        raise IndexFormatError(
            f"cannot export backend of type {type(backend).__name__}"
        )
    bwt = backend.bwt
    if bwt is None:
        raise IndexFormatError(
            "index backend carries no BWT; cannot export the raw transform"
        )
    backend_meta, backend_arrays = backend.export_arrays()
    segments: dict[str, np.ndarray] = {
        "bwt_codes": np.ascontiguousarray(bwt.codes, dtype=np.uint8),
        "sa": np.ascontiguousarray(bwt.sa, dtype=np.int64),
    }
    for name, arr in backend_arrays.items():
        segments[f"backend/{name}"] = arr
    loc = index.locate_structure
    if loc is None:
        locate_kind, locate_meta = "none", {}
    elif isinstance(loc, FullSA):
        # FullSA wraps the suffix array already stored as the "sa"
        # segment; no extra storage.
        locate_kind, locate_meta = "full", {}
    elif isinstance(loc, SampledSA):
        locate_kind, locate_meta = "sampled", loc.export_arrays()[0]
        segments["locate/samples"] = loc.samples
    else:
        raise IndexFormatError(
            f"cannot export locate structure of type {type(loc).__name__}"
        )
    meta = {
        "version": FLAT_VERSION,
        "kind": "fmindex",
        "backend": kind,
        "backend_meta": backend_meta,
        "locate": locate_kind,
        "locate_meta": locate_meta,
    }
    if index.ftab is not None:
        ftab_meta, ftab_arrays = index.ftab.export_arrays()
        meta["ftab"] = ftab_meta
        for name, arr in ftab_arrays.items():
            segments[f"ftab/{name}"] = arr
    return meta, segments


# --------------------------------------------------------------------------
# Container layout / writing
# --------------------------------------------------------------------------


def _layout(meta: dict, segments: dict[str, np.ndarray]) -> tuple[bytes, list[dict], int, int]:
    """Compute the serialized manifest and segment placement.

    Returns ``(manifest_bytes, entries, data_start, total_size)``; entry
    offsets are relative to ``data_start`` so the manifest's own length
    never perturbs them.
    """
    entries: list[dict] = []
    rel = 0
    for name, arr in segments.items():
        arr = np.ascontiguousarray(arr)
        rel = _align_up(rel)
        entries.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": rel,
                "nbytes": int(arr.nbytes),
                "crc32": zlib.crc32(arr.tobytes()) & 0xFFFFFFFF,
            }
        )
        rel += int(arr.nbytes)
    manifest = json.dumps({"meta": meta, "segments": entries}).encode("utf-8")
    data_start = _align_up(_HEADER.size + len(manifest))
    total_size = data_start + rel
    return manifest, entries, data_start, max(total_size, data_start)


def flat_container_size(meta: dict, segments: dict[str, np.ndarray]) -> int:
    """Total container size in bytes (used to size shared-memory blocks)."""
    return _layout(meta, segments)[3]


def pack_flat_into(buf, meta: dict, segments: dict[str, np.ndarray]) -> int:
    """Serialize the container into a writable buffer (memoryview/ndarray).

    Writes header, manifest and every segment directly — no intermediate
    full-container copy — and returns the number of bytes used.  The
    buffer must be at least :func:`flat_container_size` long.
    """
    manifest, entries, data_start, total = _layout(meta, segments)
    out = np.frombuffer(buf, dtype=np.uint8, count=total) if not isinstance(buf, np.ndarray) else buf
    if out.nbytes < total:
        raise IndexFormatError(
            f"buffer of {out.nbytes} B too small for {total} B container"
        )
    header = _HEADER.pack(MAGIC, FLAT_VERSION, len(manifest), data_start)
    out[: len(header)] = np.frombuffer(header, dtype=np.uint8)
    out[len(header) : len(header) + len(manifest)] = np.frombuffer(manifest, dtype=np.uint8)
    out[len(header) + len(manifest) : data_start] = 0
    prev_end = data_start
    for entry, arr in zip(entries, segments.values()):
        start = data_start + entry["offset"]
        out[prev_end:start] = 0  # alignment padding
        flat = np.ascontiguousarray(arr).reshape(-1).view(np.uint8)
        out[start : start + entry["nbytes"]] = flat
        prev_end = start + entry["nbytes"]
    return total


def save_index_flat(index: FMIndex, path: str | Path) -> int:
    """Write ``index`` to ``path`` in the flat container format.

    Returns the container size in bytes.
    """
    meta, segments = export_index(index)
    return _write_container(meta, segments, path)


#: Slice size for streaming segment bytes to disk.  Bounds the transient
#: copy per write to a few MB even when a segment is a multi-GB memmap.
_STREAM_CHUNK = 1 << 20


class FlatWriter:
    """Append/finalize writer producing a flat container incrementally.

    The one-shot :func:`_write_container` needed every segment in memory
    at once (and ``arr.tobytes()`` doubled each one transiently).  The
    blockwise builder instead appends segments *as their arrays finish*
    — typically ``np.memmap`` views over spill files — and each
    :meth:`add_segment` streams the bytes to a temporary data file in
    ≤ 8 MB slices with a rolling CRC32, so peak RSS stays O(chunk).

    ``finalize(meta)`` writes header + manifest + the accumulated data
    region to ``path`` atomically (temp file + rename).  The output is
    byte-identical to the one-shot path for the same segment sequence:
    same alignment rule, same manifest JSON, same CRCs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data_path = self.path.with_name(self.path.name + ".data.tmp")
        self._fh = open(self._data_path, "wb")
        self._entries: list[dict] = []
        self._rel = 0
        self._done = False

    def add_segment(self, name: str, arr: np.ndarray) -> None:
        if self._done:
            raise IndexFormatError("FlatWriter already finalized")
        arr = np.ascontiguousarray(arr)
        pad = _align_up(self._rel) - self._rel
        if pad:
            self._fh.write(b"\x00" * pad)
            self._rel += pad
        flat = arr.reshape(-1).view(np.uint8)
        crc = 0
        for i in range(0, flat.nbytes, _STREAM_CHUNK):
            chunk = flat[i : i + _STREAM_CHUNK]
            crc = zlib.crc32(chunk, crc)
            self._fh.write(chunk)
        self._entries.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": self._rel,
                "nbytes": int(arr.nbytes),
                "crc32": crc & 0xFFFFFFFF,
            }
        )
        self._rel += int(arr.nbytes)

    def finalize(self, meta: dict) -> int:
        """Assemble the container at ``path``; returns its size in bytes."""
        if self._done:
            raise IndexFormatError("FlatWriter already finalized")
        self._done = True
        self._fh.close()
        manifest = json.dumps({"meta": meta, "segments": self._entries}).encode("utf-8")
        data_start = _align_up(_HEADER.size + len(manifest))
        total = data_start + self._rel
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "wb") as out, open(self._data_path, "rb") as src:
                out.write(_HEADER.pack(MAGIC, FLAT_VERSION, len(manifest), data_start))
                out.write(manifest)
                out.write(b"\x00" * (data_start - _HEADER.size - len(manifest)))
                shutil.copyfileobj(src, out, _STREAM_CHUNK)
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
            self._data_path.unlink(missing_ok=True)
        return max(total, data_start)

    def abort(self) -> None:
        """Discard partial output (safe to call after errors)."""
        if not self._done:
            self._done = True
            self._fh.close()
        self._data_path.unlink(missing_ok=True)

    def __enter__(self) -> "FlatWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()


def _write_container(meta: dict, segments: dict[str, np.ndarray], path: str | Path) -> int:
    with FlatWriter(path) as writer:
        for name, arr in segments.items():
            writer.add_segment(name, arr)
        return writer.finalize(meta)


def save_multiref_index_flat(multi, path: str | Path) -> int:
    """Flat-format counterpart of ``save_multiref_index``."""
    from .multiref import MultiReferenceIndex

    if not isinstance(multi, MultiReferenceIndex):
        raise IndexFormatError(
            f"expected a MultiReferenceIndex, got {type(multi).__name__}"
        )
    meta, segments = export_index(multi.index)
    meta["multiref"] = {"names": list(multi.names)}
    segments["seq_lengths"] = np.ascontiguousarray(multi.lengths, dtype=np.int64)
    return _write_container(meta, segments, path)


# --------------------------------------------------------------------------
# Attach: buffer -> FMIndex (no copies)
# --------------------------------------------------------------------------


def read_flat_manifest(buf: np.ndarray) -> tuple[dict, list[dict], int]:
    """Parse and validate the header + manifest of a container buffer.

    Returns ``(meta, segment_entries, data_start)``.
    """
    if buf.nbytes < _HEADER.size:
        raise IndexFormatError("flat container truncated: no header")
    magic, version, manifest_len, data_start = _HEADER.unpack(
        buf[: _HEADER.size].tobytes()
    )
    if magic != MAGIC:
        raise IndexFormatError(
            f"not a flat index container (bad magic {magic!r})"
        )
    if version != FLAT_VERSION:
        raise IndexFormatError(
            f"unsupported flat container version {version} "
            f"(this build reads version {FLAT_VERSION})"
        )
    if _HEADER.size + manifest_len > buf.nbytes or data_start > buf.nbytes:
        raise IndexFormatError("flat container truncated: manifest out of range")
    try:
        doc = json.loads(buf[_HEADER.size : _HEADER.size + manifest_len].tobytes())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"flat container manifest is corrupted: {exc}") from exc
    if not isinstance(doc, dict) or "meta" not in doc or "segments" not in doc:
        raise IndexFormatError("flat container manifest missing meta/segments")
    for entry in doc["segments"]:
        end = data_start + entry["offset"] + entry["nbytes"]
        if end > buf.nbytes:
            raise IndexFormatError(
                f"flat container truncated: segment {entry['name']!r} "
                f"ends at {end} > file size {buf.nbytes}"
            )
    return doc["meta"], doc["segments"], data_start


def _segment_views(
    buf: np.ndarray, entries: list[dict], data_start: int, verify: bool
) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for entry in entries:
        start = data_start + entry["offset"]
        raw = buf[start : start + entry["nbytes"]]
        if verify:
            if (zlib.crc32(raw.tobytes()) & 0xFFFFFFFF) != entry["crc32"]:
                raise IndexFormatError(
                    f"checksum mismatch for segment {entry['name']!r}: "
                    f"container is corrupted"
                )
        views[entry["name"]] = raw.view(np.dtype(entry["dtype"])).reshape(
            entry["shape"]
        )
    return views


def _rehydrate(
    meta: dict, views: dict[str, np.ndarray], counters: OpCounters | None
) -> FMIndex:
    if meta.get("kind") != "fmindex":
        raise IndexFormatError(f"unknown container kind {meta.get('kind')!r}")
    bm = meta["backend_meta"]
    try:
        bwt = BWT(
            codes=views["bwt_codes"],
            dollar_pos=int(bm["dollar_pos"]),
            sa=views["sa"],
        )
        backend_views = {
            name.removeprefix("backend/"): arr
            for name, arr in views.items()
            if name.startswith("backend/")
        }
        kind = meta.get("backend")
        if kind == "rrr":
            backend = BWTStructure.from_arrays(
                bm, backend_views, bwt=bwt, counters=counters
            )
        elif kind == "occ":
            backend = OccTable.from_arrays(
                bm, backend_views, bwt=bwt, counters=counters
            )
        else:
            raise IndexFormatError(f"unknown backend kind {kind!r}")
        locate = meta.get("locate", "none")
        if locate == "full":
            loc = FullSA.from_arrays({}, {"sa": views["sa"]})
        elif locate == "sampled":
            loc = SampledSA.from_arrays(
                meta["locate_meta"], {"samples": views["locate/samples"]}
            )
        elif locate == "none":
            loc = None
        else:
            raise IndexFormatError(f"unknown locate kind {locate!r}")
        # Optional k-mer jump-start table: absent in containers written
        # before the segment existed — they attach with ftab=None.
        ftab = None
        if meta.get("ftab"):
            try:
                ftab = Ftab.from_arrays(
                    meta["ftab"],
                    {
                        name.removeprefix("ftab/"): arr
                        for name, arr in views.items()
                        if name.startswith("ftab/")
                    },
                )
            except ValueError as exc:
                raise IndexFormatError(
                    f"flat container ftab segment invalid: {exc}"
                ) from exc
    except KeyError as exc:
        raise IndexFormatError(f"flat container missing field: {exc}") from exc
    return FMIndex(backend, locate_structure=loc, counters=counters, ftab=ftab)


def attach_index_from_buffer(
    buf,
    counters: OpCounters | None = None,
    verify: bool = False,
) -> FMIndex:
    """Rehydrate an :class:`FMIndex` around a container buffer, zero-copy.

    ``buf`` is any byte buffer holding a flat container — an
    ``np.memmap``, a ``multiprocessing.shared_memory`` view, or plain
    bytes.  Every structure array is a *view* into ``buf``; the caller
    must keep the underlying mapping alive for the index's lifetime
    (numpy view chains do this automatically for memmaps).
    """
    u8 = buf if isinstance(buf, np.ndarray) else np.frombuffer(buf, dtype=np.uint8)
    meta, entries, data_start = read_flat_manifest(u8)
    views = _segment_views(u8, entries, data_start, verify=verify)
    return _rehydrate(meta, views, counters)


def load_index_flat(
    path: str | Path,
    counters: OpCounters | None = None,
    verify: bool = False,
) -> FMIndex:
    """Memory-map a flat container and attach to it — O(1) in index size.

    With ``verify=False`` (the default) no array data is read at open
    time; pages fault in lazily as queries touch them.  ``verify=True``
    checks every segment CRC up front (reads the whole file once).
    """
    path = Path(path)
    tel = get_telemetry()
    with tel.span("index.load_flat", path=str(path)):
        t0 = time.perf_counter()
        try:
            mm = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise IndexFormatError(
                f"cannot map flat index {path}: {type(exc).__name__}: {exc}"
            ) from exc
        meta, entries, data_start = read_flat_manifest(mm)
        if meta.get("multiref"):
            raise IndexFormatError(
                "container holds a multi-reference index; use load_multiref_index_flat"
            )
        views = _segment_views(mm, entries, data_start, verify=verify)
        index = _rehydrate(meta, views, counters)
        tel.metrics.counter(
            "index_flat_loads_total", "Flat (mmap) index attaches"
        ).inc()
        tel.metrics.histogram(
            "index_flat_open_seconds", "Wall seconds to open+attach a flat index"
        ).observe(time.perf_counter() - t0)
    return index


def load_multiref_index_flat(path: str | Path, counters: OpCounters | None = None):
    """Load a container written by :func:`save_multiref_index_flat`."""
    from .multiref import MultiReferenceIndex

    mm = np.memmap(Path(path), dtype=np.uint8, mode="r")
    meta, entries, data_start = read_flat_manifest(mm)
    if not meta.get("multiref"):
        raise IndexFormatError(
            "container holds a single-reference index; use load_index_flat"
        )
    views = _segment_views(mm, entries, data_start, verify=False)
    inner = _rehydrate(meta, views, counters)
    lengths = np.asarray(views["seq_lengths"], dtype=np.int64)
    multi = MultiReferenceIndex.__new__(MultiReferenceIndex)
    multi.names = tuple(meta["multiref"]["names"])
    multi.ordinals = {n: i for i, n in enumerate(multi.names)}
    multi.lengths = lengths
    multi.offsets = np.concatenate(([0], np.cumsum(lengths)))
    multi.index = inner
    multi.build_report = None
    return multi


def verify_flat_index(path: str | Path) -> list[str]:
    """Check every segment CRC of a container; returns verified names.

    Raises :class:`IndexFormatError` on the first mismatch.  This is the
    explicit integrity pass the lazy ``load_index_flat`` default skips.
    """
    mm = np.memmap(Path(path), dtype=np.uint8, mode="r")
    meta, entries, data_start = read_flat_manifest(mm)
    views = _segment_views(mm, entries, data_start, verify=True)
    return sorted(views)


# --------------------------------------------------------------------------
# Format sniffing
# --------------------------------------------------------------------------


def detect_index_format(path: str | Path) -> str:
    """``"flat"`` or ``"npz"``, by magic bytes."""
    with open(path, "rb") as fh:
        head = fh.read(8)
    if head == MAGIC:
        return "flat"
    if head[:2] == b"PK":
        return "npz"
    raise IndexFormatError(
        f"{path} is neither a flat container nor an .npz index archive"
    )


def load_index_auto(path: str | Path, counters: OpCounters | None = None) -> FMIndex:
    """Load either format by sniffing the file's magic bytes."""
    if detect_index_format(path) == "flat":
        return load_index_flat(path, counters=counters)
    return load_index(path, counters=counters)


def load_any_index_auto(path: str | Path, counters: OpCounters | None = None):
    """Like :func:`load_index_auto` but also dispatches multi-reference
    archives (returns ``FMIndex`` or ``MultiReferenceIndex``)."""
    if detect_index_format(path) == "flat":
        mm_meta = read_flat_manifest(np.memmap(Path(path), dtype=np.uint8, mode="r"))[0]
        if mm_meta.get("multiref"):
            return load_multiref_index_flat(path, counters=counters)
        return load_index_flat(path, counters=counters)
    import zipfile

    with zipfile.ZipFile(path) as zf, zf.open("meta_json.npy") as fh:
        blob = fh.read()
    # .npy payload: JSON bytes follow the numpy header.
    if b"multiref" in blob:
        return load_multiref_index(path, counters=counters)
    return load_index(path, counters=counters)

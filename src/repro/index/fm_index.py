"""FM-index backward search (paper §III-A, Eq. 4-5).

:class:`FMIndex` is the repository's central query object: it binds a
rank backend (the succinct :class:`~repro.core.bwt_structure.BWTStructure`
or the checkpointed :class:`~repro.index.occ_table.OccTable`) to a locate
structure (full or sampled suffix array) and exposes ``count``, ``search``
and ``locate``.

Interval convention: ``search`` returns the half-open row interval
``[start, end)`` of Burrows-Wheeler matrix rows whose suffixes begin with
the pattern; the paper's closed, 1-based ``[start, end]`` with
``start(aX) = C(a) + Occ(a, start(X) - 1) + 1`` and
``end(aX) = C(a) + Occ(a, end(X))`` becomes, in 0-based half-open form,

.. math::

   start' = C(a) + Occ(a, start), \\qquad end' = C(a) + Occ(a, end),

and the pattern occurs iff ``start' < end'`` — the same non-emptiness
criterion Ferragina & Manzini prove for ``start <= end``.

Early termination: the search consumes pattern symbols right to left and
stops at the first empty interval.  The number of consumed symbols is
recorded per query — this is the workload statistic behind the paper's
Fig. 7 observation that mapping time scales with the *mapping ratio*
(unmapped reads terminate early).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..core.counters import GLOBAL_COUNTERS, OpCounters
from ..sequence.alphabet import encode
from ..sequence.sampled_sa import FullSA, SampledSA
from ..telemetry import get_telemetry
from .ftab import Ftab

SIGMA = 4


class RankBackend(Protocol):
    """What a rank structure must provide to drive backward search.

    ``occ2_many`` — the fused boundary-pair rank — is looked up with
    ``getattr`` at query time, so backends without it still work (the
    search falls back to two ``occ_many`` calls per symbol).
    """

    n_rows: int
    counters: OpCounters

    def occ(self, symbol: int, i: int) -> int: ...
    def occ_many(self, symbol: int, positions: np.ndarray) -> np.ndarray: ...
    def count_smaller(self, symbol: int) -> int: ...
    def lf(self, i: int) -> int: ...
    def size_in_bytes(self, include_shared: bool = True) -> int: ...


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one backward search.

    ``start``/``end`` delimit the half-open SA row interval; ``steps`` is
    the number of pattern symbols consumed before success or the first
    empty interval (early termination).
    """

    start: int
    end: int
    steps: int

    @property
    def count(self) -> int:
        return max(0, self.end - self.start)

    @property
    def found(self) -> bool:
        return self.end > self.start


class FMIndex:
    """Count/search/locate over a rank backend and a locate structure.

    Parameters
    ----------
    backend:
        Any :class:`RankBackend` — typically a
        :class:`~repro.core.bwt_structure.BWTStructure`.
    locate_structure:
        A :class:`~repro.sequence.sampled_sa.FullSA` (BWaveR's host-side
        choice) or :class:`~repro.sequence.sampled_sa.SampledSA`.
    counters:
        Defaults to the backend's counters.
    ftab:
        Optional :class:`~repro.index.ftab.Ftab` jump-start table.  When
        attached, every query of length ``>= ftab.k`` starts at step
        ``k`` with one table read instead of ``k`` backward-search
        steps; results are bit-identical either way.  ``use_ftab``
        toggles it at query time without detaching (``map --no-ftab``).
    """

    def __init__(
        self,
        backend: RankBackend,
        locate_structure: FullSA | SampledSA | None = None,
        counters: OpCounters | None = None,
        ftab: Ftab | None = None,
    ):
        self.backend = backend
        self.locate_structure = locate_structure
        self.counters = (
            counters
            if counters is not None
            else getattr(backend, "counters", GLOBAL_COUNTERS)
        )
        self.ftab = ftab
        self.use_ftab = True

    @property
    def n_rows(self) -> int:
        return self.backend.n_rows

    # -- pattern normalization ---------------------------------------------------

    @staticmethod
    def _codes(pattern) -> np.ndarray:
        if isinstance(pattern, str):
            return encode(pattern)
        arr = np.asarray(pattern, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= SIGMA):
            raise ValueError("pattern codes must lie in [0, 4)")
        return arr.astype(np.uint8)

    # -- core queries ---------------------------------------------------------------

    def search(self, pattern) -> SearchResult:
        """Backward search; returns the SA interval of the pattern.

        Empty-pattern semantics (DESIGN.md §9): the empty pattern occurs
        once at every *text* position, so its interval is the full matrix
        minus the sentinel row — ``[1, n_rows)`` — giving
        ``count("") == len(text)`` and ``locate("")`` the positions
        ``0..len(text)-1``.  The recurrence's base case for non-empty
        patterns is still the full ``[0, n_rows)`` interval.
        """
        codes = self._codes(pattern)
        self.counters.queries += 1
        if codes.size == 0:
            return SearchResult(start=min(1, self.n_rows), end=self.n_rows, steps=0)
        lo, hi = 0, self.n_rows
        steps = 0
        backend = self.backend
        tail = codes[::-1]
        ftab = self.ftab if self.use_ftab else None
        if ftab is not None and codes.size >= ftab.k:
            # Jump-start: one table read replaces the first k steps.  The
            # entry carries the exact (lo, hi, steps) the stepwise
            # recurrence would produce, including early-emptied k-mers.
            lo, hi, steps = ftab.lookup(codes)
            self.counters.ftab_lookups += 1
            tel = get_telemetry()
            if tel.enabled:
                m = tel.metrics
                m.counter(
                    "ftab_hits_total", "Queries jump-started from the k-mer table"
                ).inc()
                m.histogram(
                    "ftab_steps_saved",
                    "Backward-search steps resolved per k-mer table hit",
                ).observe(float(steps))
            if lo >= hi:
                return SearchResult(start=lo, end=lo, steps=steps)
            tail = tail[ftab.k :]
        for a in tail:
            a = int(a)
            lo = backend.count_smaller(a) + backend.occ(a, lo)
            hi = backend.count_smaller(a) + backend.occ(a, hi)
            steps += 1
            self.counters.bs_steps += 1
            if lo >= hi:
                return SearchResult(start=lo, end=lo, steps=steps)
        return SearchResult(start=lo, end=hi, steps=steps)

    def count(self, pattern) -> int:
        """Number of occurrences of ``pattern`` in the reference."""
        return self.search(pattern).count

    def locate(self, pattern) -> np.ndarray:
        """Sorted text positions of all occurrences of ``pattern``."""
        if self.locate_structure is None:
            raise RuntimeError("this index was built without a locate structure")
        res = self.search(pattern)
        if not res.found:
            return np.zeros(0, dtype=np.int64)
        positions = self.locate_structure.locate_range(
            res.start,
            res.end,
            lf=self.backend.lf,
            lf_many=getattr(self.backend, "lf_many", None),
        )
        return np.sort(positions)

    # -- batch (vectorized) search -------------------------------------------------

    def search_batch(
        self, patterns: Sequence, track_steps: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward search over many patterns with per-step vectorization.

        Patterns may have different lengths; each query is advanced until
        its own symbols run out or its interval empties.  Returns
        ``(starts, ends, steps)`` arrays.  Results are identical to
        calling :meth:`search` per pattern (tests enforce this); the
        batching exists because grouping the ``Occ`` queries of all live
        patterns by symbol turns the inner loop into a handful of
        vectorized rank calls per step — the idiomatic numpy shape of the
        FPGA's many-queries-in-flight pipeline.
        """
        code_list = [self._codes(p) for p in patterns]
        nq = len(code_list)
        self.counters.queries += nq
        lengths = np.array([c.size for c in code_list], dtype=np.int64)
        max_len = int(lengths.max()) if nq else 0
        # Right-aligned code matrix: column t holds the symbol consumed at
        # step t (patterns are consumed right to left).
        mat = np.full((nq, max_len), -1, dtype=np.int64)
        for i, c in enumerate(code_list):
            if c.size:
                mat[i, : c.size] = c[::-1].astype(np.int64)
        lo = np.zeros(nq, dtype=np.int64)
        hi = np.full(nq, self.n_rows, dtype=np.int64)
        # Empty patterns resolve immediately to the sentinel-free interval
        # [1, n_rows) — one match per text position, same as `search`.
        lo[lengths == 0] = min(1, self.n_rows)
        steps = np.zeros(nq, dtype=np.int64)
        active = lengths > 0
        backend = self.backend
        # K-mer jump-start: queries of length >= k read their first-k
        # interval (and exact step count) from the table and join the
        # step loop at column k; shorter queries start at column 0.
        start_col = np.zeros(nq, dtype=np.int64)
        ftab = self.ftab if self.use_ftab else None
        ftab_steps: np.ndarray | None = None
        if ftab is not None and max_len >= ftab.k:
            prim = np.flatnonzero(lengths >= ftab.k)
            if prim.size:
                tidx = ftab.indices_from_reversed(mat[prim, : ftab.k])
                lo[prim] = ftab.lo[tidx]
                hi[prim] = ftab.hi[tidx]
                ftab_steps = ftab.steps[tidx].astype(np.int64)
                steps[prim] = ftab_steps
                # Entries emptied inside the table region are finished.
                active[prim[lo[prim] >= hi[prim]]] = False
                start_col[prim] = ftab.k
                self.counters.ftab_lookups += int(prim.size)
        # count_smaller is invariant per symbol — hoist it out of the
        # step loop instead of re-reading C every (step, symbol) pair.
        csmall = np.array(
            [backend.count_smaller(a) for a in range(SIGMA)], dtype=np.int64
        )
        occ2 = getattr(backend, "occ2_many", None)
        executed = 0
        t_begin = int(start_col[active].min()) if np.any(active) else 0
        for t in range(t_begin, max_len):
            remaining = active & (t < lengths)
            if not np.any(remaining):
                break
            cur = remaining & (start_col <= t)
            if not np.any(cur):
                continue
            col = mat[:, t]
            for a in range(SIGMA):
                sel = cur & (col == a)
                if not np.any(sel):
                    continue
                idx = np.flatnonzero(sel)
                ca = csmall[a]
                if occ2 is not None:
                    # Fused kernel: both boundary ranks in one pass.
                    rlo, rhi = occ2(a, lo[idx], hi[idx])
                    lo[idx] = ca + rlo
                    hi[idx] = ca + rhi
                else:
                    lo[idx] = ca + backend.occ_many(a, lo[idx])
                    hi[idx] = ca + backend.occ_many(a, hi[idx])
            steps[cur] += 1
            n_cur = int(np.count_nonzero(cur))
            executed += n_cur
            if track_steps:
                self.counters.bs_steps += n_cur
            emptied = cur & (lo >= hi)
            hi[emptied] = lo[emptied]
            active &= ~emptied
        tel = get_telemetry()
        if tel.enabled:
            m = tel.metrics
            m.counter("fm_search_batches_total", "Vectorized search batches").inc()
            m.counter("fm_queries_total", "Queries through batched search").inc(nq)
            m.counter(
                "fm_bs_steps_total", "Backward-search steps (batched path)"
            ).inc(executed)
            if ftab_steps is not None and ftab_steps.size:
                m.counter(
                    "ftab_hits_total", "Queries jump-started from the k-mer table"
                ).inc(int(ftab_steps.size))
                hist = m.histogram(
                    "ftab_steps_saved",
                    "Backward-search steps resolved per k-mer table hit",
                )
                for v in ftab_steps:
                    hist.observe(float(v))
        return lo, hi, steps

    def count_batch(self, patterns: Sequence) -> np.ndarray:
        lo, hi, _ = self.search_batch(patterns)
        return np.maximum(hi - lo, 0)

    # -- sizes -------------------------------------------------------------------------

    def size_in_bytes(self, include_locate: bool = False) -> int:
        total = self.backend.size_in_bytes()
        if include_locate and self.locate_structure is not None:
            total += self.locate_structure.size_in_bytes()
        return total

    def __repr__(self) -> str:
        return (
            f"FMIndex(rows={self.n_rows}, backend={type(self.backend).__name__}, "
            f"locate={type(self.locate_structure).__name__ if self.locate_structure else None})"
        )

"""Out-of-core (blockwise) index construction with a bounded memory budget.

:func:`repro.index.builder.build_index` materializes the suffix array,
the BWT and every encoder intermediate in RAM at once — fine for the
paper's bacterial references, hopeless for chromosome-scale ones.  This
module rebuilds the same pipeline as a streaming, resumable sequence of
on-disk stages so that peak resident memory stays
``O(block + rank array)`` instead of ``O(many full-size temporaries)``:

1. **Blockwise suffix array** — prefix-doubling where each round sorts
   fixed-size blocks independently (numpy ``argsort`` per block, sorted
   runs spilled to disk) and then k-way merges the runs with a bounded
   number of in-flight rows.  Ranks for the next round are reassigned
   *during* the merge, so no full-size sort key ever exists in memory.
   The monolithic ``suffix_array(..., method="doubling")`` remains the
   differential oracle.
2. **Streaming BWT emission** — one chunked pass over the on-disk SA
   producing ``bwt.bin`` plus symbol counts, run statistics and entropy.
3. **Incremental encoding** — a streaming RRR encoder (bit-identical to
   :class:`repro.core.rrr.RRRVector`'s batch ``_build``) feeds the three
   wavelet-tree nodes in one pass over the on-disk BWT; the ``occ``
   backend variant packs 2-bit words and checkpoint rows the same way.
4. **Finalize** — the encoded segments are rehydrated as memory-mapped
   arrays through the canonical ``from_arrays`` constructors and written
   with :func:`repro.index.flat.save_index_flat` (whose
   :class:`~repro.index.flat.FlatWriter` streams segments to disk), so
   the container is *byte-identical* to a monolithic build's.

Every stage ends with an atomic ``state.json`` checkpoint (CRC-verified
payload files), so a killed build resumes with ``resume=True`` and the
finished container is bit-identical to a cold build.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import tracemalloc
import zlib
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.bitio import IncrementalBitPacker
from ..core.bwt_structure import BWTStructure
from ..core.counters import OpCounters
from ..core.global_tables import encode_offsets, get_global_tables, popcount_block
from ..core.rrr import DEFAULT_BLOCK_SIZE, DEFAULT_SUPERBLOCK_FACTOR
from ..sequence.alphabet import encode
from ..sequence.bwt import BWT
from ..sequence.sampled_sa import FullSA, SampledSA
from ..telemetry import get_telemetry
from .builder import BuildReport
from .flat import save_index_flat
from .fm_index import FMIndex
from .ftab import Ftab
from .occ_table import BASES_PER_WORD, OccTable, pack_2bit

SIGMA = 4

_STATE_NAME = "state.json"

#: Rough bytes of resident working set per suffix-array row in the
#: doubling rounds: the persistent int64 rank array (8 B/row) plus the
#: per-block key/order/second temporaries (3 x 8 B over one block) and
#: merge gather buffers, amortized.  ``block_rows = budget / 48`` keeps
#: the *variable* part of the footprint near the requested budget.
_BYTES_PER_ROW = 48


#: Rows per chunk of the streaming CRC below (bounds its transient copy).
_CRC_CHUNK_ROWS = 1 << 16


def _crc_stream(arr: np.ndarray) -> int:
    """``faults.crc32_of`` computed chunkwise.

    zlib's CRC32 is rolling, so hashing a contiguous array in slices
    yields the same value as one shot over ``tobytes()`` — without the
    full-size bytes copy that would dominate the blockwise builder's
    peak footprint.
    """
    arr = np.ascontiguousarray(arr).reshape(-1)
    crc = 0
    for lo in range(0, arr.size, _CRC_CHUNK_ROWS):
        crc = zlib.crc32(arr[lo : lo + _CRC_CHUNK_ROWS].tobytes(), crc)
    return crc & 0xFFFFFFFF


class BuildResumeError(RuntimeError):
    """A blockwise build could not be resumed from its work directory.

    Raised when the on-disk state belongs to a different input or
    configuration (fingerprint mismatch) or when a checkpoint payload
    fails its CRC — in both cases the safe path is a cold rebuild.
    """


# --------------------------------------------------------------------------
# Streaming encoders.
# --------------------------------------------------------------------------


class StreamingRRREncoder:
    """Incrementally build one RRR bit-vector from streamed bit chunks.

    Produces exactly the arrays of :meth:`repro.core.rrr.RRRVector._build`
    — same classes, same packed offsets, same superblock partial sums —
    without ever holding the whole bit-vector: only a sub-block tail and
    the growing (already succinct) output live in memory.
    """

    def __init__(
        self,
        b: int = DEFAULT_BLOCK_SIZE,
        sf: int = DEFAULT_SUPERBLOCK_FACTOR,
    ) -> None:
        if b < 1 or b > 24:
            raise ValueError("block size b must be in [1, 24]")
        if sf < 1:
            raise ValueError("superblock factor must be >= 1")
        self.b = int(b)
        self.sf = int(sf)
        self.tables = get_global_tables(self.b)
        self._weights = np.int64(1) << np.arange(self.b, dtype=np.int64)
        self._pending = np.zeros(0, dtype=np.uint8)
        self._packer = IncrementalBitPacker()
        self._classes: list[np.ndarray] = []
        self.n = 0
        self._blocks_done = 0
        self._ones_total = 0
        self._width_total = 0
        # Superblock-boundary prefix sums recorded the moment each
        # boundary is crossed (ones resp. offset bits before block j*sf).
        self._cross_psums: list[int] = []
        self._cross_osums: list[int] = []

    def feed(self, bits: np.ndarray) -> None:
        """Append a chunk of 0/1 values to the logical bit-vector."""
        bits = np.asarray(bits, dtype=np.uint8)
        self.n += int(bits.size)
        if self._pending.size:
            bits = np.concatenate([self._pending, bits])
        n_full = bits.size // self.b
        if n_full:
            self._encode_blocks(bits[: n_full * self.b])
        self._pending = bits[n_full * self.b :].copy()

    def _encode_blocks(self, bits: np.ndarray) -> None:
        b, sf = self.b, self.sf
        block_bits = bits.reshape(-1, b)
        values = block_bits.astype(np.int64) @ self._weights
        classes = popcount_block(values, b)
        offsets = encode_offsets(values, b, self.tables.binomials)
        widths = self.tables.widths[classes]
        self._classes.append(classes.astype(np.uint8))
        self._packer.append(offsets.astype(np.uint64), widths.astype(np.int64))
        cls_cum = np.cumsum(classes, dtype=np.int64)
        w_cum = np.cumsum(widths.astype(np.int64))
        start = self._blocks_done
        k = int(classes.size)
        # Boundaries j*sf with start < j*sf <= start + k are crossed by
        # this chunk; record the prefix sums *before* each boundary.
        first = start // sf + 1
        last = (start + k) // sf
        for j in range(first, last + 1):
            at = j * sf - start
            self._cross_psums.append(self._ones_total + int(cls_cum[at - 1]))
            self._cross_osums.append(self._width_total + int(w_cum[at - 1]))
        self._blocks_done += k
        self._ones_total += int(cls_cum[-1])
        self._width_total += int(w_cum[-1])

    def finalize(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Close the stream; return RRR ``(meta, arrays)`` per the flat schema."""
        if self._pending.size:
            # Zero-pad the trailing partial block, exactly like the batch
            # builder's whole-superblock padding (padding blocks beyond
            # n_blocks are dropped there, so none are emitted here).
            block = np.zeros(self.b, dtype=np.uint8)
            block[: self._pending.size] = self._pending
            self._pending = np.zeros(0, dtype=np.uint8)
            self._encode_blocks(block)
        n_blocks = self._blocks_done
        n_super = (n_blocks + self.sf - 1) // self.sf
        psums = [0] + self._cross_psums
        if len(psums) < n_super + 1:
            psums.append(self._ones_total)
        psums_arr = np.asarray(psums, dtype=np.int64)
        if psums_arr.size and int(psums_arr.max()) > np.iinfo(np.uint32).max:
            raise ValueError("bit-vector too long for 32-bit partial sums")
        osums = ([0] + self._cross_osums)[:n_super]
        classes = (
            np.concatenate(self._classes)
            if self._classes
            else np.zeros(0, dtype=np.uint8)
        )
        offset_words, offset_bits = self._packer.finalize()
        meta = {
            "n": int(self.n),
            "b": self.b,
            "sf": self.sf,
            "n_blocks": int(n_blocks),
            "n_superblocks": int(n_super),
            "offset_bits": int(offset_bits),
        }
        arrays = {
            "classes": classes,
            "partial_sums": psums_arr.astype(np.uint32),
            "offset_words": offset_words,
            "offset_sums": np.asarray(osums, dtype=np.int64).astype(np.uint32),
        }
        return meta, arrays


class _StreamingOccEncoder:
    """Streaming variant of :meth:`OccTable.build`: 2-bit words to disk,
    checkpoint rows accumulated per ``32 * checkpoint_words`` symbols."""

    def __init__(self, checkpoint_words: int, words_path: Path) -> None:
        self.cw = int(checkpoint_words)
        self.d_rows = BASES_PER_WORD * self.cw
        self._fh = open(words_path, "wb")
        self._pending = np.zeros(0, dtype=np.uint8)
        self._group_rows: list[np.ndarray] = []
        self._n_words = 0
        self.n_sym = 0

    def feed(self, syms: np.ndarray) -> None:
        syms = np.asarray(syms, dtype=np.uint8)
        self.n_sym += int(syms.size)
        if self._pending.size:
            syms = np.concatenate([self._pending, syms])
        cut = (syms.size // self.d_rows) * self.d_rows
        if cut:
            self._emit(syms[:cut])
        self._pending = syms[cut:].copy()

    def _emit(self, chunk: np.ndarray) -> None:
        # Chunks are whole d_rows groups except the finalize() tail, so
        # pack_2bit's final-word zero padding only ever happens once.
        words = pack_2bit(chunk)
        words.tofile(self._fh)
        self._n_words += int(words.size)
        n_full = chunk.size // self.d_rows
        if n_full:
            g = chunk[: n_full * self.d_rows].reshape(n_full, self.d_rows)
            rows = np.stack(
                [(g == a).sum(axis=1) for a in range(SIGMA)], axis=1
            ).astype(np.int64)
            self._group_rows.append(rows)
        tail = chunk[n_full * self.d_rows :]
        if tail.size:
            counts = np.bincount(tail, minlength=SIGMA)[:SIGMA]
            self._group_rows.append(counts.astype(np.int64)[None, :])

    def finalize(self) -> tuple[int, np.ndarray]:
        """Close the word file; return ``(n_words, checkpoints)``."""
        if self._pending.size:
            self._emit(self._pending)
            self._pending = np.zeros(0, dtype=np.uint8)
        self._fh.close()
        groups = (
            np.concatenate(self._group_rows)
            if self._group_rows
            else np.zeros((0, SIGMA), dtype=np.int64)
        )
        full_cum = np.concatenate(
            [np.zeros((1, SIGMA), dtype=np.int64), np.cumsum(groups, axis=0)]
        )
        n_cp = self._n_words // self.cw + 1
        # Row j is the symbol-count prefix at min(j * d_rows, n_sym) —
        # the same boundary clamping as the batch builder.
        cum = full_cum[np.minimum(np.arange(n_cp), groups.shape[0])]
        if cum.size and cum.max() <= np.iinfo(np.uint32).max:
            checkpoints = cum.astype(np.uint32)
        else:
            checkpoints = cum
        return self._n_words, checkpoints


# --------------------------------------------------------------------------
# Checkpoint plumbing.
# --------------------------------------------------------------------------


def _atomic_write_json(path: Path, doc: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True))
    os.replace(tmp, path)


def _atomic_save_npy(path: Path, arr: np.ndarray) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        np.save(f, np.ascontiguousarray(arr))
    os.replace(tmp, path)


def _fingerprint(
    codes: np.ndarray,
    *,
    b: int,
    sf: int,
    backend: str,
    locate: str,
    sa_sample_rate: int,
    occ_checkpoint_words: int,
    ftab_k: int | None,
    block_rows: int,
) -> dict:
    return {
        "n": int(codes.size),
        "codes_crc": _crc_stream(codes),
        "b": int(b),
        "sf": int(sf),
        "backend": backend,
        "locate": locate,
        "sa_sample_rate": int(sa_sample_rate),
        "occ_checkpoint_words": int(occ_checkpoint_words),
        "ftab_k": None if ftab_k is None else int(ftab_k),
        "block_rows": int(block_rows),
    }


def _open_state(work: Path, fp: dict, resume: bool) -> tuple[dict, bool]:
    state_path = work / _STATE_NAME
    if not resume and work.exists():
        shutil.rmtree(work)
    if state_path.exists():
        try:
            state = json.loads(state_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BuildResumeError(
                f"unreadable build state at {state_path}: {exc}"
            ) from exc
        if state.get("fingerprint") != fp:
            raise BuildResumeError(
                "work directory belongs to a different input or build "
                "configuration; rebuild without resume"
            )
        return state, True
    work.mkdir(parents=True, exist_ok=True)
    state = {
        "version": 1,
        "fingerprint": fp,
        "stage": "sa",
        "sa_init": False,
        "sa_round": 0,
        "sa_k": 1,
        "n_distinct": 0,
        "rank_file": None,
        "rank_crc": None,
    }
    return state, False


def _save_rank(work: Path, state: dict, rank: np.ndarray, round_no: int) -> None:
    name = f"rank_{round_no}.npy"
    _atomic_save_npy(work / name, rank)
    state["rank_file"] = name
    state["rank_crc"] = _crc_stream(rank)


def _load_rank(work: Path, state: dict) -> np.ndarray:
    name = state.get("rank_file")
    if not name or not (work / name).exists():
        raise BuildResumeError("missing rank checkpoint; rebuild without resume")
    rank = np.load(work / name)
    if _crc_stream(rank) != state.get("rank_crc"):
        raise BuildResumeError("rank checkpoint failed CRC; rebuild without resume")
    return rank


def _prune_rank_files(work: Path, state: dict) -> None:
    # Older round files are deleted only once the state referencing the
    # new one is durable, so a crash in between always leaves the file
    # the state points at intact.
    keep = state.get("rank_file")
    for p in work.glob("rank_*.npy"):
        if p.name != keep:
            p.unlink(missing_ok=True)


# --------------------------------------------------------------------------
# Stage 1: blockwise suffix array (prefix doubling, external runs).
# --------------------------------------------------------------------------


def _sa_round(
    rank: np.ndarray, k: int, n1: int, block_rows: int, work: Path
) -> int:
    """One doubling round at shift ``k``; rewrites ``sa.bin`` and ``rank``.

    Each block sorts its ``(rank[i], rank[i+k])`` keys independently and
    spills the sorted run; the runs are then merged with at most
    ``~block_rows`` gathered rows in flight.  Ranks for the next round
    are reassigned on the fly as rows are emitted in globally sorted
    order.  Returns the number of distinct ranks after the round.
    """
    key_path = work / "runs_key.bin"
    idx_path = work / "runs_idx.bin"
    run_bounds: list[tuple[int, int]] = []
    pos = 0
    mult = np.int64(n1 + 1)
    with open(key_path, "wb") as kf, open(idx_path, "wb") as xf:
        for lo in range(0, n1, block_rows):
            hi = min(lo + block_rows, n1)
            m = hi - lo
            src = np.arange(lo + k, hi + k, dtype=np.int64)
            second = np.zeros(m, dtype=np.int64)
            in_range = src < n1
            second[in_range] = rank[src[in_range]] + 1
            key = rank[lo:hi] * mult + second
            order = np.argsort(key)
            key[order].tofile(kf)
            (order + np.int64(lo)).tofile(xf)
            run_bounds.append((pos, pos + m))
            pos += m
    keys = np.memmap(key_path, dtype=np.int64, mode="r")
    idxs = np.memmap(idx_path, dtype=np.int64, mode="r")
    cur = np.array([s for s, _ in run_bounds], dtype=np.int64)
    ends = np.array([e for _, e in run_bounds], dtype=np.int64)
    merge_rows = block_rows
    r = -1
    prev_key: int | None = None
    with open(work / "sa.bin", "wb") as sa_f:

        def emit(keys_c: np.ndarray, idx_c: np.ndarray) -> None:
            nonlocal r, prev_key
            if keys_c.size == 0:
                return
            inc = np.empty(keys_c.size, dtype=np.int64)
            inc[0] = 1 if (prev_key is None or int(keys_c[0]) != prev_key) else 0
            if keys_c.size > 1:
                inc[1:] = keys_c[1:] != keys_c[:-1]
            ranks_c = r + np.cumsum(inc)
            # Safe in-place update: the merge reads only the spilled
            # run files, never ``rank`` itself.
            rank[idx_c] = ranks_c
            r = int(ranks_c[-1])
            prev_key = int(keys_c[-1])
            np.ascontiguousarray(idx_c).tofile(sa_f)

        while True:
            active = np.flatnonzero(cur < ends)
            if active.size == 0:
                break
            c_sub = max(1, merge_rows // int(active.size))
            # Pivot: the minimum over active runs of the key closing each
            # run's next c_sub-row window.  Every strictly-smaller key in
            # any run then lies inside that run's window (its window tail
            # is >= pivot), so one bounded gather is globally complete.
            piv: int | None = None
            for j in active:
                e = min(int(cur[j]) + c_sub, int(ends[j]))
                v = int(keys[e - 1])
                if piv is None or v < piv:
                    piv = v
            gathered_k: list[np.ndarray] = []
            gathered_i: list[np.ndarray] = []
            for j in active:
                lo_j = int(cur[j])
                e = min(lo_j + c_sub, int(ends[j]))
                window = keys[lo_j:e]
                cnt = int(np.searchsorted(window, piv, side="left"))
                if cnt:
                    gathered_k.append(np.asarray(window[:cnt]))
                    gathered_i.append(np.asarray(idxs[lo_j : lo_j + cnt]))
                    cur[j] += cnt
            if gathered_k:
                gk = np.concatenate(gathered_k)
                gi = np.concatenate(gathered_i)
                order = np.argsort(gk)
                emit(gk[order], gi[order])
            # Drain keys equal to the pivot from every run.  Equal keys
            # share a rank, so their relative order is irrelevant and no
            # sort is needed; window-bounded slices keep memory flat.
            for j in active:
                while cur[j] < ends[j]:
                    lo_j = int(cur[j])
                    e = min(lo_j + merge_rows, int(ends[j]))
                    window = keys[lo_j:e]
                    cnt = int(np.searchsorted(window, piv, side="right"))
                    if cnt == 0:
                        break
                    emit(np.asarray(window[:cnt]), np.asarray(idxs[lo_j : lo_j + cnt]))
                    cur[j] += cnt
                    if cnt < window.size:
                        break
    del keys, idxs
    key_path.unlink(missing_ok=True)
    idx_path.unlink(missing_ok=True)
    return r + 1


def _stage_sa(
    codes: np.ndarray,
    n1: int,
    block_rows: int,
    work: Path,
    state: dict,
    save_state: Callable[[str], None],
) -> None:
    if not state["sa_init"]:
        s = np.zeros(n1, dtype=np.uint8)
        if n1 > 1:
            s[: n1 - 1] = codes + 1
        counts = np.bincount(s, minlength=1)
        present = np.flatnonzero(counts > 0)
        lut = np.zeros(int(present.max()) + 1, dtype=np.int64)
        lut[present] = np.arange(present.size, dtype=np.int64)
        rank = lut[s]
        del s
        state["n_distinct"] = int(present.size)
        state["sa_init"] = True
        state["sa_round"] = 0
        state["sa_k"] = 1
        _save_rank(work, state, rank, 0)
        save_state("sa:init")
        _prune_rank_files(work, state)
    else:
        rank = _load_rank(work, state)
    while state["n_distinct"] < n1:
        k = int(state["sa_k"])
        n_distinct = _sa_round(rank, k, n1, block_rows, work)
        round_no = int(state["sa_round"]) + 1
        _save_rank(work, state, rank, round_no)
        state["sa_round"] = round_no
        state["sa_k"] = k * 2
        state["n_distinct"] = n_distinct
        save_state(f"sa:round{round_no}")
        _prune_rank_files(work, state)
    if int(state["sa_round"]) == 0:
        # Tiny inputs where first characters already distinguish every
        # suffix: no doubling round ran, so emit the SA directly.
        sa = np.argsort(rank, kind="stable").astype(np.int64)
        with open(work / "sa.bin", "wb") as f:
            sa.tofile(f)
    sa_mm = np.memmap(work / "sa.bin", dtype=np.int64, mode="r")
    state["sa_crc"] = _crc_stream(sa_mm)
    del sa_mm
    state["stage"] = "bwt"
    save_state("sa")


# --------------------------------------------------------------------------
# Stage 2: streaming BWT emission.
# --------------------------------------------------------------------------


def _stage_bwt(
    codes: np.ndarray,
    n1: int,
    block_rows: int,
    work: Path,
    state: dict,
    save_state: Callable[[str], None],
) -> None:
    sa_mm = np.memmap(work / "sa.bin", dtype=np.int64, mode="r")
    if sa_mm.size != n1 or _crc_stream(sa_mm) != state.get("sa_crc"):
        raise BuildResumeError(
            "suffix-array checkpoint failed CRC; rebuild without resume"
        )
    counts = np.zeros(SIGMA, dtype=np.int64)
    dollar_pos = -1
    runs = 0
    max_run = 0
    cur_len = 0
    prev_sym = -1
    with open(work / "bwt.bin", "wb") as f:
        for lo in range(0, n1, block_rows):
            hi = min(lo + block_rows, n1)
            sa_c = np.asarray(sa_mm[lo:hi])
            if codes.size:
                out = codes[np.where(sa_c > 0, sa_c - 1, 0)].astype(np.uint8)
            else:
                out = np.zeros(sa_c.size, dtype=np.uint8)
            z = np.flatnonzero(sa_c == 0)
            if z.size:
                dollar_pos = lo + int(z[0])
                out[z[0]] = 0  # placeholder, same as bwt_from_codes
            out.tofile(f)
            syms = np.delete(out, z[0]) if z.size else out
            if syms.size == 0:
                continue
            counts += np.bincount(syms, minlength=SIGMA)[:SIGMA]
            # Run-length stats with a carry across chunk boundaries.
            change = np.flatnonzero(np.diff(syms.astype(np.int64)) != 0)
            starts = np.concatenate(([0], change + 1))
            stops = np.concatenate((change + 1, [syms.size]))
            lengths = (stops - starts).astype(np.int64)
            if prev_sym == int(syms[0]):
                lengths[0] += cur_len
            elif prev_sym >= 0:
                runs += 1
                max_run = max(max_run, cur_len)
            if lengths.size > 1:
                runs += int(lengths.size) - 1
                max_run = max(max_run, int(lengths[:-1].max()))
            cur_len = int(lengths[-1])
            prev_sym = int(syms[-1])
    if prev_sym >= 0:
        runs += 1
        max_run = max(max_run, cur_len)
    del sa_mm
    n_sym = int(counts.sum())
    if n_sym:
        probs = counts[counts > 0] / n_sym
        entropy = float(-(probs * np.log2(probs)).sum())
        run_stats = {
            "runs": int(runs),
            "mean_run": n_sym / runs,
            "max_run": int(max_run),
        }
    else:
        entropy = 0.0
        run_stats = {"runs": 0, "mean_run": 0.0, "max_run": 0}
    bwt_mm = np.memmap(work / "bwt.bin", dtype=np.uint8, mode="r")
    state["bwt_crc"] = _crc_stream(bwt_mm)
    del bwt_mm
    state["dollar_pos"] = int(dollar_pos)
    state["counts"] = [int(c) for c in counts]
    state["bwt_entropy0"] = entropy
    state["bwt_runs"] = run_stats
    state["stage"] = "encode"
    save_state("bwt")


# --------------------------------------------------------------------------
# Stage 3: incremental wavelet/RRR or Occ-checkpoint encoding.
# --------------------------------------------------------------------------


def _open_bwt(work: Path, n1: int, state: dict) -> np.memmap:
    bwt_mm = np.memmap(work / "bwt.bin", dtype=np.uint8, mode="r")
    if bwt_mm.size != n1 or _crc_stream(bwt_mm) != state.get("bwt_crc"):
        raise BuildResumeError("BWT checkpoint failed CRC; rebuild without resume")
    return bwt_mm


def _sentinel_free_chunks(bwt_mm: np.memmap, n1: int, dollar: int, chunk_rows: int):
    for lo in range(0, n1, chunk_rows):
        hi = min(lo + chunk_rows, n1)
        chunk = np.asarray(bwt_mm[lo:hi])
        if lo <= dollar < hi:
            chunk = np.delete(chunk, dollar - lo)
        yield chunk


def _stage_encode(
    n1: int,
    block_rows: int,
    work: Path,
    state: dict,
    save_state: Callable[[str], None],
    *,
    b: int,
    sf: int,
    backend: str,
    occ_checkpoint_words: int,
) -> None:
    bwt_mm = _open_bwt(work, n1, state)
    dollar = int(state["dollar_pos"])
    if backend == "rrr":
        # One pass feeds all three wavelet-tree nodes (sigma=4, balanced
        # tree: root splits {A,C}|{G,T}, leaves split within each pair).
        encs = [StreamingRRREncoder(b, sf) for _ in range(3)]
        for chunk in _sentinel_free_chunks(bwt_mm, n1, dollar, block_rows):
            right = chunk >= 2
            encs[0].feed(right.astype(np.uint8))
            encs[1].feed((chunk[~right] == 1).astype(np.uint8))
            encs[2].feed((chunk[right] == 3).astype(np.uint8))
        node_metas = []
        for i, enc in enumerate(encs):
            meta_i, arrays_i = enc.finalize()
            for name, arr in arrays_i.items():
                _atomic_save_npy(work / f"node{i}_{name}.npy", arr)
            node_metas.append(meta_i)
        state["node_metas"] = node_metas
    else:
        occ = _StreamingOccEncoder(occ_checkpoint_words, work / "occ_words.bin")
        for chunk in _sentinel_free_chunks(bwt_mm, n1, dollar, block_rows):
            occ.feed(chunk)
        n_words, checkpoints = occ.finalize()
        _atomic_save_npy(work / "occ_checkpoints.npy", checkpoints)
        state["occ_n_words"] = int(n_words)
        state["occ_n_sym"] = int(occ.n_sym)
    del bwt_mm
    state["stage"] = "finalize"
    save_state("encode")


# --------------------------------------------------------------------------
# Stage 4: finalize through the canonical constructors + flat writer.
# --------------------------------------------------------------------------


def _stage_finalize(
    n1: int,
    work: Path,
    state: dict,
    out_path: Path,
    *,
    b: int,
    sf: int,
    backend: str,
    locate: str,
    sa_sample_rate: int,
    occ_checkpoint_words: int,
    ftab_k: int | None,
    counters: OpCounters | None,
):
    dollar = int(state["dollar_pos"])
    bwt = BWT(
        codes=np.memmap(work / "bwt.bin", dtype=np.uint8, mode="r"),
        dollar_pos=dollar,
        sa=np.memmap(work / "sa.bin", dtype=np.int64, mode="r"),
    )
    counts = np.asarray(state["counts"], dtype=np.int64)
    C = np.zeros(SIGMA + 1, dtype=np.int64)
    C[0] = 1
    C[1:] = 1 + np.cumsum(counts)
    if backend == "rrr":
        node_metas = state["node_metas"]
        n_sym = int(counts.sum())
        tree_meta = {
            "n": n_sym,
            "sigma": SIGMA,
            "nodes": [
                {
                    "alphabet0": [0, 1],
                    "alphabet1": [2, 3],
                    "child0": 1,
                    "child1": 2,
                    "bits": node_metas[0],
                },
                {
                    "alphabet0": [0],
                    "alphabet1": [1],
                    "child0": -1,
                    "child1": -1,
                    "bits": node_metas[1],
                },
                {
                    "alphabet0": [2],
                    "alphabet1": [3],
                    "child0": -1,
                    "child1": -1,
                    "bits": node_metas[2],
                },
            ],
        }
        backend_meta = {
            "b": b,
            "sf": sf,
            "sentinel_in_tree": False,
            "dollar_pos": dollar,
            "n_rows": n1,
            "tree": tree_meta,
        }
        arrays: dict[str, np.ndarray] = {"C": C}
        for i in range(3):
            for name in ("classes", "partial_sums", "offset_words", "offset_sums"):
                arrays[f"tree/node{i}/{name}"] = np.load(
                    work / f"node{i}_{name}.npy", mmap_mode="r"
                )
        struct = BWTStructure.from_arrays(
            backend_meta, arrays, bwt=bwt, counters=counters
        )
    else:
        occ_meta = {
            "checkpoint_words": int(occ_checkpoint_words),
            "dollar_pos": dollar,
            "n_rows": n1,
            "n_sym": int(state["occ_n_sym"]),
        }
        words_path = work / "occ_words.bin"
        if os.path.getsize(words_path):
            words = np.memmap(words_path, dtype=np.uint64, mode="r")
        else:
            words = np.zeros(0, dtype=np.uint64)
        arrays = {
            "words": words,
            "checkpoints": np.load(work / "occ_checkpoints.npy", mmap_mode="r"),
            "C": C,
        }
        struct = OccTable.from_arrays(occ_meta, arrays, bwt=bwt, counters=counters)
    if locate == "full":
        loc = FullSA(bwt.sa)
    elif locate == "sampled":
        loc = SampledSA(bwt.sa, k=sa_sample_rate)
    else:
        loc = None
    ftab = None
    ftab_seconds = 0.0
    if ftab_k is not None:
        t0 = time.perf_counter()
        ftab = Ftab.build(struct, k=ftab_k)
        ftab_seconds = time.perf_counter() - t0
    index = FMIndex(struct, locate_structure=loc, counters=counters, ftab=ftab)
    save_index_flat(index, out_path)
    return struct, ftab, ftab_seconds


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


def build_index_blockwise(
    text,
    out_path: str | Path,
    *,
    b: int = DEFAULT_BLOCK_SIZE,
    sf: int = DEFAULT_SUPERBLOCK_FACTOR,
    backend: str = "rrr",
    locate: str = "full",
    sa_sample_rate: int = 32,
    occ_checkpoint_words: int = 4,
    ftab_k: int | None = None,
    block_mb: float = 64.0,
    block_rows: int | None = None,
    work_dir: str | Path | None = None,
    resume: bool = False,
    keep_work_dir: bool = False,
    counters: OpCounters | None = None,
    measure_peak: bool = False,
    checkpoint_callback: Callable[[str], None] | None = None,
) -> BuildReport:
    """Build a flat-container index out of core; return its build report.

    The finished container at ``out_path`` is byte-identical to
    ``save_index_flat`` applied to the equivalent monolithic
    :func:`~repro.index.builder.build_index` result.  ``block_mb`` sets
    the working-set budget of the suffix-array rounds (``block_rows``
    overrides it directly, mainly for tests).  With ``resume=True`` a
    build interrupted at any checkpoint continues from its work
    directory (``<out_path>.build`` unless ``work_dir`` is given);
    resuming a different input/configuration raises
    :class:`BuildResumeError`.  ``checkpoint_callback(label)`` is
    invoked after every durable state write — the fault-injection hook
    the kill/resume tests use.
    """
    if backend not in ("rrr", "occ"):
        raise ValueError(f"unknown backend {backend!r}")
    if locate not in ("full", "sampled", "none"):
        raise ValueError(f"unknown locate mode {locate!r}")
    codes = encode(text) if isinstance(text, str) else np.asarray(text, dtype=np.uint8)
    n = int(codes.size)
    n1 = n + 1
    if block_rows is None:
        block_rows = max(1024, int(block_mb * (1 << 20)) // _BYTES_PER_ROW)
    block_rows = int(block_rows)
    out_path = Path(out_path)
    work = Path(work_dir) if work_dir is not None else Path(str(out_path) + ".build")
    fp = _fingerprint(
        codes,
        b=b,
        sf=sf,
        backend=backend,
        locate=locate,
        sa_sample_rate=sa_sample_rate,
        occ_checkpoint_words=occ_checkpoint_words,
        ftab_k=ftab_k,
        block_rows=block_rows,
    )
    started_trace = False
    if measure_peak:
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            started_trace = True
    try:
        state, resumed = _open_state(work, fp, resume)

        def save_state(label: str) -> None:
            _atomic_write_json(work / _STATE_NAME, state)
            if checkpoint_callback is not None:
                checkpoint_callback(label)

        if not resumed:
            save_state("init")
        stage_seconds: dict[str, float] = {}
        tel = get_telemetry()
        with tel.span(
            "index.build_blockwise",
            text_length=n,
            b=b,
            sf=sf,
            backend=backend,
            block_rows=block_rows,
        ):
            if state["stage"] == "sa":
                t0 = time.perf_counter()
                with tel.span("index.sa_blockwise", cat="index"):
                    _stage_sa(codes, n1, block_rows, work, state, save_state)
                stage_seconds["sa"] = time.perf_counter() - t0
            if state["stage"] == "bwt":
                t0 = time.perf_counter()
                with tel.span("index.bwt_stream", cat="index"):
                    _stage_bwt(codes, n1, block_rows, work, state, save_state)
                stage_seconds["bwt"] = time.perf_counter() - t0
            if state["stage"] == "encode":
                t0 = time.perf_counter()
                with tel.span("index.encode_stream", cat="index"):
                    _stage_encode(
                        n1,
                        block_rows,
                        work,
                        state,
                        save_state,
                        b=b,
                        sf=sf,
                        backend=backend,
                        occ_checkpoint_words=occ_checkpoint_words,
                    )
                stage_seconds["encode"] = time.perf_counter() - t0
            # "finalize" re-runs even from a "done" state: the container
            # write is idempotent and bit-identical.
            t0 = time.perf_counter()
            with tel.span("index.finalize_stream", cat="index"):
                struct, ftab, ftab_seconds = _stage_finalize(
                    n1,
                    work,
                    state,
                    out_path,
                    b=b,
                    sf=sf,
                    backend=backend,
                    locate=locate,
                    sa_sample_rate=sa_sample_rate,
                    occ_checkpoint_words=occ_checkpoint_words,
                    ftab_k=ftab_k,
                    counters=counters,
                )
            stage_seconds["finalize"] = time.perf_counter() - t0
            state["stage"] = "done"
            save_state("finalize")
        peak = 0
        if measure_peak:
            peak = int(tracemalloc.get_traced_memory()[1])
        report = BuildReport(
            text_length=n,
            b=b,
            sf=sf,
            backend=backend,
            sa_bwt_seconds=stage_seconds.get("sa", 0.0) + stage_seconds.get("bwt", 0.0),
            encode_seconds=stage_seconds.get("encode", 0.0),
            structure_bytes=struct.size_in_bytes(),
            uncompressed_bytes=n1,
            bwt_entropy0=float(state["bwt_entropy0"]),
            bwt_runs=dict(state["bwt_runs"]),
            ftab_seconds=ftab_seconds,
            ftab_bytes=ftab.size_in_bytes() if ftab is not None else 0,
            build_mode="blockwise",
            stage_seconds=stage_seconds,
            peak_alloc_bytes=peak,
            resumed=resumed,
        )
        if tel.enabled:
            m = tel.metrics
            m.counter("index_builds_total", "Index builds completed").inc()
            hist = m.histogram(
                "index_build_stage_seconds",
                "Wall seconds per index build stage",
                labelnames=("stage",),
            )
            for stage, secs in stage_seconds.items():
                hist.observe(secs, stage=stage)
            m.gauge(
                "index_structure_bytes", "Succinct structure size of the last build"
            ).set(report.structure_bytes)
            if resumed:
                m.counter(
                    "index_blockwise_resumes_total", "Blockwise builds resumed"
                ).inc()
        # Release the memmaps the finalized structure holds before
        # deleting their backing files.
        del struct, ftab
        if not keep_work_dir:
            shutil.rmtree(work, ignore_errors=True)
        return report
    finally:
        if started_trace:
            tracemalloc.stop()

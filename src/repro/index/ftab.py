"""K-mer jump-start table ("ftab"): precomputed seed intervals.

Bowtie2 and BWA — the software baselines the paper measures against —
skip the first *k* backward-search steps of every query with a lookup
table holding the SA interval of every length-*k* string over the DNA
alphabet.  This module brings the same optimization to the whole search
stack: :class:`Ftab` stores, for each of the ``4**k`` k-mers, the
half-open interval ``[lo, hi)`` *and* the number of symbols the scalar
search would have consumed before its first empty interval.  A query of
length ``>= k`` then starts at step ``k`` with a single table read, and
— because emptied entries record the exact ``(lo, steps)`` the stepwise
recurrence would have produced — results are bit-identical with the
table on or off (the differential selfcheck enforces this).

Layout
------
Three parallel arrays indexed by the k-mer's base-4 value read left to
right (``idx = sum(code[j] * 4**(k-1-j))``):

* ``lo``/``hi`` — ``int64`` interval bounds.  For an entry whose
  interval emptied at step ``s < k``, both hold the ``lo`` value of the
  emptying step (exactly what ``FMIndex.search`` returns).
* ``steps`` — ``uint8`` symbols consumed: ``k`` for live entries,
  ``s <= k`` for emptied ones.

Build algorithm
---------------
Bottom-up over k-mer length, O(4^k) total and fully vectorized — no
per-k-mer search.  Level 1 is ``[C(a), C(a) + Occ(a, n_rows))``; level
``j + 1`` prepends each symbol ``a`` to every level-``j`` entry with one
fused :meth:`occ2_many` call over all ``4**j`` intervals:

.. math::

    lo' = C(a) + Occ(a, lo), \\qquad hi' = C(a) + Occ(a, hi).

Entries already emptied at level ``j`` propagate unchanged (the scalar
search never reaches the prepended symbol), which is what preserves
``steps`` parity.
"""

from __future__ import annotations

import numpy as np

from ..core.counters import OpCounters

SIGMA = 4

#: Bowtie2's default seed-table order; 4**10 entries.
DEFAULT_FTAB_K = 10

#: Version tag recorded in the flat-container manifest entry.
FTAB_FORMAT_VERSION = 1

#: Sanity bound: 4**15 entries is already 1 GiB of int64 bounds.
MAX_FTAB_K = 15


class Ftab:
    """Seed-interval table over all ``4**k`` DNA k-mers.

    Instances are immutable query objects; build one with :meth:`build`
    (vectorized, against any rank backend) or re-attach exported arrays
    with :meth:`from_arrays` (zero-copy, e.g. from the flat container).
    """

    __slots__ = ("k", "lo", "hi", "steps", "_rev_weights")

    def __init__(self, k: int, lo: np.ndarray, hi: np.ndarray, steps: np.ndarray):
        if not 1 <= k <= MAX_FTAB_K:
            raise ValueError(f"ftab k must lie in [1, {MAX_FTAB_K}], got {k}")
        n_entries = SIGMA**k
        if lo.shape != (n_entries,) or hi.shape != (n_entries,) or steps.shape != (n_entries,):
            raise ValueError(
                f"ftab arrays must have {n_entries} entries for k={k}"
            )
        self.k = int(k)
        self.lo = lo
        self.hi = hi
        self.steps = steps
        # Weight of the symbol consumed at step t (pattern position
        # m-1-t): 4**t.  Used to index from reversed-code layouts.
        self._rev_weights = SIGMA ** np.arange(k, dtype=np.int64)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, backend, k: int = DEFAULT_FTAB_K) -> "Ftab":
        """Precompute every k-mer's interval bottom-up in O(4^k).

        ``backend`` is any rank backend (``occ_many``/``count_smaller``/
        ``n_rows``); the fused ``occ2_many`` kernel is used when the
        backend provides it.  Each level issues four fused rank calls
        over all intervals of the previous level — never one search per
        k-mer.
        """
        if not 1 <= k <= MAX_FTAB_K:
            raise ValueError(f"ftab k must lie in [1, {MAX_FTAB_K}], got {k}")
        n_rows = int(backend.n_rows)
        C = np.array(
            [backend.count_smaller(a) for a in range(SIGMA)], dtype=np.int64
        )
        occ2 = getattr(backend, "occ2_many", None)
        # Level 1: the interval of each single symbol from [0, n_rows).
        top = np.full(SIGMA, n_rows, dtype=np.int64)
        occ_top = np.array(
            [backend.occ_many(a, top[a : a + 1])[0] for a in range(SIGMA)],
            dtype=np.int64,
        )
        lo = C.copy()  # Occ(a, 0) == 0
        hi = C + occ_top
        steps = np.ones(SIGMA, dtype=np.uint8)
        dead = lo >= hi
        hi[dead] = lo[dead]
        # Levels 2..k: prepend each symbol to every existing k-mer.  The
        # index of ``a + kmer`` is ``a * 4**level + idx(kmer)``.
        for level in range(1, k):
            size = SIGMA**level
            new_lo = np.empty(SIGMA * size, dtype=np.int64)
            new_hi = np.empty(SIGMA * size, dtype=np.int64)
            new_steps = np.empty(SIGMA * size, dtype=np.uint8)
            alive = lo < hi
            for a in range(SIGMA):
                if occ2 is not None:
                    olo, ohi = occ2(a, lo, hi)
                else:
                    olo = backend.occ_many(a, lo)
                    ohi = backend.occ_many(a, hi)
                elo = C[a] + olo
                ehi = C[a] + ohi
                # Emptied-now entries record the emptying lo on both
                # bounds, exactly like the scalar search's early return.
                ehi = np.where(elo < ehi, ehi, elo)
                sl = slice(a * size, (a + 1) * size)
                new_lo[sl] = np.where(alive, elo, lo)
                new_hi[sl] = np.where(alive, ehi, hi)
                new_steps[sl] = np.where(alive, steps + 1, steps)
            lo, hi, steps = new_lo, new_hi, new_steps
        return cls(k, lo, hi, steps)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self.lo.size

    def index_of(self, codes: np.ndarray) -> int:
        """Table index of a pattern's length-``k`` suffix (the k-mer the
        backward search consumes first)."""
        tail = np.asarray(codes[-self.k :], dtype=np.int64)
        # tail[j] is consumed at step k-1-j, so its weight is 4**(k-1-j).
        return int(tail[::-1] @ self._rev_weights)

    def lookup(self, codes: np.ndarray) -> tuple[int, int, int]:
        """``(lo, hi, steps)`` of a pattern's length-``k`` suffix."""
        idx = self.index_of(codes)
        return int(self.lo[idx]), int(self.hi[idx]), int(self.steps[idx])

    def indices_from_reversed(self, rev_mat: np.ndarray) -> np.ndarray:
        """Table indices from reversed-code rows (batch search layout).

        ``rev_mat`` has shape ``(nq, k)`` where column ``t`` holds the
        symbol consumed at step ``t`` — exactly the first ``k`` columns
        of ``search_batch``'s right-aligned matrix.
        """
        return np.asarray(rev_mat, dtype=np.int64) @ self._rev_weights

    # -- zero-copy rehydration ----------------------------------------------

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The table as (metadata, named arrays); arrays are not copied."""
        meta = {"version": FTAB_FORMAT_VERSION, "k": self.k}
        arrays = {"lo": self.lo, "hi": self.hi, "steps": self.steps}
        return meta, arrays

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict[str, np.ndarray]) -> "Ftab":
        """Re-attach exported arrays without copying (memmap/shm safe)."""
        version = int(meta.get("version", 1))
        if version > FTAB_FORMAT_VERSION:
            raise ValueError(
                f"ftab segment version {version} is newer than supported "
                f"({FTAB_FORMAT_VERSION})"
            )
        return cls(int(meta["k"]), arrays["lo"], arrays["hi"], arrays["steps"])

    # -- sizes ---------------------------------------------------------------

    def size_in_bytes(self) -> int:
        return int(self.lo.nbytes + self.hi.nbytes + self.steps.nbytes)

    def __repr__(self) -> str:
        return (
            f"Ftab(k={self.k}, entries={self.lo.size}, "
            f"bytes={self.size_in_bytes()})"
        )


def build_ftab(
    backend,
    k: int = DEFAULT_FTAB_K,
    counters: OpCounters | None = None,
) -> Ftab:
    """Convenience wrapper mirroring the module-level build functions.

    ``counters`` is accepted for signature symmetry with the other
    builders; the construction itself is charged to the backend's own
    counters (it runs through the backend's vectorized rank kernels).
    """
    del counters
    return Ftab.build(backend, k=k)

"""End-to-end index construction: the host-side steps of BWaveR.

The paper's workflow (§III-D, Fig. 4) has three steps; this module owns
the first two, which run on the host CPU:

1. **BWT and SA computation** — reference text → suffix array → BWT;
2. **BWT encoding** — BWT → wavelet tree of RRR sequences.

(The third step, sequence mapping, is :mod:`repro.mapper` /
:mod:`repro.fpga`.)

:func:`build_index` returns the finished :class:`~repro.index.fm_index.FMIndex`
together with a :class:`BuildReport` carrying per-step wall-clock times
and structure sizes — the exact quantities plotted in Figs. 5 and 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..core.counters import OpCounters
from ..core.rrr import DEFAULT_BLOCK_SIZE, DEFAULT_SUPERBLOCK_FACTOR
from ..sequence.alphabet import encode
from ..sequence.bwt import BWT, bwt_from_codes, entropy0, run_length_stats
from ..sequence.sampled_sa import FullSA, SampledSA
from ..sequence.suffix_array import Method, suffix_array
from ..telemetry import get_telemetry
from .fm_index import FMIndex
from .ftab import Ftab
from .occ_table import OccTable

Backend = Literal["rrr", "occ"]
Locate = Literal["full", "sampled", "none"]


@dataclass
class BuildReport:
    """Timing and size breakdown of one index build.

    ``sa_bwt_seconds`` and ``encode_seconds`` correspond one-to-one to the
    paper's workflow steps 1 and 2; ``encode_seconds`` is the quantity of
    Fig. 6.
    """

    text_length: int
    b: int
    sf: int
    backend: str
    sa_bwt_seconds: float
    encode_seconds: float
    structure_bytes: int
    uncompressed_bytes: int
    bwt_entropy0: float
    bwt_runs: dict = field(default_factory=dict)
    #: K-mer jump-start table build time and footprint (0 when disabled).
    ftab_seconds: float = 0.0
    ftab_bytes: int = 0
    #: ``"monolithic"`` (in-RAM :func:`build_index`) or ``"blockwise"``
    #: (:func:`repro.index.build_stream.build_index_blockwise`).
    build_mode: str = "monolithic"
    #: Finer-grained wall seconds per pipeline stage (stage name -> s).
    stage_seconds: dict = field(default_factory=dict)
    #: tracemalloc peak of traced allocations during the build, when the
    #: builder was asked to measure it (0 otherwise).
    peak_alloc_bytes: int = 0
    #: True when a blockwise build continued from on-disk checkpoints.
    resumed: bool = False

    @property
    def compression_ratio(self) -> float:
        """Structure size relative to the 1 byte/char representation."""
        if self.uncompressed_bytes == 0:
            return 0.0
        return self.structure_bytes / self.uncompressed_bytes

    @property
    def space_saving_percent(self) -> float:
        """The paper's "reducing the memory requirements up to X%" metric."""
        return 100.0 * (1.0 - self.compression_ratio)


def build_index(
    text,
    b: int = DEFAULT_BLOCK_SIZE,
    sf: int = DEFAULT_SUPERBLOCK_FACTOR,
    backend: Backend = "rrr",
    locate: Locate = "full",
    sa_method: Method = "doubling",
    sa_sample_rate: int = 32,
    occ_checkpoint_words: int = 4,
    store_sentinel_in_tree: bool = False,
    counters: OpCounters | None = None,
    ftab_k: int | None = None,
) -> tuple[FMIndex, BuildReport]:
    """Build a queryable index from a DNA string or code array.

    Parameters mirror the paper's tunables: ``b``/``sf`` control the RRR
    encoding (Figs. 5-7), ``backend`` selects succinct vs. checkpointed
    Occ (structure ablation), ``locate`` picks the host-side position
    store.  ``ftab_k`` additionally precomputes the k-mer jump-start
    table (:mod:`repro.index.ftab`, 4^k entries; Bowtie2's default order
    is 10) — queries then skip their first ``k`` backward-search steps
    with one table read, bit-identically.
    """
    codes = encode(text) if isinstance(text, str) else np.asarray(text, dtype=np.uint8)

    tel = get_telemetry()
    with tel.span("index.build", text_length=int(codes.size), b=b, sf=sf, backend=backend):
        t0 = time.perf_counter()
        with tel.span("index.sa_bwt", cat="index"):
            sa = suffix_array(codes, method=sa_method)
            bwt = bwt_from_codes(codes, sa=sa)
        t1 = time.perf_counter()

        with tel.span("index.encode", cat="index"):
            if backend == "rrr":
                struct = BWTStructure(
                    bwt,
                    b=b,
                    sf=sf,
                    store_sentinel_in_tree=store_sentinel_in_tree,
                    counters=counters,
                )
            elif backend == "occ":
                struct = OccTable(
                    bwt, checkpoint_words=occ_checkpoint_words, counters=counters
                )
            else:
                raise ValueError(f"unknown backend {backend!r}")
        t2 = time.perf_counter()

        if locate == "full":
            loc = FullSA(sa)
        elif locate == "sampled":
            loc = SampledSA(sa, k=sa_sample_rate)
        elif locate == "none":
            loc = None
        else:
            raise ValueError(f"unknown locate structure {locate!r}")

        ftab = None
        ftab_seconds = 0.0
        if ftab_k is not None:
            with tel.span("index.ftab", cat="index", k=ftab_k):
                t_ft = time.perf_counter()
                ftab = Ftab.build(struct, k=ftab_k)
                ftab_seconds = time.perf_counter() - t_ft

        index = FMIndex(struct, locate_structure=loc, counters=counters, ftab=ftab)
        sym = bwt.symbols_without_sentinel()
        report = BuildReport(
            text_length=int(codes.size),
            b=b,
            sf=sf,
            backend=backend,
            sa_bwt_seconds=t1 - t0,
            encode_seconds=t2 - t1,
            structure_bytes=struct.size_in_bytes(),
            uncompressed_bytes=bwt.length,
            bwt_entropy0=entropy0(sym) if sym.size else 0.0,
            bwt_runs=run_length_stats(bwt),
            ftab_seconds=ftab_seconds,
            ftab_bytes=ftab.size_in_bytes() if ftab is not None else 0,
            stage_seconds={
                "sa_bwt": t1 - t0,
                "encode": t2 - t1,
                "ftab": ftab_seconds,
            },
        )
    m = tel.metrics
    m.counter("index_builds_total", "Index builds completed").inc()
    m.histogram(
        "index_build_stage_seconds",
        "Wall seconds per index build stage",
        labelnames=("stage",),
    ).observe(report.sa_bwt_seconds, stage="sa_bwt")
    m.histogram(
        "index_build_stage_seconds",
        "Wall seconds per index build stage",
        labelnames=("stage",),
    ).observe(report.encode_seconds, stage="encode")
    m.gauge(
        "index_structure_bytes", "Succinct structure size of the last build"
    ).set(report.structure_bytes)
    tel.log.info(
        "index.build.done",
        text_length=report.text_length,
        b=b,
        sf=sf,
        backend=backend,
        sa_bwt_seconds=report.sa_bwt_seconds,
        encode_seconds=report.encode_seconds,
        structure_bytes=report.structure_bytes,
    )
    return index, report


def encode_existing_bwt(
    bwt: BWT,
    b: int = DEFAULT_BLOCK_SIZE,
    sf: int = DEFAULT_SUPERBLOCK_FACTOR,
    counters: OpCounters | None = None,
) -> tuple[BWTStructure, float]:
    """Step 2 alone: encode a precomputed BWT, returning (structure, seconds).

    This isolates exactly what Fig. 6 measures — the succinct-encoding
    time as a function of ``b`` and ``sf`` — without re-running suffix
    sorting.
    """
    t0 = time.perf_counter()
    struct = BWTStructure(bwt, b=b, sf=sf, counters=counters)
    return struct, time.perf_counter() - t0

"""Text extraction from the index alone (FM-index ``extract``).

A full-text index is *self-* indexing when the original text can be
recovered from it — the property that lets BWaveR-style deployments drop
the reference FASTA after building (the paper's web workflow keeps only
the BWT/SA file).  This module adds the standard extract machinery:
sampled **inverse suffix array** entries (``isa[p]`` = matrix row of the
suffix starting at text position ``p``) plus LF walking.

To extract ``T[s:e]``: start from the sampled row nearest *after* ``e``,
LF-step down to position ``e`` (each LF step moves from the suffix at
``p`` to the suffix at ``p - 1``, and the BWT symbol at the current row
is ``T[p - 1]``), then emit ``e - s`` symbols.  Cost:
``O(sample_rate + length)`` rank queries.
"""

from __future__ import annotations

import numpy as np

from ..sequence.alphabet import decode


class TextExtractor:
    """Recover text substrings from a rank backend + ISA samples.

    Parameters
    ----------
    backend:
        Any rank backend (``access``/``lf``/``n_rows``).
    sa:
        The suffix array (consumed at build time; only every
        ``sample_rate``-th inverse entry is retained, plus ``isa[n]``).
    sample_rate:
        Distance between retained ISA samples.
    """

    def __init__(self, backend, sa: np.ndarray, sample_rate: int = 32):
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        sa = np.asarray(sa, dtype=np.int64)
        if sa.size != backend.n_rows:
            raise ValueError(
                f"suffix array length {sa.size} != matrix rows {backend.n_rows}"
            )
        self.backend = backend
        self.k = int(sample_rate)
        self.n = int(sa.size) - 1  # text length
        isa = np.empty(sa.size, dtype=np.int64)
        isa[sa] = np.arange(sa.size, dtype=np.int64)
        # Samples at positions 0, k, 2k, ... plus the sentinel position n.
        self._sample_positions = np.arange(0, self.n + 1, self.k, dtype=np.int64)
        if self._sample_positions[-1] != self.n:
            self._sample_positions = np.concatenate(
                [self._sample_positions, [self.n]]
            )
        self._samples = isa[self._sample_positions]

    def size_in_bytes(self) -> int:
        return self._samples.nbytes + self._sample_positions.nbytes

    def _row_at(self, position: int) -> int:
        """Matrix row of the suffix starting at ``position`` (0..n)."""
        idx = int(np.searchsorted(self._sample_positions, position, side="left"))
        q = int(self._sample_positions[idx])
        row = int(self._samples[idx])
        for _ in range(q - position):
            row = self.backend.lf(row)
        return row

    def extract_codes(self, start: int, length: int) -> np.ndarray:
        """Symbol codes of ``T[start : start + length]``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        if not 0 <= start <= self.n:
            raise IndexError(f"start {start} out of range [0, {self.n}]")
        end = start + length
        if end > self.n:
            raise IndexError(
                f"extraction [{start}, {end}) runs past the text end ({self.n})"
            )
        if length == 0:
            return np.zeros(0, dtype=np.uint8)
        row = self._row_at(end)
        out = np.zeros(length, dtype=np.uint8)
        for i in range(length - 1, -1, -1):
            sym = self.backend.access(row)
            if sym < 0:  # pragma: no cover - only if end walked past start 0
                raise AssertionError("extract walked into the sentinel")
            out[i] = sym
            row = self.backend.lf(row)
        return out

    def extract(self, start: int, length: int) -> str:
        """``T[start : start + length]`` as a DNA string."""
        return decode(self.extract_codes(start, length))

    def full_text(self) -> str:
        """Recover the entire reference (self-index round trip)."""
        return self.extract(0, self.n)

"""Index persistence: save/load a built FM-index to a single ``.npz``.

BWaveR's web workflow computes the BWT and suffix array once per
reference and stores them "in a file" (workflow step 1) so repeated
mapping jobs skip suffix sorting.  This module provides that persistence
layer for both backends.

The archive stores raw arrays plus a small JSON metadata blob (format
version, backend kind, parameters).  Loading *re-encodes* the succinct
structure from the stored BWT rather than pickling live objects — the
arrays are the ground truth, re-encoding is fast, and it keeps the format
robust against refactors of in-memory layouts.

Integrity: every stored array carries a CRC32 in the metadata
(``array_crc32``), verified on load.  Truncated, bit-flipped or
otherwise unreadable archives raise :class:`IndexFormatError` — never a
raw ``numpy``/``zipfile``/``zlib`` error — so callers have one exception
to handle for "this index file cannot be trusted".  Archives written
before the checksum field are still readable (no CRCs to verify).
"""

from __future__ import annotations

import json
import time
import zlib
from pathlib import Path

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..core.counters import OpCounters
from ..sequence.bwt import BWT
from ..sequence.sampled_sa import FullSA, SampledSA
from ..telemetry import get_telemetry
from .fm_index import FMIndex
from .ftab import Ftab
from .occ_table import OccTable

FORMAT_VERSION = 1


class IndexFormatError(ValueError):
    """Raised when an archive is missing fields, version-incompatible,
    truncated, or fails its checksum verification."""


def _array_crc32(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _attach_crcs(arrays: dict[str, np.ndarray], meta: dict) -> None:
    """Record per-array CRC32 words in ``meta`` (the metadata blob itself
    is excluded — it carries the checksums)."""
    meta["array_crc32"] = {
        name: _array_crc32(arr) for name, arr in arrays.items() if name != "meta_json"
    }


def _meta_array(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8).copy()


def _read_archive(path: Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Load and integrity-check an archive; all read/decode failures
    surface as :class:`IndexFormatError`."""
    try:
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
    except IndexFormatError:
        raise
    except Exception as exc:  # zipfile/zlib/numpy surfaces vary by failure
        raise IndexFormatError(
            f"cannot read index archive {path}: {type(exc).__name__}: {exc}"
        ) from exc
    if "meta_json" not in arrays:
        raise IndexFormatError("archive missing field: 'meta_json'")
    try:
        meta = json.loads(bytes(arrays["meta_json"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"archive metadata is corrupted: {exc}") from exc
    crcs = meta.get("array_crc32")
    if crcs:
        for name, expected in crcs.items():
            if name not in arrays:
                raise IndexFormatError(f"archive missing checksummed array {name!r}")
            if _array_crc32(arrays[name]) != expected:
                raise IndexFormatError(
                    f"checksum mismatch for array {name!r}: archive is corrupted"
                )
    return meta, arrays


def save_multiref_index(index, path: str | Path) -> None:
    """Serialize a :class:`~repro.index.multiref.MultiReferenceIndex`.

    Stores the inner concatenation index plus the sequence table (names,
    lengths) in the same archive.
    """
    from .multiref import MultiReferenceIndex

    if not isinstance(index, MultiReferenceIndex):
        raise IndexFormatError(
            f"expected a MultiReferenceIndex, got {type(index).__name__}"
        )
    path = Path(path)
    # Reuse the single-index writer, then append the sequence table.
    save_index(index.index, path)
    with np.load(path) as data:
        arrays = dict(data)
    meta = json.loads(bytes(arrays["meta_json"]).decode("utf-8"))
    meta["multiref"] = True
    arrays["seq_names_json"] = np.frombuffer(
        json.dumps(list(index.names)).encode("utf-8"), dtype=np.uint8
    ).copy()
    arrays["seq_lengths"] = index.lengths
    _attach_crcs(arrays, meta)
    arrays["meta_json"] = _meta_array(meta)
    np.savez_compressed(path, **arrays)


def load_multiref_index(path: str | Path, counters=None):
    """Load an archive written by :func:`save_multiref_index`."""
    from .multiref import MultiReferenceIndex

    path = Path(path)
    meta, arrays = _read_archive(path)
    if not meta.get("multiref"):
        raise IndexFormatError(
            "archive holds a single-reference index; use load_index"
        )
    try:
        names = json.loads(bytes(arrays["seq_names_json"]).decode("utf-8"))
        lengths = arrays["seq_lengths"].astype(np.int64)
    except KeyError as exc:
        raise IndexFormatError(f"archive missing field: {exc}") from exc
    inner = _build_index_from(meta, arrays, counters)
    # Rebuild the wrapper around the loaded inner index without re-indexing.
    multi = MultiReferenceIndex.__new__(MultiReferenceIndex)
    multi.names = tuple(names)
    multi.ordinals = {n: i for i, n in enumerate(multi.names)}
    multi.lengths = lengths
    multi.offsets = np.concatenate(([0], np.cumsum(lengths)))
    multi.index = inner
    multi.build_report = None
    return multi


def save_index(index: FMIndex, path: str | Path) -> None:
    """Serialize ``index`` (backend parameters + BWT + locate data)."""
    path = Path(path)
    backend = index.backend
    if isinstance(backend, BWTStructure):
        meta = {
            "version": FORMAT_VERSION,
            "backend": "rrr",
            "b": backend.b,
            "sf": backend.sf,
            "sentinel_in_tree": backend.store_sentinel_in_tree,
        }
        bwt = backend.bwt
    elif isinstance(backend, OccTable):
        meta = {
            "version": FORMAT_VERSION,
            "backend": "occ",
            "checkpoint_words": backend.checkpoint_words,
        }
        bwt = backend.bwt
    else:
        raise IndexFormatError(
            f"cannot serialize backend of type {type(backend).__name__}"
        )
    arrays: dict[str, np.ndarray] = {
        "bwt_codes": bwt.codes,
        "dollar_pos": np.array([bwt.dollar_pos], dtype=np.int64),
        "sa": bwt.sa,
    }
    loc = index.locate_structure
    if loc is None:
        meta["locate"] = "none"
    elif isinstance(loc, FullSA):
        meta["locate"] = "full"
    elif isinstance(loc, SampledSA):
        meta["locate"] = "sampled"
        meta["sa_sample_rate"] = loc.k
    else:
        raise IndexFormatError(
            f"cannot serialize locate structure of type {type(loc).__name__}"
        )
    if index.ftab is not None:
        # Optional k-mer jump-start table; archives without these keys
        # load exactly as before (ftab=None).
        ftab_meta, ftab_arrays = index.ftab.export_arrays()
        meta["ftab"] = ftab_meta
        for name, arr in ftab_arrays.items():
            arrays[f"ftab_{name}"] = arr
    _attach_crcs(arrays, meta)
    arrays["meta_json"] = _meta_array(meta)
    np.savez_compressed(path, **arrays)


def _build_index_from(
    meta: dict, arrays: dict[str, np.ndarray], counters: OpCounters | None
) -> FMIndex:
    """Rebuild an :class:`FMIndex` from verified archive contents."""
    try:
        bwt_codes = arrays["bwt_codes"]
        dollar_pos = int(arrays["dollar_pos"][0])
        sa = arrays["sa"]
    except (KeyError, IndexError) as exc:
        raise IndexFormatError(f"archive missing field: {exc}") from exc
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise IndexFormatError(
            f"unsupported index format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    bwt = BWT(codes=bwt_codes, dollar_pos=dollar_pos, sa=sa)
    kind = meta.get("backend")
    if kind == "rrr":
        backend = BWTStructure(
            bwt,
            b=int(meta["b"]),
            sf=int(meta["sf"]),
            store_sentinel_in_tree=bool(meta.get("sentinel_in_tree", False)),
            counters=counters,
        )
    elif kind == "occ":
        backend = OccTable(
            bwt, checkpoint_words=int(meta["checkpoint_words"]), counters=counters
        )
    else:
        raise IndexFormatError(f"unknown backend kind {kind!r}")
    locate = meta.get("locate", "none")
    if locate == "full":
        loc = FullSA(sa)
    elif locate == "sampled":
        loc = SampledSA(sa, k=int(meta.get("sa_sample_rate", 32)))
    elif locate == "none":
        loc = None
    else:
        raise IndexFormatError(f"unknown locate kind {locate!r}")
    ftab = None
    if meta.get("ftab"):
        try:
            ftab = Ftab.from_arrays(
                meta["ftab"],
                {
                    "lo": arrays["ftab_lo"],
                    "hi": arrays["ftab_hi"],
                    "steps": arrays["ftab_steps"],
                },
            )
        except (KeyError, ValueError) as exc:
            raise IndexFormatError(f"archive ftab invalid: {exc}") from exc
    return FMIndex(backend, locate_structure=loc, counters=counters, ftab=ftab)


def load_index(path: str | Path, counters: OpCounters | None = None) -> FMIndex:
    """Load an archive written by :func:`save_index` and rebuild the index."""
    path = Path(path)
    tel = get_telemetry()
    with tel.span("index.load", path=str(path)):
        t0 = time.perf_counter()
        meta, arrays = _read_archive(path)
        index = _build_index_from(meta, arrays, counters)
        tel.metrics.counter("index_loads_total", "Index archives loaded").inc()
        tel.metrics.histogram(
            "index_load_seconds", "Wall seconds spent loading index archives"
        ).observe(time.perf_counter() - t0)
    return index

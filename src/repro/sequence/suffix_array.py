"""Suffix-array construction (paper §III-A, Eq. 1-3).

Three independent builders are provided and cross-checked by the tests:

``naive``
    Direct sort of the suffixes — O(n² log n).  Trivially correct; the
    oracle for everything else on small inputs.
``doubling``
    Manber-Myers prefix doubling, vectorized with numpy argsort —
    O(n log² n) with tiny constants; the default for every pipeline in
    this repository (it comfortably handles the multi-Mbp synthetic
    references of the benchmarks).
``sais``
    The linear-time SA-IS algorithm (induced sorting) in pure Python —
    the asymptotically optimal reference, matching what production
    indexers (and the paper's host-side step 1) use.

All builders operate on the 2-bit code arrays of
:mod:`repro.sequence.alphabet` and return the suffix array of
``text + '$'`` where the sentinel is lexicographically smallest, exactly
the convention of the paper's BWT construction (its step 1).  The result
has length ``n + 1`` and always starts with ``SA[0] == n`` (the sentinel
suffix).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

Method = Literal["naive", "doubling", "sais"]


def suffix_array(codes: np.ndarray, method: Method = "doubling") -> np.ndarray:
    """Suffix array of ``codes + [$]`` with ``$`` smallest.

    Parameters
    ----------
    codes:
        Integer symbol codes, each ``>= 0`` (DNA codes are ``0..3``).
    method:
        One of ``"naive"``, ``"doubling"``, ``"sais"``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 1:
        raise ValueError("codes must be one-dimensional")
    if codes.size and codes.min() < 0:
        raise ValueError("symbol codes must be non-negative")
    # Shift by +1 so 0 is free for the sentinel, then append it.
    s = np.concatenate([codes + 1, [0]])
    if method == "naive":
        return _sa_naive(s)
    if method == "doubling":
        return _sa_doubling(s)
    if method == "sais":
        return _sais_numpy(s)
    raise ValueError(f"unknown suffix-array method {method!r}")


def _sa_naive(s: np.ndarray) -> np.ndarray:
    seq = s.tolist()
    order = sorted(range(len(seq)), key=lambda i: seq[i:])
    return np.asarray(order, dtype=np.int64)


def _sa_doubling(s: np.ndarray) -> np.ndarray:
    n = s.size
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Initial ranks: dense symbol ranks.
    uniq = np.unique(s)
    rank = np.searchsorted(uniq, s).astype(np.int64)
    idx = np.arange(n, dtype=np.int64)
    k = 1
    while True:
        # Secondary key: rank of the suffix k positions later, +1 so that
        # "past the end" (key 0) sorts first — shorter suffixes are smaller
        # when they are prefixes of longer ones.
        second = np.zeros(n, dtype=np.int64)
        has = idx + k < n
        second[has] = rank[idx[has] + k] + 1
        key = rank * np.int64(n + 1) + second
        sa = np.argsort(key, kind="stable")
        sorted_key = key[sa]
        new_rank = np.zeros(n, dtype=np.int64)
        if n > 1:
            new_rank[sa[1:]] = np.cumsum(sorted_key[1:] != sorted_key[:-1])
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            return sa.astype(np.int64)
        k *= 2


# --------------------------------------------------------------------------
# SA-IS (Nong, Zhang & Chan, 2009) — numpy-accelerated construction.
# --------------------------------------------------------------------------


def _sais_numpy(s: np.ndarray) -> np.ndarray:
    """SA-IS operating on numpy arrays end to end.

    This replaces the old ``np.asarray(sais(s.tolist(), ...))`` round
    trip: type classification, LMS detection, and LMS-substring naming
    are fully vectorized; only the three induced-sorting sweeps remain
    scalar Python loops (they are inherently sequential — each placement
    depends on entries placed earlier in the same sweep — and run
    fastest over plain lists, so the arrays are converted once per
    recursion level for exactly that part).  The pure-Python
    :func:`sais` below is kept unchanged as the differential oracle.
    """
    s = np.asarray(s, dtype=np.int64)
    n = s.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # 1. S/L classification.  t[i] compares s[i] against the next position
    # where adjacent symbols differ: within an equal run the type is that
    # of the run's last element, and the final position is S by definition.
    ne = np.empty(n, dtype=bool)
    ne[:-1] = s[:-1] != s[1:]
    ne[-1] = True
    idx = np.arange(n, dtype=np.int64)
    nxt = np.minimum.accumulate(np.where(ne, idx, n - 1)[::-1])[::-1]
    cmp = np.empty(n, dtype=bool)
    cmp[:-1] = s[:-1] < s[1:]
    cmp[-1] = True
    t = cmp[nxt]
    # 2. LMS positions: S-type preceded by L-type.
    lms = np.zeros(n, dtype=bool)
    lms[1:] = t[1:] & ~t[:-1]
    lms_positions = np.flatnonzero(lms)
    sigma = int(s.max()) + 1
    counts = np.bincount(s, minlength=sigma).tolist()
    t_list = t.tolist()
    s_list = s.tolist()
    # 3. First induction from the (unsorted) LMS positions.
    sa = np.array(
        _induce(s_list, t_list, counts, sigma, lms_positions.tolist()),
        dtype=np.int64,
    )
    # 4. Name LMS substrings in their induced order — vectorized ragged
    # comparison of adjacent pairs (both symbols and types, like the
    # scalar oracle; substrings span up to and including the next LMS).
    lms_sorted = sa[lms[sa]]
    lms_rank = np.empty(n, dtype=np.int64)
    lms_rank[lms_positions] = np.arange(lms_positions.size, dtype=np.int64)
    lms_len = np.diff(lms_positions, append=n - 1) + 1
    n_pairs = lms_sorted.size - 1
    equal = np.zeros(n_pairs, dtype=bool)
    prev, cur = lms_sorted[:-1], lms_sorted[1:]
    maybe = lms_len[lms_rank[prev]] == lms_len[lms_rank[cur]]
    cand = np.flatnonzero(maybe)
    if cand.size:
        seg_len = lms_len[lms_rank[prev[cand]]]
        seg_start = np.concatenate(([0], np.cumsum(seg_len)[:-1]))
        within = np.arange(int(seg_len.sum()), dtype=np.int64) - np.repeat(
            seg_start, seg_len
        )
        gp = np.repeat(prev[cand], seg_len) + within
        gc = np.repeat(cur[cand], seg_len) + within
        elem_eq = (s[gp] == s[gc]) & (t[gp] == t[gc])
        equal[cand] = np.logical_and.reduceat(elem_eq, seg_start)
    names_sorted = np.concatenate(([0], np.cumsum(~equal)))
    current = int(names_sorted[-1]) if names_sorted.size else 0
    names = np.empty(n, dtype=np.int64)
    names[lms_sorted] = names_sorted
    reduced = names[lms_positions]
    # 5. Recurse if LMS names are not yet unique.
    if current + 1 == lms_positions.size:
        lms_order = np.empty(lms_positions.size, dtype=np.int64)
        lms_order[reduced] = lms_positions
    else:
        lms_order = lms_positions[_sais_numpy(reduced)]
    # 6. Final induction from the fully sorted LMS suffixes.
    return np.array(
        _induce(s_list, t_list, counts, sigma, lms_order.tolist()),
        dtype=np.int64,
    )


def _induce(
    s: list[int], t: list[bool], counts: list[int], sigma: int, lms_order: list[int]
) -> list[int]:
    """The three induced-sorting sweeps shared by both SA-IS variants."""
    n = len(s)
    sa = [-1] * n
    # Place LMS suffixes at their buckets' tails, reversed so earlier
    # entries end up closer to the tail.
    tails = [0] * sigma
    total = 0
    for ch in range(sigma):
        total += counts[ch]
        tails[ch] = total - 1
    for i in reversed(lms_order):
        ch = s[i]
        sa[tails[ch]] = i
        tails[ch] -= 1
    # Induce L-type from left to right.
    heads = [0] * sigma
    total = 0
    for ch in range(sigma):
        heads[ch] = total
        total += counts[ch]
    for j in range(n):
        i = sa[j]
        if i > 0 and not t[i - 1]:
            ch = s[i - 1]
            sa[heads[ch]] = i - 1
            heads[ch] += 1
    # Induce S-type from right to left.
    tails = [0] * sigma
    total = 0
    for ch in range(sigma):
        total += counts[ch]
        tails[ch] = total - 1
    for j in range(n - 1, -1, -1):
        i = sa[j]
        if i > 0 and t[i - 1]:
            ch = s[i - 1]
            sa[tails[ch]] = i - 1
            tails[ch] -= 1
    return sa


def sais(s: list[int], sigma: int) -> list[int]:
    """Linear-time suffix array of ``s`` via induced sorting.

    ``s`` must end with a unique, smallest sentinel (our callers append 0
    after shifting real symbols to ``>= 1``).  ``sigma`` is the number of
    distinct symbol values (max symbol + 1).
    """
    n = len(s)
    if n == 0:
        return []
    if n == 1:
        return [0]
    # 1. Classify each position S-type (True) or L-type (False).
    t = [False] * n
    t[n - 1] = True
    for i in range(n - 2, -1, -1):
        t[i] = s[i] < s[i + 1] or (s[i] == s[i + 1] and t[i + 1])

    def is_lms(i: int) -> bool:
        return i > 0 and t[i] and not t[i - 1]

    # Bucket boundaries per symbol.
    counts = [0] * sigma
    for ch in s:
        counts[ch] += 1

    def bucket_heads() -> list[int]:
        heads = [0] * sigma
        total = 0
        for ch in range(sigma):
            heads[ch] = total
            total += counts[ch]
        return heads

    def bucket_tails() -> list[int]:
        tails = [0] * sigma
        total = 0
        for ch in range(sigma):
            total += counts[ch]
            tails[ch] = total - 1
        return tails

    def induce(lms_order: list[int]) -> list[int]:
        sa = [-1] * n
        # Place LMS suffixes at their buckets' tails, in the given order
        # (reversed so earlier entries end up closer to the tail).
        tails = bucket_tails()
        for i in reversed(lms_order):
            ch = s[i]
            sa[tails[ch]] = i
            tails[ch] -= 1
        # Induce L-type from left to right.
        heads = bucket_heads()
        for j in range(n):
            i = sa[j]
            if i > 0 and not t[i - 1]:
                ch = s[i - 1]
                sa[heads[ch]] = i - 1
                heads[ch] += 1
        # Induce S-type from right to left.
        tails = bucket_tails()
        for j in range(n - 1, -1, -1):
            i = sa[j]
            if i > 0 and t[i - 1]:
                ch = s[i - 1]
                sa[tails[ch]] = i - 1
                tails[ch] -= 1
        return sa

    lms_positions = [i for i in range(n) if is_lms(i)]
    # 2. First induction from unsorted LMS positions.
    sa = induce(lms_positions)
    # 3. Name LMS substrings by their order of appearance in sa.
    lms_sorted = [i for i in sa if is_lms(i)]
    names = [-1] * n
    current = 0
    names[lms_sorted[0]] = 0
    for prev, cur in zip(lms_sorted, lms_sorted[1:]):
        # Compare LMS substrings prev and cur for equality.
        equal = False
        for d in range(n):
            pi, ci = prev + d, cur + d
            if pi >= n or ci >= n:
                break
            p_lms = d > 0 and is_lms(pi)
            c_lms = d > 0 and is_lms(ci)
            if p_lms and c_lms:
                equal = True
                break
            if p_lms != c_lms or s[pi] != s[ci] or t[pi] != t[ci]:
                break
        if not equal:
            current += 1
        names[cur] = current
    # 4. Recurse if names are not yet unique.
    reduced = [names[i] for i in lms_positions]
    if current + 1 == len(lms_positions):
        order = [0] * len(lms_positions)
        for rank_i, name in enumerate(reduced):
            order[name] = lms_positions[rank_i]
        lms_order = order
    else:
        sub_sa = sais(reduced, current + 1)
        lms_order = [lms_positions[i] for i in sub_sa]
    # 5. Final induction from the fully sorted LMS suffixes.
    return induce(lms_order)


# --------------------------------------------------------------------------
# Verification helpers (used by tests and by paranoid pipeline modes).
# --------------------------------------------------------------------------

def verify_suffix_array(codes: np.ndarray, sa: np.ndarray, sample: int | None = None,
                        rng: np.random.Generator | None = None) -> bool:
    """Check Eq. (1): consecutive SA entries name increasing suffixes.

    Compares all adjacent pairs when ``sample`` is None, otherwise a random
    subset (for large inputs).  Also checks that ``sa`` is a permutation of
    ``0..n``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    sa = np.asarray(sa, dtype=np.int64)
    n = codes.size
    if sa.size != n + 1:
        return False
    if not np.array_equal(np.sort(sa), np.arange(n + 1)):
        return False
    s = np.concatenate([codes + 1, [0]])
    pairs = range(sa.size - 1)
    if sample is not None and sa.size - 1 > sample:
        rng = rng if rng is not None else np.random.default_rng(0)
        pairs = rng.choice(sa.size - 1, size=sample, replace=False)
    seq = s.tolist()
    for i in pairs:
        a, b = int(sa[i]), int(sa[i + 1])
        if not seq[a:] < seq[b:]:
            return False
    return True


def rank_array(sa: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``rank[sa[i]] == i``."""
    sa = np.asarray(sa, dtype=np.int64)
    rank = np.empty_like(sa)
    rank[sa] = np.arange(sa.size, dtype=np.int64)
    return rank


def lcp_array(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Longest-common-prefix array (Kasai's algorithm), for diagnostics.

    ``lcp[i]`` is the LCP length of the suffixes at ``sa[i-1]`` and
    ``sa[i]``; ``lcp[0] == 0``.  Used by the reference generator's repeat
    statistics and by tests as an independent sortedness witness
    (``lcp[i] < n`` and mismatching characters must be increasing).
    """
    codes = np.asarray(codes, dtype=np.int64)
    s = np.concatenate([codes + 1, [0]])
    n = s.size
    sa = np.asarray(sa, dtype=np.int64)
    rank = rank_array(sa)
    lcp = np.zeros(n, dtype=np.int64)
    h = 0
    for i in range(n):
        r = rank[i]
        if r > 0:
            j = sa[r - 1]
            while i + h < n and j + h < n and s[i + h] == s[j + h]:
                h += 1
            lcp[r] = h
            if h:
                h -= 1
        else:
            h = 0
    return lcp

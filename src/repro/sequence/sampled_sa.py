"""Sampled suffix arrays for locate queries.

BWaveR keeps the *full* suffix array in host memory and resolves match
positions there after the FPGA returns ``[start, end]`` row intervals
(paper §III-C: "the positions ... are retrieved by the host CPU, in the
corresponding sets of the suffix array").  :class:`FullSA` models exactly
that.

Production FM-index mappers (BWA, Bowtie2) instead keep every ``k``-th SA
entry and recover the rest by LF-walking to the nearest sampled row —
trading locate time for memory.  :class:`SampledSA` implements that
scheme; it backs the Bowtie2-like baseline and the memory/time ablation.
"""

from __future__ import annotations

import numpy as np


class FullSA:
    """Host-resident full suffix array: O(1) locate per occurrence."""

    def __init__(self, sa: np.ndarray):
        self.sa = np.asarray(sa, dtype=np.int64)

    def locate(self, row: int, lf=None) -> int:
        """Text position of the suffix at matrix row ``row``."""
        if not 0 <= row < self.sa.size:
            raise IndexError(f"row {row} out of range [0, {self.sa.size})")
        return int(self.sa[row])

    def locate_range(self, start: int, end: int, lf=None, lf_many=None) -> np.ndarray:
        """Text positions for rows ``[start, end)`` (one per occurrence)."""
        if not 0 <= start <= end <= self.sa.size:
            raise IndexError("row range out of bounds")
        return self.sa[start:end].copy()

    def size_in_bytes(self) -> int:
        return self.sa.nbytes

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        return {}, {"sa": self.sa}

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict[str, np.ndarray]) -> "FullSA":
        """Wrap an externally owned suffix array (no copy for int64 input)."""
        self = cls.__new__(cls)
        self.sa = arrays["sa"]
        return self


class SampledSA:
    """Every-``k``-th-row SA sample with LF-walk recovery.

    Parameters
    ----------
    sa:
        The full suffix array (consumed at build time; only rows where
        ``row % k == 0`` are retained).
    k:
        Sampling rate; locate costs at most ``k - 1`` LF steps.
    """

    def __init__(self, sa: np.ndarray, k: int = 32):
        if k < 1:
            raise ValueError(f"sampling rate must be >= 1, got {k}")
        sa = np.asarray(sa, dtype=np.int64)
        self.k = int(k)
        self.n_rows = int(sa.size)
        self.samples = sa[::k].copy()

    def locate(self, row: int, lf) -> int:
        """Text position of the suffix at ``row``.

        ``lf`` is a callable mapping a row to its last-first image (e.g.
        :meth:`repro.core.bwt_structure.BWTStructure.lf`).  Each LF step
        moves to the row of the one-character-longer suffix, i.e. the
        suffix position decreases... — concretely: if ``row`` holds the
        suffix starting at text position ``p``, then ``lf(row)`` holds the
        suffix starting at ``p - 1`` (indices wrap through the sentinel),
        so after ``s`` steps landing on a sampled row holding position
        ``q``, the answer is ``q + s`` (mod the text+sentinel length).
        """
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows})")
        steps = 0
        while row % self.k != 0:
            row = lf(row)
            steps += 1
        pos = int(self.samples[row // self.k]) + steps
        return pos % self.n_rows

    def locate_range(self, start: int, end: int, lf, lf_many=None) -> np.ndarray:
        """Text positions for rows ``[start, end)``.

        With ``lf_many`` (a vectorized LF kernel such as
        ``BWTStructure.lf_many``) all rows in the interval walk toward
        their sampled ancestors *together*: each iteration advances only
        the still-unsampled rows in one batched LF call, so an interval
        of ``m`` occurrences costs at most ``k - 1`` batch steps instead
        of ``m`` independent scalar walks.  Without it, the scalar
        per-row path is used (and remains the differential oracle).
        """
        if not 0 <= start <= end <= self.n_rows:
            raise IndexError("row range out of bounds")
        if lf_many is None:
            return np.array(
                [self.locate(r, lf) for r in range(start, end)], dtype=np.int64
            )
        rows = np.arange(start, end, dtype=np.int64)
        steps = np.zeros(rows.size, dtype=np.int64)
        active = rows % self.k != 0
        while np.any(active):
            rows[active] = lf_many(rows[active])
            steps[active] += 1
            active = rows % self.k != 0
        pos = self.samples[rows // self.k].astype(np.int64) + steps
        return pos % self.n_rows

    def size_in_bytes(self) -> int:
        return self.samples.nbytes

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        return {"k": self.k, "n_rows": self.n_rows}, {"samples": self.samples}

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict[str, np.ndarray]) -> "SampledSA":
        """Wrap externally owned samples (no copy)."""
        self = cls.__new__(cls)
        self.k = int(meta["k"])
        self.n_rows = int(meta["n_rows"])
        self.samples = arrays["samples"]
        return self

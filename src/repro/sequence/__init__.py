"""Sequence substrate: alphabets, suffix arrays, BWT, locate structures."""

from .alphabet import (
    DNA_ALPHABET,
    SENTINEL,
    SIGMA,
    AlphabetError,
    decode,
    encode,
    gc_fraction,
    is_valid,
    random_sequence,
    reverse_complement,
    reverse_complement_codes,
)
from .bwt import BWT, bwt_from_codes, bwt_from_string, count_array, entropy0, inverse_bwt, run_length_stats
from .sampled_sa import FullSA, SampledSA
from .suffix_array import lcp_array, rank_array, sais, suffix_array, verify_suffix_array

__all__ = [
    "AlphabetError",
    "BWT",
    "DNA_ALPHABET",
    "FullSA",
    "SENTINEL",
    "SIGMA",
    "SampledSA",
    "bwt_from_codes",
    "bwt_from_string",
    "count_array",
    "decode",
    "encode",
    "entropy0",
    "gc_fraction",
    "inverse_bwt",
    "is_valid",
    "lcp_array",
    "random_sequence",
    "rank_array",
    "reverse_complement",
    "reverse_complement_codes",
    "run_length_stats",
    "sais",
    "suffix_array",
    "verify_suffix_array",
]

"""Burrows-Wheeler transform over DNA code arrays (paper §III-A).

The BWT is derived from the suffix array rather than by materializing the
(N+1)×(N+1) Burrows-Wheeler matrix: row ``i`` of the sorted matrix begins
with the suffix at ``SA[i]``, so its last character is
``text[SA[i] - 1]`` (or ``$`` when ``SA[i] == 0``).  The sentinel is
carried *outside* the symbol array as :attr:`BWT.dollar_pos` — the exact
optimization the paper applies so the wavelet tree stays a 4-symbol
(two-level) tree.

:func:`inverse_bwt` reconstructs the original text by walking the
last-first (LF) mapping, and is the round-trip oracle used by the tests;
:func:`run_length_stats` and :func:`entropy0` quantify why the BWT of
genomic data compresses well (long runs → low zero-order entropy), the
property §III-B invokes to justify RRR encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .suffix_array import Method, suffix_array


@dataclass(frozen=True)
class BWT:
    """A Burrows-Wheeler transformed sequence.

    Attributes
    ----------
    codes:
        Length ``n + 1`` uint8 array of 2-bit symbol codes.  The entry at
        :attr:`dollar_pos` is a placeholder (0) and must be skipped by
        consumers — the succinct structure never stores it.
    dollar_pos:
        Row of the Burrows-Wheeler matrix whose last column holds ``$``
        (i.e. the position of the sentinel within the BWT string).
    sa:
        The suffix array the transform was derived from (length ``n + 1``),
        kept for locate queries.
    """

    codes: np.ndarray
    dollar_pos: int
    sa: np.ndarray

    @property
    def length(self) -> int:
        """Length of the BWT string including the sentinel slot."""
        return int(self.codes.size)

    @property
    def text_length(self) -> int:
        """Length of the original text (without sentinel)."""
        return int(self.codes.size) - 1

    def symbols_without_sentinel(self) -> np.ndarray:
        """The BWT symbol codes with the sentinel slot removed.

        This is exactly the sequence the wavelet tree encodes; the
        backward search re-inserts the sentinel's effect through
        :attr:`dollar_pos` arithmetic.
        """
        return np.delete(self.codes, self.dollar_pos)

    def char_string(self) -> str:
        """Human-readable BWT with an explicit ``$`` (for tests/demos)."""
        from .alphabet import decode

        chars = list(decode(self.codes))
        chars[self.dollar_pos] = "$"
        return "".join(chars)


def bwt_from_codes(codes: np.ndarray, method: Method = "doubling",
                   sa: np.ndarray | None = None) -> BWT:
    """Compute the BWT of ``codes + '$'``.

    Parameters
    ----------
    codes:
        2-bit DNA codes of the reference text.
    method:
        Suffix-array construction method (ignored when ``sa`` is given).
    sa:
        Optional precomputed suffix array of ``codes + '$'``.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if sa is None:
        sa = suffix_array(codes, method=method)
    sa = np.asarray(sa, dtype=np.int64)
    n1 = codes.size + 1
    if sa.size != n1:
        raise ValueError(f"suffix array length {sa.size} != text length + 1 ({n1})")
    dollar_rows = np.flatnonzero(sa == 0)
    if dollar_rows.size != 1:
        raise ValueError("suffix array must contain position 0 exactly once")
    dollar_pos = int(dollar_rows[0])
    if codes.size:
        out = codes[np.where(sa > 0, sa - 1, 0)].astype(np.uint8)
    else:
        out = np.zeros(1, dtype=np.uint8)
    out[dollar_pos] = 0  # placeholder; the sentinel lives in dollar_pos
    return BWT(codes=out, dollar_pos=dollar_pos, sa=sa)


def bwt_from_string(text: str, method: Method = "doubling") -> BWT:
    """Convenience wrapper accepting a DNA string."""
    from .alphabet import encode

    return bwt_from_codes(encode(text), method=method)


def inverse_bwt(bwt: BWT) -> np.ndarray:
    """Reconstruct the original code array by LF-walking the BWT.

    The LF mapping sends row ``i`` to the row whose suffix is one
    character longer; starting from the row containing ``$`` in the last
    column and walking ``n`` steps recovers the text right to left.
    """
    n1 = bwt.length
    n = n1 - 1
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    # Effective last column with $ treated as smaller than every code.
    sym = bwt.codes.astype(np.int64)
    sym = sym.copy()
    sym[bwt.dollar_pos] = -1
    # Stable sort of the last column gives the first column; the LF map of
    # row i is i's position in that sort (last-first property).
    order = np.argsort(sym, kind="stable")
    lf = np.empty(n1, dtype=np.int64)
    lf[order] = np.arange(n1, dtype=np.int64)
    out = np.zeros(n, dtype=np.uint8)
    # Row 0 is the rotation "$T", whose last column is text[n-1]; each LF
    # step rotates right by one, emitting text right to left.
    row = 0
    for k in range(n - 1, -1, -1):
        if row == bwt.dollar_pos:  # pragma: no cover - walk invariant
            raise AssertionError("LF walk hit the sentinel prematurely")
        out[k] = bwt.codes[row]
        row = int(lf[row])
    if row != bwt.dollar_pos:  # pragma: no cover - walk invariant
        raise AssertionError("LF walk did not terminate at the sentinel row")
    return out


def run_length_stats(bwt: BWT) -> dict[str, float]:
    """Run statistics of the BWT string (sentinel excluded).

    Returns the number of runs, mean run length, and the longest run —
    the quantities that make BWT output low-entropy and RRR-friendly.
    """
    sym = bwt.symbols_without_sentinel()
    if sym.size == 0:
        return {"runs": 0, "mean_run": 0.0, "max_run": 0}
    change = np.flatnonzero(np.diff(sym.astype(np.int64)) != 0)
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change + 1, [sym.size]))
    lengths = ends - starts
    return {
        "runs": int(lengths.size),
        "mean_run": float(lengths.mean()),
        "max_run": int(lengths.max()),
    }


def entropy0(symbols: np.ndarray, sigma: int = 4) -> float:
    """Zero-order empirical entropy H0 in bits per symbol."""
    symbols = np.asarray(symbols)
    n = symbols.size
    if n == 0:
        return 0.0
    counts = np.bincount(symbols.astype(np.int64), minlength=sigma)
    probs = counts[counts > 0] / n
    return float(-(probs * np.log2(probs)).sum())


def count_array(codes: np.ndarray, sigma: int = 4) -> np.ndarray:
    """The FM-index ``C`` array over ``codes + '$'``.

    ``C[a]`` = number of characters in the text (including ``$``) that are
    lexicographically smaller than symbol ``a``; with the sentinel smallest
    this is ``1 + sum(counts[:a])``.  Length ``sigma + 1``: the final entry
    is the total ``n + 1`` so ``C[a + 1] - C[a]`` gives symbol counts.
    """
    codes = np.asarray(codes)
    counts = np.bincount(codes.astype(np.int64), minlength=sigma)
    c = np.zeros(sigma + 1, dtype=np.int64)
    c[0] = 1  # the sentinel
    c[1:] = 1 + np.cumsum(counts)
    return c

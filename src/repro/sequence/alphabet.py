"""DNA alphabet handling: 2-bit codes, complements, validation.

BWaveR optimizes its structures for alphabets of ``2**N`` symbols, the
genomic alphabet ``{A, C, G, T}`` (or ``U`` for RNA) being the motivating
case.  This module centralizes the character↔code mapping so every other
subsystem (BWT construction, wavelet tree, query packing, FASTA parsing)
agrees on it:

===========  ====
character    code
===========  ====
``A``        0
``C``        1
``G``        2
``T``/``U``  3
===========  ====

Codes are lexicographic, so integer comparisons on code arrays match
string comparisons on the underlying sequences — a property the suffix
array builders rely on.  The sentinel ``$`` is *not* part of the alphabet
(the paper stores its BWT position separately); where an integer code for
it is needed internally, builders use ``-1`` or ``sigma`` explicitly.
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in lexicographic (= code) order.
DNA_ALPHABET = ("A", "C", "G", "T")
SIGMA = 4

#: Character that terminates the text in Burrows-Wheeler constructions.
SENTINEL = "$"

_CHAR_TO_CODE = np.full(256, -1, dtype=np.int8)
for _i, _ch in enumerate(DNA_ALPHABET):
    _CHAR_TO_CODE[ord(_ch)] = _i
    _CHAR_TO_CODE[ord(_ch.lower())] = _i
_CHAR_TO_CODE[ord("U")] = 3  # RNA uracil maps with thymine
_CHAR_TO_CODE[ord("u")] = 3

_CODE_TO_CHAR = np.frombuffer(b"ACGT", dtype=np.uint8)

#: code -> complement code (A<->T, C<->G); vectorized complement is
#: ``COMPLEMENT_CODE[codes]``.
COMPLEMENT_CODE = np.array([3, 2, 1, 0], dtype=np.uint8)

_COMPLEMENT_CHAR = np.arange(256, dtype=np.uint8)
for _a, _b in (("A", "T"), ("C", "G"), ("G", "C"), ("T", "A"),
               ("a", "t"), ("c", "g"), ("g", "c"), ("t", "a")):
    _COMPLEMENT_CHAR[ord(_a)] = ord(_b)


class AlphabetError(ValueError):
    """Raised when a sequence contains characters outside ``{A,C,G,T,U}``."""


def encode(seq: str | bytes) -> np.ndarray:
    """Map a DNA string to 2-bit codes (uint8 array).

    Case-insensitive; ``U`` is accepted as ``T``.  Raises
    :class:`AlphabetError` on any other character (including ``N`` — the
    read simulator and reference generator never emit ambiguity codes, and
    the FASTA reader offers a policy hook for them).
    """
    if isinstance(seq, str):
        raw = seq.encode("ascii", errors="replace")
    else:
        raw = bytes(seq)
    arr = np.frombuffer(raw, dtype=np.uint8)
    codes = _CHAR_TO_CODE[arr]
    if codes.size and codes.min(initial=0) < 0:
        bad_idx = int(np.argmax(codes < 0))
        bad = chr(arr[bad_idx])
        raise AlphabetError(
            f"invalid DNA character {bad!r} at position {bad_idx}"
        )
    return codes.astype(np.uint8)


def decode(codes: np.ndarray) -> str:
    """Inverse of :func:`encode` (uppercase output)."""
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() > 3):
        raise AlphabetError("codes must lie in [0, 3]")
    return _CODE_TO_CHAR[codes.astype(np.intp)].tobytes().decode("ascii")


def reverse_complement(seq: str) -> str:
    """Reverse complement of a DNA string (the strand the paper also maps)."""
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    comp = _COMPLEMENT_CHAR[raw]
    bad = comp == raw
    # Characters with no complement mapping are only self-mapped ones that
    # are not valid bases; validate through encode for a clear error.
    if np.any(bad):
        encode(seq)  # raises AlphabetError with position info if invalid
    return comp[::-1].tobytes().decode("ascii")


def reverse_complement_codes(codes: np.ndarray) -> np.ndarray:
    """Reverse complement on 2-bit code arrays (vectorized)."""
    codes = np.asarray(codes, dtype=np.uint8)
    return COMPLEMENT_CODE[codes][::-1].copy()


def is_valid(seq: str) -> bool:
    """True when every character encodes (A/C/G/T/U, any case)."""
    try:
        encode(seq)
        return True
    except AlphabetError:
        return False


def random_sequence(length: int, rng: np.random.Generator, gc_content: float = 0.5) -> str:
    """Random DNA string with the requested GC fraction.

    Used by tests and by :mod:`repro.io.refgen`'s background model.
    """
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must lie in [0, 1]")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(4, size=length, p=[at, gc, gc, at]).astype(np.uint8)
    return decode(codes)


def gc_fraction(seq: str) -> float:
    """Fraction of G/C bases in a sequence (0 for the empty string)."""
    if not seq:
        return 0.0
    codes = encode(seq)
    return float(np.count_nonzero((codes == 1) | (codes == 2)) / codes.size)

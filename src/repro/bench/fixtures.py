"""Shared input builders for benchmarks, tests, and platform workloads.

Benchmark workloads and the test suite must measure and assert on the
*same* inputs: a perf delta observed by ``repro bench run`` is only
comparable with a correctness property checked in ``tests/`` if both
built their reference and read set from the same seeded generators.
This module is that single source — ``benchmarks/conftest.py``,
``tests/conftest.py``, and :mod:`repro.bench.platform.workloads` all
import from here instead of keeping private copies.

Everything is deterministic in its ``seed`` argument and cheap enough to
call from session-scoped fixtures.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..sequence.alphabet import decode

#: Seed offset separating read streams from reference streams.  Sharing a
#: seed would make "random" unmapped reads replay the reference
#: generator's stream and spuriously share long substrings with it.
READ_SEED_OFFSET = 1000


def make_dna(n: int, seed: int = 0, gc: float = 0.5) -> str:
    """Deterministic random DNA of length ``n`` with the given GC content."""
    rng = np.random.default_rng(seed)
    at = (1 - gc) / 2
    gcp = gc / 2
    return decode(rng.choice(4, size=n, p=[at, gcp, gcp, at]).astype(np.uint8))


def make_repetitive_dna(
    unit_length: int = 100,
    repeats: int = 12,
    tail_length: int = 400,
    seed: int = 7,
) -> str:
    """DNA with strong repeat structure (low BWT entropy)."""
    unit = make_dna(unit_length, seed=seed)
    return (unit * repeats) + make_dna(tail_length, seed=seed + 1) + unit[:50] * 4


def profile_reference(profile: str, scale: float | None = None, seed: int = 7) -> str:
    """Cached synthetic reference for a named profile (``ecoli``/``chr21``).

    Thin forwarding wrapper so callers that only need inputs don't import
    the whole experiment harness.
    """
    from .harness import get_reference

    if scale is None:
        return get_reference(profile, seed=seed)
    return get_reference(profile, scale=scale, seed=seed)


def seeded_reads(
    reference: str,
    n_reads: int,
    read_length: int,
    mapping_ratio: float = 0.75,
    seed: int = 7,
) -> list[str]:
    """Seeded read set with a controlled mapped fraction.

    The effective read-simulator seed is decoupled from ``seed`` via
    :data:`READ_SEED_OFFSET` plus a ratio-dependent term, matching the
    discipline the figure sweeps use (each ratio gets an independent
    stream so series points are not correlated).
    """
    from ..io.readsim import simulate_reads

    return simulate_reads(
        reference,
        n_reads,
        read_length,
        mapping_ratio=mapping_ratio,
        seed=seed * READ_SEED_OFFSET + 17 + int(mapping_ratio * 100),
    ).reads


@lru_cache(maxsize=8)
def small_index_cached(n_bases: int = 20_000, seed: int = 42, ftab_k: int | None = None):
    """Cached small succinct index over :func:`make_dna` text.

    Platform workloads at the ``small`` scale share this so a config
    matrix doesn't rebuild the substrate per experiment.  Returns
    ``(index, report)`` as :func:`repro.build_index` does.
    """
    from ..core.counters import OpCounters
    from ..index.builder import build_index

    return build_index(
        make_dna(n_bases, seed=seed),
        b=15,
        sf=50,
        counters=OpCounters(),
        ftab_k=ftab_k,
    )

"""Profiling helpers: measure before optimizing.

The repository's hot paths (RRR construction, batched rank, backward
search) were shaped by profiler output, following the standard
scientific-Python workflow — make it work, make it right, then profile
a ~10 s representative case and attack the top of the table.  These
helpers make that workflow one call, and the regression tests pin the
expectation that the hot loops live in numpy, not in Python bytecode.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ProfileEntry:
    """One row of a profile table."""

    function: str
    calls: int
    total_seconds: float
    cumulative_seconds: float


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of a profiled call."""

    wall_seconds: float
    entries: tuple[ProfileEntry, ...]
    return_value: object

    def top(self, n: int = 10) -> tuple[ProfileEntry, ...]:
        return self.entries[:n]

    def total_in(self, substring: str) -> float:
        """Total (self) seconds spent in functions whose name or file
        contains ``substring``."""
        return sum(e.total_seconds for e in self.entries if substring in e.function)

    def render(self, n: int = 10) -> str:
        lines = [f"wall: {self.wall_seconds:.3f}s — top {n} by self time:"]
        for e in self.top(n):
            lines.append(
                f"  {e.total_seconds:8.3f}s  {e.calls:>9} calls  {e.function}"
            )
        return "\n".join(lines)


def profile_call(fn: Callable, *args, **kwargs) -> ProfileResult:
    """Run ``fn`` under cProfile and return a structured summary."""
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    wall = time.perf_counter() - t0
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    entries = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        entries.append(
            ProfileEntry(
                function=f"{filename}:{lineno}({name})",
                calls=int(nc),
                total_seconds=float(tt),
                cumulative_seconds=float(ct),
            )
        )
    entries.sort(key=lambda e: -e.total_seconds)
    return ProfileResult(
        wall_seconds=wall, entries=tuple(entries), return_value=result
    )


def profile_mapping(index, reads, batch: bool = True) -> ProfileResult:
    """Profile one mapping run (the workload worth profiling here)."""
    from ..mapper.batch import run_mapping_batch

    return profile_call(
        run_mapping_batch, index, list(reads), keep_results=False, batch=batch
    )


def profile_build(text, **build_kwargs) -> ProfileResult:
    """Profile an index build (suffix sort + encode)."""
    from ..index.builder import build_index

    return profile_call(build_index, text, **build_kwargs)

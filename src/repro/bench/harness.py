"""Experiment harness: one function per figure/table of the paper.

Every experiment function returns plain dict rows (rendered by
:mod:`repro.bench.reporting` and asserted on by the benches) and follows
the same reporting discipline:

* **measured** columns are pure-Python wall clock at the scaled workload
  actually run;
* **modeled** columns are native-equivalent / FPGA-modeled seconds
  computed from the run's *measured operation counts* at the **paper's**
  workload size (linear extrapolation of per-read op counts — exact for
  this workload, whose reads are i.i.d.);
* paper-reported values ride along where the paper states them, so every
  bench prints reproduction and paper side by side.

References and indexes are cached per parameter set, because the figure
sweeps revisit the same builds many times.
"""

from __future__ import annotations

import time
from functools import lru_cache


from ..baseline.bowtie2_like import Bowtie2Like, assert_same_accuracy
from ..core.counters import OpCounters
from ..fpga.accelerator import FPGAAccelerator
from ..fpga.cost_model import DEFAULT_COST_MODEL, FPGACostModel
from ..fpga.power import DEFAULT_POWER_MODEL
from ..index.builder import encode_existing_bwt
from ..io.readsim import simulate_reads
from ..io.refgen import CHR21_LIKE, DEFAULT_SCALE, E_COLI_LIKE, generate_reference
from ..mapper.batch import run_mapping_batch
from ..sequence.alphabet import encode
from ..sequence.bwt import bwt_from_codes
from ..sequence.suffix_array import suffix_array
from ..telemetry import get_telemetry
from .calibration import (
    DEFAULT_BOWTIE2_MODEL,
    DEFAULT_CPU_MODEL,
    PAPER_TABLE1,
    PAPER_TABLE2,
)

PROFILES = {"ecoli": E_COLI_LIKE, "chr21": CHR21_LIKE}


def _record_experiment(name: str, rows: list[dict]) -> list[dict]:
    """Telemetry hook shared by every experiment function.

    Counts the rows each experiment produced (so a bench sweep shows up
    on ``/metrics`` / ``--metrics-out`` next to the pipeline metrics) and
    logs a one-line completion event.  Free when telemetry is disabled.
    """
    tel = get_telemetry()
    if tel.enabled:
        tel.metrics.counter(
            "bench_experiment_rows_total",
            "Result rows produced by the benchmark harness, per experiment",
            labelnames=("experiment",),
        ).inc(len(rows), experiment=name)
        tel.log.info("bench.experiment.done", experiment=name, n_rows=len(rows))
    return rows

#: Paper-scale reference lengths (bases) used for modeled structure sizes.
PAPER_REF_BASES = {"ecoli": 4_641_652, "chr21": 40_088_619}


@lru_cache(maxsize=8)
def get_reference(profile: str, scale: float = DEFAULT_SCALE, seed: int = 7) -> str:
    """Cached synthetic reference for a named profile."""
    if profile not in PROFILES:
        raise KeyError(f"unknown profile {profile!r}; have {sorted(PROFILES)}")
    return generate_reference(PROFILES[profile], scale=scale, seed=seed)


@lru_cache(maxsize=4)
def _reference_bwt(profile: str, scale: float, seed: int):
    codes = encode(get_reference(profile, scale, seed))
    sa = suffix_array(codes, method="doubling")
    return bwt_from_codes(codes, sa=sa)


@lru_cache(maxsize=16)
def get_index(
    profile: str,
    b: int = 15,
    sf: int = 50,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    ftab_k: int | None = None,
):
    """Cached succinct index (+ build report) for a profile.

    Reuses the cached suffix array / BWT of the profile, so sweeping
    (b, sf) re-runs only the encoding step — the same reuse the paper's
    workflow gets by persisting step 1's output to a file.  ``ftab_k``
    additionally attaches the k-mer jump-start table (cached per k).
    """
    from ..core.bwt_structure import BWTStructure
    from ..index.builder import BuildReport
    from ..index.fm_index import FMIndex
    from ..index.ftab import Ftab
    from ..sequence.bwt import entropy0, run_length_stats
    from ..sequence.sampled_sa import FullSA

    bwt = _reference_bwt(profile, scale, seed)
    counters = OpCounters()
    struct, encode_seconds = encode_existing_bwt(bwt, b=b, sf=sf, counters=counters)
    ftab = None
    ftab_seconds = 0.0
    if ftab_k is not None:
        t0 = time.perf_counter()
        ftab = Ftab.build(struct, k=ftab_k)
        ftab_seconds = time.perf_counter() - t0
    index = FMIndex(
        struct, locate_structure=FullSA(bwt.sa), counters=counters, ftab=ftab
    )
    sym = bwt.symbols_without_sentinel()
    report = BuildReport(
        text_length=bwt.text_length,
        b=b,
        sf=sf,
        backend="rrr",
        sa_bwt_seconds=0.0,  # amortized across the cache
        encode_seconds=encode_seconds,
        structure_bytes=struct.size_in_bytes(),
        uncompressed_bytes=bwt.length,
        bwt_entropy0=entropy0(sym) if sym.size else 0.0,
        bwt_runs=run_length_stats(bwt),
        ftab_seconds=ftab_seconds,
        ftab_bytes=ftab.size_in_bytes() if ftab is not None else 0,
    )
    return index, report


# ---------------------------------------------------------------------------
# Fig. 5 — structure size vs (b, sf)
# ---------------------------------------------------------------------------

def experiment_fig5(
    profiles: tuple[str, ...] = ("ecoli", "chr21"),
    b_values: tuple[int, ...] = (5, 10, 15),
    sf_values: tuple[int, ...] = (50, 100, 150, 200),
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
) -> list[dict]:
    """Structure size across the (b, sf) grid, plus paper-scale projection.

    The projection separates the reference-proportional part from the
    shared Global Rank Table (constant in N), then rescales the former to
    the real genome's length — the quantity Fig. 5 plots.
    """
    rows: list[dict] = []
    for profile in profiles:
        bwt = _reference_bwt(profile, scale, seed)
        n = bwt.text_length
        paper_n = PAPER_REF_BASES[profile]
        for b in b_values:
            for sf in sf_values:
                struct, _ = encode_existing_bwt(bwt, b=b, sf=sf)
                total = struct.size_in_bytes(include_shared=True)
                shared = total - struct.size_in_bytes(include_shared=False)
                variable = total - shared
                projected = variable * (paper_n / n) + shared
                rows.append(
                    {
                        "profile": profile,
                        "b": b,
                        "sf": sf,
                        "n_bases": n,
                        "structure_bytes": total,
                        "uncompressed_bytes": n + 1,
                        "space_saving_percent": 100.0 * (1 - total / (n + 1)),
                        "paper_scale_mb": projected / 1e6,
                        "paper_scale_uncompressed_mb": (paper_n + 1) / 1e6,
                    }
                )
    return _record_experiment("fig5", rows)


# ---------------------------------------------------------------------------
# Fig. 6 — structure build (encoding) time vs (b, sf)
# ---------------------------------------------------------------------------

def experiment_fig6(
    profiles: tuple[str, ...] = ("ecoli", "chr21"),
    b_values: tuple[int, ...] = (5, 10, 15),
    sf_values: tuple[int, ...] = (50, 100, 150, 200),
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    repeats: int = 3,
) -> list[dict]:
    """Succinct-encoding time across the grid (step 2 of the workflow)."""
    rows: list[dict] = []
    for profile in profiles:
        bwt = _reference_bwt(profile, scale, seed)
        for b in b_values:
            for sf in sf_values:
                best = float("inf")
                for _ in range(repeats):
                    _, seconds = encode_existing_bwt(bwt, b=b, sf=sf)
                    best = min(best, seconds)
                rows.append(
                    {
                        "profile": profile,
                        "b": b,
                        "sf": sf,
                        "n_bases": bwt.text_length,
                        "encode_seconds": best,
                    }
                )
    return _record_experiment("fig6", rows)


# ---------------------------------------------------------------------------
# Fig. 7 — mapping time vs mapping ratio
# ---------------------------------------------------------------------------

def experiment_fig7(
    profiles: tuple[str, ...] = ("ecoli", "chr21"),
    configs: tuple[tuple[int, int], ...] = ((15, 50), (15, 100)),
    ratios: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    n_reads: int = 1200,
    read_length: int = 100,
    paper_reads: int = 240_000,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    cost_model: FPGACostModel = DEFAULT_COST_MODEL,
    ftab_variants: tuple[bool, ...] = (False, True),
    ftab_k: int = 10,
) -> list[dict]:
    """Mapping time vs mapped fraction, per profile and (b, sf).

    Reports measured Python wall seconds at ``n_reads`` plus modeled
    native-CPU and FPGA milliseconds at the paper's 240 k reads.  Each
    (profile, config, ratio) point is run once per ``ftab_variants``
    entry (the jump-start table off/on; the ``ftab`` column tags rows);
    intervals are bit-identical across variants, only the work changes.
    """
    rows: list[dict] = []
    for profile in profiles:
        ref = get_reference(profile, scale, seed)
        for b, sf in configs:
            for use_ftab in ftab_variants:
                index, report = get_index(
                    profile, b=b, sf=sf, scale=scale, seed=seed,
                    ftab_k=ftab_k if use_ftab else None,
                )
                index.backend.build_batch_cache()
                for ratio in ratios:
                    # Read seed deliberately decoupled from the reference
                    # seed: sharing a seed would make "random" unmapped
                    # reads replay the reference generator's stream and
                    # spuriously share long substrings with it.
                    reads = simulate_reads(
                        ref,
                        n_reads,
                        read_length,
                        mapping_ratio=ratio,
                        seed=seed * 1000 + 17 + int(ratio * 100),
                    ).reads
                    run = run_mapping_batch(index, reads, keep_results=False)
                    scale_up = paper_reads / n_reads
                    counts_paper = {
                        k: int(v * scale_up) for k, v in run.op_counts.items()
                    }
                    native_cpu_s = DEFAULT_CPU_MODEL.seconds(counts_paper)
                    # FPGA: hardware steps ~ half the software (dual
                    # pipelines); bounded below by the longer strand.  Use
                    # the counter total conservatively split per strand;
                    # each jump-start lookup occupies one step-equivalent
                    # pipeline slot (bs_steps is already net of the k
                    # iterations the LUT burst replaces).
                    hw_steps = (
                        counts_paper.get("bs_steps", 0)
                        + counts_paper.get("ftab_lookups", 0)
                    ) // 2
                    fpga_s = cost_model.run_seconds(
                        report.structure_bytes, hw_steps, paper_reads
                    )
                    row = {
                        "profile": profile,
                        "b": b,
                        "sf": sf,
                        "ftab": use_ftab,
                        "mapping_ratio": ratio,
                        "n_reads_measured": n_reads,
                        "measured_seconds": run.wall_seconds,
                        "bs_steps_per_read": run.total_bs_steps / n_reads,
                        "native_cpu_ms_240k": native_cpu_s * 1e3,
                        "fpga_ms_240k": fpga_s * 1e3,
                    }
                    if get_telemetry().enabled:
                        # Op-count provenance for the modeled columns, so a
                        # telemetry-enabled sweep is self-describing.
                        row["telemetry"] = {
                            "op_counts": dict(run.op_counts),
                            "wall_seconds": run.wall_seconds,
                        }
                    rows.append(row)
    return _record_experiment("fig7", rows)


# ---------------------------------------------------------------------------
# Tables I and II — FPGA vs CPU vs Bowtie2
# ---------------------------------------------------------------------------

def _paper_structure_bytes(index_report_bytes: int, shared_bytes: int,
                           n_sample_bases: int, n_paper_bases: int) -> int:
    variable = index_report_bytes - shared_bytes
    return int(variable * (n_paper_bases / n_sample_bases) + shared_bytes)


def experiment_table(
    profile: str,
    read_length: int,
    paper_read_counts: tuple[int, ...],
    n_sample: int = 1500,
    mapping_ratio: float = 0.75,
    b: int = 15,
    sf: int = 50,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    cost_model: FPGACostModel = DEFAULT_COST_MODEL,
    check_accuracy: bool = True,
) -> list[dict]:
    """One paper table: engines × read counts, modeled at paper scale.

    Measures a sample of ``n_sample`` reads through every engine, checks
    the engines agree read by read (the paper's no-accuracy-loss claim),
    then evaluates the analytic models at each paper read count.
    Returns one row per (read_count, engine).
    """
    ref = get_reference(profile, scale, seed)
    index, report = get_index(profile, b=b, sf=sf, scale=scale, seed=seed)
    index.backend.build_batch_cache()
    reads = simulate_reads(
        ref, n_sample, read_length, mapping_ratio=mapping_ratio, seed=seed * 1000 + 1
    ).reads

    # -- measured sample runs ------------------------------------------------
    succinct_run = run_mapping_batch(index, reads, keep_results=True)
    bowtie = Bowtie2Like(ref)
    bowtie_run = bowtie.map_reads(reads)
    if check_accuracy:
        assert_same_accuracy(succinct_run.results, bowtie_run.results)

    accelerator = FPGAAccelerator.for_index(index, cost_model=cost_model)
    fpga_run = accelerator.map_batch(reads, include_load=True)

    # -- paper-scale structure size (load overhead scales with it) ----------
    shared = report.structure_bytes - index.backend.tree.size_in_bytes(include_shared=False)
    paper_struct = _paper_structure_bytes(
        report.structure_bytes, shared, report.text_length, PAPER_REF_BASES[profile]
    )

    per_read_hw_steps = fpga_run.kernel_run.hw_steps_total / n_sample
    rows: list[dict] = []
    paper_table = PAPER_TABLE1 if profile == "ecoli" else PAPER_TABLE2
    for n_paper in paper_read_counts:
        scale_up = n_paper / n_sample
        fpga_s = cost_model.run_seconds(
            paper_struct, int(per_read_hw_steps * n_paper), n_paper
        )
        cpu_counts = {k: int(v * scale_up) for k, v in succinct_run.op_counts.items()}
        cpu_s = DEFAULT_CPU_MODEL.seconds(cpu_counts)
        bt_counts = {k: int(v * scale_up) for k, v in bowtie_run.op_counts.items()}
        bt1_s = DEFAULT_BOWTIE2_MODEL.seconds(bt_counts)
        bt8_s = bowtie.projected_seconds(bt1_s, 8)
        bt16_s = bowtie.projected_seconds(bt1_s, 16)

        paper_ms = _paper_times_for(paper_table, profile, n_paper)
        engines = [
            ("fpga", fpga_s, DEFAULT_POWER_MODEL.fpga_watts),
            ("bwaver_cpu", cpu_s, DEFAULT_POWER_MODEL.cpu_watts),
            ("bowtie2_1t", bt1_s, DEFAULT_POWER_MODEL.cpu_watts),
            ("bowtie2_8t", bt8_s, DEFAULT_POWER_MODEL.cpu_watts),
            ("bowtie2_16t", bt16_s, DEFAULT_POWER_MODEL.cpu_watts),
        ]
        for name, seconds, watts in engines:
            rows.append(
                {
                    "profile": profile,
                    "reads": n_paper,
                    "engine": name,
                    "modeled_ms": seconds * 1e3,
                    "speedup_vs_fpga": DEFAULT_POWER_MODEL.speedup_vs_fpga(seconds, fpga_s),
                    "power_eff_vs_fpga": DEFAULT_POWER_MODEL.efficiency_vs_fpga(
                        seconds, fpga_s, other_watts=watts
                    ),
                    "paper_ms": paper_ms.get(name),
                    "sample_wall_seconds": {
                        "fpga": fpga_run.host_wall_seconds,
                        "bwaver_cpu": succinct_run.wall_seconds,
                    }.get(name, bowtie_run.wall_seconds),
                    "mapping_ratio": succinct_run.mapping_ratio,
                }
            )
    return _record_experiment("table", rows)


def _paper_times_for(paper_table: dict, profile: str, n_reads: int) -> dict[str, float]:
    if profile == "ecoli":
        if n_reads == paper_table["workload"]["reads"]:
            return dict(paper_table["times_ms"])
        return {}
    row = paper_table["rows"].get(n_reads)
    return dict(row["times_ms"]) if row else {}


def experiment_table1(**kwargs) -> list[dict]:
    """Table I: 100 M × 35 bp on the E. coli-like reference."""
    kwargs.setdefault("profile", "ecoli")
    kwargs.setdefault("read_length", 35)
    kwargs.setdefault("paper_read_counts", (100_000_000,))
    return experiment_table(**kwargs)


def experiment_table2(**kwargs) -> list[dict]:
    """Table II: {1, 10, 100} M × 40 bp on the Chr21-like reference."""
    kwargs.setdefault("profile", "chr21")
    kwargs.setdefault("read_length", 40)
    kwargs.setdefault("paper_read_counts", (1_000_000, 10_000_000, 100_000_000))
    return experiment_table(**kwargs)

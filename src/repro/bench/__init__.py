"""Experiment harness: calibration, per-figure/table runners, rendering."""

from .calibration import (
    DEFAULT_BOWTIE2_MODEL,
    DEFAULT_CPU_MODEL,
    PAPER_FIG5,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TRENDS,
    NativeBowtie2CostModel,
    NativeCPUCostModel,
)
from .harness import (
    PAPER_REF_BASES,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_table,
    experiment_table1,
    experiment_table2,
    get_index,
    get_reference,
)
from .profiling import ProfileResult, profile_build, profile_call, profile_mapping
from .reporting import fmt_bytes, fmt_ms, fmt_ratio, render_dict_rows, render_table, side_by_side

__all__ = [
    "DEFAULT_BOWTIE2_MODEL",
    "DEFAULT_CPU_MODEL",
    "NativeBowtie2CostModel",
    "NativeCPUCostModel",
    "PAPER_FIG5",
    "PAPER_REF_BASES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TRENDS",
    "ProfileResult",
    "profile_build",
    "profile_call",
    "profile_mapping",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_table",
    "experiment_table1",
    "experiment_table2",
    "fmt_bytes",
    "fmt_ms",
    "fmt_ratio",
    "get_index",
    "get_reference",
    "render_dict_rows",
    "render_table",
    "side_by_side",
]

"""Plain-text rendering of experiment tables (what the benches print).

The harness produces rows as dictionaries; these helpers lay them out as
aligned monospace tables with the paper's formatting conventions
(times in ms, ratios as ``68.23x``), so a bench run's stdout can be
diffed against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def fmt_ms(seconds: float) -> str:
    """Seconds → the paper's integer-millisecond style."""
    return f"{seconds * 1e3:,.0f}"


def fmt_ratio(x: float) -> str:
    """Ratio → the paper's ``68.23x`` style."""
    if x != x or x in (float("inf"), float("-inf")):  # NaN / inf guards
        return "-"
    return f"{x:,.2f}x"


def fmt_bytes(n: float) -> str:
    """Bytes → human-readable MB/KB."""
    if n >= 1e6:
        return f"{n / 1e6:.2f} MB"
    if n >= 1e3:
        return f"{n / 1e3:.2f} KB"
    return f"{n:.0f} B"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_dict_rows(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    title: str | None = None,
) -> str:
    """Table from dict rows, selecting and ordering ``columns``."""
    body = [[row.get(c, "") for c in columns] for row in rows]
    return render_table(columns, body, title=title)


def side_by_side(
    paper: Mapping[str, float],
    measured: Mapping[str, float],
    label_paper: str = "paper",
    label_measured: str = "reproduction",
) -> str:
    """Two-column comparison over the union of keys (paper first)."""
    keys = list(paper.keys()) + [k for k in measured if k not in paper]
    rows = []
    for k in keys:
        p = paper.get(k)
        m = measured.get(k)
        ratio = (m / p) if (p not in (None, 0) and m is not None) else None
        rows.append(
            [
                k,
                f"{p:,.2f}" if p is not None else "-",
                f"{m:,.2f}" if m is not None else "-",
                f"{ratio:.2f}" if ratio is not None else "-",
            ]
        )
    return render_table(
        ["metric", label_paper, label_measured, "repro/paper"], rows
    )

"""Calibration constants and the paper's reference numbers.

Everything "magic" in the reproduction lives in this module, visible and
printed by every bench run.

Two analytic cost models convert *measured operation counts* (from
:mod:`repro.core.counters`) into **native-equivalent seconds** — the time
an optimized C++ implementation would take for the same work.  Pure
Python wall clock is also always reported, but the paper's ratios can
only be reproduced on native-equivalent time (CPython is 100-1000×
slower than the authors' binaries, uniformly inflating every column).

Calibration provenance (worked in comments below):

* the paper's own Table I — BWaveR CPU, sf=50, 100 M reads of 35 bp in
  247 214 ms — fixes the succinct model near **2.47 µs/read**, i.e.
  ~0.30 ns per class-sum iteration with a ~1 ns base per binary rank
  (both values squarely in range for an L1-resident scan on a ~2.3 GHz
  Xeon);
* Table I's Bowtie2 single-thread row — 176 683 ms for the same reads —
  fixes the checkpoint model near **1.77 µs/read** (~2 ns per checkpoint
  access plus ~0.15 ns per scanned BWT character);
* thread scaling ``s ≈ 0.003`` is fitted in
  :mod:`repro.baseline.threading_model`;
* the FPGA constants are in :mod:`repro.fpga.cost_model`.

The PAPER_* dictionaries transcribe the paper's reported tables verbatim,
so benches and ``EXPERIMENTS.md`` can print paper-vs-reproduction side by
side without anyone re-reading the PDF.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NativeCPUCostModel:
    """Native-equivalent costs of the succinct (BWaveR CPU) search.

    ``seconds(counts)`` expects an :class:`~repro.core.counters.OpCounters`
    snapshot dict from a run over the *succinct* backend.
    """

    #: Base cost of one binary rank: superblock read + offset-stream read
    #: + Global Rank Table lookup + loop setup. (~2-3 L1 hits.)
    rank_base_ns: float = 1.0
    #: One iteration of the class-summation loop (a 4-bit load + add; the
    #: compiler vectorizes it, hence well below 1 cycle per element).
    class_iter_ns: float = 0.30
    #: Per backward-search step bookkeeping (interval update, bounds).
    step_ns: float = 2.0
    #: Per-query setup (fetch, reverse complement, result store).
    query_ns: float = 20.0

    def seconds(self, counts: dict[str, int]) -> float:
        ns = (
            counts.get("binary_ranks", 0) * self.rank_base_ns
            + counts.get("class_sum_iterations", 0) * self.class_iter_ns
            + counts.get("bs_steps", 0) * self.step_ns
            + counts.get("queries", 0) * self.query_ns
        )
        return ns * 1e-9


@dataclass(frozen=True)
class NativeBowtie2CostModel:
    """Native-equivalent costs of the checkpointed-Occ (Bowtie2) search."""

    #: One checkpoint access (cache line read + address arithmetic).
    checkpoint_ns: float = 2.0
    #: One scanned BWT base between checkpoints (2-bit packed popcount
    #: tricks process ~4-8 bases/cycle; 0.15 ns/base ≈ 3 bases/cycle).
    scan_char_ns: float = 0.15
    step_ns: float = 2.0
    query_ns: float = 20.0

    def seconds(self, counts: dict[str, int]) -> float:
        ns = (
            counts.get("occ_checkpoint_ranks", 0) * self.checkpoint_ns
            + counts.get("occ_scan_chars", 0) * self.scan_char_ns
            + counts.get("bs_steps", 0) * self.step_ns
            + counts.get("queries", 0) * self.query_ns
        )
        return ns * 1e-9


DEFAULT_CPU_MODEL = NativeCPUCostModel()
DEFAULT_BOWTIE2_MODEL = NativeBowtie2CostModel()


# ---------------------------------------------------------------------------
# The paper's reported numbers, transcribed.
# ---------------------------------------------------------------------------

#: Table I — 100 M × 35 bp reads on the E. coli reference.  Times in ms.
PAPER_TABLE1 = {
    "workload": {"reads": 100_000_000, "read_length": 35, "reference": "ecoli"},
    "times_ms": {
        "fpga": 3_623,
        "bwaver_cpu": 247_214,
        "bowtie2_1t": 176_683,
        "bowtie2_8t": 23_016,
        "bowtie2_16t": 11_542,
    },
    "speedup_vs_fpga": {
        "bwaver_cpu": 68.23,
        "bowtie2_1t": 48.76,
        "bowtie2_8t": 6.34,
        "bowtie2_16t": 3.18,
    },
    "power_efficiency_vs_fpga": {
        "bwaver_cpu": 368.43,
        "bowtie2_1t": 263.32,
        "bowtie2_8t": 34.3,
        "bowtie2_16t": 17.2,
    },
}

#: Table II — {1, 10, 100} M × 40 bp reads on the Chr 21 reference.
PAPER_TABLE2 = {
    "workload": {"read_length": 40, "reference": "chr21"},
    "rows": {
        1_000_000: {
            "times_ms": {
                "fpga": 242,
                "bwaver_cpu": 3_302,
                "bowtie2_1t": 1_891,
                "bowtie2_8t": 344,
                "bowtie2_16t": 180,
            },
            "speedup_vs_fpga": {
                "bwaver_cpu": 13.62,
                "bowtie2_1t": 7.78,
                "bowtie2_8t": 1.41,
                "bowtie2_16t": 0.74,
            },
        },
        10_000_000: {
            "times_ms": {
                "fpga": 460,
                "bwaver_cpu": 28_658,
                "bowtie2_1t": 19_126,
                "bowtie2_8t": 3_483,
                "bowtie2_16t": 1_823,
            },
            "speedup_vs_fpga": {
                "bwaver_cpu": 62.4,
                "bowtie2_1t": 41.63,
                "bowtie2_8t": 7.57,
                "bowtie2_16t": 3.96,
            },
        },
        100_000_000: {
            "times_ms": {
                "fpga": 3_783,
                "bwaver_cpu": 266_253,
                "bowtie2_1t": 192_075,
                "bowtie2_8t": 35_969,
                "bowtie2_16t": 18_575,
            },
            "speedup_vs_fpga": {
                "bwaver_cpu": 70.39,
                "bowtie2_1t": 50.77,
                "bowtie2_8t": 9.51,
                "bowtie2_16t": 4.91,
            },
        },
    },
}

#: Fig. 5 anchor points — structure sizes the text states explicitly.
PAPER_FIG5 = {
    "ecoli": {
        "uncompressed_mb": 4.64,
        "b15_sf100_mb": 1.72,
    },
    "chr21": {
        "uncompressed_mb": 40.1,
        "b15_sf100_mb": 12.73,
    },
    "max_space_saving_percent": 68.3,
}

#: Fig. 6/7 are trend figures; the claims the harness checks:
PAPER_TRENDS = {
    "fig6": [
        "encoding time grows with block size b",
        "encoding time ~constant in superblock factor sf",
    ],
    "fig7": [
        "mapping time grows with mapping ratio",
        "mapping time independent of reference length",
        "mapping time grows with b and sf",
    ],
    "table2": [
        "FPGA speedup grows with read count (fixed BWT-load overhead)",
    ],
}


def paper_scale_read_counts() -> dict[str, list[int]]:
    """The read counts of the paper's tables (for the modeled columns)."""
    return {"table1": [100_000_000], "table2": [1_000_000, 10_000_000, 100_000_000]}

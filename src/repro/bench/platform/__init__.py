"""Continuous-benchmarking platform: declarative experiments, a
provenance-keyed results store, statistics, reports, and CI gates.

The pieces (DESIGN.md §11):

* :mod:`configs` — experiments as data (workload × backend × scale ×
  repetitions), stably hashable;
* :mod:`workloads` — the registered measurable kernels, including every
  named hot path the gate defends;
* :mod:`runner` — the dispatcher that executes trials (optionally
  through the shared-memory MapperPool) with warmup separation and
  per-trial telemetry snapshots;
* :mod:`store` — JSON trial documents + a SQLite trajectory DB, keyed
  by git hash, config hash, seed, and host fingerprint;
* :mod:`stats` — bootstrap CIs and rank tests behind every verdict;
* :mod:`gate` — the named-hot-path regression gate (non-zero exit on a
  significant slowdown past a path's threshold);
* :mod:`report` — fuzzbench-style lazily-computed report context
  rendered to a self-contained HTML file;
* :mod:`trajectory` — the ``BENCH_*.json`` machine-readable series;
* :mod:`legacy` — seed-baseline migration from the historical ``.txt``
  result tables.
"""

from .configs import (
    BUILTIN_SUITES,
    ConfigError,
    ExperimentConfig,
    load_suite,
    resolve_suite,
    save_suite,
)
from .gate import HOT_PATHS, GateReport, HotPath, PathVerdict, run_gate
from .legacy import migrate_legacy_results, parse_legacy_seconds, synthesize_baseline
from .report import ReportContext, render_html, write_report
from .runner import RunReport, run_experiments
from .stats import Comparison, bootstrap_ci, compare, mann_whitney_u
from .store import ResultsStore, TrialRecord, git_revision, host_fingerprint
from .trajectory import append_trajectory_point, load_trajectory, trajectory_path
from .workloads import WORKLOADS, Workload, create_workload

__all__ = [
    "BUILTIN_SUITES",
    "HOT_PATHS",
    "WORKLOADS",
    "Comparison",
    "ConfigError",
    "ExperimentConfig",
    "GateReport",
    "HotPath",
    "PathVerdict",
    "ReportContext",
    "ResultsStore",
    "RunReport",
    "TrialRecord",
    "Workload",
    "append_trajectory_point",
    "bootstrap_ci",
    "compare",
    "create_workload",
    "git_revision",
    "host_fingerprint",
    "load_suite",
    "load_trajectory",
    "mann_whitney_u",
    "migrate_legacy_results",
    "parse_legacy_seconds",
    "render_html",
    "resolve_suite",
    "run_experiments",
    "run_gate",
    "save_suite",
    "synthesize_baseline",
    "trajectory_path",
    "write_report",
]

"""Seed-baseline migration: the legacy ``.txt`` tables → trial records.

PRs 1-5 left their evidence as rendered monospace tables under
``benchmarks/results/``.  This module parses the hot-path numbers out
of those tables and synthesizes baseline :class:`TrialRecord` sets from
them, so the very first ``repro bench gate`` run has something to
compare against instead of waiting a full release cycle for history to
accumulate.

Synthesized records are honest about what they are: ``synthetic=True``,
``git_hash="seed-legacy-txt"``, and a ``seed-host`` fingerprint that can
never collide with a real machine's — the gate therefore treats them as
a cross-host baseline (advisory unless ``--strict-cross-host``).
Each point value is expanded into ``reps`` samples with a small
deterministic jitter so the rank test has a distribution to work with.
"""

from __future__ import annotations

import re
import time
from pathlib import Path

import numpy as np

from .store import ResultsStore, TrialRecord

SEED_GIT_HASH = "seed-legacy-txt"
SEED_HOST = "seed-host"

#: (workload, legacy file, regex over the table text, unit multiplier to
#: seconds).  The regex's group 1 is the number.
_LEGACY_SOURCES: tuple[tuple[str, str, str, float], ...] = (
    (
        "count_only_mapping",
        "fig7_ftab_count_only.txt",
        r"search_batch \(count-only\)\s*\|\s*on\s*\|\s*([0-9.]+)",
        1e-3,
    ),
    (
        "flat_open",
        "serving_startup.txt",
        r"open flat \(mmap\)\s*\|\s*([0-9.]+)\s*ms",
        1e-3,
    ),
    (
        "pool_attach",
        "serving_startup.txt",
        r"hand-off: shm attach\s*\|\s*([0-9.]+)\s*ms",
        1e-3,
    ),
    (
        "occ2_fused",
        "micro_rank_occ_fused.txt",
        r"occ2_many \(fused descent\)\s*\|\s*([0-9.]+)",
        1e-3,
    ),
)


class LegacyParseError(ValueError):
    """A legacy results table did not match the expected layout."""


def parse_legacy_seconds(results_dir: str | Path) -> dict[str, float]:
    """Extract each hot path's point estimate (seconds) from the txt pile."""
    results_dir = Path(results_dir)
    out: dict[str, float] = {}
    for workload, filename, pattern, unit in _LEGACY_SOURCES:
        path = results_dir / filename
        if not path.exists():
            continue
        m = re.search(pattern, path.read_text())
        if m is None:
            raise LegacyParseError(
                f"{path.name}: no match for {workload!r} ({pattern!r})"
            )
        out[workload] = float(m.group(1)) * unit
    return out


def synthesize_baseline(
    seconds_by_workload: dict[str, float],
    reps: int = 8,
    jitter: float = 0.01,
    seed: int = 0,
) -> list[TrialRecord]:
    """Expand point estimates into jittered synthetic baseline samples."""
    rng = np.random.default_rng(seed)
    now = time.time()
    records: list[TrialRecord] = []
    for workload, seconds in sorted(seconds_by_workload.items()):
        samples = seconds * (1.0 + rng.uniform(-jitter, jitter, size=reps))
        for rep, s in enumerate(samples):
            records.append(
                TrialRecord(
                    experiment=f"seed_{workload}",
                    workload=workload,
                    config_hash="legacy-txt",
                    git_hash=SEED_GIT_HASH,
                    seed=seed,
                    host=SEED_HOST,
                    rep=rep,
                    phase="steady",
                    wall_seconds=float(s),
                    created_utc=now,
                    is_baseline=True,
                    synthetic=True,
                    metrics={"source": "benchmarks/results", "point_seconds": seconds},
                )
            )
    return records


def migrate_legacy_results(
    results_dir: str | Path,
    store: ResultsStore,
    reps: int = 8,
    jitter: float = 0.01,
    seed: int = 0,
) -> list[TrialRecord]:
    """Parse the txt pile and insert the synthetic seed baseline."""
    seconds = parse_legacy_seconds(results_dir)
    records = synthesize_baseline(seconds, reps=reps, jitter=jitter, seed=seed)
    store.insert_many(records)
    return records

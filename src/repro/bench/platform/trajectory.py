"""Machine-readable perf trajectory: ``BENCH_<series>.json`` files.

Each series file is an append-only list of points, one per measuring
run, keyed by git hash + host fingerprint + seed — the minimal record
that lets a later reader plot a metric over the project's history and
discard points from foreign machines.  The legacy ``.txt`` tables keep
being written next to them; these files are the diff-able numbers the
ISSUE's "no machine-readable trajectory" complaint was about.

Format::

    {
      "series": "fig7",
      "schema": 1,
      "points": [
        {"git_hash": ..., "host": ..., "seed": ..., "created_utc": ...,
         "metrics": {"<name>": <number>, ...}, ...extra provenance...},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .store import git_revision, host_fingerprint

TRAJECTORY_SCHEMA = 1


def trajectory_path(results_dir: str | Path, series: str) -> Path:
    return Path(results_dir) / f"BENCH_{series}.json"


def load_trajectory(results_dir: str | Path, series: str) -> dict:
    path = trajectory_path(results_dir, series)
    if not path.exists():
        return {"series": series, "schema": TRAJECTORY_SCHEMA, "points": []}
    doc = json.loads(path.read_text())
    doc.setdefault("points", [])
    return doc


def append_trajectory_point(
    results_dir: str | Path,
    series: str,
    metrics: dict,
    *,
    git_hash: str | None = None,
    host: str | None = None,
    seed: int | None = None,
    **extra,
) -> Path:
    """Append one provenance-stamped point to ``BENCH_<series>.json``.

    Re-running at the same (git hash, host) replaces the previous point
    instead of stacking duplicates, so a bench re-run while iterating
    locally updates in place and the committed file stays one point per
    commit per machine.
    """
    doc = load_trajectory(results_dir, series)
    point = {
        "git_hash": git_hash if git_hash is not None else git_revision(),
        "host": host if host is not None else host_fingerprint(),
        "seed": seed,
        "created_utc": time.time(),
        "metrics": {k: _jsonable(v) for k, v in metrics.items()},
        **extra,
    }
    doc["points"] = [
        p for p in doc["points"]
        if not (p.get("git_hash") == point["git_hash"]
                and p.get("host") == point["host"])
    ] + [point]
    path = trajectory_path(results_dir, series)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _jsonable(v):
    """Coerce numpy scalars to plain Python numbers."""
    try:
        import numpy as np

        if isinstance(v, np.generic):
            return v.item()
    except ImportError:  # pragma: no cover
        pass
    return v

"""Registered workloads: the measurable kernels behind every experiment.

A workload owns its substrate (reference, index, container, published
block) and exposes a single timed operation.  The dispatcher times
``run_once`` with ``time.perf_counter`` — workloads never time
themselves — and persists whatever auxiliary metrics ``run_once``
returns next to the wall clock.

The four *named hot paths* the regression gate watches are all here:

========================  ====================================================
``count_only_mapping``    ftab-primed ``search_batch`` over unmapped-heavy
                          reads (PR 5's 1.97x claim)
``flat_open``             zero-copy ``mmap`` open of a flat container
                          (PR 3's ~105x claim)
``pool_attach``           shared-memory attach of a published index
``occ2_fused``            fused lo/hi Occ kernel, 4 symbols × query bounds
========================  ====================================================

plus ``pool_mapping`` (end-to-end batch through the shared-memory
:class:`~repro.serving.pool.MapperPool`) and ``fpga_mapping`` (the
simulated accelerator, optionally under a fault plan, so degraded runs
land in the trajectory with their fault-ladder counters attached).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..fixtures import make_dna, profile_reference, seeded_reads
from .configs import ExperimentConfig

WORKLOADS: dict[str, Callable[[ExperimentConfig], "Workload"]] = {}


class WorkloadError(KeyError):
    """Unknown workload name."""


def register(name: str):
    def deco(cls):
        cls.workload_name = name
        WORKLOADS[name] = cls
        return cls
    return deco


def create_workload(config: ExperimentConfig) -> "Workload":
    try:
        cls = WORKLOADS[config.workload]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {config.workload!r}; have {sorted(WORKLOADS)}"
        ) from None
    return cls(config)


class Workload:
    """Base workload: build substrate in ``setup``, measure ``run_once``."""

    workload_name = "?"
    #: Set by pooled workloads; the dispatcher then builds a MapperPool
    #: around :meth:`pool_index` and assigns it to ``self.pool``.
    needs_pool = False
    #: The dispatcher calls ``run_once`` this many times inside one timed
    #: trial and records elapsed / inner_loop, so sub-millisecond kernels
    #: amortize timer and scheduler jitter while keeping per-op units.
    inner_loop = 1

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.params = config.param_dict
        self.pool = None

    def setup(self, scratch: Path) -> None:  # pragma: no cover - trivial default
        pass

    def pool_index(self):
        raise NotImplementedError(f"{self.workload_name} does not run pooled")

    def run_once(self) -> dict:
        raise NotImplementedError

    def teardown(self) -> None:  # pragma: no cover - trivial default
        pass


# -- substrate scales --------------------------------------------------------

#: (reference bases, n_reads, read length, ftab k) per scale.  ``medium``
#: uses the ecoli profile reference, matching the legacy bench scripts.
_MAPPING_SCALES = {
    "tiny": (5_000, 100, 50, 6),
    "small": (50_000, 400, 100, 8),
    "medium": (None, 1_200, 100, 10),
}

_OCC_SCALES = {"tiny": 20_000, "small": 100_000, "medium": 250_000}
_OCC_QUERIES = {"tiny": 500, "small": 2_000, "medium": 2_000}


def _reference_for(scale: str, seed: int) -> str:
    n_bases, _, _, _ = _MAPPING_SCALES[scale]
    if n_bases is None:
        return profile_reference("ecoli", seed=seed)
    return make_dna(n_bases, seed=seed)


def _built_index(scale: str, seed: int, backend: str, ftab_k: int | None):
    from ...core.counters import OpCounters
    from ...index.builder import build_index

    ref = _reference_for(scale, seed)
    index, _ = build_index(
        ref, b=15, sf=50, backend=backend, counters=OpCounters(), ftab_k=ftab_k
    )
    return ref, index


@register("count_only_mapping")
class CountOnlyMapping(Workload):
    """Ftab-primed count-only batch search over unmapped-heavy reads."""

    def setup(self, scratch: Path) -> None:
        scale, seed = self.config.scale, self.config.seed
        _, n_reads, read_len, default_k = _MAPPING_SCALES[scale]
        ftab_k = int(self.params.get("ftab_k", default_k))
        if not self.params.get("ftab", True):
            ftab_k = None
        ref, self.index = _built_index(scale, seed, self.config.backend, ftab_k)
        self.index.backend.build_batch_cache()
        ratio = float(self.params.get("mapping_ratio", 0.0))
        self.reads = seeded_reads(ref, n_reads, read_len, ratio, seed=seed)

    def run_once(self) -> dict:
        lo, hi, steps = self.index.search_batch(self.reads)
        return {
            "reads": len(self.reads),
            "bs_steps": int(np.asarray(steps).sum()),
            "hits": int((np.asarray(hi) > np.asarray(lo)).sum()),
        }


@register("flat_open")
class FlatOpen(Workload):
    """O(1) mmap open of a flat container (vs the old decompress path)."""

    inner_loop = 10

    def setup(self, scratch: Path) -> None:
        from ...index.flat import save_index_flat

        _, self._index = _built_index("tiny" if self.config.scale == "tiny" else "small",
                                      self.config.seed, self.config.backend, None)
        self.path = scratch / "index.bwvr"
        save_index_flat(self._index, self.path)
        self.container_bytes = self.path.stat().st_size

    def run_once(self) -> dict:
        from ...index.flat import load_index_flat

        index = load_index_flat(self.path)
        n_rows = index.n_rows
        del index
        return {"container_bytes": self.container_bytes, "n_rows": n_rows}


@register("pool_attach")
class PoolAttach(Workload):
    """Shared-memory attach + release against a published index block."""

    inner_loop = 10

    def setup(self, scratch: Path) -> None:
        from ...serving.shared import SharedIndexBlock

        _, index = _built_index("tiny" if self.config.scale == "tiny" else "small",
                                self.config.seed, self.config.backend, None)
        self.block = SharedIndexBlock(index)
        self.spec = self.block.spec

    def run_once(self) -> dict:
        from ...serving.shared import attach_index, release_attachment

        index, handle = attach_index(self.spec)
        n_rows = index.n_rows
        index = None
        release_attachment(handle)
        return {"n_rows": n_rows}

    def teardown(self) -> None:
        self.block.close()
        self.block.unlink()


@register("occ2_fused")
class Occ2Fused(Workload):
    """Fused lo/hi Occ descent: 4 symbols × N query-bound pairs."""

    def setup(self, scratch: Path) -> None:
        from ...core.bwt_structure import BWTStructure
        from ...sequence.bwt import bwt_from_string

        scale, seed = self.config.scale, self.config.seed
        text = make_dna(_OCC_SCALES[scale], seed=seed)
        self.structure = BWTStructure(bwt_from_string(text), b=15, sf=50)
        self.structure.build_batch_cache()
        rng = np.random.default_rng(seed + 3)
        n = self.structure.n_rows
        n_q = _OCC_QUERIES[scale]
        self.plo = rng.integers(0, n + 1, n_q)
        self.phi = rng.integers(0, n + 1, n_q)

    def run_once(self) -> dict:
        out = [self.structure.occ2_many(a, self.plo, self.phi) for a in range(4)]
        return {"queries": 4 * len(self.plo), "checksum": int(out[0][0].sum())}


@register("pool_mapping")
class PoolMapping(Workload):
    """End-to-end batch through the shared-memory MapperPool."""

    needs_pool = True

    def setup(self, scratch: Path) -> None:
        scale, seed = self.config.scale, self.config.seed
        _, n_reads, read_len, _ = _MAPPING_SCALES[scale]
        ref, self._index = _built_index(scale, seed, self.config.backend, None)
        ratio = float(self.params.get("mapping_ratio", 0.75))
        self.reads = seeded_reads(ref, n_reads, read_len, ratio, seed=seed)

    def pool_index(self):
        return self._index

    def run_once(self) -> dict:
        outcome = self.pool.run_batch(self.reads)
        return {
            "reads": outcome.n_reads,
            "mapped": outcome.mapped,
            "bs_steps": outcome.op_counts.get("bs_steps", 0),
        }


class _ConcurrentRequestBase(Workload):
    """Shared substrate for the coalescing ablation pair: N concurrent
    small requests (``n_requests`` × ``reads_per_request``) against one
    batch-cached index.

    Registered as two distinct workload names (not one name with a
    toggle param) so the gate's per-workload sample filter never mixes
    on/off trials into one bimodal distribution.
    """

    def setup(self, scratch: Path) -> None:
        scale, seed = self.config.scale, self.config.seed
        _, _, read_len, default_k = _MAPPING_SCALES[scale]
        n_requests = int(self.params.get("n_requests", 32))
        reads_per_request = int(self.params.get("reads_per_request", 16))
        ref, self.index = _built_index(scale, seed, self.config.backend, default_k)
        self.index.backend.build_batch_cache()
        ratio = float(self.params.get("mapping_ratio", 0.75))
        flat = seeded_reads(
            ref, n_requests * reads_per_request, read_len, ratio, seed=seed
        )
        self.requests = [
            flat[i * reads_per_request : (i + 1) * reads_per_request]
            for i in range(n_requests)
        ]
        from ...mapper.mapper import Mapper

        self.mapper = Mapper(self.index, locate=False)

    def _aux(self, outs: list) -> dict:
        return {
            "requests": len(self.requests),
            "reads": sum(len(r) for r in self.requests),
            "mapped": sum(1 for rs in outs for r in rs if r.mapped),
        }


@register("coalesced_mapping")
class CoalescedMapping(_ConcurrentRequestBase):
    """The N requests merged into shared kernel batches by the coalescer.

    Uses the synchronous ``map_many`` entry point — the same merge →
    dispatch → demux code the live flusher runs, without the wait window
    — so the trial measures batching benefit, not timer sleep.
    """

    def setup(self, scratch: Path) -> None:
        super().setup(scratch)
        from ...serving.coalescer import CoalescerConfig, RequestCoalescer

        max_batch = int(self.params.get("max_batch_reads", 512))
        self.coalescer = RequestCoalescer(
            self.mapper.map_reads,
            config=CoalescerConfig(max_batch_reads=max_batch),
        )
        # One threaded pass through the live windowed path, outside the
        # timed region, to record the p95 added latency a real concurrent
        # client would see (the acceptance bound: p95 added wait <=
        # window; ``wait_p95_ms`` additionally carries the raw queue
        # wait including head-of-line time at saturation).
        self.wait_p95_ms = 0.0
        self.added_wait_p95_ms = self._measure_wait_p95()

    def _measure_wait_p95(self) -> float:
        import threading

        from ...serving.coalescer import CoalescerConfig, RequestCoalescer

        window_ms = float(self.params.get("window_ms", 2.0))
        live = RequestCoalescer(
            self.mapper.map_reads,
            config=CoalescerConfig(
                window_seconds=window_ms / 1e3,
                max_batch_reads=int(self.params.get("max_batch_reads", 512)),
            ),
        )
        try:
            threads = [
                threading.Thread(target=live.map_reads, args=(reads,))
                for reads in self.requests
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = live.stats()
            self.wait_p95_ms = float(stats["wait_p95_ms"])
            return float(stats["added_wait_p95_ms"])
        finally:
            live.close()

    def run_once(self) -> dict:
        before = self.coalescer.stats()["batches_total"]
        outs = self.coalescer.map_many(self.requests)
        aux = self._aux(outs)
        aux["wait_p95_ms"] = self.wait_p95_ms
        aux["added_wait_p95_ms"] = self.added_wait_p95_ms
        aux["batches"] = self.coalescer.stats()["batches_total"] - before
        return aux

    def teardown(self) -> None:
        self.coalescer.close()


@register("uncoalesced_mapping")
class UncoalescedMapping(_ConcurrentRequestBase):
    """Ablation control: every request dispatched alone, in order."""

    def run_once(self) -> dict:
        outs = [self.mapper.map_reads(reads) for reads in self.requests]
        return self._aux(outs)


@register("sharded_mapping")
class ShardedMapping(Workload):
    """Scatter-gather fan-out across a shard catalog (the router tier).

    The reference is split into ``n_shards`` contiguous chunks, each
    indexed into its own flat container and registered with a
    :class:`~repro.serving.router.ShardCatalog`; the timed operation is
    one :meth:`~repro.serving.router.ShardRouter.map_reads` batch over
    reads drawn from every shard.  Default is all shards resident and
    in-process (the gated hot path); ``memory_budget_mb`` squeezes the
    catalog into LRU waves and ``shard_workers`` runs each shard behind
    its own MapperPool.
    """

    def setup(self, scratch: Path) -> None:
        from ...index.builder import build_index
        from ...index.flat import save_index_flat
        from ...serving.router import ShardCatalog, ShardRouter

        scale, seed = self.config.scale, self.config.seed
        _, n_reads, read_len, _ = _MAPPING_SCALES[scale]
        n_shards = int(self.params.get("n_shards", 4))
        ref = _reference_for(scale, seed)
        step = max(read_len, len(ref) // n_shards)
        chunks = [
            c for c in (ref[i * step : (i + 1) * step] for i in range(n_shards))
            if len(c) >= read_len
        ]
        ratio = float(self.params.get("mapping_ratio", 0.75))
        per_shard = max(1, n_reads // len(chunks))
        self.catalog = ShardCatalog(
            pool_workers=int(self.params.get("shard_workers", 0))
        )
        self.reads: list[str] = []
        for i, chunk in enumerate(chunks):
            index, _ = build_index(
                chunk, b=15, sf=50, backend=self.config.backend, locate="full"
            )
            path = scratch / f"shard{i}.bwvr"
            save_index_flat(index, path)
            self.catalog.register(f"shard{i}", path)
            self.reads.extend(
                seeded_reads(chunk, per_shard, read_len, ratio, seed=seed + i)
            )
        budget_mb = float(self.params.get("memory_budget_mb", 0.0))
        if budget_mb:
            self.catalog.memory_budget_bytes = int(budget_mb * 1024 * 1024)
        self.router = ShardRouter(self.catalog)

    def run_once(self) -> dict:
        out = self.router.map_reads(self.reads)
        return {
            "reads": len(out),
            "shards": len(self.catalog),
            "mapped": sum(1 for m in out if m.mapped),
            "hits": sum(len(m.hits) for m in out),
            "evictions": self.catalog.evictions,
        }

    def teardown(self) -> None:
        self.catalog.close()


@register("fpga_mapping")
class FpgaMapping(Workload):
    """Simulated accelerator run; ``faults`` param exercises the ladder.

    Persisting these trials with their fault counters lets the report
    correlate perf deltas with degraded (CPU-fallback) runs instead of
    mistaking a ladder engagement for a code regression.
    """

    def setup(self, scratch: Path) -> None:
        from ...fpga.accelerator import FPGAAccelerator

        scale, seed = self.config.scale, self.config.seed
        _, n_reads, read_len, _ = _MAPPING_SCALES[scale]
        ref, index = _built_index(scale, seed, self.config.backend, None)
        ratio = float(self.params.get("mapping_ratio", 0.75))
        self.reads = seeded_reads(ref, n_reads, read_len, ratio, seed=seed)
        fault_spec = str(self.params.get("faults", ""))
        fault_plan = None
        if fault_spec:
            from ...faults import FaultPlan

            fault_plan = FaultPlan.from_spec(fault_spec, seed=seed)
        self.accelerator = FPGAAccelerator.for_index(index, fault_plan=fault_plan)

    def run_once(self) -> dict:
        run = self.accelerator.map_batch(self.reads)
        return {
            "reads": run.n_reads,
            "modeled_seconds": run.modeled_seconds,
            "degraded": int(run.degraded),
            "retries": run.retries,
            "reprograms": run.reprograms,
        }


#: Fraction of the chr21 profile per scale.  The block budget is scaled
#: by the same fraction so each run exercises the same blocks-per-
#: reference ratio the 64 MB default gives against the full chromosome.
_BUILD_SCALES = {"tiny": 0.00025, "small": 0.0025, "medium": 0.01}


@register("blockwise_build")
class BlockwiseBuild(Workload):
    """Out-of-core blockwise index build over a chr21-profile reference.

    The untimed setup builds the index once monolithically and once
    blockwise with ``tracemalloc`` armed, recording the peak-allocation
    ratio and verifying the two flat containers are byte-identical; every
    timed trial is then one cold blockwise build into scratch.  The
    ratio/identity facts ride along in the per-trial metrics so the
    trajectory (``BENCH_build.json``) and the gate see them.
    """

    def setup(self, scratch: Path) -> None:
        import tracemalloc

        from ...core.global_tables import get_global_tables
        from ...index.build_stream import build_index_blockwise
        from ...index.builder import build_index
        from ...index.flat import save_index_flat

        scale_frac = _BUILD_SCALES[self.config.scale]
        self.ref = profile_reference(
            "chr21", scale=scale_frac, seed=self.config.seed
        )
        self.scratch = scratch
        self.block_mb = float(self.params.get("block_mb", 64.0 * scale_frac))
        # The RRR rank tables are process-wide singletons; build them
        # outside both traced windows so neither peak charges for them.
        get_global_tables(15)
        mono_path = scratch / "mono.bwvr"
        was_tracing = tracemalloc.is_tracing()
        if was_tracing:
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
        index, _ = build_index(self.ref, backend=self.config.backend)
        save_index_flat(index, mono_path)
        self.mono_peak = int(tracemalloc.get_traced_memory()[1])
        if not was_tracing:
            tracemalloc.stop()
        del index
        blk_path = scratch / "blk.bwvr"
        report = build_index_blockwise(
            self.ref,
            blk_path,
            backend=self.config.backend,
            block_mb=self.block_mb,
            measure_peak=True,
        )
        self.blockwise_peak = int(report.peak_alloc_bytes)
        self.byte_identical = mono_path.read_bytes() == blk_path.read_bytes()
        self.peak_ratio = (
            self.mono_peak / self.blockwise_peak if self.blockwise_peak else 0.0
        )
        blk_path.unlink()
        mono_path.unlink()
        self._trial = 0

    def run_once(self) -> dict:
        from ...index.build_stream import build_index_blockwise

        out = self.scratch / f"trial{self._trial}.bwvr"
        self._trial += 1
        report = build_index_blockwise(
            self.ref, out, backend=self.config.backend, block_mb=self.block_mb
        )
        out.unlink(missing_ok=True)
        return {
            "n_bases": len(self.ref),
            "structure_bytes": report.structure_bytes,
            "byte_identical": int(self.byte_identical),
            "peak_ratio": self.peak_ratio,
            "mono_peak_bytes": self.mono_peak,
            "blockwise_peak_bytes": self.blockwise_peak,
        }


def warm_clock() -> float:
    """One throwaway clock read so the first trial doesn't pay TSC setup."""
    return time.perf_counter()

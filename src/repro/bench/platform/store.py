"""Results store: every trial as JSON, plus a SQLite trajectory DB.

Layout under the store root::

    trials/<trial_id>.json    one document per trial (source of truth)
    trajectory.sqlite         queryable projection of the same rows

Both carry the full provenance key: git hash, config hash, seed, host
fingerprint.  The SQLite side exists for queries (gate, report,
trajectory series); the JSON side survives tooling changes and diffs
cleanly in review.  ``rebuild_db`` reconstructs the database from the
JSON documents, so the binary file never needs to be committed.

Schema migrations are forward-only ``schema_version`` bumps; an empty or
missing database migrates to the current version on open.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sqlite3
import subprocess
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS trials (
    id            TEXT PRIMARY KEY,
    created_utc   REAL NOT NULL,
    experiment    TEXT NOT NULL,
    workload      TEXT NOT NULL,
    config_hash   TEXT NOT NULL,
    git_hash      TEXT NOT NULL,
    seed          INTEGER NOT NULL,
    host          TEXT NOT NULL,
    rep           INTEGER NOT NULL,
    phase         TEXT NOT NULL,
    wall_seconds  REAL NOT NULL,
    is_baseline   INTEGER NOT NULL DEFAULT 0,
    synthetic     INTEGER NOT NULL DEFAULT 0,
    metrics_json  TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_trials_workload
    ON trials (workload, phase, is_baseline);
CREATE INDEX IF NOT EXISTS idx_trials_git ON trials (git_hash);
"""


@dataclass
class TrialRecord:
    """One executed (or synthesized) trial, fully provenance-keyed."""

    experiment: str
    workload: str
    config_hash: str
    git_hash: str
    seed: int
    host: str
    rep: int
    phase: str  # "warmup" | "steady"
    wall_seconds: float
    created_utc: float
    is_baseline: bool = False
    synthetic: bool = False
    metrics: dict = field(default_factory=dict)
    id: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            self.id = uuid.uuid4().hex[:16]

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TrialRecord":
        return cls(**d)


def git_revision(repo_dir: str | Path | None = None) -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def host_fingerprint() -> str:
    """Short stable id of the measuring machine.

    Perf numbers are only comparable within one fingerprint; the gate
    refuses hard verdicts across fingerprints unless told otherwise.
    """
    raw = "|".join(
        (
            platform.node(),
            platform.machine(),
            platform.python_implementation(),
            platform.python_version(),
            str(os.cpu_count() or 0),
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:12]


class ResultsStore:
    """Append-only trial store rooted at a directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.trials_dir = self.root / "trials"
        self.trials_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / "trajectory.sqlite"
        self._conn = sqlite3.connect(self.db_path)
        self._migrate()

    # -- lifecycle ---------------------------------------------------------

    def _migrate(self) -> None:
        cur = self._conn.cursor()
        cur.executescript(_SCHEMA)
        row = cur.execute("SELECT version FROM schema_version").fetchone()
        if row is None:
            cur.execute("INSERT INTO schema_version VALUES (?)", (SCHEMA_VERSION,))
        elif row[0] > SCHEMA_VERSION:
            raise RuntimeError(
                f"trajectory DB schema v{row[0]} is newer than this code "
                f"(v{SCHEMA_VERSION}); refusing to write"
            )
        else:
            # Forward-only migrations slot in here as versions grow.
            cur.execute("UPDATE schema_version SET version = ?", (SCHEMA_VERSION,))
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        row = self._conn.execute("SELECT version FROM schema_version").fetchone()
        return int(row[0])

    # -- writes ------------------------------------------------------------

    def insert(self, record: TrialRecord, write_json: bool = True) -> None:
        if write_json:
            path = self.trials_dir / f"{record.id}.json"
            path.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n")
        self._conn.execute(
            "INSERT OR REPLACE INTO trials "
            "(id, created_utc, experiment, workload, config_hash, git_hash, "
            " seed, host, rep, phase, wall_seconds, is_baseline, synthetic, "
            " metrics_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.id, record.created_utc, record.experiment,
                record.workload, record.config_hash, record.git_hash,
                record.seed, record.host, record.rep, record.phase,
                record.wall_seconds, int(record.is_baseline),
                int(record.synthetic), json.dumps(record.metrics, sort_keys=True),
            ),
        )
        self._conn.commit()

    def insert_many(self, records: list[TrialRecord]) -> None:
        for r in records:
            self.insert(r)

    def import_records(self, path: str | Path) -> int:
        """Load trial records from a committed JSON export (seed baseline)."""
        doc = json.loads(Path(path).read_text())
        records = [TrialRecord.from_dict(d) for d in doc["trials"]]
        self.insert_many(records)
        return len(records)

    def export_records(self, path: str | Path, **where) -> int:
        records = self.query(**where)
        doc = {"trials": [r.to_dict() for r in records]}
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return len(records)

    def rebuild_db(self) -> int:
        """Reconstruct the SQLite projection from the JSON documents."""
        self._conn.execute("DELETE FROM trials")
        self._conn.commit()
        n = 0
        for p in sorted(self.trials_dir.glob("*.json")):
            self.insert(TrialRecord.from_dict(json.loads(p.read_text())),
                        write_json=False)
            n += 1
        return n

    # -- queries -----------------------------------------------------------

    _COLUMNS = (
        "id", "created_utc", "experiment", "workload", "config_hash",
        "git_hash", "seed", "host", "rep", "phase", "wall_seconds",
        "is_baseline", "synthetic", "metrics_json",
    )

    def query(
        self,
        workload: str | None = None,
        phase: str | None = None,
        git_hash: str | None = None,
        host: str | None = None,
        is_baseline: bool | None = None,
        experiment: str | None = None,
    ) -> list[TrialRecord]:
        clauses, args = [], []
        for col, val in (
            ("workload", workload), ("phase", phase), ("git_hash", git_hash),
            ("host", host), ("experiment", experiment),
        ):
            if val is not None:
                clauses.append(f"{col} = ?")
                args.append(val)
        if is_baseline is not None:
            clauses.append("is_baseline = ?")
            args.append(int(is_baseline))
        sql = f"SELECT {', '.join(self._COLUMNS)} FROM trials"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_utc, rep"
        out = []
        for row in self._conn.execute(sql, args):
            d = dict(zip(self._COLUMNS, row))
            d["metrics"] = json.loads(d.pop("metrics_json"))
            d["is_baseline"] = bool(d["is_baseline"])
            d["synthetic"] = bool(d["synthetic"])
            out.append(TrialRecord.from_dict(d))
        return out

    def samples(self, workload: str, *, metric: str = "wall_seconds", **where) -> list[float]:
        """Steady-phase metric samples for one workload."""
        records = self.query(workload=workload, phase="steady", **where)
        if metric == "wall_seconds":
            return [r.wall_seconds for r in records]
        return [float(r.metrics[metric]) for r in records if metric in r.metrics]

    def workloads(self) -> list[str]:
        return [r[0] for r in self._conn.execute(
            "SELECT DISTINCT workload FROM trials ORDER BY workload")]

    def git_hashes(self) -> list[str]:
        """Distinct git hashes in first-seen order (trajectory x-axis)."""
        return [r[0] for r in self._conn.execute(
            "SELECT git_hash FROM trials GROUP BY git_hash "
            "ORDER BY MIN(created_utc)")]

    def latest_git_hash(self) -> str | None:
        row = self._conn.execute(
            "SELECT git_hash FROM trials WHERE is_baseline = 0 "
            "ORDER BY created_utc DESC LIMIT 1").fetchone()
        return row[0] if row else None

    def baseline_samples(
        self, workload: str, *, metric: str = "wall_seconds", host: str | None = None
    ) -> list[float]:
        """Baseline samples, preferring the same host's most recent baseline.

        Falls back to any-host baseline records (synthetic seed migration
        included) when no same-host baseline exists.
        """
        if host is not None:
            same_host = self.samples(
                workload, metric=metric, is_baseline=True, host=host
            )
            if same_host:
                return same_host
        return self.samples(workload, metric=metric, is_baseline=True)

    def count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0])

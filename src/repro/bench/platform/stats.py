"""Statistics for perf comparisons: bootstrap CIs and rank tests.

Wall-clock samples are small (5-10 reps) and non-normal (long right
tail from scheduler noise), so everything here is nonparametric:

* :func:`bootstrap_ci` — percentile bootstrap of a statistic (median by
  default), deterministic in its seed;
* :func:`mann_whitney_u` — one-sided Mann-Whitney U, ``scipy.stats``
  when available with a stdlib normal-approximation fallback, so the
  gate works even in a stripped environment;
* :func:`compare` — the gate's decision rule: a *regression* requires
  **both** a median ratio beyond the threshold **and** a significant
  rank test.  Either alone is noise: a large ratio with p ≥ α is a
  flaky sample, a tiny-but-significant ratio is below the bar we care
  about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
    stat: Callable[[np.ndarray], float] = np.median,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval of ``stat`` over ``samples``."""
    xs = np.asarray(list(samples), dtype=float)
    if xs.size == 0:
        raise ValueError("bootstrap_ci needs at least one sample")
    if xs.size == 1:
        return float(xs[0]), float(xs[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, xs.size, size=(n_boot, xs.size))
    stats = np.apply_along_axis(stat, 1, xs[idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def _mann_whitney_normal_approx(a: np.ndarray, b: np.ndarray) -> float:
    """One-sided p for H1 "b > a" via the tie-corrected normal approximation."""
    n1, n2 = a.size, b.size
    pooled = np.concatenate([a, b])
    order = pooled.argsort(kind="mergesort")
    ranks = np.empty(pooled.size, dtype=float)
    ranks[order] = np.arange(1, pooled.size + 1)
    # Average ranks over ties.
    for v in np.unique(pooled):
        mask = pooled == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    r2 = ranks[n1:].sum()
    u2 = r2 - n2 * (n2 + 1) / 2.0  # U statistic of sample b
    mu = n1 * n2 / 2.0
    # Tie correction to the variance.
    n = n1 + n2
    _, counts = np.unique(pooled, return_counts=True)
    tie_term = ((counts**3 - counts).sum()) / (n * (n - 1)) if n > 1 else 0.0
    sigma2 = (n1 * n2 / 12.0) * ((n + 1) - tie_term)
    if sigma2 <= 0:
        return 1.0 if u2 <= mu else 0.0
    z = (u2 - mu - 0.5) / math.sqrt(sigma2)  # continuity-corrected
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(
    baseline: Sequence[float], current: Sequence[float]
) -> float:
    """One-sided p-value that ``current`` is stochastically greater.

    Small p ⇒ the current samples are larger (slower, for wall clock)
    than the baseline beyond what chance explains.
    """
    a = np.asarray(list(baseline), dtype=float)
    b = np.asarray(list(current), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("mann_whitney_u needs samples on both sides")
    try:
        from scipy.stats import mannwhitneyu

        return float(mannwhitneyu(b, a, alternative="greater").pvalue)
    except ImportError:  # pragma: no cover - scipy present in this image
        return _mann_whitney_normal_approx(a, b)


@dataclass(frozen=True)
class Comparison:
    """Outcome of one baseline-vs-current comparison."""

    baseline_median: float
    current_median: float
    ratio: float  # current / baseline; > 1 means slower
    p_value: float
    threshold: float
    alpha: float
    baseline_n: int
    current_n: int
    current_ci: tuple[float, float]

    @property
    def beyond_threshold(self) -> bool:
        return self.ratio > 1.0 + self.threshold

    @property
    def significant(self) -> bool:
        return self.p_value < self.alpha

    @property
    def regressed(self) -> bool:
        return self.beyond_threshold and self.significant

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 - self.threshold

    def describe(self) -> str:
        verdict = (
            "REGRESSED" if self.regressed
            else "improved" if self.improved
            else "ok"
        )
        return (
            f"{verdict}: median {self.current_median * 1e3:.3f} ms vs "
            f"baseline {self.baseline_median * 1e3:.3f} ms "
            f"({self.ratio:.3f}x, threshold {1 + self.threshold:.2f}x, "
            f"p={self.p_value:.2g}, n={self.baseline_n}/{self.current_n})"
        )


def compare(
    baseline: Sequence[float],
    current: Sequence[float],
    threshold: float = 0.25,
    alpha: float = 0.01,
    seed: int = 0,
) -> Comparison:
    """Decide whether ``current`` regressed against ``baseline``.

    ``threshold`` is fractional (0.25 ⇒ flag > 25% slower); ``alpha`` is
    the significance level for the one-sided rank test.
    """
    a = np.asarray(list(baseline), dtype=float)
    b = np.asarray(list(current), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("compare needs samples on both sides")
    ratio = float(np.median(b) / np.median(a)) if np.median(a) > 0 else math.inf
    return Comparison(
        baseline_median=float(np.median(a)),
        current_median=float(np.median(b)),
        ratio=ratio,
        p_value=mann_whitney_u(a, b),
        threshold=threshold,
        alpha=alpha,
        baseline_n=int(a.size),
        current_n=int(b.size),
        current_ci=bootstrap_ci(b, seed=seed),
    )

"""Declarative experiment configs: what to measure, not how.

An *experiment* is a point in the (workload × backend × scale ×
repetitions) grid plus a seed — a plain frozen dataclass that can be
written as JSON, hashed stably, and replayed bit-for-bit.  The runner
(:mod:`repro.bench.platform.runner`) is the only thing that knows how to
execute one; everything else (store, gate, report) keys off the
``config_hash``.

A *suite* is a named list of experiments.  ``smoke`` is the CI matrix:
small-scale versions of every named hot path, cheap enough to run twice
per job (baseline + candidate) for a same-host gate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

#: Workload input scales.  ``tiny`` exists for the platform's own tests;
#: ``small`` is the CI matrix; ``medium`` matches the legacy bench
#: scripts' substrate sizes.
SCALES = ("tiny", "small", "medium")


class ConfigError(ValueError):
    """Malformed experiment config or suite file."""


@dataclass(frozen=True)
class ExperimentConfig:
    """One declarative experiment: a workload at a scale, repeated.

    Attributes
    ----------
    name:
        Human-readable experiment id (unique within a suite).
    workload:
        Registered workload name (see
        :mod:`repro.bench.platform.workloads`).
    backend:
        Rank-structure backend the workload should build on
        (``rrr``/``occ``), where applicable.
    scale:
        Input-size tier (one of :data:`SCALES`).
    repetitions:
        Steady-state trials persisted per run.
    warmup:
        Leading trials executed and persisted with ``phase="warmup"``
        but excluded from gate/report statistics (cache fill, JIT-less
        Python still benefits: allocator and page-cache warmth).
    seed:
        Base RNG seed; every input derives deterministically from it.
    pool_workers:
        When > 0 the dispatcher routes the workload through a
        shared-memory :class:`~repro.serving.pool.MapperPool` with this
        many workers.
    params:
        Free-form workload parameters (sorted-tuple form so the config
        stays hashable and the hash canonical).
    """

    name: str
    workload: str
    backend: str = "rrr"
    scale: str = "small"
    repetitions: int = 5
    warmup: int = 1
    seed: int = 7
    pool_workers: int = 0
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ConfigError(f"unknown scale {self.scale!r}; have {SCALES}")
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if self.warmup < 0:
            raise ConfigError("warmup must be >= 0")

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def with_params(self, **params: object) -> "ExperimentConfig":
        merged = {**self.param_dict, **params}
        return replace(self, params=tuple(sorted(merged.items())))

    # -- canonical form ----------------------------------------------------

    def to_dict(self) -> dict:
        d = asdict(self)
        d["params"] = self.param_dict
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentConfig":
        d = dict(d)
        unknown = set(d) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ConfigError(f"unknown experiment field(s) {sorted(unknown)}")
        if "name" not in d or "workload" not in d:
            raise ConfigError("experiment needs at least 'name' and 'workload'")
        params = d.pop("params", {})
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        return cls(params=tuple(params), **d)

    def canonical_json(self) -> str:
        """Stable serialization: sorted keys, no whitespace variance."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """12-hex-digit digest of the canonical form.

        Two configs hash equal iff they describe the same experiment;
        insertion order of ``params`` never matters.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:12]


def load_suite(path: str | Path) -> list[ExperimentConfig]:
    """Load a suite file: ``{"experiments": [{...}, ...]}`` JSON."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"suite file {path}: invalid JSON ({exc})") from exc
    if not isinstance(doc, dict) or "experiments" not in doc:
        raise ConfigError(f"suite file {path}: expected an 'experiments' list")
    configs = [ExperimentConfig.from_dict(e) for e in doc["experiments"]]
    names = [c.name for c in configs]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ConfigError(f"duplicate experiment names {sorted(dupes)}")
    return configs


def save_suite(configs: list[ExperimentConfig], path: str | Path) -> None:
    doc = {"experiments": [c.to_dict() for c in configs]}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _hot_path_suite(scale: str, repetitions: int, warmup: int) -> list[ExperimentConfig]:
    base = dict(scale=scale, repetitions=repetitions, warmup=warmup)
    return [
        ExperimentConfig(name=f"count_only_mapping_{scale}",
                         workload="count_only_mapping", **base),
        ExperimentConfig(name=f"flat_open_{scale}", workload="flat_open", **base),
        ExperimentConfig(name=f"pool_attach_{scale}", workload="pool_attach", **base),
        ExperimentConfig(name=f"occ2_fused_{scale}", workload="occ2_fused", **base),
        ExperimentConfig(name=f"pool_mapping_{scale}", workload="pool_mapping",
                         pool_workers=2, **base),
        # Coalescing ablation pair: same requests, merged vs independent.
        ExperimentConfig(name=f"coalesced_mapping_{scale}",
                         workload="coalesced_mapping", **base),
        ExperimentConfig(name=f"uncoalesced_mapping_{scale}",
                         workload="uncoalesced_mapping", **base),
        # Sharded fan-out through the router tier (all shards resident).
        ExperimentConfig(name=f"sharded_mapping_{scale}",
                         workload="sharded_mapping", **base),
        # Out-of-core build: whole cold builds per trial, so cap the reps
        # regardless of what the micro paths use.
        ExperimentConfig(name=f"blockwise_build_{scale}",
                         workload="blockwise_build",
                         **{**base, "repetitions": min(repetitions, 5),
                            "warmup": min(warmup, 1)}),
    ]


#: Built-in suites by name (``repro bench run --suite <name>``).
BUILTIN_SUITES: dict[str, list[ExperimentConfig]] = {
    # CI matrix: every named hot path at small scale.  Ten reps because
    # the micro paths are sub-millisecond: the rank test needs enough
    # samples that one noisy rep cannot tip a verdict.
    "smoke": _hot_path_suite("small", repetitions=10, warmup=2),
    # Local regression hunt: same paths, more reps at the bench scale.
    "hotpaths": _hot_path_suite("medium", repetitions=7, warmup=2),
    # Platform self-test matrix: minimal inputs, no pool.
    "tiny": [
        c for c in _hot_path_suite("tiny", repetitions=3, warmup=1)
        if c.pool_workers == 0
    ],
    # Nightly out-of-core build at the bench scale: each rep is a whole
    # cold blockwise build, so a few reps dominate the job's wall clock.
    # Feeds the ``BENCH_build.json`` trajectory at a scale the smoke
    # suite is too small to exercise meaningfully.
    "build": [
        ExperimentConfig(name="blockwise_build_nightly",
                         workload="blockwise_build", scale="medium",
                         repetitions=3, warmup=1),
    ],
}


def resolve_suite(spec: str) -> list[ExperimentConfig]:
    """A built-in suite name, or a path to a suite JSON file."""
    if spec in BUILTIN_SUITES:
        return list(BUILTIN_SUITES[spec])
    path = Path(spec)
    if path.exists():
        return load_suite(path)
    raise ConfigError(
        f"unknown suite {spec!r}: not a built-in ({sorted(BUILTIN_SUITES)}) "
        f"and no such file"
    )

"""Trial dispatcher: executes declarative experiments and persists trials.

The runner is the only imperative part of the platform.  For each
config it

1. builds the workload substrate once (``Workload.setup``),
2. spins up a shared-memory :class:`~repro.serving.pool.MapperPool`
   when the config says so (``pool_workers > 0``),
3. runs ``warmup`` trials (persisted with ``phase="warmup"``, excluded
   from statistics) then ``repetitions`` steady-state trials,
4. wraps every trial in a fresh enabled telemetry instance and attaches
   the run's counter deltas (ftab hit rates, fault-ladder engagements,
   invalid-read rejections) to the persisted record, so a report can
   correlate a perf delta with a degraded run or a changed hit rate,
5. persists each trial as JSON + SQLite through the
   :class:`~repro.bench.platform.store.ResultsStore`.

Trial records carry git hash, config hash, seed, and host fingerprint —
the full provenance key the gate and trajectory need.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ...telemetry import Telemetry, get_telemetry, set_telemetry
from .configs import ExperimentConfig
from .store import ResultsStore, TrialRecord, git_revision, host_fingerprint
from .trajectory import append_trajectory_point
from .workloads import create_workload, warm_clock

#: Telemetry counter prefixes copied into each trial's metrics snapshot.
TELEMETRY_WATCH_PREFIXES = ("ftab_", "fault_", "fpga_", "reads_invalid")


def _telemetry_deltas(snapshot: dict) -> dict[str, float]:
    """Flatten watched counters out of a registry snapshot (sum over labels)."""
    out: dict[str, float] = {}
    for name, doc in snapshot.items():
        if not name.startswith(TELEMETRY_WATCH_PREFIXES):
            continue
        if doc.get("type") != "counter":
            continue
        total = sum(s.get("value", 0.0) for s in doc.get("samples", []))
        if total:
            out[name] = total
    return out


@dataclass
class RunReport:
    """What one ``repro bench run`` produced."""

    git_hash: str
    host: str
    records: list[TrialRecord] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)

    def steady(self, workload: str | None = None) -> list[TrialRecord]:
        return [
            r for r in self.records
            if r.phase == "steady" and (workload is None or r.workload == workload)
        ]

    def median_seconds(self, workload: str) -> float:
        return float(np.median([r.wall_seconds for r in self.steady(workload)]))

    def summary_lines(self) -> list[str]:
        lines = [
            f"bench run @ {self.git_hash[:12]} on host {self.host}: "
            f"{len(self.records)} trials "
            f"({len(self.steady())} steady)"
        ]
        for workload in sorted({r.workload for r in self.steady()}):
            med = self.median_seconds(workload)
            n = len(self.steady(workload))
            lines.append(f"  {workload}: median {med * 1e3:.3f} ms over {n} reps")
        for name, reason in self.skipped:
            lines.append(f"  {name}: SKIPPED ({reason})")
        return lines


def run_experiments(
    configs: list[ExperimentConfig],
    store: ResultsStore,
    *,
    as_baseline: bool = False,
    git_hash: str | None = None,
    host: str | None = None,
    bench_json_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> RunReport:
    """Execute every config and persist all trials.

    ``as_baseline`` flags the run's records as the comparison baseline
    for later gates (e.g. the first half of a two-run CI job).  With
    ``bench_json_dir`` set, per-workload medians are appended to the
    ``BENCH_hotpaths.json`` trajectory there.
    """
    say = progress or (lambda msg: None)
    report = RunReport(
        git_hash=git_hash if git_hash is not None else git_revision(),
        host=host if host is not None else host_fingerprint(),
    )
    for config in configs:
        say(f"experiment {config.name} [{config.workload} @ {config.scale}]")
        try:
            records = _run_one(config, report, as_baseline)
        except Exception as exc:
            # One broken experiment must not void the rest of the matrix —
            # but it must be loud in the report, not silently absent.
            say(f"  FAILED: {type(exc).__name__}: {exc}")
            report.skipped.append((config.name, f"{type(exc).__name__}: {exc}"))
            continue
        store.insert_many(records)
        report.records.extend(records)
        steady = [r.wall_seconds for r in records if r.phase == "steady"]
        say(f"  median {np.median(steady) * 1e3:.3f} ms over {len(steady)} reps")
    if bench_json_dir is not None and report.steady():
        append_trajectory_point(
            bench_json_dir,
            "hotpaths",
            {
                f"{w}_median_seconds": report.median_seconds(w)
                for w in sorted({r.workload for r in report.steady()})
            },
            git_hash=report.git_hash,
            host=report.host,
            seed=configs[0].seed if configs else None,
            baseline=as_baseline,
        )
        _append_coalesce_trajectory(report, configs, bench_json_dir, as_baseline)
        _append_router_trajectory(report, configs, bench_json_dir, as_baseline)
        _append_build_trajectory(report, configs, bench_json_dir, as_baseline)
    return report


def _append_coalesce_trajectory(
    report: RunReport,
    configs: list[ExperimentConfig],
    bench_json_dir: str | Path,
    as_baseline: bool,
) -> None:
    """Emit the ``BENCH_coalesce.json`` series when the run covered the
    coalescing ablation pair: on/off medians, aggregate reads/sec,
    speedup, and the p95 added latency of the windowed path."""
    on = report.steady("coalesced_mapping")
    off = report.steady("uncoalesced_mapping")
    if not on or not off:
        return
    on_med = report.median_seconds("coalesced_mapping")
    off_med = report.median_seconds("uncoalesced_mapping")
    reads = int(on[0].metrics.get("reads", 0))
    requests = int(on[0].metrics.get("requests", 0))
    metrics = {
        "coalesced_median_seconds": on_med,
        "uncoalesced_median_seconds": off_med,
        "coalesced_reads_per_second": reads / on_med if on_med > 0 else 0.0,
        "uncoalesced_reads_per_second": reads / off_med if off_med > 0 else 0.0,
        "speedup": off_med / on_med if on_med > 0 else 0.0,
        "wait_p95_ms": float(on[0].metrics.get("wait_p95_ms", 0.0)),
        "added_wait_p95_ms": float(on[0].metrics.get("added_wait_p95_ms", 0.0)),
        "requests": requests,
        "reads": reads,
    }
    append_trajectory_point(
        bench_json_dir,
        "coalesce",
        metrics,
        git_hash=report.git_hash,
        host=report.host,
        seed=configs[0].seed if configs else None,
        baseline=as_baseline,
    )


def _append_router_trajectory(
    report: RunReport,
    configs: list[ExperimentConfig],
    bench_json_dir: str | Path,
    as_baseline: bool,
) -> None:
    """Emit the ``BENCH_router.json`` series when the run covered the
    sharded fan-out workload: median wall, aggregate fan-out throughput,
    shard count, and the eviction total (non-zero only when the run
    squeezed the catalog under a memory budget)."""
    rows = report.steady("sharded_mapping")
    if not rows:
        return
    med = report.median_seconds("sharded_mapping")
    reads = int(rows[0].metrics.get("reads", 0))
    metrics = {
        "sharded_median_seconds": med,
        "fanout_reads_per_second": reads / med if med > 0 else 0.0,
        "shards": int(rows[0].metrics.get("shards", 0)),
        "reads": reads,
        "mapped": int(rows[0].metrics.get("mapped", 0)),
        "hits": int(rows[0].metrics.get("hits", 0)),
        "evictions": int(rows[-1].metrics.get("evictions", 0)),
    }
    append_trajectory_point(
        bench_json_dir,
        "router",
        metrics,
        git_hash=report.git_hash,
        host=report.host,
        seed=configs[0].seed if configs else None,
        baseline=as_baseline,
    )


def _append_build_trajectory(
    report: RunReport,
    configs: list[ExperimentConfig],
    bench_json_dir: str | Path,
    as_baseline: bool,
) -> None:
    """Emit the ``BENCH_build.json`` series when the run covered the
    out-of-core build workload: median build wall, bases/sec, the
    monolithic-vs-blockwise peak-allocation ratio measured in setup,
    and whether the containers matched byte for byte."""
    rows = report.steady("blockwise_build")
    if not rows:
        return
    med = report.median_seconds("blockwise_build")
    n_bases = int(rows[0].metrics.get("n_bases", 0))
    metrics = {
        "build_median_seconds": med,
        "bases_per_second": n_bases / med if med > 0 else 0.0,
        "n_bases": n_bases,
        "structure_bytes": int(rows[0].metrics.get("structure_bytes", 0)),
        "peak_ratio": float(rows[0].metrics.get("peak_ratio", 0.0)),
        "mono_peak_bytes": int(rows[0].metrics.get("mono_peak_bytes", 0)),
        "blockwise_peak_bytes": int(rows[0].metrics.get("blockwise_peak_bytes", 0)),
        "byte_identical": int(rows[0].metrics.get("byte_identical", 0)),
    }
    append_trajectory_point(
        bench_json_dir,
        "build",
        metrics,
        git_hash=report.git_hash,
        host=report.host,
        seed=configs[0].seed if configs else None,
        baseline=as_baseline,
    )


def _run_one(
    config: ExperimentConfig, report: RunReport, as_baseline: bool
) -> list[TrialRecord]:
    workload = create_workload(config)
    config_hash = config.config_hash()
    records: list[TrialRecord] = []
    with tempfile.TemporaryDirectory(prefix=f"bench_{config.workload}_") as scratch:
        workload.setup(Path(scratch))
        pool = None
        try:
            if workload.needs_pool or config.pool_workers > 0:
                from ...serving.pool import MapperPool

                pool = MapperPool(
                    workload.pool_index(), workers=max(1, config.pool_workers)
                )
                workload.pool = pool
            warm_clock()
            phases = ["warmup"] * config.warmup + ["steady"] * config.repetitions
            for rep, phase in enumerate(phases):
                wall, aux = _timed_trial(workload)
                records.append(
                    TrialRecord(
                        experiment=config.name,
                        workload=config.workload,
                        config_hash=config_hash,
                        git_hash=report.git_hash,
                        seed=config.seed,
                        host=report.host,
                        rep=rep,
                        phase=phase,
                        wall_seconds=wall,
                        created_utc=time.time(),
                        is_baseline=as_baseline,
                        metrics=aux,
                    )
                )
        finally:
            if pool is not None:
                pool.close()
            workload.teardown()
    return records


def _timed_trial(workload) -> tuple[float, dict]:
    """One timed run under a private enabled telemetry instance.

    Telemetry is enabled *consistently* for every trial (baseline and
    candidate alike), so its small overhead cancels in comparisons while
    the counter deltas ride along in the snapshot.

    Sub-millisecond workloads declare ``inner_loop > 1``: the timed
    region covers that many back-to-back runs and the recorded wall
    clock is the per-run mean, trading timer/scheduler jitter for a
    longer measured region without changing the metric's unit.
    """
    inner = max(1, int(getattr(workload, "inner_loop", 1)))
    before = get_telemetry()
    tel = Telemetry(enabled=True)
    set_telemetry(tel)
    try:
        t0 = time.perf_counter()
        for _ in range(inner):
            aux = workload.run_once() or {}
        wall = (time.perf_counter() - t0) / inner
    finally:
        set_telemetry(before)
    aux = dict(aux)
    if inner > 1:
        aux["inner_loop"] = inner
    aux.update(_telemetry_deltas(tel.metrics.snapshot()))
    return wall, aux

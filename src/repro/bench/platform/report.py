"""Lazily-computed report context + dependency-free HTML rendering.

Modeled on fuzzbench's ``ExperimentResults``: the :class:`ReportContext`
is the template's namespace, every section is a ``cached_property``
computed on first access, so rendering a partial report (or unit-testing
one property) never pays for the rest.  Plots are hand-rolled inline
SVG — no matplotlib in the serving image, and the report must open from
a CI artifact with zero extra files.
"""

from __future__ import annotations

import html
import time
from functools import cached_property
from pathlib import Path

import numpy as np

from .gate import GateReport, run_gate
from .stats import bootstrap_ci
from .store import ResultsStore, TrialRecord

_SVG_W, _SVG_H, _PAD = 520, 180, 36


def _svg_series(
    xs_labels: list[str], ys: list[float], cis: list[tuple[float, float]], unit: str
) -> str:
    """One trajectory polyline with CI whiskers, labeled by git hash."""
    if not ys:
        return "<p><em>no data</em></p>"
    n = len(ys)
    y_all = [v for lo, hi in cis for v in (lo, hi)] + list(ys)
    y_min, y_max = min(y_all), max(y_all)
    span = (y_max - y_min) or max(abs(y_max), 1e-12)
    y_min -= 0.1 * span
    y_max += 0.1 * span

    def sx(i: int) -> float:
        usable = _SVG_W - 2 * _PAD
        return _PAD + (usable * i / max(1, n - 1) if n > 1 else usable / 2)

    def sy(v: float) -> float:
        return _SVG_H - _PAD - (_SVG_H - 2 * _PAD) * (v - y_min) / (y_max - y_min)

    parts = [
        f'<svg viewBox="0 0 {_SVG_W} {_SVG_H}" width="{_SVG_W}" height="{_SVG_H}" '
        'xmlns="http://www.w3.org/2000/svg" style="background:#fff">',
        f'<line x1="{_PAD}" y1="{_SVG_H - _PAD}" x2="{_SVG_W - _PAD}" '
        f'y2="{_SVG_H - _PAD}" stroke="#999"/>',
        f'<line x1="{_PAD}" y1="{_PAD}" x2="{_PAD}" y2="{_SVG_H - _PAD}" '
        'stroke="#999"/>',
        f'<text x="4" y="{_PAD - 8}" font-size="10" fill="#555">{unit}</text>',
    ]
    pts = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(ys))
    for i, (lo, hi) in enumerate(cis):
        parts.append(
            f'<line x1="{sx(i):.1f}" y1="{sy(lo):.1f}" x2="{sx(i):.1f}" '
            f'y2="{sy(hi):.1f}" stroke="#7aa6d8" stroke-width="2"/>'
        )
    parts.append(
        f'<polyline points="{pts}" fill="none" stroke="#1f5fa8" stroke-width="1.5"/>'
    )
    for i, v in enumerate(ys):
        parts.append(
            f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" r="3" fill="#1f5fa8"/>'
        )
        parts.append(
            f'<text x="{sx(i):.1f}" y="{_SVG_H - _PAD + 12}" font-size="9" '
            f'fill="#555" text-anchor="middle">{html.escape(xs_labels[i][:8])}</text>'
        )
    hi_lab = f"{y_max:.4g}"
    lo_lab = f"{y_min:.4g}"
    parts.append(
        f'<text x="{_PAD - 4}" y="{_PAD + 4}" font-size="9" fill="#555" '
        f'text-anchor="end">{hi_lab}</text>'
    )
    parts.append(
        f'<text x="{_PAD - 4}" y="{_SVG_H - _PAD}" font-size="9" fill="#555" '
        f'text-anchor="end">{lo_lab}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


class ReportContext:
    """Lazily-computed analysis over one results store.

    Every property is computed once on first access and memoized —
    using the context for a one-line summary touches none of the plot
    machinery.
    """

    def __init__(self, store: ResultsStore, host: str | None = None):
        self._store = store
        self._host = host

    # -- raw slices --------------------------------------------------------

    @cached_property
    def trials(self) -> list[TrialRecord]:
        return self._store.query(phase="steady")

    @cached_property
    def workloads(self) -> list[str]:
        return self._store.workloads()

    @cached_property
    def git_hashes(self) -> list[str]:
        return self._store.git_hashes()

    @cached_property
    def latest_git_hash(self) -> str | None:
        return self._store.latest_git_hash()

    # -- derived sections --------------------------------------------------

    @cached_property
    def summary_rows(self) -> list[dict]:
        """Per (workload, git hash): median, 95% bootstrap CI, n, flags."""
        rows = []
        for workload in self.workloads:
            for git_hash in self.git_hashes:
                recs = [
                    r for r in self.trials
                    if r.workload == workload and r.git_hash == git_hash
                ]
                if not recs:
                    continue
                xs = [r.wall_seconds for r in recs]
                lo, hi = bootstrap_ci(xs)
                rows.append(
                    {
                        "workload": workload,
                        "git_hash": git_hash,
                        "n": len(xs),
                        "median_ms": float(np.median(xs)) * 1e3,
                        "ci_lo_ms": lo * 1e3,
                        "ci_hi_ms": hi * 1e3,
                        "baseline": all(r.is_baseline for r in recs),
                        "synthetic": any(r.synthetic for r in recs),
                        "degraded": any(
                            r.metrics.get("degraded") or
                            r.metrics.get("fpga_cpu_fallbacks_total")
                            for r in recs
                        ),
                        "ftab_hits": sum(
                            float(r.metrics.get("ftab_hits_total", 0)) for r in recs
                        ),
                        "ftab_steps_saved": sum(
                            float(r.metrics.get("ftab_steps_saved", 0)) for r in recs
                        ),
                    }
                )
        return rows

    @cached_property
    def gate_report(self) -> GateReport:
        return run_gate(self._store, host=self._host)

    def trajectory(self, workload: str) -> tuple[list[str], list[float], list[tuple[float, float]]]:
        """(git hash labels, median seconds, CI) across history for a workload."""
        labels, meds, cis = [], [], []
        for git_hash in self.git_hashes:
            xs = [
                r.wall_seconds for r in self.trials
                if r.workload == workload and r.git_hash == git_hash
            ]
            if not xs:
                continue
            labels.append(git_hash)
            meds.append(float(np.median(xs)))
            cis.append(bootstrap_ci(xs))
        return labels, meds, cis

    @cached_property
    def plots(self) -> dict[str, str]:
        """Per-workload trajectory SVG (lazily built all at once)."""
        out = {}
        for workload in self.workloads:
            labels, meds, cis = self.trajectory(workload)
            out[workload] = _svg_series(
                labels, [m * 1e3 for m in meds],
                [(lo * 1e3, hi * 1e3) for lo, hi in cis], "ms",
            )
        return out


_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 64em;
       color: #222; }
h1, h2 { color: #1f3a5f; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccd; padding: 4px 10px; text-align: right; }
th { background: #eef2f7; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
.fail { color: #a22; font-weight: 600; }
.pass { color: #2a7; font-weight: 600; }
.flag { color: #a60; }
figure { margin: 1em 0; }
figcaption { font-size: 12px; color: #555; }
"""


def render_html(context: ReportContext) -> str:
    """Render the full report (touches every lazy section)."""
    e = html.escape
    gate = context.gate_report
    rows_html = []
    for r in context.summary_rows:
        flags = []
        if r["baseline"]:
            flags.append("baseline")
        if r["synthetic"]:
            flags.append("synthetic")
        if r["degraded"]:
            flags.append("degraded")
        rows_html.append(
            "<tr>"
            f'<td class="name">{e(r["workload"])}</td>'
            f'<td class="name">{e(r["git_hash"][:12])}</td>'
            f'<td>{r["n"]}</td>'
            f'<td>{r["median_ms"]:.3f}</td>'
            f'<td>[{r["ci_lo_ms"]:.3f}, {r["ci_hi_ms"]:.3f}]</td>'
            f'<td>{r["ftab_hits"]:.0f}</td>'
            f'<td>{r["ftab_steps_saved"]:.0f}</td>'
            f'<td class="flag">{e(", ".join(flags))}</td>'
            "</tr>"
        )
    gate_html = [
        f'<p class="{"pass" if gate.ok else "fail"}">'
        f'gate: {"PASS" if gate.ok else "FAIL"} '
        f"({gate.evaluated}/{len(gate.verdicts)} hot paths evaluated)</p>",
        "<ul>",
        *(f"<li>{e(v.describe())}</li>" for v in gate.verdicts),
        "</ul>",
    ]
    plots_html = [
        f"<figure>{svg}<figcaption>{e(w)} — median wall ms per git hash "
        "(whiskers: 95% bootstrap CI)</figcaption></figure>"
        for w, svg in context.plots.items()
    ]
    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>bench report @ {e((context.latest_git_hash or "?")[:12])}</title>
<style>{_CSS}</style></head>
<body>
<h1>Continuous-benchmarking report</h1>
<p>generated {e(time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime()))} ·
latest run {e((context.latest_git_hash or "unknown")[:12])} ·
{len(context.trials)} steady trials over {len(context.git_hashes)} revisions</p>
<h2>Regression gate</h2>
{"".join(gate_html)}
<h2>Summary</h2>
<table>
<tr><th class="name">workload</th><th class="name">git hash</th><th>n</th>
<th>median ms</th><th>95% CI</th><th>ftab hits</th><th>steps saved</th>
<th>flags</th></tr>
{"".join(rows_html)}
</table>
<h2>Trajectories</h2>
{"".join(plots_html)}
</body></html>
"""


def write_report(store: ResultsStore, out_path: str | Path, host: str | None = None) -> Path:
    out_path = Path(out_path)
    out_path.write_text(render_html(ReportContext(store, host=host)))
    return out_path

"""CI regression gate over the named hot paths.

A *hot path* is a workload whose speed the project has publicly claimed
(README/EXPERIMENTS numbers) and therefore defends: the gate compares
the most recent non-baseline run of each against the stored baseline
and exits non-zero on a statistically significant slowdown beyond the
path's threshold (see :func:`repro.bench.platform.stats.compare` for
the two-part decision rule).

Cross-host comparisons are advisory by default — wall clock from a
different machine is not evidence of a code regression — and only
hard-fail under ``strict_cross_host``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stats import Comparison, compare
from .store import ResultsStore


@dataclass(frozen=True)
class HotPath:
    """One gated workload: metric watched and regression threshold."""

    name: str
    workload: str
    metric: str = "wall_seconds"
    #: Fractional slowdown bar (0.25 ⇒ fail when > 25% slower with
    #: significance).  Sized to each path's historical run-to-run noise.
    threshold: float = 0.25


#: The registry the gate walks.  Order is report order.
HOT_PATHS: tuple[HotPath, ...] = (
    HotPath("count-only-mapping", "count_only_mapping", threshold=0.25),
    HotPath("flat-container-open", "flat_open", threshold=0.50),
    HotPath("pool-attach", "pool_attach", threshold=0.50),
    HotPath("occ2-fused-kernel", "occ2_fused", threshold=0.25),
    # The coalesced path merges many small dispatches into one timed
    # region, so its run-to-run noise sits between the micro kernels and
    # the container-open paths.
    HotPath("coalesced-mapping", "coalesced_mapping", threshold=0.30),
    # Scatter-gather adds thread fan-out and hit merging on top of the
    # mapper kernels; its noise floor matches the coalesced path's.
    HotPath("sharded-mapping", "sharded_mapping", threshold=0.35),
    # Whole-pipeline out-of-core build: seconds per cold blockwise build
    # of the scaled chr21 profile.  Few reps (builds are long), so the
    # bar sits at the wide end.
    HotPath("blockwise-build", "blockwise_build", threshold=0.35),
)


@dataclass
class PathVerdict:
    """Gate outcome for one hot path."""

    path: HotPath
    comparison: Comparison | None
    skipped_reason: str | None = None
    cross_host: bool = False
    advisory: bool = False

    @property
    def failed(self) -> bool:
        if self.comparison is None or self.advisory:
            return False
        return self.comparison.regressed

    def describe(self) -> str:
        if self.comparison is None:
            return f"{self.path.name}: SKIPPED ({self.skipped_reason})"
        note = ""
        if self.cross_host:
            note = " [cross-host baseline%s]" % (
                ", advisory" if self.advisory else ""
            )
        return f"{self.path.name}: {self.comparison.describe()}{note}"


@dataclass
class GateReport:
    """All verdicts from one gate evaluation."""

    verdicts: list[PathVerdict] = field(default_factory=list)
    git_hash: str | None = None

    @property
    def ok(self) -> bool:
        return not any(v.failed for v in self.verdicts)

    @property
    def evaluated(self) -> int:
        return sum(1 for v in self.verdicts if v.comparison is not None)

    def summary_lines(self) -> list[str]:
        lines = [
            f"bench gate @ {self.git_hash or 'unknown'}: "
            f"{self.evaluated}/{len(self.verdicts)} hot paths evaluated"
        ]
        lines += ["  " + v.describe() for v in self.verdicts]
        lines.append("gate: " + ("PASS" if self.ok else "FAIL"))
        return lines


def run_gate(
    store: ResultsStore,
    git_hash: str | None = None,
    host: str | None = None,
    threshold_override: float | None = None,
    alpha: float = 0.01,
    strict_cross_host: bool = False,
    paths: tuple[HotPath, ...] = HOT_PATHS,
) -> GateReport:
    """Evaluate every registered hot path at ``git_hash`` against baseline.

    ``git_hash`` defaults to the most recent non-baseline run in the
    store.  Paths without current samples or without a baseline are
    reported as skipped, never failed — an absent measurement is a
    coverage gap, not a regression.
    """
    if git_hash is None:
        git_hash = store.latest_git_hash()
    report = GateReport(git_hash=git_hash)
    for path in paths:
        threshold = (
            threshold_override if threshold_override is not None else path.threshold
        )
        current = store.samples(
            path.workload, metric=path.metric, git_hash=git_hash,
            is_baseline=False,
        ) if git_hash else []
        if not current:
            report.verdicts.append(
                PathVerdict(path, None, skipped_reason="no current samples")
            )
            continue
        current_hosts = {
            r.host for r in store.query(
                workload=path.workload, phase="steady", git_hash=git_hash,
                is_baseline=False,
            )
        }
        effective_host = host or (
            next(iter(current_hosts)) if len(current_hosts) == 1 else None
        )
        baseline = store.baseline_samples(
            path.workload, metric=path.metric, host=effective_host
        )
        if not baseline:
            report.verdicts.append(
                PathVerdict(path, None, skipped_reason="no baseline samples")
            )
            continue
        baseline_hosts = {
            r.host for r in store.query(
                workload=path.workload, phase="steady", is_baseline=True
            )
        }
        cross_host = bool(
            effective_host is not None and effective_host not in baseline_hosts
        )
        comparison = compare(baseline, current, threshold=threshold, alpha=alpha)
        report.verdicts.append(
            PathVerdict(
                path,
                comparison,
                cross_host=cross_host,
                advisory=cross_host and not strict_cross_host,
            )
        )
    return report

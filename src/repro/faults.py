"""Deterministic fault injection for the simulated accelerator.

Real deployments of the paper's design keep the whole succinct BWT
structure resident in on-chip BRAM — exactly the memory that must survive
transient upsets (configuration/bit-cell flips), corrupted or short PCIe
transfers, stuck completion events, and kernel hangs.  The FPGA-mapping
survey literature flags the absence of a fault story as a gap in most
accelerator prototypes; this module turns the simulator into a
reliability testbed.

Three pieces:

* :class:`FaultPlan` — a frozen, seedable description of *what* to
  inject (per-event probabilities plus a total injection budget).  Plans
  are plain data, so tests, the CLI (``--faults``) and the web app
  (``fault_plan`` JSON field) can all script the same scenarios.
* :class:`FaultInjector` — the stateful executor of a plan.  One
  injector is threaded through the BRAM model, the OpenCL-like queue and
  the kernel; every decision comes from a single ``numpy`` generator
  seeded by the plan, so a scenario replays bit-identically.
* The detection surface — :class:`FaultError` subclasses raised by the
  *checks* (per-bank CRC words, transfer CRC32, event deadlines, result
  record sanity), and :class:`RetryPolicy`, the host's recovery ladder:
  bounded retry with exponential backoff → device reset + reprogram →
  graceful degradation to the bit-identical CPU mapper.

Injection and detection are deliberately separate: the injector corrupts
state the way a real upset would (it never raises), and the runtime's own
integrity checks must *catch* the corruption.  A fault the checks miss is
a finding, not a feature.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

import numpy as np

from .telemetry import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from .fpga.bram import BramModel


# -- detection-side exceptions -------------------------------------------------


class FaultError(RuntimeError):
    """A detected device-layer fault; the host may retry, reprogram, or
    degrade to the CPU path."""


class BramIntegrityError(FaultError):
    """A bank's contents no longer match its CRC word (bit upset)."""


class TransferError(FaultError):
    """A host<->device transfer failed its CRC32 / length check."""


class DeviceTimeoutError(FaultError):
    """An event never completed within the host's deadline (stuck)."""


class KernelHangError(FaultError):
    """The kernel watchdog fired: no completion from the device."""


class ResultValidationError(FaultError):
    """A result record failed sanity validation (interval bounds)."""


def crc32_of(data: np.ndarray | bytes) -> int:
    """CRC32 of an array's raw bytes (the checksum used on transfers
    and as each BRAM bank's integrity word)."""
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    return zlib.crc32(data) & 0xFFFFFFFF


def validate_result_records(records: np.ndarray, n_rows: int) -> None:
    """Sanity-check a device result buffer of ``[fs, fe, rs, re]`` rows.

    Every interval bound must lie in ``[0, n_rows]`` with ``start <= end``
    (the invariant backward search maintains); anything else is a garbage
    record and raises :class:`ResultValidationError`.
    """
    records = np.asarray(records)
    if records.ndim != 2 or (records.size and records.shape[1] != 4):
        raise ResultValidationError(
            f"result buffer has shape {records.shape}, expected (n, 4)"
        )
    if records.size == 0:
        return
    if int(records.min()) < 0 or int(records.max()) > n_rows:
        raise ResultValidationError(
            f"result interval bound outside [0, {n_rows}] "
            f"(min {int(records.min())}, max {int(records.max())})"
        )
    if (records[:, 0] > records[:, 1]).any() or (records[:, 2] > records[:, 3]).any():
        raise ResultValidationError("result interval has start > end")


# -- the plan ------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and under which seed.

    All probabilities are per *opportunity* (one batch attempt for BRAM
    upsets, one transfer, one scheduled command, one kernel invocation).
    ``max_faults`` bounds the total number of injected faults across all
    kinds — a plan with a small budget models a transient burst the
    retry ladder should absorb; ``max_faults=None`` models a hard failure
    that forces degradation to the CPU path.
    """

    seed: int = 0
    bram_flip_prob: float = 0.0
    bram_flips_per_upset: int = 1
    transfer_corrupt_prob: float = 0.0
    transfer_truncate_prob: float = 0.0
    stuck_event_prob: float = 0.0
    kernel_hang_prob: float = 0.0
    result_garble_prob: float = 0.0
    max_faults: int | None = None

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    @property
    def any_faults(self) -> bool:
        return any(
            getattr(self, f.name) > 0
            for f in fields(self)
            if f.name.endswith("_prob")
        )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``key=value,key=value`` CLI/scripting spec.

        Example: ``"transfer_corrupt_prob=1.0,max_faults=2"``.
        """
        known = {f.name for f in fields(cls)}
        kwargs: dict[str, object] = {"seed": seed}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault spec entry {part!r} (expected key=value)")
            key, _, raw = part.partition("=")
            key, raw = key.strip(), raw.strip()
            if key not in known:
                raise ValueError(
                    f"unknown fault plan field {key!r}; known fields: "
                    f"{', '.join(sorted(known))}"
                )
            if raw.lower() in ("none", ""):
                kwargs[key] = None
            else:
                try:
                    kwargs[key] = int(raw)
                except ValueError:
                    kwargs[key] = float(raw)
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Build a plan from a JSON document (the web submission field)."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s) {sorted(unknown)}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**doc)


# -- the injector --------------------------------------------------------------


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically.

    Every decision draws from one seeded generator, in call order — the
    same plan driven through the same code path injects the same faults.
    ``injected`` counts what actually went in, per kind, so tests can
    assert that *every* injected fault was also detected and survived.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.injected: dict[str, int] = {}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _roll(self, kind: str, prob: float) -> bool:
        if prob <= 0.0:
            return False
        if (
            self.plan.max_faults is not None
            and self.total_injected >= self.plan.max_faults
        ):
            return False
        if self.rng.random() >= prob:
            return False
        self.injected[kind] = self.injected.get(kind, 0) + 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "fault_injected_total",
                "Faults the injector actually put in, by kind",
                labelnames=("kind",),
            ).inc(kind=kind)
            tel.tracer.instant(f"fault.injected.{kind}", cat="fault")
        return True

    # -- injection points ------------------------------------------------------

    def upset_bram(self, bram: "BramModel") -> bool:
        """Maybe flip bits in one bank's contents (a transient upset).

        Returns whether an upset happened; detection is the bank CRC's
        job, not ours.
        """
        if not self._roll("bram_upset", self.plan.bram_flip_prob):
            return False
        banks = [b for b in bram.banks.values() if b.contents is not None and b.contents.size]
        if not banks:
            return False
        bank = banks[int(self.rng.integers(len(banks)))]
        for _ in range(max(1, self.plan.bram_flips_per_upset)):
            byte = int(self.rng.integers(bank.contents.size))
            bit = int(self.rng.integers(8))
            bank.contents[byte] ^= np.uint8(1 << bit)
        return True

    def corrupt_transfer(self, data: np.ndarray) -> np.ndarray:
        """Return what "arrived" on the wire: the data itself, a
        bit-flipped copy, or a short (truncated) transfer."""
        if data.nbytes == 0:
            return data
        if self._roll("transfer_truncated", self.plan.transfer_truncate_prob):
            flat = np.frombuffer(np.ascontiguousarray(data).tobytes(), dtype=np.uint8)
            keep = int(flat.size * 3 / 4)
            return flat[:keep].copy()
        if self._roll("transfer_corrupted", self.plan.transfer_corrupt_prob):
            out = np.ascontiguousarray(data).copy()
            flat = out.reshape(-1).view(np.uint8)
            byte = int(self.rng.integers(flat.size))
            flat[byte] ^= np.uint8(1 << int(self.rng.integers(8)))
            return out
        return data

    def stick_event(self) -> bool:
        """Should this scheduled command's completion event go stuck?"""
        return self._roll("stuck_event", self.plan.stuck_event_prob)

    def hang_kernel(self) -> bool:
        """Should this kernel invocation hang (watchdog territory)?"""
        return self._roll("kernel_hang", self.plan.kernel_hang_prob)

    def garble_index(self, n_outcomes: int) -> int | None:
        """Index of a result record to replace with garbage, or None."""
        if n_outcomes == 0:
            return None
        if self._roll("result_garbled", self.plan.result_garble_prob):
            return int(self.rng.integers(n_outcomes))
        return None


# -- the recovery ladder -------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """The host's per-batch recovery ladder.

    On a detected fault: retry (with exponential backoff), after
    ``reprogram_after`` consecutive failures reset the device and reload
    the BWT structure, and after ``max_retries`` failed attempts degrade
    to the bit-identical CPU mapper (``cpu_fallback=True``) or re-raise.

    Backoff is *accounted* (it shows up as modeled fault overhead) but
    only actually slept when ``sleep=True`` — tests want determinism and
    speed, long-running services want real pacing.
    """

    max_retries: int = 3
    backoff_base_seconds: float = 0.001
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 0.1
    reprogram_after: int = 2
    reset_seconds: float = 0.05
    cpu_fallback: bool = True
    sleep: bool = False

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt <= 0 or self.backoff_base_seconds <= 0:
            return 0.0
        return min(
            self.backoff_max_seconds,
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One detected fault, as recorded on the run report."""

    kind: str
    stage: str
    attempt: int
    detail: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "attempt": self.attempt,
            "detail": self.detail,
        }

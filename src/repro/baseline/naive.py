"""Brute-force oracles used by tests and tiny-input sanity checks.

Everything here is intentionally naive — these functions define
correctness for the clever implementations:

* :func:`find_all` / :func:`count_occurrences` — direct string scanning
  with overlap handling (``str.find`` misses overlapping hits; this
  doesn't);
* :func:`find_all_both_strands` — the mapper's ground truth;
* :func:`find_with_mismatches` — Hamming-distance scan backing the
  k-mismatch search tests;
* :class:`NaiveRank` — per-prefix symbol counting, the oracle for every
  rank structure.
"""

from __future__ import annotations

import numpy as np

from ..sequence.alphabet import reverse_complement


def find_all(text: str, pattern: str) -> list[int]:
    """All (overlapping) occurrence positions of ``pattern`` in ``text``.

    The empty pattern occurs once at every text position — ``len(text)``
    matches at ``0..len(text)-1`` (DESIGN.md §9's empty-pattern
    semantics; the position past the end is *not* an occurrence, it is
    the sentinel row of the BWT matrix).
    """
    if not pattern:
        return list(range(len(text)))
    out: list[int] = []
    start = 0
    while True:
        i = text.find(pattern, start)
        if i < 0:
            return out
        out.append(i)
        start = i + 1


def count_occurrences(text: str, pattern: str) -> int:
    """Number of (overlapping) occurrences of ``pattern`` in ``text``."""
    return len(find_all(text, pattern))


def find_all_both_strands(text: str, pattern: str) -> tuple[list[int], list[int]]:
    """Positions of the pattern and of its reverse complement."""
    return find_all(text, pattern), find_all(text, reverse_complement(pattern))


def find_with_mismatches(text: str, pattern: str, k: int) -> list[tuple[int, int]]:
    """All ``(position, hamming_distance)`` with distance ``<= k``.

    O(n·m); use only on small inputs.
    """
    m = len(pattern)
    if m == 0 or m > len(text):
        return []
    out: list[tuple[int, int]] = []
    for i in range(len(text) - m + 1):
        dist = sum(1 for a, b in zip(text[i : i + m], pattern) if a != b)
        if dist <= k:
            out.append((i, dist))
    return out


class NaiveRank:
    """Prefix-count oracle over an integer code sequence."""

    def __init__(self, codes):
        self.codes = np.asarray(codes, dtype=np.int64)

    def rank(self, symbol: int, p: int) -> int:
        if not 0 <= p <= self.codes.size:
            raise IndexError(f"rank position {p} out of range")
        return int(np.count_nonzero(self.codes[:p] == symbol))

    def select(self, symbol: int, k: int) -> int:
        hits = np.flatnonzero(self.codes == symbol)
        if k < 1 or k > hits.size:
            raise IndexError(f"select({symbol}, {k}) out of range")
        return int(hits[k - 1])

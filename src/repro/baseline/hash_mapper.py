"""Hash-table read mapper: the paper's other competitor family (§II).

The paper positions BWT mappers against "the competitor tools, based on
hash tables", noting two structural advantages of the FM-index camp:

1. memory usage independent of the number of fragments to align, while
   hash seeders that index the *reads* grow linearly with them;
2. backward search linear in the pattern length rather than scanning.

This module implements the classic reference-indexed k-mer hash mapper
(MAQ/SOAP-style) so those claims are measurable against a concrete
implementation:

* build: every k-mer of the reference goes into a dict keyed by its
  2-bit packed value, storing its positions;
* query: anchor on the read's first k-mer, then verify the remainder by
  direct comparison against the reference (both strands);
* memory: 8+ bytes per reference position — compare against the
  succinct index's ~0.3 B/base in ``bench_ablation_structures``-style
  sweeps and the memory tests.

Functionally it reports exactly the same occurrence sets as the
FM-index mappers (tests enforce it); it exists to quantify the trade,
not to win.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from ..sequence.alphabet import encode, reverse_complement


@dataclass(frozen=True)
class HashMapperStats:
    """Size accounting of the hash index."""

    n_kmers_distinct: int
    n_positions: int
    table_bytes: int
    bytes_per_base: float


class KmerHashMapper:
    """Reference-indexed k-mer hash mapper (exact matching, both strands).

    Parameters
    ----------
    reference:
        The reference string.
    k:
        Anchor k-mer length; queries shorter than ``k`` fall back to a
        direct scan (hash seeding cannot anchor them).
    """

    def __init__(self, reference: str, k: int = 16):
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > 31:
            raise ValueError("k must be <= 31 (2-bit packed into int64)")
        self.reference = reference
        self.k = int(k)
        self.codes = encode(reference)
        self.table: dict[int, list[int]] = {}
        if len(reference) >= k:
            packed = self._roll_pack(self.codes, k)
            for pos, key in enumerate(packed.tolist()):
                self.table.setdefault(key, []).append(pos)

    @staticmethod
    def _roll_pack(codes: np.ndarray, k: int) -> np.ndarray:
        """2-bit pack every k-mer of ``codes`` (vectorized rolling hash)."""
        n = codes.size - k + 1
        out = np.zeros(n, dtype=np.int64)
        c = codes.astype(np.int64)
        for j in range(k):
            out |= c[j : j + n] << (2 * j)
        return out

    def _pack_one(self, codes: np.ndarray) -> int:
        value = 0
        for j, c in enumerate(codes.tolist()):
            value |= c << (2 * j)
        return value

    def locate(self, pattern: str) -> list[int]:
        """All occurrence positions of ``pattern`` (one strand)."""
        m = len(pattern)
        if m == 0:
            # Empty-pattern semantics shared with the FM index (DESIGN.md
            # §9): one match per text position, sentinel row excluded.
            return list(range(len(self.reference)))
        if m < self.k:
            # No anchor possible: honest fallback, a direct scan.
            out = []
            start = 0
            while True:
                i = self.reference.find(pattern, start)
                if i < 0:
                    return out
                out.append(i)
                start = i + 1
        key = self._pack_one(encode(pattern[: self.k]))
        candidates = self.table.get(key, [])
        out = []
        for pos in candidates:
            if pos + m <= len(self.reference) and self.reference[pos : pos + m] == pattern:
                out.append(pos)
        return out

    def count(self, pattern: str) -> int:
        return len(self.locate(pattern))

    def map_read(self, read: str) -> dict[str, list[int]]:
        """Both strands, same contract as the FM mappers."""
        return {
            "+": self.locate(read),
            "-": self.locate(reverse_complement(read)),
        }

    def stats(self) -> HashMapperStats:
        """Measured memory of the hash index (CPython accounting)."""
        n_positions = sum(len(v) for v in self.table.values())
        table_bytes = sys.getsizeof(self.table)
        for key, positions in self.table.items():
            table_bytes += sys.getsizeof(key) + sys.getsizeof(positions)
            table_bytes += 28 * len(positions)  # ints inside the lists
        return HashMapperStats(
            n_kmers_distinct=len(self.table),
            n_positions=n_positions,
            table_bytes=table_bytes,
            bytes_per_base=table_bytes / max(1, len(self.reference)),
        )


class ReadIndexedHashMapper:
    """The *read-indexed* hash variant whose memory grows with the reads.

    Early short-read tools (Eland, MAQ) hashed the **reads** and streamed
    the reference past the table — which is exactly why the paper says
    hash-based memory "grow[s] linearly" with the fragment count.  This
    minimal implementation exists so that claim is demonstrable:
    ``index_bytes`` is linear in ``len(reads)`` (see the baseline tests).
    """

    def __init__(self, reads: list[str]):
        if not reads:
            raise ValueError("at least one read is required")
        lengths = {len(r) for r in reads}
        if len(lengths) != 1:
            raise ValueError("all reads must share one length")
        (self.read_length,) = lengths
        self.table: dict[str, list[int]] = {}
        for i, read in enumerate(reads):
            self.table.setdefault(read, []).append(i)
            self.table.setdefault(reverse_complement(read), []).append(i)
        self.n_reads = len(reads)

    def scan(self, reference: str) -> dict[int, list[int]]:
        """Stream the reference; returns read id -> hit positions."""
        hits: dict[int, list[int]] = {}
        L = self.read_length
        for pos in range(len(reference) - L + 1):
            window = reference[pos : pos + L]
            for read_id in self.table.get(window, ()):  # noqa: B905
                hits.setdefault(read_id, []).append(pos)
        return hits

    def index_bytes(self) -> int:
        total = sys.getsizeof(self.table)
        for key, ids in self.table.items():
            total += sys.getsizeof(key) + sys.getsizeof(ids) + 28 * len(ids)
        return total

"""Software competitors and brute-force oracles."""

from .bowtie2_like import Bowtie2Like, Bowtie2RunReport, assert_same_accuracy
from .hash_mapper import HashMapperStats, KmerHashMapper, ReadIndexedHashMapper
from .naive import (
    NaiveRank,
    count_occurrences,
    find_all,
    find_all_both_strands,
    find_with_mismatches,
)
from .threading_model import DEFAULT_THREAD_MODEL, PAPER_FITTED_SERIAL_FRACTION, AmdahlModel

__all__ = [
    "AmdahlModel",
    "Bowtie2Like",
    "Bowtie2RunReport",
    "DEFAULT_THREAD_MODEL",
    "HashMapperStats",
    "KmerHashMapper",
    "NaiveRank",
    "ReadIndexedHashMapper",
    "PAPER_FITTED_SERIAL_FRACTION",
    "assert_same_accuracy",
    "count_occurrences",
    "find_all",
    "find_all_both_strands",
    "find_with_mismatches",
]

"""Calibrated thread-scaling model for the CPU baselines.

The paper runs Bowtie2 with 1, 8 and 16 threads on a Xeon E5-2698 v3.
CPython threads cannot reproduce that scaling (the GIL serializes the
search), and multiprocessing measurement — provided in
:func:`repro.mapper.batch.run_mapping_multiprocess` — is only meaningful
at small read counts.  For the paper-scale table rows we therefore model
thread scaling with Amdahl's law,

.. math::  T(p) = T_1 \\left( s + \\frac{1 - s}{p} \\right),

with the serial fraction ``s`` fitted to the paper's own measured
Bowtie2 rows: Table I gives speedups of 7.68× at 8 threads and 15.31× at
16 threads (176 683 / 23 016 / 11 542 ms), which Amdahl fits with
``s ≈ 0.003`` — i.e. Bowtie2's exact-match mapping is embarrassingly
parallel, as expected for independent reads.  The same ``s`` is applied
to our own software implementation when a multi-thread column is asked
of it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Serial fraction fitted to the paper's Bowtie2 1/8/16-thread times.
PAPER_FITTED_SERIAL_FRACTION = 0.003


@dataclass(frozen=True)
class AmdahlModel:
    """Thread-scaling law with a fixed serial fraction."""

    serial_fraction: float = PAPER_FITTED_SERIAL_FRACTION

    def __post_init__(self):
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial fraction must lie in [0, 1)")

    def speedup(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        s = self.serial_fraction
        return 1.0 / (s + (1.0 - s) / threads)

    def seconds(self, single_thread_seconds: float, threads: int) -> float:
        return single_thread_seconds / self.speedup(threads)

    def fit_serial_fraction(self, threads: int, measured_speedup: float) -> float:
        """Invert Amdahl for one (threads, speedup) observation."""
        if threads < 2:
            raise ValueError("need >= 2 threads to identify the serial fraction")
        if measured_speedup <= 0:
            raise ValueError("speedup must be positive")
        p = threads
        # 1/S = s + (1-s)/p  =>  s = (1/S - 1/p) / (1 - 1/p)
        s = (1.0 / measured_speedup - 1.0 / p) / (1.0 - 1.0 / p)
        return max(0.0, s)


DEFAULT_THREAD_MODEL = AmdahlModel()

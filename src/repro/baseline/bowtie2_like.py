"""A Bowtie2-equivalent exact matcher (the paper's software competitor).

The paper compares against Bowtie2 run with ``-a --score-min C,0,-1`` —
a configuration that reports *all and only the exact matches* of each
read (and its reverse complement).  Functionally that is precisely an
FM-index exact search; what distinguishes Bowtie2's implementation is
its index layout: the BWT kept 2-bit packed with checkpointed occurrence
counts and a sampled suffix array, rather than a succinct wavelet/RRR
encoding.

:class:`Bowtie2Like` therefore wraps our checkpointed
:class:`~repro.index.occ_table.OccTable` backend and a
:class:`~repro.sequence.sampled_sa.SampledSA`, and exposes the same
mapping contract as :class:`~repro.mapper.mapper.Mapper` — so the
"without any loss in accuracy" claim is testable: on every read set,
BWaveR (CPU or simulated FPGA) and this baseline must report identical
occurrence sets.

Multi-thread rows use the calibrated Amdahl model of
:mod:`~repro.baseline.threading_model` on top of measured or modeled
single-thread time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counters import CounterScope, OpCounters
from ..index.fm_index import FMIndex
from ..index.ftab import Ftab
from ..index.occ_table import OccTable
from ..mapper.mapper import Mapper
from ..mapper.results import MappingResult
from ..sequence.bwt import bwt_from_codes
from ..sequence.alphabet import encode
from ..sequence.sampled_sa import SampledSA
from ..sequence.suffix_array import suffix_array
from .threading_model import DEFAULT_THREAD_MODEL, AmdahlModel

import time


@dataclass
class Bowtie2RunReport:
    """One baseline run: wall time, op counts, outcomes."""

    n_reads: int
    wall_seconds: float
    mapping_ratio: float
    op_counts: dict[str, int]
    results: list[MappingResult]


class Bowtie2Like:
    """Exact-match-all mapper in Bowtie2's index style.

    Parameters
    ----------
    reference:
        DNA string (or 2-bit code array) to index.
    checkpoint_words:
        Occ checkpoint spacing (64-bit words; 4 ≈ Bowtie's layout).
    sa_sample_rate:
        Suffix-array sampling (Bowtie2 defaults to one row in 32).
    thread_model:
        Amdahl law used for multi-thread projections.
    ftab_k:
        When set, precompute the k-mer jump-start table over the
        checkpointed index (the real Bowtie2 ships one, ``--ftabchars``,
        default 10); searches then start ``k`` symbols in with one table
        read, bit-identically.
    """

    def __init__(
        self,
        reference,
        checkpoint_words: int = 4,
        sa_sample_rate: int = 32,
        thread_model: AmdahlModel = DEFAULT_THREAD_MODEL,
        counters: OpCounters | None = None,
        ftab_k: int | None = None,
    ):
        codes = encode(reference) if isinstance(reference, str) else np.asarray(reference, dtype=np.uint8)
        self.counters = counters if counters is not None else OpCounters()
        sa = suffix_array(codes, method="doubling")
        bwt = bwt_from_codes(codes, sa=sa)
        self.backend = OccTable(bwt, checkpoint_words=checkpoint_words, counters=self.counters)
        ftab = Ftab.build(self.backend, k=ftab_k) if ftab_k is not None else None
        self.index = FMIndex(
            self.backend,
            locate_structure=SampledSA(sa, k=sa_sample_rate),
            counters=self.counters,
            ftab=ftab,
        )
        self.mapper = Mapper(self.index, locate=False)
        self.thread_model = thread_model

    def map_reads(self, reads, locate: bool = False) -> Bowtie2RunReport:
        """Map a read set (both strands), timing the search."""
        mapper = Mapper(self.index, locate=locate)
        with CounterScope(self.counters) as scope:
            t0 = time.perf_counter()
            results = mapper.map_reads(list(reads))
            wall = time.perf_counter() - t0
        mapped = sum(1 for r in results if r.mapped)
        return Bowtie2RunReport(
            n_reads=len(results),
            wall_seconds=wall,
            mapping_ratio=mapped / len(results) if results else 0.0,
            op_counts=scope.delta,
            results=results,
        )

    def projected_seconds(self, single_thread_seconds: float, threads: int) -> float:
        """Multi-thread projection via the calibrated Amdahl model."""
        return self.thread_model.seconds(single_thread_seconds, threads)

    def size_in_bytes(self, include_locate: bool = True) -> int:
        total = self.backend.size_in_bytes()
        if include_locate:
            total += self.index.locate_structure.size_in_bytes()
        return total


def assert_same_accuracy(results_a, results_b) -> None:
    """Raise AssertionError unless two mappers' outcome sets agree.

    Compares per-read occurrence *counts* on both strands — intervals
    may legitimately differ between index layouts only if wrong, since
    both search the same BWT matrix.  Used by tests and by the Table I/II
    harness (the paper's "without any loss in accuracy" check).
    """
    if len(results_a) != len(results_b):
        raise AssertionError(
            f"result counts differ: {len(results_a)} vs {len(results_b)}"
        )
    for i, (a, b) in enumerate(zip(results_a, results_b)):
        if (a.forward.count, a.reverse.count) != (b.forward.count, b.reverse.count):
            raise AssertionError(
                f"read {i}: occurrence counts differ "
                f"({a.forward.count},{a.reverse.count}) vs "
                f"({b.forward.count},{b.reverse.count})"
            )

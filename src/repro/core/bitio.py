"""Variable-width bit stream used by the RRR offset bit-vector.

The RRR *offset* array is a concatenation of fields whose widths differ
per block (``ceil(log2(C(b, class)))`` bits).  This module provides a
vectorized packer for construction and both scalar and vectorized readers
for queries.

Bit order matches the rest of :mod:`repro.core`: the stream is LSB-first
within 64-bit words, i.e. the first bit written is bit 0 of word 0, and a
field's least-significant bit is stored first.  A field of width ``w``
starting at bit position ``s`` therefore spans at most two words, which
the readers exploit (the FPGA kernel does the same two-BRAM-read trick).
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
_U64_ONE = np.uint64(1)


def pack_fields(values: np.ndarray, widths: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack ``values[i]`` into ``widths[i]`` bits each, concatenated.

    Returns ``(words, total_bits)``.  Zero-width fields contribute nothing
    (their value must be 0).  Fully vectorized: fields are exploded to a
    flat bit array once, then packed with ``np.packbits``.
    """
    values = np.asarray(values, dtype=np.uint64)
    widths = np.asarray(widths, dtype=np.int64)
    if values.shape != widths.shape:
        raise ValueError("values and widths must have the same shape")
    if widths.size and widths.min() < 0:
        raise ValueError("field widths must be non-negative")
    if np.any((widths == 0) & (values != 0)):
        raise ValueError("zero-width fields must carry value 0")
    wmax = int(widths.max()) if widths.size else 0
    if wmax > 63:
        raise ValueError("field widths above 63 bits are not supported")
    total_bits = int(widths.sum())
    if total_bits == 0:
        return np.zeros(0, dtype=np.uint64), 0
    # Explode each value into wmax bits then keep the first widths[i] of each.
    bit_idx = np.arange(wmax, dtype=np.uint64)
    bits = ((values[:, None] >> bit_idx[None, :]) & _U64_ONE).astype(np.uint8)
    keep = bit_idx[None, :] < widths[:, None].astype(np.uint64)
    flat = bits[keep]  # row-major: value 0's bits first, LSB-first
    n_words = (total_bits + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[:total_bits] = flat
    return np.packbits(padded, bitorder="little").view(np.uint64), total_bits


def read_field(words: np.ndarray, start_bit: int, width: int) -> int:
    """Read one field of ``width`` bits starting at ``start_bit``."""
    if width == 0:
        return 0
    if width > 63:
        raise ValueError("field widths above 63 bits are not supported")
    w, r = divmod(start_bit, WORD_BITS)
    lo = int(words[w]) >> r
    got = WORD_BITS - r
    if got < width:
        lo |= int(words[w + 1]) << got
    return lo & ((1 << width) - 1)


def read_fields(words: np.ndarray, start_bits: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Vectorized :func:`read_field` over many (start, width) pairs."""
    start_bits = np.asarray(start_bits, dtype=np.int64)
    widths = np.asarray(widths, dtype=np.int64)
    # Zero-width fields perform no memory access; point them at word 0 so
    # the gather below stays in bounds even when their nominal start sits
    # exactly at the end of the stream.
    w, r = np.divmod(np.where(widths > 0, start_bits, 0), WORD_BITS)
    # Guard: a field ending at the stream's last bit still gathers w+1
    # (np.where evaluates both branches), and an all-zero-width stream has
    # no words at all; two zero pad words make every gather defined.
    padded = np.concatenate([words, np.zeros(2, dtype=np.uint64)])
    r_u = r.astype(np.uint64)
    lo = padded[w] >> r_u
    got = (WORD_BITS - r).astype(np.int64)
    hi_shift = np.minimum(got, 63).astype(np.uint64)
    hi = np.where(got < 64, padded[w + 1] << hi_shift, np.uint64(0))
    raw = lo | hi
    mask = np.where(
        widths > 0,
        (np.uint64(1) << widths.astype(np.uint64)) - _U64_ONE,
        np.uint64(0),
    )
    return (raw & mask).astype(np.int64)


class IncrementalBitPacker:
    """Streaming :func:`pack_fields`: append field batches, finalize once.

    The blockwise index builder encodes RRR offset streams chunk by chunk
    without holding every block's offset in memory at once.  Each
    :meth:`append` packs its batch with the vectorized :func:`pack_fields`
    and splices the resulting words onto the running stream at the
    current (generally unaligned) bit position, so ``finalize()`` returns
    *exactly* the words a single :func:`pack_fields` call over the
    concatenated inputs would produce — bit for bit, padding included.

    Memory held is O(packed-stream-so-far + one batch); nothing is
    re-shifted on later appends.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        #: Value of the trailing partial word (0 when bit-aligned).
        self._tail = np.uint64(0)
        self._bit_len = 0

    @property
    def bit_length(self) -> int:
        return self._bit_len

    def append(self, values: np.ndarray, widths: np.ndarray) -> None:
        """Pack one batch of fields onto the end of the stream."""
        w, nbits = pack_fields(values, widths)
        if nbits == 0:
            return
        r = self._bit_len & 63
        if r == 0:
            self._chunks.append(w)
            self._bit_len += nbits
            # pack_fields zero-pads its last word, so a later unaligned
            # append can OR into it; keep it as the tail when partial.
            if self._bit_len & 63:
                self._tail = w[-1]
                self._chunks[-1] = w[:-1]
            return
        ru = np.uint64(r)
        down = np.uint64(64 - r)
        n_out = (r + nbits + 63) // 64
        out = np.empty(n_out, dtype=np.uint64)
        out[: w.size] = w << ru
        out[0] |= self._tail
        if w.size > 1:
            out[1 : w.size] |= w[:-1] >> down
        if n_out == w.size + 1:
            out[-1] = w[-1] >> down
        self._bit_len += nbits
        if self._bit_len & 63:
            self._tail = out[-1]
            self._chunks.append(out[:-1])
        else:
            self._tail = np.uint64(0)
            self._chunks.append(out)

    def finalize(self) -> tuple[np.ndarray, int]:
        """The packed stream as ``(words, total_bits)``."""
        parts = list(self._chunks)
        if self._bit_len & 63:
            parts.append(np.array([self._tail], dtype=np.uint64))
        if not parts:
            return np.zeros(0, dtype=np.uint64), 0
        return np.concatenate(parts), self._bit_len


class BitWriter:
    """Incremental scalar writer (used by tests as the packing oracle)."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, width: int) -> None:
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < 64 and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width):
            self._bits.append((value >> i) & 1)

    @property
    def bit_length(self) -> int:
        return len(self._bits)

    def to_words(self) -> tuple[np.ndarray, int]:
        n = len(self._bits)
        n_words = (n + WORD_BITS - 1) // WORD_BITS
        padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
        padded[:n] = self._bits
        return np.packbits(padded, bitorder="little").view(np.uint64), n

"""RRR-encoded bit-vectors: the core succinct structure of BWaveR.

This implements the paper's Fig. 3 layout and Algorithm 1 exactly:

* the bit-vector is split into blocks of ``b`` bits, grouped into
  superblocks of ``sf`` blocks (``sf`` = superblock factor);
* per block, a **class** (popcount, 4-bit fields in the paper's
  accounting) and a variable-width **offset** into the Global Rank Table;
* per superblock, a 32-bit **partial sum** of ones up to its left
  boundary and an **offset sum** — the bit position, inside the packed
  offset stream, of the first block's offset field;
* the Global Rank Table (permutations + class offsets) is *shared* across
  all RRR instances with the same ``b`` (see
  :mod:`repro.core.global_tables`), which is what makes the per-node cost
  of a wavelet tree small.

``rank1(p)`` runs in ``O(sf)``: one partial-sum read, at most ``sf - 1``
class additions, one offset-stream read and one table lookup — precisely
the paper's Algorithm 1 including its two early-exit branches (``p`` on a
superblock boundary, ``p`` on a block boundary).

The original bit-vector is *not* stored (the paper's Fig. 3 shows it "only
for the sake of clarity"); every query is answered from the succinct
arrays, and :meth:`RRRVector.to_bitvector` reconstructs it purely from
classes and offsets, which the tests use to prove the encoding is lossless.
"""

from __future__ import annotations

import math

import numpy as np

from .bitio import pack_fields, read_field, read_fields
from .bitvector import BitVector
from .counters import GLOBAL_COUNTERS, OpCounters
from .global_tables import (
    GlobalRankTables,
    encode_offsets,
    get_global_tables,
    popcount_block,
)

#: The paper's hardware fixes this block size (§III-C).
DEFAULT_BLOCK_SIZE = 15
#: The paper allows any superblock factor >= 50 in hardware and uses 50
#: for the Table I/II runs.
DEFAULT_SUPERBLOCK_FACTOR = 50


class RRRVector:
    """Succinct bit-vector supporting :math:`O(sf)` binary rank.

    Parameters
    ----------
    bits:
        The bits to encode — a 0/1 array, a :class:`BitVector`, or packed
        words via :meth:`from_bitvector`.
    b:
        Block size in bits (``1..24``; the paper's hardware uses 15).
    sf:
        Superblock factor — blocks per superblock (the paper's hardware
        accepts ``sf >= 50``; smaller values are allowed here for the
        parameter sweeps of Figs. 5-7).
    tables:
        Optional pre-built :class:`GlobalRankTables`; defaults to the
        process-wide shared instance for ``b`` (the paper's sharing).
    counters:
        Operation counters to charge queries against (defaults to the
        module-global instance).
    """

    __slots__ = (
        "n",
        "b",
        "sf",
        "n_blocks",
        "n_superblocks",
        "classes",
        "partial_sums",
        "offset_words",
        "offset_bits",
        "offset_sums",
        "tables",
        "counters",
        "_class_cum",
        "_offset_cum",
    )

    def __init__(
        self,
        bits,
        b: int = DEFAULT_BLOCK_SIZE,
        sf: int = DEFAULT_SUPERBLOCK_FACTOR,
        tables: GlobalRankTables | None = None,
        counters: OpCounters | None = None,
    ):
        if sf < 1:
            raise ValueError(f"superblock factor must be >= 1, got {sf}")
        if isinstance(bits, BitVector):
            bit_arr = bits.to_array()
        else:
            bit_arr = np.asarray(bits, dtype=np.uint8)
            if bit_arr.size and bit_arr.max(initial=0) > 1:
                raise ValueError("bit values must be 0 or 1")
        self.tables = tables if tables is not None else get_global_tables(b)
        if self.tables.b != b:
            raise ValueError(f"tables built for b={self.tables.b}, requested b={b}")
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self.n = int(bit_arr.size)
        self.b = int(b)
        self.sf = int(sf)
        self._build(bit_arr)
        self._class_cum: np.ndarray | None = None
        self._offset_cum: np.ndarray | None = None

    # -- construction (fully vectorized) -----------------------------------

    def _build(self, bit_arr: np.ndarray) -> None:
        b, sf = self.b, self.sf
        n_blocks = (self.n + b - 1) // b
        n_super = (n_blocks + sf - 1) // sf
        # Pad to a whole number of superblocks of bits; padding bits are 0
        # so they never contribute to any class or partial sum.
        padded_len = max(n_super, 1) * sf * b
        padded = np.zeros(padded_len, dtype=np.uint8)
        padded[: self.n] = bit_arr
        block_bits = padded.reshape(-1, b)
        # Block value, LSB-first: bit j of the block is bit j of the value.
        weights = (np.int64(1) << np.arange(b, dtype=np.int64))
        values_all = block_bits.astype(np.int64) @ weights
        values = values_all[:n_blocks] if n_blocks else values_all[:0]
        classes = popcount_block(values, b)
        if np.any(classes > b):  # pragma: no cover - internal invariant
            raise AssertionError("block class exceeded block size")
        self.n_blocks = n_blocks
        self.n_superblocks = n_super
        self.classes = classes.astype(np.uint8)
        # Partial sums: ones strictly before each superblock's first bit.
        # One extra entry (the grand total) serves rank queries at p == n
        # when n falls exactly on a superblock boundary.
        cls_cum = np.concatenate(([0], np.cumsum(classes, dtype=np.int64)))
        boundaries = np.minimum(np.arange(n_super + 1) * sf, n_blocks)
        psums = cls_cum[boundaries]
        if psums.size and psums.max(initial=0) > np.iinfo(np.uint32).max:
            raise ValueError("bit-vector too long for 32-bit partial sums")
        self.partial_sums = psums.astype(np.uint32)
        # Offsets: combinadic rank of each block value within its class.
        offsets = encode_offsets(values, b, self.tables.binomials)
        widths = self.tables.widths[classes]
        self.offset_words, self.offset_bits = pack_fields(
            offsets.astype(np.uint64), widths
        )
        # Offset sums: bit position of each superblock's first offset field.
        width_cum = np.concatenate(([0], np.cumsum(widths)))
        self.offset_sums = width_cum[boundaries[:-1]].astype(np.uint32)

    @classmethod
    def from_bitvector(
        cls,
        bv: BitVector,
        b: int = DEFAULT_BLOCK_SIZE,
        sf: int = DEFAULT_SUPERBLOCK_FACTOR,
        tables: GlobalRankTables | None = None,
        counters: OpCounters | None = None,
    ) -> "RRRVector":
        return cls(bv, b=b, sf=sf, tables=tables, counters=counters)

    # -- zero-copy rehydration ----------------------------------------------

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The encoded structure as (metadata, named arrays).

        The arrays are the instance's own buffers, not copies; together
        with the metadata they are sufficient to rebuild the vector with
        :meth:`from_arrays` without touching the original bits.  The
        shared Global Rank Table is *not* exported — it is derived from
        ``b`` alone and rebuilt (once per process) on attach, matching
        the paper's per-process sharing.
        """
        meta = {
            "n": self.n,
            "b": self.b,
            "sf": self.sf,
            "n_blocks": self.n_blocks,
            "n_superblocks": self.n_superblocks,
            "offset_bits": self.offset_bits,
        }
        arrays = {
            "classes": self.classes,
            "partial_sums": self.partial_sums,
            "offset_words": self.offset_words,
            "offset_sums": self.offset_sums,
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        meta: dict,
        arrays: dict[str, np.ndarray],
        tables: GlobalRankTables | None = None,
        counters: OpCounters | None = None,
    ) -> "RRRVector":
        """Rehydrate around externally owned buffers **without copying**.

        ``arrays`` values may be slices of an ``np.memmap`` or of a
        ``multiprocessing.shared_memory`` buffer; they are adopted as-is,
        so N processes attaching to the same physical pages share one
        copy of the structure.  Queries never write to these arrays.
        """
        self = cls.__new__(cls)
        self.n = int(meta["n"])
        self.b = int(meta["b"])
        self.sf = int(meta["sf"])
        self.n_blocks = int(meta["n_blocks"])
        self.n_superblocks = int(meta["n_superblocks"])
        self.offset_bits = int(meta["offset_bits"])
        self.tables = tables if tables is not None else get_global_tables(self.b)
        if self.tables.b != self.b:
            raise ValueError(
                f"tables built for b={self.tables.b}, structure has b={self.b}"
            )
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self.classes = arrays["classes"]
        self.partial_sums = arrays["partial_sums"]
        self.offset_words = arrays["offset_words"]
        self.offset_sums = arrays["offset_sums"]
        self._class_cum = None
        self._offset_cum = None
        return self

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def count(self) -> int:
        """Total ones (O(n/b), used by construction-time consumers only)."""
        return int(self.classes.sum(dtype=np.int64))

    def rank1(self, p: int) -> int:
        """Ones in ``B[0:p]`` — the paper's Algorithm 1.

        ``p`` is half-open (counts bits strictly before ``p``), matching
        the paper's closed ``B[1, p]`` under 1-based indexing.
        """
        if not 0 <= p <= self.n:
            raise IndexError(f"rank position {p} out of range [0, {self.n}]")
        b, sf = self.b, self.sf
        c = self.counters
        c.binary_ranks += 1
        sb = p // (sf * b)
        if p % (sf * b) == 0:
            # Branch 1: superblock boundary — one memory read.
            if p == 0:
                return 0
            c.superblock_reads += 1
            return int(self.partial_sums[sb])
        c.superblock_reads += 1
        count = int(self.partial_sums[sb])
        block = p // b
        first = sf * sb
        if p % b == 0:
            # Branch 2: block boundary — partial sum + class sums.
            span = block - first
            c.class_sum_iterations += span
            count += int(self.classes[first:block].sum(dtype=np.int64))
            return count
        # Branch 3: general case — also walk the offset stream.
        c.superblock_reads += 1  # offset_sums read
        opos = int(self.offset_sums[sb])
        widths = self.tables.widths
        span = block - first
        c.class_sum_iterations += span
        if span:
            cls_slice = self.classes[first:block]
            count += int(cls_slice.sum(dtype=np.int64))
            opos += int(widths[cls_slice].sum(dtype=np.int64))
        blk_class = int(self.classes[block])
        width = int(widths[blk_class])
        c.offset_reads += 1
        off = read_field(self.offset_words, opos, width)
        c.table_lookups += 1
        value = self.tables.decode_block(blk_class, off)
        count += self.tables.rank_in_block(value, p % b)
        return count

    def rank0(self, p: int) -> int:
        """Zeros in ``B[0:p]``."""
        return p - self.rank1(p)

    def access(self, i: int) -> int:
        """Bit at position ``i``, decoded from (class, offset)."""
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range [0, {self.n})")
        block, r = divmod(i, self.b)
        blk_class = int(self.classes[block])
        width = int(self.tables.widths[blk_class])
        opos = self._offset_position(block)
        off = read_field(self.offset_words, opos, width)
        value = self.tables.decode_block(blk_class, off)
        return (value >> r) & 1

    def _offset_position(self, block: int) -> int:
        """Bit position of ``block``'s offset field in the offset stream."""
        sb = block // self.sf
        opos = int(self.offset_sums[sb])
        first = sb * self.sf
        if block > first:
            cls_slice = self.classes[first:block]
            opos += int(self.tables.widths[cls_slice].sum(dtype=np.int64))
        return opos

    # -- batch (vectorized) queries ------------------------------------------

    def build_batch_cache(self) -> None:
        """Precompute prefix sums enabling O(1) vectorized batch ranks.

        The cache is *scratch* memory for the software batch mapper and the
        test oracle — it is excluded from :meth:`size_in_bytes` because the
        hardware design never materializes it (the FPGA walks classes
        sequentially, which the counters model instead).
        """
        cls64 = self.classes.astype(np.int64)
        self._class_cum = np.concatenate(([0], np.cumsum(cls64)))
        w = self.tables.widths[self.classes]
        self._offset_cum = np.concatenate(([0], np.cumsum(w)))

    def drop_batch_cache(self) -> None:
        self._class_cum = None
        self._offset_cum = None

    def rank1_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized rank over an array of positions.

        Builds the prefix-array batch cache lazily on first use and
        memoizes it on the instance (rebuilding it per call dominated
        batch rank cost before).  Results are bit-identical to
        :meth:`rank1`.
        """
        p = np.asarray(positions, dtype=np.int64)
        if p.size == 0:
            return np.zeros(0, dtype=np.int64)
        if p.min() < 0 or p.max() > self.n:
            raise IndexError("rank position out of range")
        if self._class_cum is None or self._offset_cum is None:
            self.build_batch_cache()
        class_cum, offset_cum = self._class_cum, self._offset_cum
        assert class_cum is not None and offset_cum is not None
        b = self.b
        block, r = np.divmod(p, b)
        block_c = np.minimum(block, self.n_blocks)  # p == n on block edge
        counts = class_cum[block_c]
        partial = r > 0
        # Charge the counters exactly as the scalar Algorithm 1 would:
        # one binary rank per query; a partial-sum read for p > 0 plus an
        # offset-sum read on the general branch; class-sum iterations
        # spanning from the superblock start to the query's block.
        c = self.counters
        c.binary_ranks += int(p.size)
        c.superblock_reads += int(np.count_nonzero(p > 0)) + int(np.count_nonzero(partial))
        c.offset_reads += int(np.count_nonzero(partial))
        c.table_lookups += int(np.count_nonzero(partial))
        sfb = self.sf * b
        c.class_sum_iterations += int((block - self.sf * (p // sfb)).sum())
        if np.any(partial):
            blocks_p = block[partial]
            classes_p = self.classes[blocks_p].astype(np.int64)
            widths_p = self.tables.widths[classes_p]
            starts = offset_cum[blocks_p]
            offs = read_fields(self.offset_words, starts, widths_p)
            if self.tables.block_rank is not None:
                values = self.tables.permutations[
                    self.tables.class_offsets[classes_p] + offs
                ].astype(np.int64)
                inblock = self.tables.block_rank[values, r[partial]].astype(np.int64)
            else:
                inblock = np.array(
                    [
                        self.tables.rank_in_block(
                            self.tables.decode_block(int(c_), int(o_)), int(rr)
                        )
                        for c_, o_, rr in zip(classes_p, offs, r[partial])
                    ],
                    dtype=np.int64,
                )
            counts = counts.copy()
            counts[partial] += inblock
        return counts.astype(np.int64)

    def rank2_many(
        self, lo_positions: np.ndarray, hi_positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused rank at paired interval boundaries.

        Backward search needs ``rank1`` at *both* bounds of every live
        interval each step.  Answering the two bound sets in one
        vectorized pass shares all per-call work — the memoized prefix
        arrays, the single ``read_fields`` offset-stream gather, and the
        Global Rank Table lookups — instead of running the batch kernel
        twice.  Results and counter charges are identical to two
        :meth:`rank1_many` calls over the same positions.
        """
        lo = np.asarray(lo_positions, dtype=np.int64)
        hi = np.asarray(hi_positions, dtype=np.int64)
        counts = self.rank1_many(np.concatenate([lo, hi]))
        return counts[: lo.size], counts[lo.size :]

    # -- select ------------------------------------------------------------------

    def select1(self, k: int) -> int:
        """Position of the ``k``-th set bit (1-based ``k``).

        Three-stage search mirroring the rank layout: binary search the
        superblock partial sums, scan classes within the superblock, then
        decode the one block containing the target.  O(log(n/(sf·b)) + sf)
        — the same O(sf) flavor as rank, completing the succinct API
        (rank/select/access) the wavelet tree's select relies on.
        """
        total = self.count()
        if k < 1 or k > total:
            raise IndexError(f"select1 argument {k} out of range [1, {total}]")
        # Superblock: last boundary with partial_sum < k.
        sb = int(np.searchsorted(self.partial_sums, k, side="left")) - 1
        sb = max(sb, 0)
        remaining = k - int(self.partial_sums[sb])
        # Class scan inside the superblock.
        block = sb * self.sf
        last = min(block + self.sf, self.n_blocks)
        while block < last:
            c = int(self.classes[block])
            if remaining <= c:
                break
            remaining -= c
            block += 1
        # Decode the block and walk its bits.
        blk_class = int(self.classes[block])
        width = int(self.tables.widths[blk_class])
        opos = self._offset_position(block)
        off = read_field(self.offset_words, opos, width)
        value = self.tables.decode_block(blk_class, off)
        for j in range(self.b):
            if value >> j & 1:
                remaining -= 1
                if remaining == 0:
                    return block * self.b + j
        raise AssertionError("select walked past its block")  # pragma: no cover

    def select0(self, k: int) -> int:
        """Position of the ``k``-th zero bit (1-based), via binary search
        on the monotone ``rank0``."""
        zeros = self.n - self.count()
        if k < 1 or k > zeros:
            raise IndexError(f"select0 argument {k} out of range [1, {zeros}]")
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- reconstruction & size ------------------------------------------------

    def to_bitvector(self) -> BitVector:
        """Decode the full bit-vector from classes + offsets (losslessness)."""
        if self.n == 0:
            return BitVector(np.zeros(0, dtype=np.uint8))
        widths = self.tables.widths[self.classes]
        starts = np.concatenate(([0], np.cumsum(widths)))[:-1]
        offs = read_fields(self.offset_words, starts, widths)
        bits = np.zeros(self.n_blocks * self.b, dtype=np.uint8)
        for i in range(self.n_blocks):
            value = self.tables.decode_block(int(self.classes[i]), int(offs[i]))
            for j in range(self.b):
                bits[i * self.b + j] = (value >> j) & 1
        return BitVector(bits[: self.n])

    def size_in_bytes(self, include_shared: bool = False) -> int:
        """Measured footprint of the instance's own arrays.

        Classes are counted at the paper's 4 bits per block when ``b <= 15``
        (our uint8 array is an addressing convenience; the information
        content — and the hardware layout — is 4-bit).  Set
        ``include_shared`` to add the per-``b`` Global Rank Table, which the
        paper counts once per process, not per structure.
        """
        class_bits = 4 if self.b <= 15 else max(4, (self.b).bit_length())
        total = (self.n_blocks * class_bits + 7) // 8
        total += self.partial_sums.nbytes
        total += self.offset_sums.nbytes
        total += (self.offset_bits + 7) // 8
        total += 12  # n, b, sf metadata (three 32-bit words)
        if include_shared:
            total += self.tables.size_in_bytes()
        return total

    def paper_size_bytes(self) -> float:
        """The paper's closed-form §III-B size, for cross-checking:

        ``(sf + 16) * N / (2 * sf * b) + 2^(b+1) + 4b + 7 + lambda/8``.
        """
        n, b, sf = self.n, self.b, self.sf
        lam = float(self.offset_bits)
        return (sf + 16) * n / (2 * sf * b) + 2 ** (b + 1) + 4 * b + 7 + lam / 8

    def zero_order_entropy(self) -> float:
        """Empirical H0 of the encoded bits, in bits per bit."""
        if self.n == 0:
            return 0.0
        ones = self.count()
        p1 = ones / self.n
        if p1 in (0.0, 1.0):
            return 0.0
        return -(p1 * math.log2(p1) + (1 - p1) * math.log2(1 - p1))

    def __repr__(self) -> str:
        return (
            f"RRRVector(n={self.n}, b={self.b}, sf={self.sf}, "
            f"bytes={self.size_in_bytes()})"
        )

"""Plain packed bit-vectors with vectorized rank/select support.

This is the *uncompressed* building block of the reproduction.  It serves
three roles:

1. the intermediate representation while constructing wavelet-tree levels
   (the construction kernels are fully vectorized over numpy word arrays);
2. the correctness oracle for the RRR structure (property tests check
   ``RRRVector.rank1 == BitVector.rank1`` on random inputs);
3. the "no compression" end of the space/time ablation
   (``benchmarks/bench_ablation_structures.py``).

Bits are stored LSB-first inside 64-bit words: bit ``i`` of the vector is
bit ``i % 64`` of word ``i // 64``.  All positional arguments follow the
half-open Python convention — ``rank1(p)`` counts ones in ``B[0:p]`` — which
maps onto the paper's 1-based ``rank_1(B, p)`` (ones in ``B[1, p]``) without
off-by-one adjustment.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

WORD_BITS = 64

# 16-bit popcount lookup table: popcount of any uint16 in one gather.  Used
# to popcount uint64 words four lanes at a time without Python loops.
_POP16 = np.array(
    [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8
)


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Vectorized popcount of a ``uint64`` array.

    Splits each word into four 16-bit lanes and gathers from a precomputed
    table; this is the standard table-driven popcount and keeps the whole
    computation inside numpy.
    """
    w = np.ascontiguousarray(words, dtype=np.uint64)
    lanes = w.view(np.uint16).reshape(w.shape + (4,))
    return _POP16[lanes].sum(axis=-1, dtype=np.int64)


def popcount_scalar(word: int) -> int:
    """Popcount of a Python integer (arbitrary width)."""
    return bin(word).count("1")


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array into LSB-first ``uint64`` words."""
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[:n] = bits
    # np.packbits is MSB-first per byte; bitorder='little' gives LSB-first.
    packed_bytes = np.packbits(padded, bitorder="little")
    return packed_bytes.view(np.uint64)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: first ``n`` bits as a uint8 array."""
    as_bytes = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:n]


class BitVector:
    """Immutable packed bit-vector with O(1) rank after indexing.

    Parameters
    ----------
    bits:
        Anything convertible to a 0/1 uint8 array (list, numpy array,
        generator via ``from_iterable``).
    build_rank_index:
        When true (default) a per-word cumulative popcount array is built,
        making :meth:`rank1` O(1).  Construction-only intermediates can skip
        it.
    """

    __slots__ = ("n", "words", "_rank_index")

    def __init__(self, bits, build_rank_index: bool = True):
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError(f"bits must be one-dimensional, got shape {bits.shape}")
        if bits.size and bits.max(initial=0) > 1:
            raise ValueError("bit values must be 0 or 1")
        self.n = int(bits.size)
        self.words = pack_bits(bits)
        self._rank_index: np.ndarray | None = None
        if build_rank_index:
            self._build_rank_index()

    @classmethod
    def from_words(cls, words: np.ndarray, n: int) -> "BitVector":
        """Wrap pre-packed words (no copy of the unpacked form)."""
        if n < 0:
            raise ValueError("length must be non-negative")
        need = (n + WORD_BITS - 1) // WORD_BITS
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.size < need:
            raise ValueError(f"{words.size} words cannot hold {n} bits")
        bv = cls.__new__(cls)
        bv.n = int(n)
        bv.words = words[:need].copy()
        # Zero any tail bits beyond n so popcounts stay exact.
        if n % WORD_BITS and need:
            keep = np.uint64((1 << (n % WORD_BITS)) - 1)
            bv.words[-1] &= keep
        bv._rank_index = None
        bv._build_rank_index()
        return bv

    @classmethod
    def from_iterable(cls, it: Iterable[int]) -> "BitVector":
        return cls(np.fromiter(it, dtype=np.uint8))

    def _build_rank_index(self) -> None:
        pops = popcount_u64(self.words)
        # _rank_index[i] = number of ones in words[:i]
        self._rank_index = np.concatenate(
            ([0], np.cumsum(pops, dtype=np.int64))
        )

    # -- element access ---------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range [0, {self.n})")
        return int((self.words[i // WORD_BITS] >> np.uint64(i % WORD_BITS)) & np.uint64(1))

    def to_array(self) -> np.ndarray:
        """Unpacked 0/1 uint8 copy."""
        return unpack_bits(self.words, self.n)

    # -- rank / select ----------------------------------------------------

    def count(self) -> int:
        """Total number of set bits."""
        assert self._rank_index is not None
        return int(self._rank_index[-1])

    def rank1(self, p: int) -> int:
        """Ones in ``B[0:p]``; ``p`` ranges over ``[0, n]``."""
        if not 0 <= p <= self.n:
            raise IndexError(f"rank position {p} out of range [0, {self.n}]")
        assert self._rank_index is not None
        w, r = divmod(p, WORD_BITS)
        total = int(self._rank_index[w])
        if r:
            mask = np.uint64((1 << r) - 1)
            total += popcount_scalar(int(self.words[w] & mask))
        return total

    def rank0(self, p: int) -> int:
        """Zeros in ``B[0:p]``."""
        return p - self.rank1(p)

    def rank1_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank1` over an array of positions."""
        p = np.asarray(positions, dtype=np.int64)
        if p.size and (p.min() < 0 or p.max() > self.n):
            raise IndexError("rank position out of range")
        assert self._rank_index is not None
        w, r = np.divmod(p, WORD_BITS)
        totals = self._rank_index[w].astype(np.int64)
        # Partial-word contribution: mask low r bits then popcount.
        has_partial = r > 0
        if np.any(has_partial):
            words = self.words[w[has_partial]]
            masks = (np.uint64(1) << r[has_partial].astype(np.uint64)) - np.uint64(1)
            totals[has_partial] += popcount_u64(words & masks)
        return totals

    def select1(self, k: int) -> int:
        """Position of the ``k``-th set bit (1-based ``k``)."""
        if k < 1 or k > self.count():
            raise IndexError(f"select1 argument {k} out of range [1, {self.count()}]")
        assert self._rank_index is not None
        w = int(np.searchsorted(self._rank_index, k, side="left")) - 1
        remaining = k - int(self._rank_index[w])
        word = int(self.words[w])
        pos = w * WORD_BITS
        while True:
            if word & 1:
                remaining -= 1
                if remaining == 0:
                    return pos
            word >>= 1
            pos += 1

    def select0(self, k: int) -> int:
        """Position of the ``k``-th zero bit (1-based ``k``)."""
        zeros = self.n - self.count()
        if k < 1 or k > zeros:
            raise IndexError(f"select0 argument {k} out of range [1, {zeros}]")
        # Binary search on rank0 (monotone in p).
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- misc ---------------------------------------------------------------

    def size_in_bytes(self) -> int:
        """Memory footprint of the packed words plus the rank index."""
        total = self.words.nbytes
        if self._rank_index is not None:
            total += self._rank_index.nbytes
        return total

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.words, other.words))

    def __hash__(self):
        return hash((self.n, self.words.tobytes()))

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in self.to_array()[:32])
        ell = "..." if self.n > 32 else ""
        return f"BitVector(n={self.n}, bits={preview}{ell})"


def bits_from_sequence(seq: Sequence[int], predicate) -> BitVector:
    """Build a :class:`BitVector` by applying ``predicate`` elementwise."""
    arr = np.asarray(seq)
    return BitVector(predicate(arr).astype(np.uint8))

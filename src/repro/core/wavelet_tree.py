"""Balanced wavelet trees over small alphabets (paper §III-B, Figs. 1-2).

A wavelet tree stores a sequence over an alphabet Σ as a balanced binary
tree of bit-vectors: at each node, symbols from the left half of that
node's alphabet are written as 0 and the right half as 1; each child
re-encodes the subsequence of symbols routed to it, until leaves hold a
single symbol.  A symbol rank query then decomposes into ``log2 |Σ|``
binary rank queries — Fig. 2 of the paper.

BWaveR's nodes are structs holding an RRR bit-vector, two child pointers,
and the child alphabets; :class:`WaveletNode` mirrors that layout.  The
bit-vector representation is pluggable (``bitvector_factory``) so the
structure ablation can swap RRR for plain packed bit-vectors while keeping
the tree logic identical.

The tree is *balanced*: alphabets are split in half at every level, which
for the paper's target (power-of-two alphabets such as ``{A, C, G, T}``)
yields a perfect tree of depth ``log2 |Σ|``.  Non-power-of-two alphabets
are supported (depth ``ceil(log2 |Σ|)``) — the BWT wrapper in
:mod:`repro.core.bwt_structure` instead keeps the ``$`` terminator *out*
of the tree, the paper's explicit optimization.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .bitvector import BitVector
from .counters import GLOBAL_COUNTERS, OpCounters
from .rrr import DEFAULT_BLOCK_SIZE, DEFAULT_SUPERBLOCK_FACTOR, RRRVector


class WaveletNode:
    """One node of the tree: a bit-vector plus child links and alphabets.

    Matches the paper's five-field struct: the RRR-encoded bit-vector, the
    *child-zero* and *child-one* pointers, and the two child alphabets.
    """

    __slots__ = ("bits", "child0", "child1", "alphabet0", "alphabet1")

    def __init__(self, bits, alphabet0, alphabet1):
        self.bits = bits
        self.child0: "WaveletNode | None" = None
        self.child1: "WaveletNode | None" = None
        self.alphabet0: tuple[int, ...] = tuple(alphabet0)
        self.alphabet1: tuple[int, ...] = tuple(alphabet1)

    def is_leaf_side(self, side: int) -> bool:
        alpha = self.alphabet0 if side == 0 else self.alphabet1
        return len(alpha) <= 1


def _default_factory(b: int, sf: int, counters: OpCounters) -> Callable:
    def make(bits: np.ndarray):
        return RRRVector(bits, b=b, sf=sf, counters=counters)

    return make


def plain_bitvector_factory(bits: np.ndarray) -> BitVector:
    """Node factory using uncompressed packed bit-vectors (ablation)."""
    return BitVector(bits)


class WaveletTree:
    """Balanced wavelet tree answering symbol rank/access/select.

    Parameters
    ----------
    symbols:
        Integer codes in ``[0, sigma)`` (use
        :mod:`repro.sequence.alphabet` to map DNA characters to codes).
    sigma:
        Alphabet size.  If omitted, inferred as ``max(symbols) + 1``.
    b, sf:
        RRR parameters forwarded to every node's bit-vector.
    bitvector_factory:
        Callable mapping a 0/1 numpy array to a rank-capable structure;
        overrides ``b``/``sf`` when given.
    counters:
        Operation counters charged for every query.
    """

    def __init__(
        self,
        symbols,
        sigma: int | None = None,
        b: int = DEFAULT_BLOCK_SIZE,
        sf: int = DEFAULT_SUPERBLOCK_FACTOR,
        bitvector_factory: Callable | None = None,
        counters: OpCounters | None = None,
    ):
        codes = np.asarray(symbols, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("symbols must be one-dimensional")
        if codes.size and codes.min() < 0:
            raise ValueError("symbol codes must be non-negative")
        if sigma is None:
            sigma = int(codes.max()) + 1 if codes.size else 2
        if sigma < 2:
            raise ValueError(f"alphabet size must be >= 2, got {sigma}")
        if codes.size and codes.max() >= sigma:
            raise ValueError("symbol code out of alphabet range")
        self.n = int(codes.size)
        self.sigma = int(sigma)
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self._factory = (
            bitvector_factory
            if bitvector_factory is not None
            else _default_factory(b, sf, self.counters)
        )
        self.root = self._build(codes, tuple(range(sigma)))
        # Per-symbol routing: the path (node, side) list is fixed by the
        # alphabet, so precompute it once for scalar queries.
        self._paths: dict[int, list[tuple[WaveletNode, int]]] = {
            s: self._path_for(s) for s in range(sigma)
        }

    # -- construction --------------------------------------------------------

    def _build(self, codes: np.ndarray, alphabet: tuple[int, ...]) -> WaveletNode:
        half = (len(alphabet) + 1) // 2
        alpha0, alpha1 = alphabet[:half], alphabet[half:]
        right = np.isin(codes, alpha1)
        node = WaveletNode(
            self._factory(right.astype(np.uint8)), alpha0, alpha1
        )
        if len(alpha0) > 1:
            node.child0 = self._build(codes[~right], alpha0)
        if len(alpha1) > 1:
            node.child1 = self._build(codes[right], alpha1)
        return node

    # -- zero-copy rehydration ----------------------------------------------

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The tree as (metadata, named arrays) for external serving.

        Nodes are listed in a fixed preorder; node ``i``'s RRR arrays are
        exported under the ``node<i>/`` prefix.  Only trees whose nodes
        are :class:`~repro.core.rrr.RRRVector` instances can be exported
        (the plain-bit-vector ablation factory has no succinct layout to
        share).
        """
        order: list[WaveletNode] = []

        def visit(node: WaveletNode | None) -> int:
            if node is None:
                return -1
            idx = len(order)
            order.append(node)
            return idx

        # Preorder with explicit child indices (robust to alphabet shape).
        metas: list[dict] = []
        arrays: dict[str, np.ndarray] = {}
        stack: list[tuple[WaveletNode, int]] = []
        visit(self.root)
        metas.append({})
        stack.append((self.root, 0))
        while stack:
            node, idx = stack.pop()
            if not isinstance(node.bits, RRRVector):
                raise TypeError(
                    f"cannot export wavelet node of type "
                    f"{type(node.bits).__name__}; only RRR-backed trees "
                    f"support zero-copy serving"
                )
            bits_meta, bits_arrays = node.bits.export_arrays()
            child0 = visit(node.child0)
            child1 = visit(node.child1)
            metas[idx] = {
                "alphabet0": list(node.alphabet0),
                "alphabet1": list(node.alphabet1),
                "child0": child0,
                "child1": child1,
                "bits": bits_meta,
            }
            for name, arr in bits_arrays.items():
                arrays[f"node{idx}/{name}"] = arr
            if child1 >= 0:
                metas.append({})
                stack.append((node.child1, child1))
            if child0 >= 0:
                metas.append({})
                stack.append((node.child0, child0))
        meta = {"n": self.n, "sigma": self.sigma, "nodes": metas}
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        meta: dict,
        arrays: dict[str, np.ndarray],
        counters: OpCounters | None = None,
    ) -> "WaveletTree":
        """Rebuild a tree around externally owned node buffers (no copies)."""
        self = cls.__new__(cls)
        self.n = int(meta["n"])
        self.sigma = int(meta["sigma"])
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        node_metas = meta["nodes"]
        nodes: list[WaveletNode] = []
        for i, nm in enumerate(node_metas):
            bits = RRRVector.from_arrays(
                nm["bits"],
                {
                    key: arrays[f"node{i}/{key}"]
                    for key in ("classes", "partial_sums", "offset_words", "offset_sums")
                },
                counters=self.counters,
            )
            nodes.append(WaveletNode(bits, nm["alphabet0"], nm["alphabet1"]))
        for node, nm in zip(nodes, node_metas):
            node.child0 = nodes[nm["child0"]] if nm["child0"] >= 0 else None
            node.child1 = nodes[nm["child1"]] if nm["child1"] >= 0 else None
        self.root = nodes[0]
        b = self.root.bits.b
        sf = self.root.bits.sf
        self._factory = _default_factory(b, sf, self.counters)
        self._paths = {s: self._path_for(s) for s in range(self.sigma)}
        return self

    def _path_for(self, symbol: int) -> list[tuple[WaveletNode, int]]:
        path: list[tuple[WaveletNode, int]] = []
        node: WaveletNode | None = self.root
        while node is not None:
            if symbol in node.alphabet0:
                path.append((node, 0))
                node = node.child0
            elif symbol in node.alphabet1:
                path.append((node, 1))
                node = node.child1
            else:  # pragma: no cover - routing invariant
                raise AssertionError("symbol missing from node alphabets")
        return path

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def rank(self, symbol: int, p: int) -> int:
        """Occurrences of ``symbol`` in ``S[0:p]`` (Fig. 2's descent)."""
        if not 0 <= symbol < self.sigma:
            raise ValueError(f"symbol {symbol} outside alphabet [0, {self.sigma})")
        if not 0 <= p <= self.n:
            raise IndexError(f"rank position {p} out of range [0, {self.n}]")
        self.counters.wt_ranks += 1
        for node, side in self._paths[symbol]:
            if side == 0:
                p = p - node.bits.rank1(p)
            else:
                p = node.bits.rank1(p)
            if p == 0:
                return 0
        return p

    def rank_many(self, symbol: int, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank` for a batch of positions."""
        if not 0 <= symbol < self.sigma:
            raise ValueError(f"symbol {symbol} outside alphabet [0, {self.sigma})")
        p = np.asarray(positions, dtype=np.int64)
        self.counters.wt_ranks += int(p.size)
        for node, side in self._paths[symbol]:
            if hasattr(node.bits, "rank1_many"):
                r1 = node.bits.rank1_many(p)
            else:
                r1 = np.array([node.bits.rank1(int(x)) for x in p], dtype=np.int64)
            p = p - r1 if side == 0 else r1
        return p

    def rank2_many(
        self, symbol: int, lo_positions: np.ndarray, hi_positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`rank_many` at paired interval boundaries.

        One descent serves both bound sets: each node issues a single
        ``rank1_many`` over the concatenated positions, so the per-node
        decode work (prefix arrays, offset-stream gather, rank-table
        lookups) is shared between ``lo`` and ``hi`` instead of being
        paid twice.  Results and counter charges match two separate
        :meth:`rank_many` calls.
        """
        if not 0 <= symbol < self.sigma:
            raise ValueError(f"symbol {symbol} outside alphabet [0, {self.sigma})")
        lo = np.asarray(lo_positions, dtype=np.int64)
        hi = np.asarray(hi_positions, dtype=np.int64)
        n_lo = lo.size
        p = np.concatenate([lo, hi])
        self.counters.wt_ranks += int(p.size)
        for node, side in self._paths[symbol]:
            if hasattr(node.bits, "rank1_many"):
                r1 = node.bits.rank1_many(p)
            else:
                r1 = np.array([node.bits.rank1(int(x)) for x in p], dtype=np.int64)
            p = p - r1 if side == 0 else r1
        return p[:n_lo], p[n_lo:]

    def access(self, i: int) -> int:
        """Symbol code at position ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(f"index {i} out of range [0, {self.n})")
        node: WaveletNode | None = self.root
        while node is not None:
            bit = node.bits.access(i) if hasattr(node.bits, "access") else node.bits[i]
            if bit == 0:
                i = i - node.bits.rank1(i)
                if node.child0 is None:
                    return node.alphabet0[0]
                node = node.child0
            else:
                i = node.bits.rank1(i)
                if node.child1 is None:
                    return node.alphabet1[0]
                node = node.child1
        raise AssertionError("unreachable")  # pragma: no cover

    def select(self, symbol: int, k: int) -> int:
        """Position of the ``k``-th (1-based) occurrence of ``symbol``.

        Bottom-up traversal using the node bit-vectors' select: the
        ``k``-th occurrence at a child level is the ``select``-th bit of
        the child's side in the parent — ``log2(sigma)`` binary selects.
        Falls back to a binary search over the monotone rank function for
        node representations without select support.
        """
        total = self.rank(symbol, self.n)
        if k < 1 or k > total:
            raise IndexError(f"select({symbol}, {k}) out of range [1, {total}]")
        path = self._paths[symbol]
        if all(
            hasattr(node.bits, "select1") and hasattr(node.bits, "select0")
            for node, _ in path
        ):
            for node, side in reversed(path):
                pos = node.bits.select1(k) if side == 1 else node.bits.select0(k)
                k = pos + 1
            return k - 1
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank(symbol, mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def symbol_counts(self) -> np.ndarray:
        """Occurrences of every symbol (via ranks at ``n``)."""
        return np.array([self.rank(s, self.n) for s in range(self.sigma)], dtype=np.int64)

    # -- structure info ----------------------------------------------------------

    def nodes(self) -> list[WaveletNode]:
        out: list[WaveletNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            if node.child0 is not None:
                stack.append(node.child0)
            if node.child1 is not None:
                stack.append(node.child1)
        return out

    def depth(self) -> int:
        """Longest root-to-leaf path length (``log2 sigma`` when a power of 2)."""
        return max(len(path) for path in self._paths.values())

    def size_in_bytes(self, include_shared: bool = False) -> int:
        """Sum of node bit-vector footprints.

        The shared Global Rank Table is added at most once (the paper's
        sharing), not per node.
        """
        total = 0
        shared_added = False
        for node in self.nodes():
            bits = node.bits
            if isinstance(bits, RRRVector):
                total += bits.size_in_bytes(include_shared=False)
                if include_shared and not shared_added:
                    total += bits.tables.size_in_bytes()
                    shared_added = True
            else:
                total += bits.size_in_bytes()
        return total

    def build_batch_cache(self) -> None:
        for node in self.nodes():
            if hasattr(node.bits, "build_batch_cache"):
                node.bits.build_batch_cache()

    def to_codes(self) -> np.ndarray:
        """Reconstruct the full code sequence (test oracle for losslessness)."""
        return np.array([self.access(i) for i in range(self.n)], dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"WaveletTree(n={self.n}, sigma={self.sigma}, "
            f"nodes={len(self.nodes())}, depth={self.depth()})"
        )


def wavelet_tree_from_string(
    text: str,
    alphabet: Sequence[str] | None = None,
    **kwargs,
) -> tuple[WaveletTree, dict[str, int]]:
    """Convenience: build a tree from a character string.

    Returns the tree and the character→code mapping used.
    """
    if alphabet is None:
        alphabet = sorted(set(text))
    mapping = {ch: i for i, ch in enumerate(alphabet)}
    unknown = set(text) - set(mapping)
    if unknown:
        raise ValueError(f"characters outside alphabet: {sorted(unknown)}")
    codes = np.array([mapping[ch] for ch in text], dtype=np.int64)
    sigma = max(2, len(alphabet))
    return WaveletTree(codes, sigma=sigma, **kwargs), mapping

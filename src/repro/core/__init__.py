"""The paper's primary contribution: succinct rank structures.

Layering (bottom to top):

* :mod:`~repro.core.bitvector` — packed plain bit-vectors (construction
  intermediate, oracle, and "no compression" ablation arm);
* :mod:`~repro.core.global_tables` — the shared Global Rank Table and
  combinadic block coding;
* :mod:`~repro.core.rrr` — RRR sequences (Fig. 3 layout, Algorithm 1);
* :mod:`~repro.core.wavelet_tree` — balanced wavelet trees of pluggable
  bit-vectors (Figs. 1-2);
* :mod:`~repro.core.bwt_structure` — the composed BWaveR structure with
  the separate-``$`` optimization and the FM-index ``C``/``Occ`` queries;
* :mod:`~repro.core.counters` — operation counting that feeds the
  analytic CPU/FPGA cost models.
"""

from .bitvector import BitVector
from .bwt_structure import BWTStructure
from .counters import GLOBAL_COUNTERS, CounterScope, OpCounters
from .global_tables import GlobalRankTables, get_global_tables
from .interleaved import InterleavedRankVector, interleaved_factory
from .rrr import DEFAULT_BLOCK_SIZE, DEFAULT_SUPERBLOCK_FACTOR, RRRVector
from .wavelet_tree import WaveletTree, wavelet_tree_from_string

__all__ = [
    "BitVector",
    "BWTStructure",
    "CounterScope",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_SUPERBLOCK_FACTOR",
    "GLOBAL_COUNTERS",
    "GlobalRankTables",
    "InterleavedRankVector",
    "OpCounters",
    "RRRVector",
    "WaveletTree",
    "get_global_tables",
    "interleaved_factory",
    "wavelet_tree_from_string",
]

"""Shared Global Rank Table and combinadic machinery for RRR blocks.

The RRR structure of Raman, Raman and Rao stores each ``b``-bit block as a
``(class, offset)`` pair, where *class* is the block's popcount and
*offset* identifies the block among all blocks of that class.  BWaveR's
concrete layout (paper §III-B, Fig. 3) materializes:

* a **permutations array** ``P`` — every possible ``b``-bit block as a
  16-bit integer, sorted by class and then in ascending numeric order
  (the "Global Rank Table");
* a **class offsets array** — for each class ``c``, the index of the first
  element of that class inside ``P``.

Both arrays depend only on ``b``, so the paper shares a single copy among
*all* wavelet-tree nodes ("the permutations array and class offsets array
are stored only once") — that sharing is exactly what
:func:`get_global_tables` provides through a process-wide cache, and what
``benchmarks/bench_ablation_sharing.py`` ablates.

Blocks are numbered LSB-first: bit ``i`` of the block integer is the
``i``-th bit of the vector slice it encodes, matching
:mod:`repro.core.bitvector`.  "Ascending order" within a class is plain
integer order of those LSB-first values; any fixed order works as long as
encode and decode agree, and integer order admits a closed-form combinadic
rank, used for the vectorized encoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .bitvector import _POP16, popcount_scalar

#: Largest block size for which the permutation table is materialized.
#: ``b = 16`` gives a 65536-entry uint16 table (128 KiB); beyond that the
#: combinadic fallback decodes blocks arithmetically.
MAX_TABLE_B = 16

#: Largest supported block size overall.  The paper's hardware fixes
#: ``b = 15``; the structure itself is parametrizable and we allow some
#: headroom for the parameter-sweep experiments.
MAX_B = 24


def binomial_table(b: int) -> np.ndarray:
    """Pascal's triangle ``C[n, k]`` for ``0 <= n, k <= b`` as int64.

    Entries with ``k > n`` are zero.  ``C(b, b//2)`` for ``b <= 24`` fits
    comfortably in int64.
    """
    C = np.zeros((b + 1, b + 1), dtype=np.int64)
    C[:, 0] = 1
    for n in range(1, b + 1):
        C[n, 1 : n + 1] = C[n - 1, : n] + C[n - 1, 1 : n + 1]
    return C


def offset_width(b: int, c: int, C: np.ndarray | None = None) -> int:
    """Bits needed for a class-``c`` offset: ``ceil(log2(C(b, c)))``.

    Classes with a single member (``c == 0`` or ``c == b``) need zero bits.
    """
    if C is None:
        C = binomial_table(b)
    count = int(C[b, c])
    if count <= 1:
        return 0
    return int(count - 1).bit_length()


def offset_widths(b: int, C: np.ndarray | None = None) -> np.ndarray:
    """``offset_width(b, c)`` for every class ``c`` in ``[0, b]``."""
    if C is None:
        C = binomial_table(b)
    return np.array([offset_width(b, c, C) for c in range(b + 1)], dtype=np.int64)


def encode_offset(value: int, b: int, C: np.ndarray | None = None) -> int:
    """Combinadic rank: how many same-class ``b``-bit values are ``< value``.

    Scalar reference implementation; the vectorized counterpart is
    :func:`encode_offsets`.
    """
    if not 0 <= value < (1 << b):
        raise ValueError(f"value {value} does not fit in {b} bits")
    if C is None:
        C = binomial_table(b)
    k = popcount_scalar(value)
    offset = 0
    for p in range(b - 1, -1, -1):
        if value >> p & 1:
            # Values agreeing above bit p but with 0 here are all smaller;
            # they place the remaining k ones among the p lower positions.
            offset += int(C[p, k]) if k <= p else 0
            k -= 1
    return offset


def decode_offset(c: int, offset: int, b: int, C: np.ndarray | None = None) -> int:
    """Inverse of :func:`encode_offset`: the ``offset``-th class-``c`` value."""
    if C is None:
        C = binomial_table(b)
    if not 0 <= c <= b:
        raise ValueError(f"class {c} out of range [0, {b}]")
    if not 0 <= offset < int(C[b, c]):
        raise ValueError(f"offset {offset} out of range for class {c} (b={b})")
    value = 0
    k = c
    for p in range(b - 1, -1, -1):
        below = int(C[p, k]) if k <= p else 0
        if offset >= below:
            value |= 1 << p
            offset -= below
            k -= 1
    return value


def encode_offsets(values: np.ndarray, b: int, C: np.ndarray | None = None) -> np.ndarray:
    """Vectorized combinadic rank of many block values at once.

    This is the hot path of RRR construction: the whole BWT is blocked and
    every block's offset is computed here with ``b`` numpy passes instead
    of a Python loop per block.
    """
    if C is None:
        C = binomial_table(b)
    v = np.asarray(values, dtype=np.int64)
    if v.size and (v.min() < 0 or v.max() >= (1 << b)):
        raise ValueError(f"block values must fit in {b} bits")
    # k starts at the popcount of each value and decreases as set bits are
    # consumed from the MSB side.
    k = popcount_block(v, b).astype(np.int64)
    offsets = np.zeros_like(v)
    # Extend the binomial table with a guard row of zeros so C[p, k] with
    # k > p indexes cleanly to zero.
    Cg = np.zeros((b + 1, b + 2), dtype=np.int64)
    Cg[:, : b + 1] = C
    for p in range(b - 1, -1, -1):
        bit = (v >> p) & 1
        contrib = Cg[p, np.minimum(k, b + 1)]
        offsets += bit * np.where(k <= p, contrib, 0)
        k -= bit
    return offsets


def popcount_block(values: np.ndarray, b: int) -> np.ndarray:
    """Popcount of block values known to fit in ``b <= 24`` bits."""
    v = np.asarray(values, dtype=np.int64)
    low = _POP16[v & 0xFFFF]
    if b <= 16:
        return low.astype(np.int64)
    high = _POP16[(v >> 16) & 0xFFFF]
    return (low.astype(np.int64) + high.astype(np.int64))


@dataclass(frozen=True)
class GlobalRankTables:
    """The per-``b`` shared tables of the BWaveR RRR layout.

    Attributes
    ----------
    b:
        Block size in bits.
    binomials:
        Pascal's triangle up to ``b``.
    widths:
        ``widths[c]`` — offset field width in bits for class ``c``.
    class_offsets:
        ``class_offsets[c]`` — index in :attr:`permutations` of the first
        block of class ``c`` (length ``b + 2``; the final entry is the
        total ``2**b`` so slices are uniform).
    permutations:
        The Global Rank Table ``P``: all ``2**b`` block values sorted by
        class then ascending, as uint16 (present only for
        ``b <= MAX_TABLE_B``, else ``None`` and decoding falls back to
        combinadics).
    block_rank:
        ``block_rank[value, p]`` — ones among the low ``p`` bits of
        ``value`` (present only when the permutation table is present;
        this is the table the FPGA kernel reads to finish a rank inside a
        block in one cycle).
    """

    b: int
    binomials: np.ndarray
    widths: np.ndarray
    class_offsets: np.ndarray
    permutations: np.ndarray | None
    block_rank: np.ndarray | None

    def decode_block(self, c: int, offset: int) -> int:
        """Block value for ``(class, offset)`` via table or combinadics."""
        if self.permutations is not None:
            return int(self.permutations[int(self.class_offsets[c]) + offset])
        return decode_offset(c, offset, self.b, self.binomials)

    def rank_in_block(self, value: int, p: int) -> int:
        """Ones among the low ``p`` bits of a block value."""
        if self.block_rank is not None:
            return int(self.block_rank[value, p])
        return popcount_scalar(value & ((1 << p) - 1))

    def size_in_bytes(self, include_block_rank: bool = False) -> int:
        """Space of the shared tables (the ``2^{b+1} + 4b`` terms of the
        paper's size formula, measured on the real arrays)."""
        total = self.class_offsets.nbytes + self.widths.nbytes
        if self.permutations is not None:
            total += self.permutations.nbytes
        if include_block_rank and self.block_rank is not None:
            total += self.block_rank.nbytes
        return total


def _build_tables(b: int) -> GlobalRankTables:
    if not 1 <= b <= MAX_B:
        raise ValueError(f"block size b={b} outside supported range [1, {MAX_B}]")
    C = binomial_table(b)
    widths = offset_widths(b, C)
    # class_offsets[c] = sum of C(b, c') for c' < c
    counts = C[b, : b + 1]
    class_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    permutations: np.ndarray | None = None
    block_rank: np.ndarray | None = None
    if b <= MAX_TABLE_B:
        values = np.arange(1 << b, dtype=np.int64)
        classes = popcount_block(values, b)
        # Stable sort by class keeps ascending numeric order within class.
        order = np.argsort(classes, kind="stable")
        permutations = order.astype(np.uint16)
        # block_rank[value, p] = popcount(value & ((1 << p) - 1))
        bits = ((values[:, None] >> np.arange(b)[None, :]) & 1).astype(np.int64)
        block_rank = np.concatenate(
            [np.zeros((1 << b, 1), dtype=np.int64), np.cumsum(bits, axis=1)],
            axis=1,
        ).astype(np.uint8)
    return GlobalRankTables(
        b=b,
        binomials=C,
        widths=widths,
        class_offsets=class_offsets,
        permutations=permutations,
        block_rank=block_rank,
    )


@lru_cache(maxsize=None)
def get_global_tables(b: int) -> GlobalRankTables:
    """Process-wide shared tables for block size ``b`` (paper's sharing)."""
    return _build_tables(b)


def build_private_tables(b: int) -> GlobalRankTables:
    """A non-shared copy, used only by the sharing ablation bench."""
    return _build_tables(b)

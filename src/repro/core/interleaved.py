"""Interleaved header+body rank vectors (Waidyasooriya et al., paper §II).

The paper's related work [11] proposes an FPGA wavelet-tree structure
whose bit-vectors are stored as **codewords**: a *header* carrying "the
partial rank of the corresponding bit vector block" and a *body* holding
the block's raw bits — rank is one codeword fetch, one header read, and
one popcount, with no decoding.  The authors report ~5.5 % space overhead
over the raw data and O(1) rank, but no compression (the body is verbatim).

This module implements that design as a drop-in rank backend so the
structure ablation can compare the paper's RRR choice against its
closest published FPGA alternative:

* body: raw blocks of ``b`` bits (``b`` ≤ 63);
* header: the rank (ones count) up to the block's start, in a fixed
  ``header_bits`` field sized to the vector length;
* codewords are packed contiguously, so a rank query touches exactly one
  aligned codeword — the single-memory-fetch property that motivated the
  original design.

Space: ``N · (1 + header_bits / b)`` bits; with the authors' parameters
(large ``b`` relative to the header) the overhead approaches their 5.5 %.
No entropy compression — this is the trade against RRR.
"""

from __future__ import annotations

import numpy as np

from .bitio import pack_fields, read_field
from .bitvector import popcount_scalar
from .counters import GLOBAL_COUNTERS, OpCounters


class InterleavedRankVector:
    """Header+body codeword bit-vector with O(1) rank.

    Parameters
    ----------
    bits:
        0/1 array to encode.
    b:
        Body (block) size in bits, 1..63.
    counters:
        Operation counters (charged as table-free binary ranks).
    """

    __slots__ = ("n", "b", "header_bits", "codeword_bits", "words", "n_blocks",
                 "counters", "_total_ones")

    def __init__(self, bits, b: int = 32, counters: OpCounters | None = None):
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be one-dimensional")
        if bits.size and bits.max(initial=0) > 1:
            raise ValueError("bit values must be 0 or 1")
        if not 1 <= b <= 63:
            raise ValueError(f"body size b={b} outside [1, 63]")
        self.n = int(bits.size)
        self.b = int(b)
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        # Header width: enough for the largest possible rank (= n).
        self.header_bits = max(1, int(self.n).bit_length())
        self.codeword_bits = self.header_bits + self.b
        n_blocks = (self.n + b - 1) // b
        self.n_blocks = n_blocks
        # Build: per block, header = cumulative ones before it, body = bits.
        padded = np.zeros(n_blocks * b, dtype=np.uint8)
        padded[: self.n] = bits
        blocks = padded.reshape(-1, b)
        weights = (np.uint64(1) << np.arange(b, dtype=np.uint64))
        bodies = (blocks.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)
        ones_per_block = blocks.sum(axis=1, dtype=np.int64)
        headers = np.concatenate(([0], np.cumsum(ones_per_block)))[:-1].astype(np.uint64)
        self._total_ones = int(ones_per_block.sum())
        # Interleave: header then body per codeword, all fixed width.
        values = np.empty(2 * n_blocks, dtype=np.uint64)
        values[0::2] = headers
        values[1::2] = bodies
        widths = np.empty(2 * n_blocks, dtype=np.int64)
        widths[0::2] = self.header_bits
        widths[1::2] = self.b
        self.words, _ = pack_fields(values, widths)

    def __len__(self) -> int:
        return self.n

    def count(self) -> int:
        return self._total_ones

    def rank1(self, p: int) -> int:
        """Ones in ``B[0:p]`` — one codeword fetch + popcount."""
        if not 0 <= p <= self.n:
            raise IndexError(f"rank position {p} out of range [0, {self.n}]")
        c = self.counters
        c.binary_ranks += 1
        if p == self.n:
            return self._total_ones
        block, r = divmod(p, self.b)
        base = block * self.codeword_bits
        c.superblock_reads += 1  # the single codeword fetch
        header = read_field(self.words, base, self.header_bits)
        if r == 0:
            return header
        body = read_field(self.words, base + self.header_bits, self.b)
        return header + popcount_scalar(body & ((1 << r) - 1))

    def rank0(self, p: int) -> int:
        return p - self.rank1(p)

    def rank1_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized rank via per-position field reads."""
        from .bitio import read_fields

        p = np.asarray(positions, dtype=np.int64)
        if p.size == 0:
            return np.zeros(0, dtype=np.int64)
        if p.min() < 0 or p.max() > self.n:
            raise IndexError("rank position out of range")
        self.counters.binary_ranks += int(p.size)
        self.counters.superblock_reads += int(p.size)
        block, r = np.divmod(np.minimum(p, self.n - 1 if self.n else 0), self.b)
        # Positions p == n need the total; handle via mask at the end.
        base = block * self.codeword_bits
        headers = read_fields(
            self.words, base, np.full(p.size, self.header_bits, dtype=np.int64)
        )
        bodies = read_fields(
            self.words,
            base + self.header_bits,
            np.full(p.size, self.b, dtype=np.int64),
        )
        # popcount of the low-r body bits.
        masks = np.where(
            r > 0,
            (np.uint64(1) << r.astype(np.uint64)) - np.uint64(1),
            np.uint64(0),
        )
        from .bitvector import popcount_u64

        partial = popcount_u64(bodies.astype(np.uint64) & masks)
        out = headers + partial
        # Recompute exact values for p==n and for positions whose block/r
        # got clamped above.
        at_end = p == self.n
        if np.any(at_end):
            out[at_end] = self._total_ones
        # Non-end positions used true block/r only if p < n; the clamp
        # only altered p == n entries, which we just overwrote.
        return out.astype(np.int64)

    def access(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range [0, {self.n})")
        block, r = divmod(i, self.b)
        body = read_field(
            self.words, block * self.codeword_bits + self.header_bits, self.b
        )
        return (body >> r) & 1

    def select1(self, k: int) -> int:
        """Binary search on the monotone headers, then scan one block."""
        if k < 1 or k > self._total_ones:
            raise IndexError(f"select1 argument {k} out of range [1, {self._total_ones}]")
        lo, hi = 0, self.n_blocks - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            header = read_field(self.words, mid * self.codeword_bits, self.header_bits)
            if header < k:
                lo = mid
            else:
                hi = mid - 1
        base = lo * self.codeword_bits
        remaining = k - read_field(self.words, base, self.header_bits)
        body = read_field(self.words, base + self.header_bits, self.b)
        for j in range(self.b):
            if body >> j & 1:
                remaining -= 1
                if remaining == 0:
                    return lo * self.b + j
        raise AssertionError("select walked past its block")  # pragma: no cover

    def select0(self, k: int) -> int:
        zeros = self.n - self._total_ones
        if k < 1 or k > zeros:
            raise IndexError(f"select0 argument {k} out of range [1, {zeros}]")
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def size_in_bytes(self) -> int:
        return int(self.words.nbytes)

    def overhead_fraction(self) -> float:
        """Space overhead vs the raw bits: ``header_bits / b``.

        The original paper reports ~5.5 % for its memory-model-tuned
        parameters; the ratio here is exact for ours.
        """
        return self.header_bits / self.b

    def __repr__(self) -> str:
        return (
            f"InterleavedRankVector(n={self.n}, b={self.b}, "
            f"header={self.header_bits}b, bytes={self.size_in_bytes()})"
        )


def interleaved_factory(b: int = 32, counters: OpCounters | None = None):
    """Wavelet-node factory for the ablation bench."""

    def make(bits: np.ndarray) -> InterleavedRankVector:
        return InterleavedRankVector(bits, b=b, counters=counters)

    return make

"""The BWaveR data structure (paper Fig. 1): WT-of-RRR over the BWT.

This composes the pieces of :mod:`repro.core` into the structure the FPGA
kernel holds in BRAM:

* a balanced **wavelet tree** whose nodes are **RRR sequences**, encoding
  the BWT of the reference;
* the sentinel's BWT position stored in a **separate variable** — the
  paper's optimization that keeps the DNA alphabet at exactly
  ``2**2 = 4`` symbols (two tree levels) instead of five (three levels);
* the FM-index **C array** (symbols lexicographically smaller than each
  symbol, the sentinel counted once).

It exposes exactly the two queries the backward search needs, ``C(a)``
and ``Occ(a, i)``, with the sentinel adjustment folded into ``Occ``:
for a full-BWT position ``i`` (over the length-``n+1`` BWT including
``$``), the wavelet tree — which stores only the ``n`` real symbols — is
queried at ``i - 1`` when ``i`` lies past the sentinel slot.

``store_sentinel_in_tree=True`` builds the un-optimized five-symbol
variant for the ablation bench (``bench_ablation_dollar.py``).
"""

from __future__ import annotations

import numpy as np

from ..sequence.bwt import BWT, count_array
from .counters import GLOBAL_COUNTERS, OpCounters
from .rrr import DEFAULT_BLOCK_SIZE, DEFAULT_SUPERBLOCK_FACTOR
from .wavelet_tree import WaveletTree

SIGMA = 4


class BWTStructure:
    """Succinct FM-index backend over a :class:`~repro.sequence.bwt.BWT`.

    Parameters
    ----------
    bwt:
        The transformed reference (carries the suffix array for locate).
    b, sf:
        RRR block size and superblock factor for every wavelet node.
    store_sentinel_in_tree:
        When true, the sentinel is encoded as a fifth symbol inside the
        wavelet tree (deeper tree, larger nodes) instead of the paper's
        separate-variable optimization.  Query results are identical.
    bitvector_factory:
        Forwarded to :class:`~repro.core.wavelet_tree.WaveletTree` (the
        structure ablation swaps RRR for plain bit-vectors here).
    counters:
        Operation counters charged for every query.
    """

    def __init__(
        self,
        bwt: BWT,
        b: int = DEFAULT_BLOCK_SIZE,
        sf: int = DEFAULT_SUPERBLOCK_FACTOR,
        store_sentinel_in_tree: bool = False,
        bitvector_factory=None,
        counters: OpCounters | None = None,
    ):
        self.bwt = bwt
        self.b = b
        self.sf = sf
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self.dollar_pos = bwt.dollar_pos
        self.n_rows = bwt.length  # n + 1 Burrows-Wheeler matrix rows
        self.store_sentinel_in_tree = bool(store_sentinel_in_tree)
        kwargs = dict(b=b, sf=sf, counters=self.counters)
        if bitvector_factory is not None:
            kwargs["bitvector_factory"] = bitvector_factory
        if self.store_sentinel_in_tree:
            # Five-symbol variant: $ -> 0, A..T -> 1..4.
            sym = bwt.codes.astype(np.int64) + 1
            sym[bwt.dollar_pos] = 0
            self.tree = WaveletTree(sym, sigma=SIGMA + 1, **kwargs)
        else:
            self.tree = WaveletTree(
                bwt.symbols_without_sentinel(), sigma=SIGMA, **kwargs
            )
        # C over the original text codes; the sentinel contributes 1 to
        # every entry because it sorts before all real symbols.
        text_codes = np.delete(bwt.codes, bwt.dollar_pos) if bwt.text_length else np.zeros(0, dtype=np.uint8)
        # The BWT is a permutation of the text, so symbol counts match.
        self.C = count_array(text_codes, sigma=SIGMA)

    # -- FM-index primitives ---------------------------------------------------

    def occ(self, symbol: int, i: int) -> int:
        """``Occ(a, i)``: occurrences of ``symbol`` in ``BWT[0:i]``.

        ``i`` ranges over ``[0, n + 1]`` (full matrix rows, sentinel slot
        included).  This is the query Eq. (4)/(5) consume.
        """
        if not 0 <= symbol < SIGMA:
            raise ValueError(f"symbol {symbol} outside DNA alphabet")
        if not 0 <= i <= self.n_rows:
            raise IndexError(f"occ position {i} out of range [0, {self.n_rows}]")
        if self.store_sentinel_in_tree:
            return self.tree.rank(symbol + 1, i)
        # Sentinel adjustment: positions past the $ slot shift down by one
        # in the sentinel-free sequence the tree stores.
        j = i - 1 if i > self.dollar_pos else i
        return self.tree.rank(symbol, j)

    def occ_many(self, symbol: int, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`occ` for batch backward search."""
        p = np.asarray(positions, dtype=np.int64)
        if self.store_sentinel_in_tree:
            return self.tree.rank_many(symbol + 1, p)
        j = np.where(p > self.dollar_pos, p - 1, p)
        return self.tree.rank_many(symbol, j)

    def occ2_many(
        self, symbol: int, lo_positions: np.ndarray, hi_positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`occ_many` at both interval boundaries.

        Backward search updates ``lo`` and ``hi`` with the same symbol
        every step; one fused wavelet descent answers both bound sets
        while sharing every node's decode work.  Results and counter
        charges are identical to two :meth:`occ_many` calls.
        """
        plo = np.asarray(lo_positions, dtype=np.int64)
        phi = np.asarray(hi_positions, dtype=np.int64)
        if self.store_sentinel_in_tree:
            return self.tree.rank2_many(symbol + 1, plo, phi)
        jlo = np.where(plo > self.dollar_pos, plo - 1, plo)
        jhi = np.where(phi > self.dollar_pos, phi - 1, phi)
        return self.tree.rank2_many(symbol, jlo, jhi)

    def count_smaller(self, symbol: int) -> int:
        """``C(a)``: text symbols (plus sentinel) smaller than ``symbol``."""
        return int(self.C[symbol])

    def access(self, i: int) -> int:
        """BWT symbol code at row ``i``; ``-1`` denotes the sentinel."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        if i == self.dollar_pos and not self.store_sentinel_in_tree:
            return -1
        if self.store_sentinel_in_tree:
            return self.tree.access(i) - 1
        j = i - 1 if i > self.dollar_pos else i
        return self.tree.access(j)

    def lf(self, i: int) -> int:
        """Last-first mapping of row ``i`` (used by inverse walks/tests)."""
        sym = self.access(i)
        if sym == -1:
            return 0  # the sentinel maps to the first row
        return self.count_smaller(sym) + self.occ(sym, i)

    def lf_many(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lf` over an array of rows.

        Batches the symbol gather and one :meth:`occ_many` call per
        distinct symbol instead of a full wavelet descent per row —
        the kernel behind the batched LF-walk of
        :meth:`repro.sequence.sampled_sa.SampledSA.locate_range`.
        Results are identical to the scalar :meth:`lf`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        if self.bwt is not None and not self.store_sentinel_in_tree:
            # Fast path: read the BWT symbols straight from the raw codes
            # (the placeholder at the sentinel slot is masked below).
            syms = self.bwt.codes[rows].astype(np.int64)
            syms[rows == self.dollar_pos] = -1
        else:
            syms = np.array([self.access(int(r)) for r in rows], dtype=np.int64)
        out = np.zeros(rows.size, dtype=np.int64)
        for a in range(SIGMA):
            m = syms == a
            if np.any(m):
                out[m] = int(self.C[a]) + self.occ_many(a, rows[m])
        return out

    # -- zero-copy rehydration ----------------------------------------------

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The *encoded* structure as (metadata, named arrays).

        Unlike the ``.npz`` path — which stores the raw BWT and re-encodes
        the wavelet tree on every load — this exports the finished
        succinct layout (every node's classes/partial sums/offset stream),
        so :meth:`from_arrays` re-attaches in O(1) without re-encoding.
        The BWT itself is not included; pass it separately (the flat
        container stores its codes and suffix array as shared segments).
        """
        tree_meta, tree_arrays = self.tree.export_arrays()
        meta = {
            "b": self.b,
            "sf": self.sf,
            "sentinel_in_tree": self.store_sentinel_in_tree,
            "dollar_pos": int(self.dollar_pos),
            "n_rows": int(self.n_rows),
            "tree": tree_meta,
        }
        arrays = {f"tree/{name}": arr for name, arr in tree_arrays.items()}
        arrays["C"] = self.C
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        meta: dict,
        arrays: dict[str, np.ndarray],
        bwt: BWT | None = None,
        counters: OpCounters | None = None,
    ) -> "BWTStructure":
        """Rehydrate around externally owned buffers without re-encoding.

        ``bwt`` (when available, e.g. memmapped codes + suffix array from
        the flat container) is attached for consumers that walk the raw
        transform (re-serialization, inspection); queries never need it.
        """
        self = cls.__new__(cls)
        self.b = int(meta["b"])
        self.sf = int(meta["sf"])
        self.store_sentinel_in_tree = bool(meta["sentinel_in_tree"])
        self.dollar_pos = int(meta["dollar_pos"])
        self.n_rows = int(meta["n_rows"])
        self.counters = counters if counters is not None else GLOBAL_COUNTERS
        self.tree = WaveletTree.from_arrays(
            meta["tree"],
            {
                name.removeprefix("tree/"): arr
                for name, arr in arrays.items()
                if name.startswith("tree/")
            },
            counters=self.counters,
        )
        self.C = arrays["C"]
        self.bwt = bwt
        return self

    # -- structure info ----------------------------------------------------------

    def size_in_bytes(self, include_shared: bool = True) -> int:
        """Footprint of the succinct encoding (tree nodes + metadata).

        Includes one copy of the shared Global Rank Table by default —
        matching the paper's accounting of a deployed single-reference
        structure.  Excludes the suffix array, which stays in host memory
        (locate is a host-side step in BWaveR's architecture).
        """
        total = self.tree.size_in_bytes(include_shared=include_shared)
        total += self.C.nbytes
        total += 8  # dollar_pos
        return total

    def uncompressed_size_bytes(self) -> int:
        """1 byte/char baseline the paper compares against (Fig. 5)."""
        return self.n_rows

    def build_batch_cache(self) -> None:
        self.tree.build_batch_cache()

    def __repr__(self) -> str:
        return (
            f"BWTStructure(n={self.n_rows - 1}, b={self.b}, sf={self.sf}, "
            f"sentinel_in_tree={self.store_sentinel_in_tree}, "
            f"bytes={self.size_in_bytes()})"
        )

"""Operation-count instrumentation shared by every query structure.

BWaveR's evaluation compares a hardware pipeline against software baselines.
Because this reproduction executes the data structures in pure Python, wall
clock alone cannot reproduce the paper's ratios (Python is two to three
orders of magnitude slower than the authors' C++/HLS code).  Instead, every
structure in :mod:`repro.core` counts the primitive operations it performs,
and the analytic cost models in :mod:`repro.fpga.cost_model` and
:mod:`repro.bench.calibration` convert those counts into native-equivalent
or FPGA-cycle time.  The *workload behaviour* (early termination of
unmapped reads, number of class-sum iterations per rank, wavelet-tree
depth) is therefore real and measured; only per-operation costs are model
constants.

The counters are deliberately cheap (plain ``int`` attributes, no locks):
they are bumped on scalar query paths only, never inside the vectorized
construction kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class OpCounters:
    """Tally of primitive operations executed by the succinct structures.

    Attributes
    ----------
    binary_ranks:
        Number of binary (single bit-vector) rank queries answered.  Each
        wavelet-tree rank issues ``log2(sigma)`` of these.
    class_sum_iterations:
        Total iterations of the RRR class-summation loop (Algorithm 1's
        ``for`` loops).  Bounded by ``sf`` per binary rank; this is the
        quantity the superblock factor trades against space.
    table_lookups:
        Global Rank Table (permutation array) reads.
    superblock_reads:
        Partial-sum / offset-sum array reads.
    offset_reads:
        Variable-width reads from the offset bit-vector.
    wt_ranks:
        Wavelet-tree (symbol) rank queries.
    bs_steps:
        Backward-search steps executed (one per consumed query symbol).
        Queries jump-started from the k-mer seed table skip their first
        ``k`` steps, so with an ftab attached this counts only the steps
        actually run — the reduced workload the FPGA cycle model consumes.
    ftab_lookups:
        K-mer seed-table reads (one per query of length >= k when an
        ftab is attached); the FPGA model charges one BRAM LUT burst
        read per lookup.
    queries:
        Query sequences processed (a read and its reverse complement count
        as two).
    reads_invalid:
        Reads rejected by the alphabet policy (``N``/IUPAC/garbage
        characters) and reported unmapped instead of searched.
    occ_checkpoint_ranks:
        Rank queries answered by the checkpointed Occ-table baseline.
    occ_scan_chars:
        BWT characters scanned between checkpoints by that baseline.
    """

    binary_ranks: int = 0
    class_sum_iterations: int = 0
    table_lookups: int = 0
    superblock_reads: int = 0
    offset_reads: int = 0
    wt_ranks: int = 0
    bs_steps: int = 0
    ftab_lookups: int = 0
    queries: int = 0
    occ_checkpoint_ranks: int = 0
    occ_scan_chars: int = 0
    reads_invalid: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return the current counts as a plain dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "OpCounters") -> None:
        """Accumulate ``other``'s counts into this instance."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "OpCounters") -> "OpCounters":
        out = OpCounters()
        out.merge(self)
        out.merge(other)
        return out

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Counts accrued since a prior :meth:`snapshot`."""
        return {k: getattr(self, k) - v for k, v in before.items()}


@dataclass
class CounterScope:
    """Context manager capturing the counts accrued inside a ``with`` block.

    Example
    -------
    >>> counters = OpCounters()
    >>> with CounterScope(counters) as scope:
    ...     counters.bs_steps += 3
    >>> scope.delta["bs_steps"]
    3
    """

    counters: OpCounters
    delta: dict[str, int] = field(default_factory=dict)
    _before: dict[str, int] = field(default_factory=dict)

    def __enter__(self) -> "CounterScope":
        self._before = self.counters.snapshot()
        return self

    def __exit__(self, *exc) -> None:
        self.delta = self.counters.diff(self._before)


#: Module-level counters used by structures created without an explicit
#: ``counters=`` argument.  Benches reset this before each measured region.
GLOBAL_COUNTERS = OpCounters()

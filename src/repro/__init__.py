"""BWaveR reproduction: succinct DNA sequence mapping with a simulated FPGA.

Public API tour
---------------

Build an index and map reads::

    from repro import build_index, Mapper

    index, report = build_index("ACGTACGTTTAGGC...")
    mapper = Mapper(index)
    hits = mapper.map_read("ACGTT")          # forward + reverse complement

Offload the mapping step to the simulated FPGA::

    from repro.fpga import FPGAAccelerator

    acc = FPGAAccelerator.for_index(index)
    result = acc.map_batch(reads)
    print(result.modeled_seconds, result.energy_joules)

Subpackages
-----------

``repro.core``
    The paper's contribution: RRR sequences, wavelet trees, the composed
    BWT structure.
``repro.sequence``
    Substrate: alphabet codes, suffix arrays (naive / doubling / SA-IS),
    BWT, sampled suffix arrays.
``repro.index``
    FM-index (backward search, Eq. 4-5), the checkpointed-Occ baseline
    backend, build pipeline, serialization.
``repro.mapper``
    Read mapping (both strands), 512-bit query packing, batching,
    mismatch extension, seed-and-extend.
``repro.fpga``
    Transaction-level Alveo U200 model: BRAM, kernel, OpenCL-like
    runtime, cycle/power models.
``repro.io``
    FASTA/FASTQ (plain and gzip), read simulator, synthetic reference
    generator.
``repro.baseline``
    Bowtie2-like exact matcher and naive oracles.
``repro.web``
    The three-step BWaveR web workflow as a stdlib WSGI app.
``repro.bench``
    Calibration constants and the table/figure regeneration harness.
"""

from .core import (
    BitVector,
    BWTStructure,
    OpCounters,
    RRRVector,
    WaveletTree,
)
from .index import FMIndex, build_index, load_index, save_index
from .mapper import Mapper, MappingResult
from .sequence import bwt_from_string, encode, decode, reverse_complement, suffix_array

__version__ = "1.0.0"

__all__ = [
    "BitVector",
    "BWTStructure",
    "FMIndex",
    "Mapper",
    "MappingResult",
    "OpCounters",
    "RRRVector",
    "WaveletTree",
    "build_index",
    "bwt_from_string",
    "decode",
    "encode",
    "load_index",
    "reverse_complement",
    "save_index",
    "suffix_array",
    "__version__",
]

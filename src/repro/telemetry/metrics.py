"""Dependency-free metrics registry: counters, gauges, histograms.

The registry mirrors the Prometheus client-library data model at the
scale this project needs: named metrics with fixed label names, families
of children keyed by label values, a JSON-able :meth:`MetricsRegistry.snapshot`
for programmatic consumption, and :meth:`MetricsRegistry.prometheus_text`
emitting the text exposition format served by ``GET /metrics``.

Everything is thread-safe (web jobs run on daemon threads) and pure
stdlib.  The null twins at the bottom (:data:`NULL_REGISTRY` and friends)
are what disabled telemetry hands out: every mutation is a no-op on a
shared singleton, so the instrumented hot paths cost one attribute call
when telemetry is off.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping, Sequence

#: Default histogram buckets, in seconds (the common unit here).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")


class MetricError(ValueError):
    """Metric misuse: name/type/label mismatches."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label_value(str(v))}"'
        for n, v in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


def _format_value(v: float) -> str:
    if v == _INF:
        return "+Inf"
    if v == int(v):
        return str(int(v))
    return repr(v)


class _Metric:
    """Shared machinery: label resolution and the child table."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # Materialize the unlabeled child eagerly so the metric is
            # visible (at zero) from the moment it is declared.
            self._children[()] = self._new_child()

    def _new_child(self) -> object:
        raise NotImplementedError

    def _child(self, labels: Mapping[str, object]) -> object:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items(), key=lambda kv: kv[0])


class _Value:
    """A float cell guarded by its own lock."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def _new_child(self) -> _Value:
        return _Value()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        cell: _Value = self._child(labels)  # type: ignore[assignment]
        cell.add(amount)

    def value(self, **labels: object) -> float:
        cell: _Value = self._child(labels)  # type: ignore[assignment]
        return cell.value


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> _Value:
        return _Value()

    def set(self, value: float, **labels: object) -> None:
        cell: _Value = self._child(labels)  # type: ignore[assignment]
        cell.set(float(value))

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        cell: _Value = self._child(labels)  # type: ignore[assignment]
        cell.add(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        cell: _Value = self._child(labels)  # type: ignore[assignment]
        cell.add(-amount)

    def value(self, **labels: object) -> float:
        cell: _Value = self._child(labels)  # type: ignore[assignment]
        return cell.value


class _HistogramValue:
    __slots__ = ("_lock", "bucket_counts", "total", "count", "buckets")

    def __init__(self, buckets: tuple[float, ...]):
        self._lock = threading.Lock()
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # trailing +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.total += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Bucket counts as Prometheus wants them (cumulative, incl +Inf)."""
        out: list[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


class Histogram(_Metric):
    """Distribution of observations over fixed buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        cell: _HistogramValue = self._child(labels)  # type: ignore[assignment]
        cell.observe(float(value))


class MetricsRegistry:
    """Named metrics with get-or-create declaration semantics.

    Declaring the same name twice returns the existing metric, provided
    kind and label names agree — so instrumented call sites can declare
    inline without coordinating module import order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- declaration -----------------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kwargs: object
    ) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help, labelnames, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise MetricError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"  # type: ignore[attr-defined]
            )
        if metric.labelnames != tuple(labelnames):
            raise MetricError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}"
            )
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    # -- introspection ---------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Everything, as one JSON-able document."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            samples = []
            for key, cell in metric.samples():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(cell, _HistogramValue):
                    samples.append(
                        {
                            "labels": labels,
                            "count": cell.count,
                            "sum": cell.total,
                            "buckets": {
                                _format_value(b): c
                                for b, c in zip(
                                    (*metric.buckets, _INF), cell.cumulative()  # type: ignore[attr-defined]
                                )
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": cell.value})  # type: ignore[union-attr]
            out[name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, cell in metric.samples():
                if isinstance(cell, _HistogramValue):
                    bounds = (*metric.buckets, _INF)  # type: ignore[attr-defined]
                    for bound, count in zip(bounds, cell.cumulative()):
                        label_str = _format_labels(
                            (*metric.labelnames, "le"),
                            (*key, _format_value(bound)),
                        )
                        lines.append(f"{name}_bucket{label_str} {count}")
                    base = _format_labels(metric.labelnames, key)
                    lines.append(f"{name}_sum{base} {_format_value(cell.total)}")
                    lines.append(f"{name}_count{base} {cell.count}")
                else:
                    label_str = _format_labels(metric.labelnames, key)
                    lines.append(
                        f"{name}{label_str} {_format_value(cell.value)}"  # type: ignore[union-attr]
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# -- disabled-mode twins -------------------------------------------------------


class _NullChildOps:
    """Accepts every metric mutation and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0


_NULL_METRIC = _NullChildOps()


class NullRegistry:
    """Registry twin handed out when telemetry is disabled."""

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _NullChildOps:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _NullChildOps:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> _NullChildOps:
        return _NULL_METRIC

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, dict]:
        return {}

    def prometheus_text(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()

"""Unified telemetry: metrics registry, tracing spans, structured logs.

Public surface::

    from repro.telemetry import get_telemetry, configure, correlate

    tel = configure(enabled=True)          # install a live instance
    with correlate(run_id=new_run_id()):
        with tel.span("index.build", b=15):
            ...
        tel.metrics.counter("index_builds_total", "Builds").inc()
    print(tel.metrics.prometheus_text())   # GET /metrics body
    tel.tracer.write_chrome_trace(open("trace.json", "w"))

See DESIGN.md §7 for the metric-name and span taxonomies.
"""

from .context import correlate, correlation_ids, new_run_id
from .logs import NULL_LOGGER, JsonLogger, NullLogger
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
)
from .runtime import Telemetry, configure, get_telemetry, set_telemetry
from .tracing import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_LOGGER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricError",
    "MetricsRegistry",
    "NullLogger",
    "NullRegistry",
    "NullTracer",
    "Telemetry",
    "Tracer",
    "configure",
    "correlate",
    "correlation_ids",
    "get_telemetry",
    "new_run_id",
    "set_telemetry",
]

"""The telemetry facade and the process-global instance.

Instrumented code across the stack asks for the active telemetry via
:func:`get_telemetry` and talks to three members:

* ``metrics`` — a :class:`~repro.telemetry.metrics.MetricsRegistry`;
* ``tracer`` — a :class:`~repro.telemetry.tracing.Tracer`;
* ``log`` — a :class:`~repro.telemetry.logs.JsonLogger`.

The default global instance is **disabled**: all three members are
shared null singletons whose every method is a constant-time no-op, so
the hot paths pay one function call and one attribute read when nothing
is listening.  ``configure(enabled=True, ...)`` installs a live
instance (the web app does this on construction; the CLI does it when
any of ``--metrics-out`` / ``--trace-out`` / ``--log-json`` is given).
"""

from __future__ import annotations

from typing import IO

from .logs import NULL_LOGGER, JsonLogger, NullLogger
from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .tracing import NULL_TRACER, NullTracer, Tracer


class Telemetry:
    """One bundle of registry + tracer + structured logger."""

    def __init__(self, enabled: bool = False, log_stream: IO[str] | None = None):
        self.enabled = bool(enabled)
        self.metrics: MetricsRegistry | NullRegistry = (
            MetricsRegistry() if self.enabled else NULL_REGISTRY
        )
        self.tracer: Tracer | NullTracer = (
            Tracer() if self.enabled else NULL_TRACER
        )
        self.log: JsonLogger | NullLogger = (
            JsonLogger(log_stream)
            if (self.enabled and log_stream is not None)
            else NULL_LOGGER
        )

    def span(self, name: str, cat: str = "app", **args: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, cat=cat, **args)


_GLOBAL = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-global telemetry (disabled no-op by default)."""
    return _GLOBAL


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` globally; returns it for chaining."""
    global _GLOBAL
    _GLOBAL = telemetry
    return telemetry


def configure(enabled: bool = True, log_stream: IO[str] | None = None) -> Telemetry:
    """Create and install a fresh global telemetry instance."""
    return set_telemetry(Telemetry(enabled=enabled, log_stream=log_stream))

"""Structured (JSON-lines) logging with correlation ids.

One line per event, each a self-contained JSON object::

    {"ts": 1722873600.123, "level": "info", "event": "web.job.done",
     "job_id": 3, "run_id": "9f1c2d...", "n_reads": 1000}

Correlation ids active in the calling context (see
:mod:`repro.telemetry.context`) are merged into every line, which is
what lets a log aggregator stitch the CLI/web, index and device layers
of one run back together.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO

from .context import correlation_ids


class JsonLogger:
    """Thread-safe JSON-lines writer."""

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self._lock = threading.Lock()
        self.lines_written = 0

    def log(self, event: str, level: str = "info", **fields: object) -> None:
        doc: dict[str, object] = {"ts": time.time(), "level": level, "event": event}
        doc.update(correlation_ids())
        doc.update(fields)
        line = json.dumps(doc, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self.lines_written += 1

    def info(self, event: str, **fields: object) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(event, level="error", **fields)


class NullLogger:
    """Logger twin handed out when telemetry (or the log sink) is off."""

    lines_written = 0

    def log(self, event: str, level: str = "info", **fields: object) -> None:
        pass

    def info(self, event: str, **fields: object) -> None:
        pass

    def warning(self, event: str, **fields: object) -> None:
        pass

    def error(self, event: str, **fields: object) -> None:
        pass


NULL_LOGGER = NullLogger()

"""Span tracer exporting to the Chrome Trace Event format.

Spans time host-side work — index build, search batches, transfers,
whole web jobs — and nest naturally: a span opened inside another span
on the same thread renders as a child slice in Perfetto /
``chrome://tracing``.  The export speaks the same JSON dialect as
:mod:`repro.fpga.tracing`, so the modeled device timeline (h2d / kernel
/ d2h tracks on its own pid) and the application spans land in one file
and one timeline.

Application spans live on ``pid 0``; each OS thread gets its own track.
Timestamps are microseconds relative to the tracer's epoch
(``perf_counter`` at construction), which is what the device-event
merge anchors against (:meth:`Tracer.add_raw_events` with the offset the
caller sampled via :meth:`Tracer.now_us`).
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO

from .context import correlation_ids

#: The application's process id in the trace (the device model uses 1).
PID_APP = 0


class _SpanHandle:
    """Context manager for one span; records the slice on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0_us")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0_us = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._t0_us = self._tracer.now_us()
        return self

    def __exit__(self, *exc: object) -> bool:
        end_us = self._tracer.now_us()
        args = {**correlation_ids(), **self.args}
        self._tracer._record(
            {
                "ph": "X",
                "pid": PID_APP,
                "tid": self._tracer._tid(),
                "name": self.name,
                "cat": self.cat,
                "ts": self._t0_us,
                "dur": max(0.001, end_us - self._t0_us),
                "args": args,
            }
        )
        return False


class Tracer:
    """Collects spans and instants; merges foreign (device) events."""

    def __init__(self) -> None:
        self._epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._tids: dict[int, int] = {}

    # -- clock -----------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since the tracer's epoch."""
        return (time.perf_counter_ns() - self._epoch_ns) / 1e3

    # -- recording -------------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids) + 1)
                self._events.append(
                    {
                        "ph": "M",
                        "pid": PID_APP,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": threading.current_thread().name},
                    }
                )
        return tid

    def _record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, cat: str = "app", **args: object) -> _SpanHandle:
        """A context manager timing one nested slice of work."""
        return _SpanHandle(self, name, cat, dict(args))

    def instant(self, name: str, cat: str = "app", **args: object) -> None:
        """A zero-duration marker (fault detections, state transitions)."""
        self._record(
            {
                "ph": "i",
                "pid": PID_APP,
                "tid": self._tid(),
                "name": name,
                "cat": cat,
                "ts": self.now_us(),
                "s": "t",
                "args": {**correlation_ids(), **args},
            }
        )

    def add_raw_events(self, events: list[dict]) -> None:
        """Merge pre-built Chrome events (the modeled device timeline)."""
        with self._lock:
            self._events.extend(events)

    # -- export ----------------------------------------------------------------

    def chrome_events(self) -> list[dict]:
        with self._lock:
            events = list(self._events)
        meta = [
            {
                "ph": "M",
                "pid": PID_APP,
                "name": "process_name",
                "args": {"name": "application"},
            }
        ]
        return meta + events

    def write_chrome_trace(self, fh: IO[str]) -> int:
        """Write the merged trace JSON; returns the number of slices."""
        events = self.chrome_events()
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
        return sum(1 for e in events if e.get("ph") == "X")


# -- disabled-mode twin --------------------------------------------------------


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer twin handed out when telemetry is disabled."""

    def now_us(self) -> float:
        return 0.0

    def span(self, name: str, cat: str = "app", **args: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "app", **args: object) -> None:
        pass

    def add_raw_events(self, events: list[dict]) -> None:
        pass

    def chrome_events(self) -> list[dict]:
        return []

    def write_chrome_trace(self, fh: IO[str]) -> int:
        json.dump({"traceEvents": [], "displayTimeUnit": "ms"}, fh)
        return 0


NULL_TRACER = NullTracer()

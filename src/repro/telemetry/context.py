"""Correlation ids threaded through spans, metrics and log lines.

Every unit of work in the stack — a CLI invocation, a web job, one
device batch — gets a correlation id; spans and structured log lines
emitted underneath automatically carry the ids active at that point, so
one mapping run can be followed from the HTTP submission through the
index build down to individual kernel batches.

Ids live in a :class:`contextvars.ContextVar`, which respects both
threads and the synchronous call stack: a web job running on a daemon
thread sees only its own ``job_id``.
"""

from __future__ import annotations

import contextlib
import uuid
from collections.abc import Iterator
from contextvars import ContextVar

#: Active correlation ids, as an immutable tuple of (key, value) pairs so
#: nested ``correlate()`` scopes restore cleanly on exit.
_CORRELATION: ContextVar[tuple[tuple[str, object], ...]] = ContextVar(
    "repro_telemetry_correlation", default=()
)


def new_run_id() -> str:
    """A fresh short correlation id (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def correlation_ids() -> dict[str, object]:
    """The correlation ids active in the calling context."""
    return dict(_CORRELATION.get())


@contextlib.contextmanager
def correlate(**ids: object) -> Iterator[dict[str, object]]:
    """Bind correlation ids for the duration of the ``with`` block.

    Nested scopes merge (inner keys shadow outer ones) and unwind on
    exit.  Yields the merged mapping for convenience.
    """
    merged = dict(_CORRELATION.get())
    merged.update(ids)
    token = _CORRELATION.set(tuple(merged.items()))
    try:
        yield merged
    finally:
        _CORRELATION.reset(token)

"""Runtime-reconfigurable two-pass mapping (Arram et al., paper §II).

The paper's related work describes a "runtime reconfigurable architecture
... entirely based on FM-index": all reads first pass through a fast
exact-alignment module, then "the FPGA fabric is reconfigured and any
unaligned read is processed by the slower one- and two-mismatches
alignment modules".  BWaveR itself stops at exact matching; this module
models the two-pass extension so the design space the paper situates
itself in is executable:

* **pass 1** — the existing exact kernel over all reads (modeled as
  usual);
* **reconfiguration** — a fixed fabric-reprogram overhead (partial
  bitstream load, ~100 ms class) plus reloading the BWT structure;
* **pass 2** — the k-mismatch module over the unmapped remainder only.
  Functionally it is :func:`repro.mapper.mismatch.search_with_mismatches`
  (both strands); its cost model charges the measured extension steps at
  the same pipeline rate (backtracking hardware explores one branch
  extension per cycle per lane, like the exact module).

The reported trade mirrors the related work's: rescue recovers reads at
the price of reconfiguration latency + the slower pass — worth it only
when enough reads need rescuing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bwt_structure import BWTStructure
from ..core.counters import CounterScope
from ..index.fm_index import FMIndex
from ..mapper.mismatch import search_with_mismatches
from ..sequence.alphabet import reverse_complement
from .accelerator import FPGAAccelerator
from .cost_model import DEFAULT_COST_MODEL, FPGACostModel

#: Fixed fabric-reconfiguration overhead (partial bitstream load).
DEFAULT_RECONFIG_SECONDS = 0.100


@dataclass
class TwoPassRun:
    """Outcome of an exact + k-mismatch rescue run."""

    n_reads: int
    exact_mapped: int
    rescued: int
    pass1_seconds: float
    reconfig_seconds: float
    pass2_seconds: float
    rescue_steps: int

    @property
    def total_seconds(self) -> float:
        return self.pass1_seconds + self.reconfig_seconds + self.pass2_seconds

    @property
    def total_mapped(self) -> int:
        return self.exact_mapped + self.rescued

    @property
    def exact_only_accuracy(self) -> float:
        return self.exact_mapped / self.n_reads if self.n_reads else 0.0

    @property
    def two_pass_accuracy(self) -> float:
        return self.total_mapped / self.n_reads if self.n_reads else 0.0


class TwoPassAccelerator:
    """Exact pass + reconfigure + k-mismatch rescue pass.

    Parameters
    ----------
    structure:
        The succinct BWT structure (shared by both passes).
    k:
        Mismatch budget of the rescue module (1 or 2, as in the related
        work).
    reconfig_seconds:
        Fabric reprogram overhead charged between passes.
    """

    def __init__(
        self,
        structure: BWTStructure,
        k: int = 1,
        cost_model: FPGACostModel = DEFAULT_COST_MODEL,
        reconfig_seconds: float = DEFAULT_RECONFIG_SECONDS,
    ):
        if k < 1 or k > 2:
            raise ValueError("the rescue module supports k in {1, 2}")
        if reconfig_seconds < 0:
            raise ValueError("reconfiguration overhead must be >= 0")
        self.structure = structure
        self.k = int(k)
        self.cost_model = cost_model
        self.reconfig_seconds = float(reconfig_seconds)
        self.accelerator = FPGAAccelerator(structure, cost_model=cost_model)
        self._index = FMIndex(structure, locate_structure=None)

    def map_batch(self, reads) -> TwoPassRun:
        """Run both passes; returns timing + accuracy accounting."""
        reads = list(reads)
        pass1 = self.accelerator.map_batch(reads, include_load=True)
        unmapped = [
            reads[i]
            for i, o in enumerate(pass1.kernel_run.outcomes)
            if not o.mapped
        ]
        rescued = 0
        rescue_steps = 0
        pass2_seconds = 0.0
        reconfig = 0.0
        if unmapped:
            reconfig = self.reconfig_seconds + self.cost_model.load_seconds(
                self.accelerator.structure_bytes
            )
            counters = self.structure.counters
            with CounterScope(counters) as scope:
                for read in unmapped:
                    hit = False
                    for seq in (read, reverse_complement(read)):
                        if any(
                            h.count
                            for h in search_with_mismatches(self._index, seq, self.k)
                        ):
                            hit = True
                            break
                    if hit:
                        rescued += 1
            rescue_steps = scope.delta["bs_steps"]
            # The rescue module retires one branch extension per cycle per
            # lane, like the exact pipeline.
            pass2_seconds = self.cost_model.kernel_seconds(
                rescue_steps, len(unmapped)
            )
        return TwoPassRun(
            n_reads=len(reads),
            exact_mapped=pass1.kernel_run.mapped_reads,
            rescued=rescued,
            pass1_seconds=pass1.modeled_seconds,
            reconfig_seconds=reconfig,
            pass2_seconds=pass2_seconds,
            rescue_steps=rescue_steps,
        )

    def break_even_unmapped_fraction(self, n_reads: int, read_length: int) -> float:
        """Unmapped fraction above which the second pass costs more than
        it would cost to simply re-run exact mapping on everything.

        A rough planning number: pass-2 branch factors make each rescued
        read ~``3 * read_length`` times the steps of an exact read at
        k=1; the reconfiguration overhead amortizes over the batch.
        """
        exact_steps = n_reads * read_length
        exact_seconds = self.cost_model.kernel_seconds(exact_steps, n_reads)
        overhead = self.reconfig_seconds + self.cost_model.load_seconds(
            self.accelerator.structure_bytes
        )
        per_unmapped_steps = 3 * read_length * read_length  # k=1 branch cost
        per_unmapped_seconds = self.cost_model.kernel_seconds(per_unmapped_steps, 1)
        if per_unmapped_seconds <= 0:
            return 1.0
        frac = (exact_seconds - overhead) / (n_reads * per_unmapped_seconds)
        return max(0.0, min(1.0, frac))

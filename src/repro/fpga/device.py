"""Device descriptors for the simulated accelerator card.

The paper deploys on a **Xilinx Alveo U200** (UltraScale+ XCU200) on the
Nimbix cloud.  We model the card at the level the evaluation depends on:

* **on-chip memory capacity** — the design keeps the whole BWT structure
  in BRAM/URAM ("the data are then stored on the on-chip Block RAM"),
  so capacity bounds the largest reference (the paper: "genomic
  sequences as long as human chromosomes, containing up to ~100 millions
  bases");
* **port width** — every port loads 512-bit blocks "to exploit memory
  burst";
* **clock** — kernel cycles convert to seconds through it;
* **board power** — the paper's power-efficiency rows use a flat 25 W
  reference value for the U200 (and 135 W for the Xeon host).

The XCU200 carries 4 320 × 36 Kb BRAM blocks (~19.4 MB) and 960 × 288 Kb
URAM blocks (~33.8 MB); the capacity model pools them, as HLS designs
freely map large arrays to either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..telemetry import get_telemetry


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an accelerator card."""

    name: str
    bram_bytes: int
    uram_bytes: int
    port_bits: int
    clock_hz: float
    board_power_watts: float

    @property
    def on_chip_bytes(self) -> int:
        """Pooled on-chip capacity available to the kernel's arrays."""
        return self.bram_bytes + self.uram_bytes

    @property
    def port_bytes(self) -> int:
        return self.port_bits // 8


#: The paper's card: Alveo U200 (XCU200), 25 W reference power.
ALVEO_U200 = DeviceSpec(
    name="xilinx_u200",
    bram_bytes=4320 * 36 * 1024 // 8,
    uram_bytes=960 * 288 * 1024 // 8,
    port_bits=512,
    clock_hz=300e6,
    board_power_watts=25.0,
)

#: The paper's software host: Intel Xeon E5-2698 v3, 135 W reference power.
XEON_E5_2698V3_WATTS = 135.0


class CapacityError(RuntimeError):
    """Raised when a structure does not fit the device's on-chip memory."""


class DeviceState(Enum):
    """Host-side view of the card's condition."""

    OK = "ok"
    FAULTY = "faulty"  # faults observed, still serving after recovery
    FAILED = "failed"  # retry ladder exhausted; traffic degraded to CPU


@dataclass
class DeviceHealth:
    """Fault/recovery ledger the host keeps per device.

    The accelerator records every detected fault, successful attempt and
    reset here; the web job summary and the CLI fault report read it
    back.  ``consecutive_faults`` drives the reset-and-reprogram rung of
    the recovery ladder.
    """

    state: DeviceState = DeviceState.OK
    consecutive_faults: int = 0
    total_faults: int = 0
    resets: int = 0
    fault_kinds: dict[str, int] = field(default_factory=dict)

    def _transition(self, new_state: DeviceState) -> None:
        """Move to ``new_state``, recording the edge in the registry."""
        if new_state is self.state:
            return
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "device_state_transitions_total",
                "DeviceHealth state machine edges",
                labelnames=("from_state", "to_state"),
            ).inc(from_state=self.state.value, to_state=new_state.value)
            tel.metrics.gauge(
                "device_state",
                "Device condition (0=ok, 1=faulty, 2=failed)",
            ).set({"ok": 0, "faulty": 1, "failed": 2}[new_state.value])
            tel.tracer.instant(
                f"device.{new_state.value}", cat="fault", from_state=self.state.value
            )
        self.state = new_state

    def record_fault(self, kind: str) -> None:
        self.consecutive_faults += 1
        self.total_faults += 1
        self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "device_faults_total",
                "Detected device faults by kind",
                labelnames=("kind",),
            ).inc(kind=kind)
        if self.state is DeviceState.OK:
            self._transition(DeviceState.FAULTY)

    def record_success(self) -> None:
        self.consecutive_faults = 0
        if self.state is DeviceState.FAULTY:
            self._transition(DeviceState.OK)

    def record_reset(self) -> None:
        self.resets += 1
        self.consecutive_faults = 0
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "device_resets_total", "Device reset + reprogram recoveries"
            ).inc()

    def mark_failed(self) -> None:
        self._transition(DeviceState.FAILED)

    def to_dict(self) -> dict:
        return {
            "state": self.state.value,
            "total_faults": self.total_faults,
            "resets": self.resets,
            "fault_kinds": dict(self.fault_kinds),
        }


def check_fits(spec: DeviceSpec, structure_bytes: int, margin: float = 0.85) -> None:
    """Validate that a BWT structure fits on-chip.

    ``margin`` reserves a fraction of the capacity for the kernel's own
    buffers and control logic (routing pressure makes 100 % utilization
    unachievable in practice).
    """
    usable = int(spec.on_chip_bytes * margin)
    if structure_bytes > usable:
        raise CapacityError(
            f"structure of {structure_bytes / 1e6:.1f} MB exceeds the usable "
            f"on-chip capacity of {spec.name} ({usable / 1e6:.1f} MB at "
            f"{margin:.0%} margin); increase b/sf compression or split the "
            f"reference (the paper caps references near 100 Mbp for this reason)"
        )


def max_reference_bases(
    spec: DeviceSpec,
    bytes_per_base: float,
    margin: float = 0.85,
) -> int:
    """Largest reference (bases) that fits given a structure density.

    With the paper's b=15, sf=100 density (~0.317 B/base measured on the
    Chr21 run: 12.73 MB / 40.1 Mbp) the U200 pool supports on the order
    of 10^8 bases — matching the paper's "~100 millions bases" claim,
    which the capacity tests reproduce.
    """
    if bytes_per_base <= 0:
        raise ValueError("bytes_per_base must be positive")
    return int(spec.on_chip_bytes * margin / bytes_per_base)

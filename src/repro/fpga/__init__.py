"""Simulated FPGA accelerator (Alveo U200 substitute).

Functional layer: :class:`~repro.fpga.kernel.BackwardSearchKernel` and
:class:`~repro.fpga.pipeline.DualPipeline` execute the exact hardware
algorithm (results bit-identical to the software mapper).  Performance
layer: :class:`~repro.fpga.cost_model.FPGACostModel`,
:class:`~repro.fpga.power.PowerModel` and
:class:`~repro.fpga.multicore.MulticoreModel` convert measured workload
statistics into modeled device time and energy.  Host layer:
:mod:`~repro.fpga.opencl` (profiling events) and
:class:`~repro.fpga.accelerator.FPGAAccelerator` (the user-facing facade).
"""

from .accelerator import AcceleratorRun, FPGAAccelerator
from .bram import BramBank, BramModel
from .cost_model import DEFAULT_COST_MODEL, FPGACostModel
from .device import (
    ALVEO_U200,
    XEON_E5_2698V3_WATTS,
    CapacityError,
    DeviceHealth,
    DeviceSpec,
    DeviceState,
    check_fits,
    max_reference_bases,
)
from .hls_report import HLSReport, generate_report, latency_estimate
from .kernel import BackwardSearchKernel, KernelRun, QueryOutcome
from .multicore import MulticoreModel, scaling_curve
from .opencl import Buffer, CLError, CommandQueue, CommandType, Context, Event
from .pipeline import DualPipeline
from .power import DEFAULT_POWER_MODEL, PowerModel
from .reconfig import TwoPassAccelerator, TwoPassRun
from .tracing import timeline_summary, to_trace_events, write_trace

__all__ = [
    "ALVEO_U200",
    "AcceleratorRun",
    "BackwardSearchKernel",
    "BramBank",
    "BramModel",
    "Buffer",
    "CLError",
    "CapacityError",
    "CommandQueue",
    "CommandType",
    "Context",
    "DEFAULT_COST_MODEL",
    "DEFAULT_POWER_MODEL",
    "DeviceHealth",
    "DeviceSpec",
    "DeviceState",
    "DualPipeline",
    "Event",
    "FPGAAccelerator",
    "FPGACostModel",
    "HLSReport",
    "KernelRun",
    "generate_report",
    "latency_estimate",
    "MulticoreModel",
    "PowerModel",
    "QueryOutcome",
    "XEON_E5_2698V3_WATTS",
    "check_fits",
    "max_reference_bases",
    "scaling_curve",
    "timeline_summary",
    "to_trace_events",
    "TwoPassAccelerator",
    "TwoPassRun",
    "write_trace",
]

"""Functional model of the backward-search kernel (paper §III-C).

The kernel is the device-side half of BWaveR: it holds the succinct BWT
structure in on-chip memory, fetches 512-bit query records, computes each
query's reverse complement on the fly, runs both backward searches in
parallel pipelines, and streams back ``[start, end]`` interval pairs for
both strands.

This model is **functionally exact** — the intervals it produces are
asserted bit-identical to the software :class:`~repro.mapper.mapper.Mapper`
by the equivalence tests — and **instrumented**: it records the hardware
step count per query (the *max* of the two strands' steps, because the
strand pipelines run in lockstep) and attributes the rank structures'
memory operations to BRAM banks.  The cycle model converts those
statistics to modeled time; nothing here sleeps or fakes latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..core.counters import CounterScope
from ..core.rrr import RRRVector
from ..faults import FaultInjector, KernelHangError
from ..index.fm_index import FMIndex
from ..index.ftab import Ftab
from ..mapper.query import unpack_queries
from ..sequence.alphabet import reverse_complement
from ..telemetry import get_telemetry
from .bram import BramModel
from .device import ALVEO_U200, DeviceSpec


@dataclass(frozen=True)
class QueryOutcome:
    """Device output for one query record: both strands' intervals.

    ``fwd_steps``/``rc_steps`` are *logical* backward-search steps — one
    per consumed pattern symbol — and stay bit-identical whether or not
    the kernel carries a k-mer jump-start table.  ``fwd_exec_steps`` /
    ``rc_exec_steps`` are the steps the pipeline actually executes: with
    an ftab the first ``k`` symbols collapse into one BRAM LUT burst,
    which counts as a single step-equivalent.  A negative value means
    "no ftab: executed == logical".
    """

    query_id: int
    fwd_start: int
    fwd_end: int
    rc_start: int
    rc_end: int
    fwd_steps: int
    rc_steps: int
    fwd_exec_steps: int = -1
    rc_exec_steps: int = -1

    @property
    def hw_steps(self) -> int:
        """Pipeline occupancy: the slower strand bounds the record."""
        f = self.fwd_exec_steps if self.fwd_exec_steps >= 0 else self.fwd_steps
        r = self.rc_exec_steps if self.rc_exec_steps >= 0 else self.rc_steps
        return max(f, r)

    @property
    def mapped(self) -> bool:
        return self.fwd_end > self.fwd_start or self.rc_end > self.rc_start


@dataclass
class KernelRun:
    """Aggregate result of one kernel invocation."""

    outcomes: list[QueryOutcome]
    hw_steps_total: int
    sw_steps_total: int
    op_counts: dict[str, int] = field(default_factory=dict)
    bram_traffic: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_reads(self) -> int:
        return len(self.outcomes)

    @property
    def mapped_reads(self) -> int:
        return sum(1 for o in self.outcomes if o.mapped)

    def result_array(self) -> np.ndarray:
        """The (n, 4) int64 interval buffer the device would DMA back."""
        return np.array(
            [[o.fwd_start, o.fwd_end, o.rc_start, o.rc_end] for o in self.outcomes],
            dtype=np.int64,
        ).reshape(-1, 4)


def executed_steps(ftab: Ftab | None, seq_len: int, steps: int) -> int:
    """Pipeline slots one strand occupies for ``steps`` logical steps.

    With an ftab, a query of length >= k replaces its first k iterations
    with one LUT burst (one step-equivalent); entries that emptied inside
    the seed region (steps < k) also cost exactly the one burst.
    """
    if ftab is None or seq_len < ftab.k:
        return steps
    return max(steps - (ftab.k - 1), 1)


class BackwardSearchKernel:
    """The device kernel: succinct structure + dual search pipelines.

    Parameters
    ----------
    structure:
        The :class:`BWTStructure` to keep on-chip.  Construction *places*
        every array of the structure into the BRAM model, raising
        :class:`~repro.fpga.device.CapacityError` when the reference is
        too large for the card — the simulated analogue of failing to
        fit at synthesis.
    spec:
        Device description (capacity, port width, clock).
    injector:
        Optional :class:`~repro.faults.FaultInjector`; when attached, the
        kernel is subject to injected hangs and garbage result records,
        and its BRAM banks to bit upsets.  The kernel's own CRC check on
        bank access is the detection side.
    ftab:
        Optional k-mer jump-start table.  When given, it is placed as an
        on-chip ``ftab_lut`` bank and each strand's first ``k`` pipeline
        iterations are replaced by one LUT burst; reported intervals and
        logical step counts stay bit-identical.
    """

    def __init__(
        self,
        structure: BWTStructure,
        spec: DeviceSpec = ALVEO_U200,
        injector: FaultInjector | None = None,
        ftab: Ftab | None = None,
    ):
        self.structure = structure
        self.spec = spec
        self.injector = injector
        self.ftab = ftab
        self.bram = BramModel(spec=spec)
        self._place_structure()
        self._index = FMIndex(structure, locate_structure=None, ftab=ftab)

    def _place_structure(self) -> None:
        """Allocate one bank per logical array of the structure.

        Arrays with a host-side byte image seed the bank contents (and
        thereby the bank's CRC word); packed streams without one get a
        zero image of the right size — the integrity check works the
        same either way.
        """
        tree = self.structure.tree
        for i, node in enumerate(tree.nodes()):
            bits = node.bits
            if isinstance(bits, RRRVector):
                self.bram.allocate(f"node{i}_classes", (bits.n_blocks + 1) // 2)
                self.bram.allocate(
                    f"node{i}_psums", bits.partial_sums.nbytes, data=bits.partial_sums
                )
                self.bram.allocate(
                    f"node{i}_osums", bits.offset_sums.nbytes, data=bits.offset_sums
                )
                self.bram.allocate(f"node{i}_offsets", (bits.offset_bits + 7) // 8)
            else:
                self.bram.allocate(f"node{i}_bits", bits.size_in_bytes())
        # Shared tables (one copy, the paper's sharing) + C array + $ pos.
        root = tree.root.bits
        if isinstance(root, RRRVector):
            self.bram.allocate("global_rank_table", root.tables.size_in_bytes())
        self.bram.allocate("c_array", self.structure.C.nbytes, data=self.structure.C)
        self.bram.allocate("meta", 16)
        if self.ftab is not None:
            # K-mer jump-start LUT: one bank holding (lo, hi, steps) per
            # 4^k entry, read as a single burst at pipeline entry.
            ft = self.ftab
            image = np.concatenate(
                [
                    np.frombuffer(arr.tobytes(), dtype=np.uint8)
                    for arr in (ft.lo, ft.hi, ft.steps)
                ]
            )
            self.bram.allocate("ftab_lut", image.nbytes, data=image)

    @property
    def n_rows(self) -> int:
        """Rows of the BWT matrix (the bound result intervals live in)."""
        return self._index.n_rows

    def reprogram(self) -> int:
        """Reload every bank from the host's golden copy (device reset +
        reprogram recovery rung); returns the number of banks restored."""
        return self.bram.reprogram()

    # -- execution ------------------------------------------------------------

    def execute(self, records: np.ndarray) -> KernelRun:
        """Process a buffer of packed 512-bit query records.

        Decodes the records (as the device does), derives each reverse
        complement, and runs both strands' backward searches.  The batch
        path and the scalar dual-pipeline path produce identical results;
        this method uses the vectorized search for speed and charges BRAM
        traffic from the rank structures' operation counters.
        """
        if self.injector is not None and self.injector.hang_kernel():
            raise KernelHangError(
                "kernel produced no completion within the watchdog deadline "
                "(simulated hang)"
            )
        # On-access integrity: the succinct structure is read start to end
        # every invocation, so the CRC words are checked here, before any
        # interval leaves the device.
        self.bram.verify_integrity()
        queries = unpack_queries(records)
        seqs = [q.sequence for q in queries]
        rcs = [reverse_complement(s) for s in seqs]
        counters = self.structure.counters
        with CounterScope(counters) as scope:
            lo, hi, steps = self._index.search_batch(seqs + rcs)
        n = len(seqs)
        outcomes: list[QueryOutcome] = []
        hw_total = 0
        sw_total = 0
        for i, q in enumerate(queries):
            f_steps = int(steps[i])
            r_steps = int(steps[n + i])
            out = QueryOutcome(
                query_id=q.query_id,
                fwd_start=int(lo[i]),
                fwd_end=int(hi[i]),
                rc_start=int(lo[n + i]),
                rc_end=int(hi[n + i]),
                fwd_steps=f_steps,
                rc_steps=r_steps,
                fwd_exec_steps=executed_steps(self.ftab, len(seqs[i]), f_steps),
                rc_exec_steps=executed_steps(self.ftab, len(rcs[i]), r_steps),
            )
            outcomes.append(out)
            hw_total += out.hw_steps
            sw_total += out.fwd_steps + out.rc_steps
        if self.injector is not None:
            gi = self.injector.garble_index(len(outcomes))
            if gi is not None:
                bad = outcomes[gi]
                outcomes[gi] = QueryOutcome(
                    query_id=bad.query_id,
                    fwd_start=-1,
                    fwd_end=self._index.n_rows + 17,
                    rc_start=bad.rc_end,
                    rc_end=bad.rc_start,
                    fwd_steps=bad.fwd_steps,
                    rc_steps=bad.rc_steps,
                    fwd_exec_steps=bad.fwd_exec_steps,
                    rc_exec_steps=bad.rc_exec_steps,
                )
        self._charge_bram(scope.delta)
        tel = get_telemetry()
        if tel.enabled:
            m = tel.metrics
            m.counter(
                "fpga_kernel_invocations_total", "Kernel executions on the model"
            ).inc()
            m.counter(
                "fpga_kernel_reads_total", "Query records processed by the kernel"
            ).inc(len(outcomes))
            m.counter(
                "fpga_hw_steps_total",
                "Hardware pipeline steps (max of the two strands per record)",
            ).inc(hw_total)
        return KernelRun(
            outcomes=outcomes,
            hw_steps_total=hw_total,
            sw_steps_total=sw_total,
            op_counts=scope.delta,
            bram_traffic=self.bram.traffic(),
        )

    def _charge_bram(self, delta: dict[str, int]) -> None:
        """Attribute counter deltas to bank traffic.

        Placement is per-node but traffic attribution is aggregate (the
        counters do not distinguish nodes); the root node's banks act as
        the ledger, which is sufficient for the invariants the tests
        check (reads-per-rank bounds).
        """
        t = self.bram.banks
        if "node0_classes" in t:
            t["node0_classes"].read(delta.get("class_sum_iterations", 0))
            t["node0_psums"].read(delta.get("superblock_reads", 0))
            t["node0_offsets"].read(delta.get("offset_reads", 0))
        if "global_rank_table" in t:
            t["global_rank_table"].read(delta.get("table_lookups", 0))
        t["c_array"].read(2 * delta.get("bs_steps", 0))
        if "ftab_lut" in t:
            # One burst per jump-start lookup; the counter's bs_steps is
            # already net of the k iterations the burst replaces.
            t["ftab_lut"].read(delta.get("ftab_lookups", 0))

    def structure_bytes(self) -> int:
        """On-chip footprint as placed (what the load overhead transfers)."""
        return self.bram.allocated_bytes

"""Multi-core scaling model (paper §V future work, ablation C).

The paper's future work proposes "leverag[ing] the FPGA's parallelism to
develop a multi-core architecture where multiple DNA fragments are mapped
at the same time".  In the cost model a "core" is a replicated search
pipeline (a *lane*).  Replication is bounded by two resources:

* **on-chip memory ports** — all lanes share one copy of the BWT
  structure; true multi-porting of BRAM tops out at two physical ports,
  beyond which arrays must be duplicated or banked.  We model a
  cyclically-banked structure giving ``PORTS_PER_BANK_GROUP`` conflict-
  free accesses per cycle per bank group; lanes beyond the port budget
  contend and scale sub-linearly;
* **logic area** — each lane costs LUTs/FFs; a utilization cap limits
  lane count outright.

:func:`scaling_curve` produces throughput versus lane count under this
model — linear at first, sub-linear past the port budget, capped at the
area limit — the curve ``bench_ablation_multicore.py`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost_model import FPGACostModel


@dataclass(frozen=True)
class MulticoreModel:
    """Resource bounds governing lane replication."""

    #: Conflict-free concurrent rank units the banked structure supports.
    port_budget: int = 8
    #: Contention throughput factor per doubling beyond the port budget.
    contention_factor: float = 0.65
    #: Hard lane cap from logic area.
    max_lanes: int = 32

    def effective_lanes(self, lanes: int) -> float:
        """Throughput-equivalent lane count under port contention."""
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if lanes > self.max_lanes:
            raise ValueError(
                f"{lanes} lanes exceed the area cap of {self.max_lanes}"
            )
        if lanes <= self.port_budget:
            return float(lanes)
        # Beyond the port budget each extra lane contributes at the
        # contention-degraded rate.
        extra = lanes - self.port_budget
        return self.port_budget + extra * self.contention_factor

    def modeled_seconds(
        self,
        base_model: FPGACostModel,
        lanes: int,
        structure_bytes: int,
        hw_steps_total: int,
        n_reads: int,
    ) -> float:
        """Run time with ``lanes`` replicated pipelines.

        The structure load and PCIe transfers do not parallelize; only
        kernel compute divides by the effective lane count.
        """
        eff = self.effective_lanes(lanes)
        one_lane = base_model.with_lanes(1)
        compute = one_lane.kernel_seconds(hw_steps_total, n_reads) / eff
        transfer = base_model.transfer_seconds(n_reads)
        return base_model.load_seconds(structure_bytes) + max(compute, transfer)


def scaling_curve(
    base_model: FPGACostModel,
    structure_bytes: int,
    hw_steps_total: int,
    n_reads: int,
    lane_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    multicore: MulticoreModel | None = None,
) -> list[dict[str, float]]:
    """Throughput table across lane counts (speedup vs one lane)."""
    mc = multicore if multicore is not None else MulticoreModel()
    base = mc.modeled_seconds(base_model, 1, structure_bytes, hw_steps_total, n_reads)
    rows = []
    for lanes in lane_counts:
        t = mc.modeled_seconds(base_model, lanes, structure_bytes, hw_steps_total, n_reads)
        rows.append(
            {
                "lanes": float(lanes),
                "seconds": t,
                # 0.0 (not inf) on zero time: rows land in JSON bench docs.
                "speedup_vs_1": base / t if t > 0 else 0.0,
                "reads_per_second": n_reads / t if t > 0 else 0.0,
            }
        )
    return rows

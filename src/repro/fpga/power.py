"""Power and energy accounting (the paper's efficiency columns).

The paper uses flat reference powers — 135 W for the Intel Xeon E5-2698
v3 host and 25 W for the Alveo U200 — and reports *power efficiency*
relative to the FPGA as

.. math::

   \\text{eff}(x) = \\frac{t_x \\cdot P_x}{t_{FPGA} \\cdot P_{FPGA}},

i.e. the ratio of energies; a row's "380×" means the software run spent
380× the energy of the FPGA run.  These helpers centralize that
arithmetic so Tables I and II are computed one way everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import ALVEO_U200, XEON_E5_2698V3_WATTS


@dataclass(frozen=True)
class PowerModel:
    """Reference power draws of the compared platforms."""

    fpga_watts: float = ALVEO_U200.board_power_watts
    cpu_watts: float = XEON_E5_2698V3_WATTS

    def __post_init__(self):
        if self.fpga_watts <= 0 or self.cpu_watts <= 0:
            raise ValueError("power draws must be positive")

    def fpga_energy(self, seconds: float) -> float:
        return seconds * self.fpga_watts

    def cpu_energy(self, seconds: float) -> float:
        """Whole-socket energy (the paper bills all threads at 135 W)."""
        return seconds * self.cpu_watts

    def efficiency_vs_fpga(self, other_seconds: float, fpga_seconds: float,
                           other_watts: float | None = None) -> float:
        """The paper's power-efficiency column: energy ratio vs the FPGA."""
        watts = other_watts if other_watts is not None else self.cpu_watts
        fpga_j = self.fpga_energy(fpga_seconds)
        if fpga_j <= 0:
            return float("inf")
        return (other_seconds * watts) / fpga_j

    def speedup_vs_fpga(self, other_seconds: float, fpga_seconds: float) -> float:
        """The paper's speed-up column (FPGA is the 1× anchor)."""
        if fpga_seconds <= 0:
            return float("inf")
        return other_seconds / fpga_seconds


DEFAULT_POWER_MODEL = PowerModel()

"""High-level accelerator facade: the BWaveR device as a library object.

:class:`FPGAAccelerator` is what the examples and the benchmark harness
use: programmed once per reference (structure load — the fixed overhead
of Table II), then driven with batches of reads.  Internally it runs the
full host flow through the OpenCL-like runtime:

1. ``enqueue_write_buffer`` the BWT structure (program time),
2. per batch: write query records → run kernel → read result records,
3. report modeled device time from the profiling events, exactly as the
   paper measures.

Every run returns both the **modeled device seconds** (the reproduction
of the paper's FPGA column) and the **host wall seconds** the functional
simulation actually took (reported for honesty, never mixed into the
tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..index.fm_index import FMIndex
from ..mapper.query import pack_queries
from .cost_model import DEFAULT_COST_MODEL, FPGACostModel
from .device import ALVEO_U200, DeviceSpec
from .kernel import BackwardSearchKernel, KernelRun
from .opencl import CommandQueue, Context
from .power import DEFAULT_POWER_MODEL, PowerModel

import time


@dataclass
class AcceleratorRun:
    """Everything one accelerated mapping run produced."""

    kernel_run: KernelRun
    modeled_seconds: float
    modeled_load_seconds: float
    modeled_kernel_seconds: float
    modeled_transfer_seconds: float
    host_wall_seconds: float
    energy_joules: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def n_reads(self) -> int:
        return self.kernel_run.n_reads

    @property
    def mapping_ratio(self) -> float:
        n = self.kernel_run.n_reads
        return self.kernel_run.mapped_reads / n if n else 0.0

    @property
    def reads_per_second(self) -> float:
        return self.n_reads / self.modeled_seconds if self.modeled_seconds > 0 else float("inf")


class FPGAAccelerator:
    """Programmed device ready to map read batches.

    Parameters
    ----------
    structure:
        The succinct BWT structure to load on-chip.
    cost_model / power_model / spec:
        Calibrated device models (defaults reproduce the paper's setup).
    """

    def __init__(
        self,
        structure: BWTStructure,
        cost_model: FPGACostModel = DEFAULT_COST_MODEL,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        spec: DeviceSpec = ALVEO_U200,
    ):
        self.cost_model = cost_model
        self.power_model = power_model
        self.spec = spec
        self.kernel = BackwardSearchKernel(structure, spec=spec)
        self.context = Context(spec)
        self.structure_bytes = self.kernel.structure_bytes()
        self._programmed = False
        self._program_seconds = 0.0

    @classmethod
    def for_index(cls, index: FMIndex, **kwargs) -> "FPGAAccelerator":
        """Wrap an existing index (its backend must be the succinct one)."""
        backend = index.backend
        if not isinstance(backend, BWTStructure):
            raise TypeError(
                "the FPGA kernel holds the succinct structure on-chip; "
                f"got a {type(backend).__name__} backend — build the index "
                "with backend='rrr'"
            )
        return cls(backend, **kwargs)

    def program(self, queue: CommandQueue) -> float:
        """Load the BWT structure (the fixed overhead); returns seconds."""
        buf = self.context.create_buffer(self.structure_bytes)
        ev = queue.enqueue_write_buffer(
            buf,
            np.zeros(self.structure_bytes, dtype=np.uint8),
            bytes_per_sec=self.cost_model.bram_init_bytes_per_sec,
        )
        self._programmed = True
        self._program_seconds = ev.duration_seconds
        return self._program_seconds

    def map_batch(
        self,
        reads,
        batch_size: int = 4096,
        include_load: bool = True,
    ) -> AcceleratorRun:
        """Map ``reads`` (both strands) through the simulated device.

        ``batch_size`` splits the read set into successive kernel
        invocations, as the real host does ("iteratively fetches query
        sequences from the host's memory"); results and statistics are
        aggregated across batches.
        """
        reads = list(reads)
        queue = CommandQueue(self.context, cost_model=self.cost_model)
        t0 = time.perf_counter()
        if include_load:
            self.program(queue)
        elif not self._programmed:
            raise RuntimeError("device not programmed; call with include_load=True first")

        all_outcomes = []
        hw_total = 0
        sw_total = 0
        op_counts: dict[str, int] = {}
        for start in range(0, len(reads), batch_size):
            chunk = reads[start : start + batch_size]
            records = pack_queries(chunk, start_id=start)
            qbuf = self.context.create_buffer(records.nbytes)
            queue.enqueue_write_buffer(qbuf, records)
            kev = queue.enqueue_kernel(
                lambda r=records: self.kernel.execute(r),
                modeled_seconds_of=lambda run: self.cost_model.kernel_seconds(
                    run.hw_steps_total, run.n_reads
                ),
            )
            run: KernelRun = kev.wait()  # type: ignore[assignment]
            result_arr = run.result_array()
            rbuf = self.context.create_buffer(max(result_arr.nbytes, 8))
            rbuf.fill_from_device(result_arr)
            queue.enqueue_read_buffer(rbuf)
            all_outcomes.extend(run.outcomes)
            hw_total += run.hw_steps_total
            sw_total += run.sw_steps_total
            for k, v in run.op_counts.items():
                op_counts[k] = op_counts.get(k, 0) + v
        queue.finish()
        host_wall = time.perf_counter() - t0

        merged = KernelRun(
            outcomes=all_outcomes,
            hw_steps_total=hw_total,
            sw_steps_total=sw_total,
            op_counts=op_counts,
            bram_traffic=self.kernel.bram.traffic(),
        )
        report = self.cost_model.run_report(
            self.structure_bytes, hw_total, len(reads)
        )
        if not include_load:
            report["total_seconds"] -= report["load_seconds"]
            report["load_seconds"] = 0.0
        modeled = report["total_seconds"]
        return AcceleratorRun(
            kernel_run=merged,
            modeled_seconds=modeled,
            modeled_load_seconds=report["load_seconds"],
            modeled_kernel_seconds=report["kernel_seconds"],
            modeled_transfer_seconds=report["transfer_seconds"],
            host_wall_seconds=host_wall,
            energy_joules=self.cost_model.energy_joules(modeled),
            breakdown=report,
        )

"""High-level accelerator facade: the BWaveR device as a library object.

:class:`FPGAAccelerator` is what the examples and the benchmark harness
use: programmed once per reference (structure load — the fixed overhead
of Table II), then driven with batches of reads.  Internally it runs the
full host flow through the OpenCL-like runtime:

1. ``enqueue_write_buffer`` the BWT structure (program time),
2. per batch: write query records → run kernel → read result records,
3. report modeled device time from the profiling events, exactly as the
   paper measures.

Every run returns both the **modeled device seconds** (the reproduction
of the paper's FPGA column) and the **host wall seconds** the functional
simulation actually took (reported for honesty, never mixed into the
tables).

The host is fault-tolerant.  Each batch runs under a recovery ladder
(:class:`~repro.faults.RetryPolicy`): detected faults — BRAM CRC
mismatches, transfer CRC/length failures, stuck events, kernel hangs,
garbage result records — are retried with exponential backoff, the
device is reset and reprogrammed after repeated failures, and when the
retry budget is exhausted the batch degrades to the bit-identical CPU
search path, with the degradation (and every fault along the way)
recorded on the :class:`AcceleratorRun` report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..faults import (
    FaultError,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    validate_result_records,
)
from ..index.fm_index import FMIndex
from ..index.ftab import Ftab
from ..mapper.query import pack_queries
from ..sequence.alphabet import is_valid, reverse_complement
from ..telemetry import correlate, get_telemetry, new_run_id
from .cost_model import DEFAULT_COST_MODEL, FPGACostModel
from .device import ALVEO_U200, DeviceHealth, DeviceSpec
from .kernel import BackwardSearchKernel, KernelRun, QueryOutcome, executed_steps
from .opencl import CommandQueue, Context
from .power import DEFAULT_POWER_MODEL, PowerModel


@dataclass
class AcceleratorRun:
    """Everything one accelerated mapping run produced."""

    kernel_run: KernelRun
    modeled_seconds: float
    modeled_load_seconds: float
    modeled_kernel_seconds: float
    modeled_transfer_seconds: float
    host_wall_seconds: float
    energy_joules: float
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Fault-tolerance ledger: did any batch fall back to the CPU path,
    #: how many retries/reprograms happened, and what was detected.
    degraded: bool = False
    retries: int = 0
    reprograms: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    fault_events: list[FaultEvent] = field(default_factory=list)
    modeled_fault_overhead_seconds: float = 0.0

    @property
    def n_reads(self) -> int:
        return self.kernel_run.n_reads

    @property
    def mapping_ratio(self) -> float:
        n = self.kernel_run.n_reads
        return self.kernel_run.mapped_reads / n if n else 0.0

    @property
    def reads_per_second(self) -> float:
        # 0.0 (not inf) on zero modeled time: keeps JSON result docs valid.
        return self.n_reads / self.modeled_seconds if self.modeled_seconds > 0 else 0.0


class FPGAAccelerator:
    """Programmed device ready to map read batches.

    Parameters
    ----------
    structure:
        The succinct BWT structure to load on-chip.
    cost_model / power_model / spec:
        Calibrated device models (defaults reproduce the paper's setup).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; when given, its
        injector is threaded through the queue, the kernel and the BRAM
        banks so scripted fault scenarios exercise the recovery ladder.
    retry_policy:
        The recovery ladder (bounded retry → reset + reprogram → CPU
        fallback).  The integrity checks run regardless of whether a
        fault plan is attached.
    """

    def __init__(
        self,
        structure: BWTStructure,
        cost_model: FPGACostModel = DEFAULT_COST_MODEL,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        spec: DeviceSpec = ALVEO_U200,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        ftab: Ftab | None = None,
    ):
        self.cost_model = cost_model
        self.power_model = power_model
        self.spec = spec
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.injector = fault_plan.injector() if fault_plan is not None else None
        self.kernel = BackwardSearchKernel(
            structure, spec=spec, injector=self.injector, ftab=ftab
        )
        self.context = Context(spec)
        self.health = DeviceHealth()
        self.structure_bytes = self.kernel.structure_bytes()
        self._programmed = False
        self._program_seconds = 0.0

    @classmethod
    def for_index(cls, index: FMIndex, **kwargs) -> "FPGAAccelerator":
        """Wrap an existing index (its backend must be the succinct one).

        The index's jump-start table (when attached and enabled) rides
        along onto the device as the ``ftab_lut`` bank.
        """
        backend = index.backend
        if not isinstance(backend, BWTStructure):
            raise TypeError(
                "the FPGA kernel holds the succinct structure on-chip; "
                f"got a {type(backend).__name__} backend — build the index "
                "with backend='rrr'"
            )
        kwargs.setdefault("ftab", index.ftab if index.use_ftab else None)
        return cls(backend, **kwargs)

    def program(self, queue: CommandQueue) -> float:
        """Load the BWT structure (the fixed overhead); returns seconds."""
        buf = self.context.create_buffer(self.structure_bytes)
        ev = queue.enqueue_write_buffer(
            buf,
            np.zeros(self.structure_bytes, dtype=np.uint8),
            bytes_per_sec=self.cost_model.bram_init_bytes_per_sec,
        )
        self._programmed = True
        self._program_seconds = ev.duration_seconds
        return self._program_seconds

    def map_batch(
        self,
        reads,
        batch_size: int = 4096,
        include_load: bool = True,
    ) -> AcceleratorRun:
        """Map ``reads`` (both strands) through the simulated device.

        ``batch_size`` splits the read set into successive kernel
        invocations, as the real host does ("iteratively fetches query
        sequences from the host's memory"); results and statistics are
        aggregated across batches.  Detected faults are retried per the
        accelerator's :class:`~repro.faults.RetryPolicy`; results are
        bit-identical to a clean run whether a batch succeeded on the
        device or degraded to the CPU path.

        When telemetry is enabled the run is traced (one span per batch,
        the modeled device timeline merged onto the same trace) and its
        fault/retry/fallback ledger is mirrored into the metrics
        registry.
        """
        reads = list(reads)
        tel = get_telemetry()
        if not tel.enabled:
            return self._map_batch_impl(reads, batch_size, include_load, tel)
        with correlate(run_id=new_run_id()):
            with tel.span(
                "fpga.map_batch", cat="fpga",
                n_reads=len(reads), batch_size=batch_size,
            ):
                run = self._map_batch_impl(reads, batch_size, include_load, tel)
            self._record_run_telemetry(tel, run)
        return run

    def _map_batch_impl(
        self, reads: list, batch_size: int, include_load: bool, tel
    ) -> AcceleratorRun:
        queue = CommandQueue(
            self.context, cost_model=self.cost_model, injector=self.injector
        )
        queue_anchor_us = tel.tracer.now_us()
        t0 = time.perf_counter()
        fault_events: list[FaultEvent] = []
        retries = 0
        reprograms = 0
        overhead_s = 0.0
        degraded = False
        device_ok = True

        if include_load:
            with tel.span("fpga.program", cat="fpga", structure_bytes=self.structure_bytes):
                ok, program_stats = self._program_with_recovery(queue)
            device_ok = ok
            fault_events.extend(program_stats["events"])
            retries += program_stats["retries"]
            reprograms += program_stats["reprograms"]
            overhead_s += program_stats["overhead_s"]
            degraded |= not ok
        elif not self._programmed:
            raise RuntimeError("device not programmed; call with include_load=True first")

        all_outcomes = []
        hw_total = 0
        sw_total = 0
        op_counts: dict[str, int] = {}
        for batch_index, start in enumerate(range(0, len(reads), batch_size)):
            chunk = reads[start : start + batch_size]
            if tel.enabled:
                with correlate(batch=batch_index), tel.span(
                    "fpga.batch", cat="fpga", batch_index=batch_index,
                    n_reads=len(chunk),
                    path="device" if device_ok else "cpu_fallback",
                ):
                    run, stats = self._dispatch_batch(queue, chunk, start, device_ok)
            else:
                run, stats = self._dispatch_batch(queue, chunk, start, device_ok)
            if stats is not None:
                fault_events.extend(stats["events"])
                retries += stats["retries"]
                reprograms += stats["reprograms"]
                overhead_s += stats["overhead_s"]
                degraded |= stats["degraded"]
            all_outcomes.extend(run.outcomes)
            hw_total += run.hw_steps_total
            sw_total += run.sw_steps_total
            for k, v in run.op_counts.items():
                op_counts[k] = op_counts.get(k, 0) + v
        queue.finish()
        if tel.enabled:
            # Put the modeled device timeline on the tracer's clock so
            # application spans and h2d/kernel/d2h slices render together.
            from .tracing import to_trace_events

            tel.tracer.add_raw_events(
                to_trace_events(queue, ts_offset_us=queue_anchor_us)
            )
        host_wall = time.perf_counter() - t0
        if degraded:
            self.health.mark_failed()

        merged = KernelRun(
            outcomes=all_outcomes,
            hw_steps_total=hw_total,
            sw_steps_total=sw_total,
            op_counts=op_counts,
            bram_traffic=self.kernel.bram.traffic(),
        )
        report = self.cost_model.run_report(
            self.structure_bytes, hw_total, len(reads)
        )
        if not include_load:
            report["total_seconds"] -= report["load_seconds"]
            report["load_seconds"] = 0.0
        report["fault_overhead_seconds"] = overhead_s
        report["total_seconds"] += overhead_s
        modeled = report["total_seconds"]
        fault_counts: dict[str, int] = {}
        for ev in fault_events:
            fault_counts[ev.kind] = fault_counts.get(ev.kind, 0) + 1
        return AcceleratorRun(
            kernel_run=merged,
            modeled_seconds=modeled,
            modeled_load_seconds=report["load_seconds"],
            modeled_kernel_seconds=report["kernel_seconds"],
            modeled_transfer_seconds=report["transfer_seconds"],
            host_wall_seconds=host_wall,
            energy_joules=self.cost_model.energy_joules(modeled),
            breakdown=report,
            degraded=degraded,
            retries=retries,
            reprograms=reprograms,
            fault_counts=fault_counts,
            fault_events=fault_events,
            modeled_fault_overhead_seconds=overhead_s,
        )

    def _dispatch_batch(
        self, queue: CommandQueue, chunk: list, start: int, device_ok: bool
    ) -> tuple[KernelRun, dict | None]:
        """One batch through the device ladder, or straight to the CPU.

        Reads with characters outside the 2-bit alphabet cannot be packed
        into query records; they bypass the device (and the CPU fallback)
        and are reported as unmapped outcomes — the accelerator-side half
        of the mapper's N-policy (DESIGN.md §9).
        """
        valid_idx = [i for i, s in enumerate(chunk) if is_valid(s)]
        if len(valid_idx) == len(chunk):
            if device_ok:
                return self._run_batch_with_recovery(queue, chunk, start)
            return self._cpu_pass(chunk, start), None
        self._record_invalid_reads(len(chunk) - len(valid_idx))
        sub = [chunk[i] for i in valid_idx]
        if not sub:
            run, stats = KernelRun(outcomes=[], hw_steps_total=0, sw_steps_total=0), None
        elif device_ok:
            run, stats = self._run_batch_with_recovery(queue, sub, start)
        else:
            run, stats = self._cpu_pass(sub, start), None
        return self._merge_invalid(run, len(chunk), start, valid_idx), stats

    def _record_invalid_reads(self, n: int) -> None:
        self.kernel.structure.counters.reads_invalid += n
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "reads_invalid_total",
                "Reads rejected by the alphabet policy (reported unmapped)",
                labelnames=("path",),
            ).inc(n, path="fpga")

    @staticmethod
    def _merge_invalid(
        run: KernelRun, chunk_len: int, start: int, valid_idx: list[int]
    ) -> KernelRun:
        """Re-number device outcomes to batch positions and splice in
        all-empty outcomes for the screened-out reads."""
        outcomes: list[QueryOutcome | None] = [None] * chunk_len
        for j, i in enumerate(valid_idx):
            o = run.outcomes[j]
            outcomes[i] = QueryOutcome(
                query_id=start + i,
                fwd_start=o.fwd_start,
                fwd_end=o.fwd_end,
                rc_start=o.rc_start,
                rc_end=o.rc_end,
                fwd_steps=o.fwd_steps,
                rc_steps=o.rc_steps,
                fwd_exec_steps=o.fwd_exec_steps,
                rc_exec_steps=o.rc_exec_steps,
            )
        for i in range(chunk_len):
            if outcomes[i] is None:
                outcomes[i] = QueryOutcome(
                    query_id=start + i,
                    fwd_start=0, fwd_end=0, rc_start=0, rc_end=0,
                    fwd_steps=0, rc_steps=0,
                )
        return KernelRun(
            outcomes=outcomes,  # type: ignore[arg-type]
            hw_steps_total=run.hw_steps_total,
            sw_steps_total=run.sw_steps_total,
            op_counts=run.op_counts,
            bram_traffic=run.bram_traffic,
        )

    def _record_run_telemetry(self, tel, run: AcceleratorRun) -> None:
        """Mirror the run's fault/retry/fallback ledger into the registry."""
        m = tel.metrics
        m.counter("fpga_runs_total", "Accelerator mapping runs").inc()
        m.counter("fpga_reads_total", "Reads mapped through the accelerator").inc(
            run.n_reads
        )
        # Declare the ladder counters eagerly so a clean run still exposes
        # them (at zero) next to the fault-path metrics.
        retries = m.counter("fpga_retries_total", "Batch retries after detected faults")
        if run.retries:
            retries.inc(run.retries)
        reprograms = m.counter(
            "fpga_reprograms_total", "Device reset + structure reloads"
        )
        if run.reprograms:
            reprograms.inc(run.reprograms)
        fallbacks = m.counter(
            "fpga_cpu_fallbacks_total", "Runs degraded to the CPU mapper"
        )
        if run.degraded:
            fallbacks.inc()
        detected = m.counter(
            "fault_detected_total",
            "Faults caught by the runtime's integrity checks, by kind",
            labelnames=("kind",),
        )
        for kind, count in run.fault_counts.items():
            detected.inc(count, kind=kind)
        seconds = m.counter(
            "fpga_modeled_stage_seconds_total",
            "Modeled device seconds by pipeline stage",
            labelnames=("stage",),
        )
        seconds.inc(run.modeled_load_seconds, stage="load")
        seconds.inc(run.modeled_kernel_seconds, stage="kernel")
        seconds.inc(run.modeled_transfer_seconds, stage="transfer")
        seconds.inc(run.modeled_fault_overhead_seconds, stage="fault_overhead")
        tel.log.info(
            "fpga.map_batch.done",
            n_reads=run.n_reads,
            modeled_seconds=run.modeled_seconds,
            host_wall_seconds=run.host_wall_seconds,
            degraded=run.degraded,
            retries=run.retries,
            reprograms=run.reprograms,
            fault_counts=run.fault_counts,
            device_state=self.health.state.value,
        )

    # -- recovery ladder -------------------------------------------------------

    def _program_with_recovery(self, queue: CommandQueue) -> tuple[bool, dict]:
        """Program the device under the retry policy.

        Returns ``(device_ok, stats)``; a device that cannot even be
        programmed degrades the whole run to the CPU path instead of
        failing it.
        """
        policy = self.retry_policy
        stats = {"events": [], "retries": 0, "reprograms": 0, "overhead_s": 0.0}
        attempt = 0
        while True:
            try:
                self.program(queue)
                self.health.record_success()
                return True, stats
            except FaultError as exc:
                attempt += 1
                self._record_fault(stats, exc, "program", attempt)
                if attempt > policy.max_retries:
                    if policy.cpu_fallback:
                        return False, stats
                    raise
                stats["retries"] += 1
                self._backoff(stats, attempt)

    def _run_batch_with_recovery(
        self, queue: CommandQueue, chunk: list[str], start_id: int
    ) -> tuple[KernelRun, dict]:
        """One batch through the ladder: retry → reprogram → CPU."""
        policy = self.retry_policy
        stats = {
            "events": [],
            "retries": 0,
            "reprograms": 0,
            "overhead_s": 0.0,
            "degraded": False,
        }
        records = pack_queries(chunk, start_id=start_id)
        attempt = 0
        while True:
            try:
                if self.injector is not None:
                    # A transient upset may have hit the banks since the
                    # last access; the kernel's CRC check must catch it.
                    self.injector.upset_bram(self.kernel.bram)
                run = self._device_pass(queue, records)
                self.health.record_success()
                return run, stats
            except FaultError as exc:
                attempt += 1
                self._record_fault(stats, exc, "map_batch", attempt)
                if attempt > policy.max_retries:
                    if policy.cpu_fallback:
                        stats["degraded"] = True
                        return self._cpu_pass(chunk, start_id), stats
                    raise
                stats["retries"] += 1
                self._backoff(stats, attempt)
                if self.health.consecutive_faults >= policy.reprogram_after:
                    stats["overhead_s"] += self._reset_and_reprogram()
                    stats["reprograms"] += 1

    def _device_pass(self, queue: CommandQueue, records: np.ndarray) -> KernelRun:
        """One attempt of the write → kernel → read → validate flow."""
        qbuf = self.context.create_buffer(max(records.nbytes, 8))
        queue.enqueue_write_buffer(qbuf, records)
        kev = queue.enqueue_kernel(
            lambda r=records: self.kernel.execute(r),
            modeled_seconds_of=lambda run: self.cost_model.kernel_seconds(
                run.hw_steps_total, run.n_reads
            ),
        )
        run: KernelRun = kev.wait()  # type: ignore[assignment]
        result_arr = run.result_array()
        rbuf = self.context.create_buffer(max(result_arr.nbytes, 8))
        rbuf.fill_from_device(result_arr)
        rev = queue.enqueue_read_buffer(rbuf)
        arrived = np.asarray(rev.wait()).reshape(-1, 4)
        validate_result_records(arrived, self.kernel.n_rows)
        return run

    def _cpu_pass(self, chunk: list[str], start_id: int) -> KernelRun:
        """The degradation rung: the same search on the CPU.

        This is literally the same :class:`FMIndex` batch search the
        kernel model executes, so intervals are bit-identical to a clean
        device run — degradation trades modeled speed, never answers.
        """
        seqs = list(chunk)
        rcs = [reverse_complement(s) for s in seqs]
        lo, hi, steps = self.kernel._index.search_batch(seqs + rcs)
        n = len(seqs)
        ftab = self.kernel.ftab
        outcomes = []
        hw_total = 0
        sw_total = 0
        for i in range(n):
            f_steps = int(steps[i])
            r_steps = int(steps[n + i])
            out = QueryOutcome(
                query_id=start_id + i,
                fwd_start=int(lo[i]),
                fwd_end=int(hi[i]),
                rc_start=int(lo[n + i]),
                rc_end=int(hi[n + i]),
                fwd_steps=f_steps,
                rc_steps=r_steps,
                fwd_exec_steps=executed_steps(ftab, len(seqs[i]), f_steps),
                rc_exec_steps=executed_steps(ftab, len(rcs[i]), r_steps),
            )
            outcomes.append(out)
            hw_total += out.hw_steps
            sw_total += out.fwd_steps + out.rc_steps
        return KernelRun(
            outcomes=outcomes,
            hw_steps_total=hw_total,
            sw_steps_total=sw_total,
        )

    def _reset_and_reprogram(self) -> float:
        """Device reset + structure reload; returns modeled seconds.

        The reload is charged through the cost model directly (not the
        fault-injected queue): reprogramming uses the host's golden copy
        over a freshly reset link.
        """
        self.kernel.reprogram()
        self.health.record_reset()
        return self.retry_policy.reset_seconds + self.cost_model.load_seconds(
            self.structure_bytes
        )

    def _record_fault(self, stats: dict, exc: FaultError, stage: str, attempt: int) -> None:
        kind = type(exc).__name__
        self.health.record_fault(kind)
        stats["events"].append(
            FaultEvent(kind=kind, stage=stage, attempt=attempt, detail=str(exc))
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.tracer.instant(
                f"fault.detected.{kind}", cat="fault", stage=stage, attempt=attempt
            )
            tel.log.warning(
                "fault.detected", kind=kind, stage=stage, attempt=attempt,
                detail=str(exc),
            )

    def _backoff(self, stats: dict, attempt: int) -> None:
        seconds = self.retry_policy.backoff_seconds(attempt)
        stats["overhead_s"] += seconds
        if self.retry_policy.sleep and seconds > 0:
            time.sleep(seconds)

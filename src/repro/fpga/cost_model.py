"""Analytic cycle model for the simulated accelerator.

The Python kernel in :mod:`repro.fpga.kernel` is *functionally* exact but
obviously cannot be timed as hardware.  This model converts the kernel's
measured workload statistics into modeled device time, the same way an
HLS performance estimate converts trip counts into latency:

* the backward-search datapath is **deeply pipelined with initiation
  interval 1**: with many queries in flight, each lane retires one
  backward-search *step* (one Occ pair, via ``2·log2|Σ|`` parallel binary
  ranks — the dual-strand pipelines and the per-level rank units are
  spatially replicated, so a step is one pipeline slot regardless of
  ``sf``, which affects *latency*, hidden by pipelining, not throughput);
* the kernel instantiates ``lanes`` such pipelines (the paper's single
  "core" already processes the read and its reverse complement in
  parallel; lanes model the additional query-level parallelism the
  datapath's BRAM banking affords);
* when a k-mer jump-start table is loaded, the pipeline gains a **LUT
  stage**: the first ``k`` iterations of each strand collapse into one
  BRAM burst from the ``ftab_lut`` bank, counted as a single
  step-equivalent.  The formulas below are unchanged — the kernel's
  measured ``hw_steps_total`` is already net of the replaced iterations
  (see :func:`repro.fpga.kernel.executed_steps`);
* loading the BWT structure into BRAM is a **fixed overhead**
  proportional to the structure size — the amortization the paper calls
  out in Table II ("the load of the BWT structure introduces a fixed
  overhead ... regardless of the number of reads");
* PCIe transfers of query records (64 B each) and result records (16 B
  each) overlap the kernel (OpenCL double-buffering), so wall time takes
  the max of compute and transfer, after the load.

Calibration (see also ``DESIGN.md`` §4): ``lanes=4``, ``clock=300 MHz``,
``per_read_overhead_cycles=3`` and ``bram_init_bytes_per_sec=64 MB/s``
reproduce the paper's Table I/II FPGA columns to within ~15 % at the
paper's workload sizes; the constants are exposed, printed by every
bench, and swept by the sensitivity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .device import ALVEO_U200, DeviceSpec


@dataclass(frozen=True)
class FPGACostModel:
    """Per-operation cost constants of the simulated device."""

    spec: DeviceSpec = ALVEO_U200
    lanes: int = 4
    initiation_interval: int = 1
    per_read_overhead_cycles: int = 3
    bram_init_bytes_per_sec: float = 64e6
    pcie_bytes_per_sec: float = 10e9
    query_record_bytes: int = 64
    result_record_bytes: int = 16

    def __post_init__(self):
        if self.lanes < 1 or self.initiation_interval < 1:
            raise ValueError("lanes and initiation interval must be >= 1")

    def with_lanes(self, lanes: int) -> "FPGACostModel":
        """The multi-core future-work variant: more replicated pipelines."""
        return replace(self, lanes=lanes)

    # -- component times ---------------------------------------------------

    def load_seconds(self, structure_bytes: int) -> float:
        """Fixed BWT-structure load overhead (BRAM initialization)."""
        return structure_bytes / self.bram_init_bytes_per_sec

    def transfer_seconds(self, n_reads: int) -> float:
        """Query upload + result download over PCIe."""
        total = n_reads * (self.query_record_bytes + self.result_record_bytes)
        return total / self.pcie_bytes_per_sec

    def kernel_cycles(self, hw_steps_total: int, n_reads: int) -> int:
        """Datapath cycles: II per step per lane, plus per-read drain."""
        step_cycles = hw_steps_total * self.initiation_interval
        overhead = n_reads * self.per_read_overhead_cycles
        return (step_cycles + overhead + self.lanes - 1) // self.lanes

    def kernel_seconds(self, hw_steps_total: int, n_reads: int) -> float:
        return self.kernel_cycles(hw_steps_total, n_reads) / self.spec.clock_hz

    # -- composed run time ---------------------------------------------------

    def run_seconds(
        self,
        structure_bytes: int,
        hw_steps_total: int,
        n_reads: int,
        include_load: bool = True,
    ) -> float:
        """End-to-end modeled time for one mapping run.

        Transfers overlap compute (double-buffered command queue); the
        structure load cannot overlap (queries need the structure
        resident), matching the paper's fixed-overhead observation.
        """
        compute = self.kernel_seconds(hw_steps_total, n_reads)
        transfer = self.transfer_seconds(n_reads)
        body = max(compute, transfer)
        return (self.load_seconds(structure_bytes) if include_load else 0.0) + body

    def run_report(
        self,
        structure_bytes: int,
        hw_steps_total: int,
        n_reads: int,
    ) -> dict[str, float]:
        """Component breakdown, for bench output and the tests."""
        load = self.load_seconds(structure_bytes)
        compute = self.kernel_seconds(hw_steps_total, n_reads)
        transfer = self.transfer_seconds(n_reads)
        total = load + max(compute, transfer)
        return {
            "load_seconds": load,
            "kernel_seconds": compute,
            "transfer_seconds": transfer,
            "total_seconds": total,
            "transfer_hidden": float(transfer <= compute),
            # 0.0 (not inf) on zero total: this dict is JSON-serialized.
            "reads_per_second": n_reads / total if total > 0 else 0.0,
        }

    def energy_joules(self, seconds: float) -> float:
        """Board energy at the paper's flat 25 W reference."""
        return seconds * self.spec.board_power_watts


#: Default calibrated instance used throughout the harness.
DEFAULT_COST_MODEL = FPGACostModel()

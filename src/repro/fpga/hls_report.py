"""HLS-style resource and latency report for the simulated design.

The paper's flow is Vivado HLS → SDAccel; an HLS run ends with a
synthesis report (resource utilization, loop initiation intervals,
latency estimates).  This module renders the equivalent report for the
*simulated* design so the hardware substitution is inspectable in the
same vocabulary: memory placement from the BRAM model, pipeline
configuration from the cost model, and per-workload latency estimates
from the instrumented kernel.

Resource figures derive from the placed structure:

* **BRAM/URAM**: placed bytes over 36 Kb / 288 Kb blocks (36 Kb blocks
  preferred for small banks, URAM for banks over its threshold);
* **LUT/FF**: a per-lane datapath estimate — each backward-search lane
  instantiates ``2·log2|Σ|`` binary-rank units (adders, field shifters,
  table addressing) plus interval-update ALUs.  The per-unit constants
  come from typical HLS mappings of ~64-bit datapaths and are labeled
  estimates, exactly like an HLS pre-synthesis report.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost_model import FPGACostModel
from .device import DeviceSpec
from .kernel import BackwardSearchKernel

#: 36 Kb BRAM block payload in bytes.
BRAM_BLOCK_BYTES = 36 * 1024 // 8
#: 288 Kb URAM block payload in bytes.
URAM_BLOCK_BYTES = 288 * 1024 // 8
#: Banks at or above this size map to URAM (HLS's typical heuristic).
URAM_THRESHOLD_BYTES = 64 * 1024

#: Labeled datapath estimates (per unit), typical of HLS 64-bit pipelines.
LUT_PER_RANK_UNIT = 900
FF_PER_RANK_UNIT = 1100
LUT_PER_LANE_CONTROL = 600
FF_PER_LANE_CONTROL = 800
RANK_UNITS_PER_LANE = 4  # 2 strands x log2(4) levels


@dataclass(frozen=True)
class HLSReport:
    """Pre-synthesis-style summary of the placed design."""

    device: str
    clock_mhz: float
    lanes: int
    initiation_interval: int
    bram_blocks: int
    uram_blocks: int
    bram_utilization: float
    uram_utilization: float
    lut_estimate: int
    ff_estimate: int
    structure_bytes: int
    rank_pipeline_depth: int

    def render(self) -> str:
        lines = [
            "== Simulated HLS report (pre-synthesis estimates) ==",
            f"  device: {self.device} @ {self.clock_mhz:.0f} MHz",
            f"  kernel: {self.lanes} lane(s), II={self.initiation_interval}, "
            f"rank pipeline depth {self.rank_pipeline_depth}",
            f"  BRAM (36Kb): {self.bram_blocks} blocks "
            f"({self.bram_utilization:.1%} of device)",
            f"  URAM (288Kb): {self.uram_blocks} blocks "
            f"({self.uram_utilization:.1%} of device)",
            f"  LUT estimate: {self.lut_estimate:,}",
            f"  FF estimate: {self.ff_estimate:,}",
            f"  on-chip structure: {self.structure_bytes / 1e6:.2f} MB",
        ]
        return "\n".join(lines)


def generate_report(
    kernel: BackwardSearchKernel,
    cost_model: FPGACostModel,
) -> HLSReport:
    """Build the report from a placed kernel and its cost model."""
    spec: DeviceSpec = kernel.spec
    bram_blocks = 0
    uram_blocks = 0
    for bank in kernel.bram.banks.values():
        if bank.size_bytes >= URAM_THRESHOLD_BYTES:
            uram_blocks += -(-bank.size_bytes // URAM_BLOCK_BYTES)
        else:
            bram_blocks += max(1, -(-bank.size_bytes // BRAM_BLOCK_BYTES))
    device_bram_blocks = spec.bram_bytes // BRAM_BLOCK_BYTES
    device_uram_blocks = spec.uram_bytes // URAM_BLOCK_BYTES if spec.uram_bytes else 1
    lanes = cost_model.lanes
    rank_units = lanes * RANK_UNITS_PER_LANE
    # Pipeline depth of a rank unit: superblock fetch + up to sf class
    # adds (tree-reduced: log2(sf) stages) + offset fetch + table + popcount.
    sf = getattr(kernel.structure, "sf", 50)
    depth = 3 + max(1, (sf - 1).bit_length()) + 2
    return HLSReport(
        device=spec.name,
        clock_mhz=spec.clock_hz / 1e6,
        lanes=lanes,
        initiation_interval=cost_model.initiation_interval,
        bram_blocks=bram_blocks,
        uram_blocks=uram_blocks,
        bram_utilization=bram_blocks / max(1, device_bram_blocks),
        uram_utilization=uram_blocks / max(1, device_uram_blocks),
        lut_estimate=rank_units * LUT_PER_RANK_UNIT + lanes * LUT_PER_LANE_CONTROL,
        ff_estimate=rank_units * FF_PER_RANK_UNIT + lanes * FF_PER_LANE_CONTROL,
        structure_bytes=kernel.structure_bytes(),
        rank_pipeline_depth=depth,
    )


def latency_estimate(
    cost_model: FPGACostModel,
    n_reads: int,
    mean_hw_steps_per_read: float,
    structure_bytes: int,
) -> dict[str, float]:
    """Workload latency lines of the report (trip-count style)."""
    hw_steps = int(n_reads * mean_hw_steps_per_read)
    return {
        "kernel_cycles": float(cost_model.kernel_cycles(hw_steps, n_reads)),
        "kernel_ms": cost_model.kernel_seconds(hw_steps, n_reads) * 1e3,
        "load_ms": cost_model.load_seconds(structure_bytes) * 1e3,
        "total_ms": cost_model.run_seconds(structure_bytes, hw_steps, n_reads) * 1e3,
    }

"""Chrome-trace export of the modeled device timeline.

The OpenCL-like runtime records per-command profiling timestamps; this
module renders them in the Chrome Trace Event format (``chrome://tracing``
/ Perfetto JSON), the de-facto tool for inspecting accelerator timelines.
Useful when debugging why a modeled run is transfer- or load-bound — the
same inspection the paper's authors would do over real OpenCL traces.

Each event becomes a complete ("X") slice on the device track, with the
command type as the category and byte/duration metadata in ``args``.
"""

from __future__ import annotations

import json
from typing import IO

from .opencl import CommandQueue, CommandType

#: Trace track ids.
_PID_DEVICE = 1
_TID_BY_COMMAND = {
    CommandType.WRITE_BUFFER: 1,
    CommandType.KERNEL: 2,
    CommandType.READ_BUFFER: 3,
}
#: Fallback track for command types this module doesn't know yet — new
#: CommandType members must render, not KeyError.
_TID_MISC = 99
_TRACK_NAMES = {1: "h2d transfers", 2: "kernel", 3: "d2h transfers", _TID_MISC: "misc"}


def _command_label(command) -> str:
    """The command's wire name; tolerates non-enum stand-ins."""
    return str(getattr(command, "value", command))


def to_trace_events(queue: CommandQueue, ts_offset_us: float = 0.0) -> list[dict]:
    """The queue's events as Chrome trace dicts (timestamps in µs).

    ``ts_offset_us`` shifts the modeled device timeline (which starts at
    zero when the queue is created) so it can be merged onto an
    application tracer's clock — pass the tracer's ``now_us()`` sampled
    at queue creation.
    """
    out: list[dict] = []
    used_tids = {
        _TID_BY_COMMAND.get(ev.command, _TID_MISC) for ev in queue.events
    }
    for tid, name in _TRACK_NAMES.items():
        # The misc track only materializes when something landed on it.
        if tid == _TID_MISC and _TID_MISC not in used_tids:
            continue
        out.append(
            {
                "ph": "M",
                "pid": _PID_DEVICE,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for i, ev in enumerate(queue.events):
        label = _command_label(ev.command)
        out.append(
            {
                "ph": "X",
                "pid": _PID_DEVICE,
                "tid": _TID_BY_COMMAND.get(ev.command, _TID_MISC),
                "name": f"{label}#{i}",
                "cat": label,
                "ts": ts_offset_us + ev.profile_start / 1e3,
                "dur": max(0.001, (ev.profile_end - ev.profile_start) / 1e3),
                "args": {
                    "queued_ns": ev.profile_queued,
                    "start_ns": ev.profile_start,
                    "end_ns": ev.profile_end,
                },
            }
        )
    return out


def write_trace(queue: CommandQueue, fh: IO[str]) -> int:
    """Write the trace JSON; returns the number of slice events."""
    events = to_trace_events(queue)
    json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return sum(1 for e in events if e["ph"] == "X")


def timeline_summary(queue: CommandQueue) -> dict[str, float]:
    """Per-category busy time and the bound resource."""
    busy = {c.value: 0.0 for c in CommandType}
    for ev in queue.events:
        label = _command_label(ev.command)
        busy[label] = busy.get(label, 0.0) + ev.duration_seconds
    total = queue.device_time_ns / 1e9
    bound = max(busy, key=lambda k: busy[k]) if any(busy.values()) else "idle"
    return {**busy, "total_seconds": total, "bound_by": bound}  # type: ignore[dict-item]

"""On-chip memory model: banked BRAM with 512-bit ports.

The kernel's data — RRR classes, partial sums, offset stream, the shared
Global Rank Table, and the C array — live in on-chip memory, partitioned
into banks so the dual search pipelines read without port conflicts.
This model tracks *placement* (which array goes to which bank, with
capacity accounting against the device pool) and *traffic* (reads per
bank), which the cycle model and the tests consume:

* placement failures surface as :class:`~repro.fpga.device.CapacityError`
  before any query runs — the simulated analogue of a design that fails
  to fit at synthesis;
* traffic counts let tests assert the kernel's memory behaviour (e.g.
  one partial-sum read and at most ``sf`` class reads per binary rank)
  without timing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import ALVEO_U200, CapacityError, DeviceSpec


@dataclass
class BramBank:
    """One named bank holding one logical array."""

    name: str
    size_bytes: int
    reads: int = 0
    writes: int = 0

    def read(self, count: int = 1) -> None:
        self.reads += count

    def write(self, count: int = 1) -> None:
        self.writes += count


@dataclass
class BramModel:
    """Bank allocator + traffic ledger for one kernel instance."""

    spec: DeviceSpec = field(default_factory=lambda: ALVEO_U200)
    margin: float = 0.85
    banks: dict[str, BramBank] = field(default_factory=dict)

    def allocate(self, name: str, size_bytes: int) -> BramBank:
        """Place an array; raises :class:`CapacityError` when the pool
        (at ``margin``) would overflow."""
        if name in self.banks:
            raise ValueError(f"bank {name!r} already allocated")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        usable = int(self.spec.on_chip_bytes * self.margin)
        if self.allocated_bytes + size_bytes > usable:
            raise CapacityError(
                f"allocating {size_bytes / 1e6:.2f} MB for {name!r} would "
                f"exceed the {usable / 1e6:.1f} MB usable on-chip pool "
                f"({self.allocated_bytes / 1e6:.2f} MB already placed)"
            )
        bank = BramBank(name=name, size_bytes=size_bytes)
        self.banks[name] = bank
        return bank

    @property
    def allocated_bytes(self) -> int:
        return sum(b.size_bytes for b in self.banks.values())

    @property
    def utilization(self) -> float:
        """Fraction of the raw on-chip pool in use."""
        if self.spec.on_chip_bytes == 0:
            return 0.0
        return self.allocated_bytes / self.spec.on_chip_bytes

    def total_reads(self) -> int:
        return sum(b.reads for b in self.banks.values())

    def traffic(self) -> dict[str, tuple[int, int]]:
        """Per-bank ``(reads, writes)`` snapshot."""
        return {name: (b.reads, b.writes) for name, b in self.banks.items()}

    def reset_traffic(self) -> None:
        for b in self.banks.values():
            b.reads = 0
            b.writes = 0

    def load_bursts(self) -> int:
        """512-bit bursts needed to initialize all placed arrays."""
        per = self.spec.port_bytes
        return sum((b.size_bytes + per - 1) // per for b in self.banks.values())

"""On-chip memory model: banked BRAM with 512-bit ports.

The kernel's data — RRR classes, partial sums, offset stream, the shared
Global Rank Table, and the C array — live in on-chip memory, partitioned
into banks so the dual search pipelines read without port conflicts.
This model tracks *placement* (which array goes to which bank, with
capacity accounting against the device pool) and *traffic* (reads per
bank), which the cycle model and the tests consume:

* placement failures surface as :class:`~repro.fpga.device.CapacityError`
  before any query runs — the simulated analogue of a design that fails
  to fit at synthesis;
* traffic counts let tests assert the kernel's memory behaviour (e.g.
  one partial-sum read and at most ``sf`` class reads per binary rank)
  without timing anything.

Each bank additionally carries a byte snapshot of its contents and a CRC
word computed when the array is placed.  The fault injector flips bits in
the snapshot; :meth:`BramBank.verify` / :meth:`BramModel.verify_integrity`
are the on-access parity check that detects the upset
(:class:`~repro.faults.BramIntegrityError`), and :meth:`BramModel.reprogram`
models the recovery path — device reset + reload from the host's golden
copy of the structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults import BramIntegrityError, crc32_of
from .device import ALVEO_U200, CapacityError, DeviceSpec


@dataclass
class BramBank:
    """One named bank holding one logical array."""

    name: str
    size_bytes: int
    reads: int = 0
    writes: int = 0
    #: Byte image of the stored array (zeros when the logical array has
    #: no host-side byte representation, e.g. packed class streams).
    contents: np.ndarray | None = None
    #: CRC word computed at program time; the bank's parity check.
    crc32: int = 0
    _golden: np.ndarray | None = field(default=None, repr=False)

    def store(self, data: np.ndarray | None) -> None:
        """Program the bank: snapshot contents and compute the CRC word."""
        if data is None:
            image = np.zeros(self.size_bytes, dtype=np.uint8)
        else:
            image = np.frombuffer(
                np.ascontiguousarray(data).tobytes(), dtype=np.uint8
            ).copy()
        self.contents = image
        self._golden = image.copy()
        self.crc32 = crc32_of(image)

    def verify(self) -> None:
        """The on-access parity/CRC check; raises on a detected upset."""
        if self.contents is None:
            return
        if crc32_of(self.contents) != self.crc32:
            raise BramIntegrityError(
                f"bank {self.name!r} failed its CRC check "
                f"({self.contents.size} B image): bit upset detected"
            )

    def restore(self) -> None:
        """Reload the bank from the golden copy (part of reprogramming)."""
        if self._golden is not None:
            self.contents = self._golden.copy()
            self.writes += 1

    def read(self, count: int = 1) -> None:
        self.reads += count

    def write(self, count: int = 1) -> None:
        self.writes += count


@dataclass
class BramModel:
    """Bank allocator + traffic ledger for one kernel instance."""

    spec: DeviceSpec = field(default_factory=lambda: ALVEO_U200)
    margin: float = 0.85
    banks: dict[str, BramBank] = field(default_factory=dict)

    def allocate(
        self, name: str, size_bytes: int, data: np.ndarray | None = None
    ) -> BramBank:
        """Place an array; raises :class:`CapacityError` when the pool
        (at ``margin``) would overflow.  ``data`` (when the logical array
        has a host-side byte image) seeds the bank's contents and CRC."""
        if name in self.banks:
            raise ValueError(f"bank {name!r} already allocated")
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        usable = int(self.spec.on_chip_bytes * self.margin)
        if self.allocated_bytes + size_bytes > usable:
            raise CapacityError(
                f"allocating {size_bytes / 1e6:.2f} MB for {name!r} would "
                f"exceed the {usable / 1e6:.1f} MB usable on-chip pool "
                f"({self.allocated_bytes / 1e6:.2f} MB already placed)"
            )
        bank = BramBank(name=name, size_bytes=size_bytes)
        bank.store(data)
        self.banks[name] = bank
        return bank

    def verify_integrity(self) -> None:
        """Check every bank's CRC word (the kernel's on-access check)."""
        for bank in self.banks.values():
            bank.verify()

    def reprogram(self) -> int:
        """Restore every bank from its golden copy; returns banks touched."""
        for bank in self.banks.values():
            bank.restore()
        return len(self.banks)

    @property
    def allocated_bytes(self) -> int:
        return sum(b.size_bytes for b in self.banks.values())

    @property
    def utilization(self) -> float:
        """Fraction of the raw on-chip pool in use."""
        if self.spec.on_chip_bytes == 0:
            return 0.0
        return self.allocated_bytes / self.spec.on_chip_bytes

    def total_reads(self) -> int:
        return sum(b.reads for b in self.banks.values())

    def traffic(self) -> dict[str, tuple[int, int]]:
        """Per-bank ``(reads, writes)`` snapshot."""
        return {name: (b.reads, b.writes) for name, b in self.banks.items()}

    def reset_traffic(self) -> None:
        for b in self.banks.values():
            b.reads = 0
            b.writes = 0

    def load_bursts(self) -> int:
        """512-bit bursts needed to initialize all placed arrays."""
        per = self.spec.port_bytes
        return sum((b.size_bytes + per - 1) // per for b in self.banks.values())

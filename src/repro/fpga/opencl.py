"""OpenCL-like host runtime with profiling events.

The paper benchmarks "using the OpenCL *events* that provide an easy to
use API to profile the code that runs on the FPGA device".  This module
reproduces that measurement surface for the simulated device: a context,
buffers, an in-order command queue, and events carrying the four OpenCL
profiling timestamps (``QUEUED``/``SUBMIT``/``START``/``END``, in
nanoseconds of modeled device time).

The queue maintains a modeled device timeline: each enqueued command
starts when the previous one ends (in-order queue) and lasts its modeled
duration from :class:`~repro.fpga.cost_model.FPGACostModel`.  The harness
then reads kernel time exactly the way the paper does::

    event = queue.enqueue_kernel(...)
    queue.finish()
    seconds = (event.profile_end - event.profile_start) / 1e9

Every buffer transfer is CRC32-checked end to end: the runtime computes
the checksum of the source bytes, models the wire (where a
:class:`~repro.faults.FaultInjector`, when attached, may flip bits or
truncate), and verifies what arrived — a mismatch raises
:class:`~repro.faults.TransferError` before corrupt data lands anywhere.
An injector may also mark a completion event *stuck*; waiting on it
raises :class:`~repro.faults.DeviceTimeoutError`, modeling the host-side
deadline firing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from ..faults import DeviceTimeoutError, FaultInjector, TransferError, crc32_of
from ..telemetry import get_telemetry
from .cost_model import DEFAULT_COST_MODEL, FPGACostModel
from .device import ALVEO_U200, DeviceSpec


class CommandType(Enum):
    """The three command kinds an in-order device queue executes."""

    WRITE_BUFFER = "write_buffer"
    READ_BUFFER = "read_buffer"
    KERNEL = "kernel"


class CLError(RuntimeError):
    """Runtime misuse (released buffers, size mismatches, ...)."""


@dataclass
class Event:
    """Profiling record of one enqueued command (timestamps in ns)."""

    command: CommandType
    profile_queued: int = 0
    profile_submit: int = 0
    profile_start: int = 0
    profile_end: int = 0
    _payload: object = None
    _stuck: bool = False

    @property
    def duration_seconds(self) -> float:
        return (self.profile_end - self.profile_start) / 1e9

    def wait(self) -> object:
        """Block until complete (a no-op on the modeled timeline) and
        return the command's payload (e.g. a kernel's result).

        A stuck event (injected fault) never completes; the host-side
        deadline fires instead as :class:`DeviceTimeoutError`."""
        if self._stuck:
            raise DeviceTimeoutError(
                f"{self.command.value} event never completed "
                f"(host deadline fired; device stuck)"
            )
        return self._payload


class Buffer:
    """A device buffer of fixed byte size."""

    _ids = itertools.count()

    def __init__(self, context: "Context", size_bytes: int):
        if size_bytes < 0:
            raise CLError("buffer size must be non-negative")
        self.context = context
        self.size_bytes = int(size_bytes)
        self.buffer_id = next(self._ids)
        self._data: np.ndarray | None = None
        self._released = False

    def release(self) -> None:
        self._data = None
        self._released = True

    def fill_from_device(self, data: np.ndarray) -> None:
        """Populate the buffer as a kernel side effect (no PCIe transfer —
        the kernel writes device memory directly; only a subsequent
        ``enqueue_read_buffer`` costs timeline time)."""
        self._check()
        data = np.asarray(data)
        if data.nbytes > self.size_bytes:
            raise CLError(
                f"device write of {data.nbytes} B exceeds buffer size "
                f"{self.size_bytes} B"
            )
        self._data = data.copy()

    def _check(self) -> None:
        if self._released:
            raise CLError(f"buffer {self.buffer_id} used after release")


class Context:
    """Owns a device and its buffers."""

    def __init__(self, spec: DeviceSpec = ALVEO_U200):
        self.spec = spec
        self.buffers: list[Buffer] = []

    def create_buffer(self, size_bytes: int) -> Buffer:
        buf = Buffer(self, size_bytes)
        self.buffers.append(buf)
        return buf


@dataclass
class CommandQueue:
    """In-order queue over a modeled device timeline."""

    context: Context
    cost_model: FPGACostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    profiling: bool = True
    device_time_ns: int = 0
    events: list[Event] = field(default_factory=list)
    injector: FaultInjector | None = None

    def _schedule(self, command: CommandType, duration_s: float, payload=None) -> Event:
        ev = Event(command=command, _payload=payload)
        if self.profiling:
            ev.profile_queued = self.device_time_ns
            ev.profile_submit = self.device_time_ns
            ev.profile_start = self.device_time_ns
            self.device_time_ns += max(0, int(round(duration_s * 1e9)))
            ev.profile_end = self.device_time_ns
        # Only commands the host waits on can meaningfully go stuck.
        if (
            self.injector is not None
            and command in (CommandType.KERNEL, CommandType.READ_BUFFER)
            and self.injector.stick_event()
        ):
            ev._stuck = True
        self.events.append(ev)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "fpga_commands_total",
                "Commands scheduled on the modeled device queue",
                labelnames=("command",),
            ).inc(command=command.value)
            tel.metrics.counter(
                "fpga_modeled_seconds_total",
                "Modeled device seconds by command type",
                labelnames=("command",),
            ).inc(ev.duration_seconds, command=command.value)
        return ev

    def _transfer(self, data: np.ndarray, direction: str) -> np.ndarray:
        """Model the wire: CRC the source, let the injector corrupt the
        in-flight copy, verify length + CRC on arrival."""
        src_bytes = np.ascontiguousarray(data).tobytes()
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "fpga_transfer_bytes_total",
                "Host<->device bytes put on the modeled wire",
                labelnames=("direction",),
            ).inc(len(src_bytes), direction=direction)
        arrived = data if self.injector is None else self.injector.corrupt_transfer(data)
        if arrived.nbytes != len(src_bytes):
            raise TransferError(
                f"{direction} transfer short: {arrived.nbytes} of "
                f"{len(src_bytes)} B arrived"
            )
        if crc32_of(arrived) != crc32_of(src_bytes):
            raise TransferError(
                f"{direction} transfer of {len(src_bytes)} B failed its "
                f"CRC32 check: corruption on the wire"
            )
        return arrived

    def enqueue_write_buffer(self, buf: Buffer, data: np.ndarray,
                             bytes_per_sec: float | None = None) -> Event:
        """Host → device transfer at PCIe (or an explicit) bandwidth."""
        buf._check()
        data = np.asarray(data)
        if data.nbytes > buf.size_bytes:
            raise CLError(
                f"write of {data.nbytes} B exceeds buffer size {buf.size_bytes} B"
            )
        arrived = self._transfer(data, "host->device")
        buf._data = arrived.copy()
        bw = bytes_per_sec if bytes_per_sec is not None else self.cost_model.pcie_bytes_per_sec
        return self._schedule(CommandType.WRITE_BUFFER, data.nbytes / bw)

    def enqueue_read_buffer(self, buf: Buffer) -> Event:
        """Device → host transfer; payload is the buffer contents."""
        buf._check()
        if buf._data is None:
            raise CLError(f"buffer {buf.buffer_id} read before any write")
        nbytes = buf._data.nbytes
        arrived = self._transfer(buf._data, "device->host")
        ev = self._schedule(
            CommandType.READ_BUFFER,
            nbytes / self.cost_model.pcie_bytes_per_sec,
            payload=arrived.copy(),
        )
        return ev

    def enqueue_kernel(
        self,
        fn: Callable[[], object],
        modeled_seconds_of: Callable[[object], float],
    ) -> Event:
        """Run ``fn`` (the functional kernel) and advance the timeline by
        the cost model's estimate of its hardware duration.

        ``modeled_seconds_of`` maps the kernel's return value (which
        carries workload statistics) to modeled seconds — duration can
        depend on what the kernel actually did (early termination!).
        """
        result = fn()
        return self._schedule(CommandType.KERNEL, modeled_seconds_of(result), payload=result)

    def finish(self) -> int:
        """Drain the queue; returns the modeled completion time (ns)."""
        return self.device_time_ns

    def total_profiled_seconds(self, command: CommandType | None = None) -> float:
        """Sum of event durations, optionally filtered by command type."""
        return sum(
            e.duration_seconds
            for e in self.events
            if command is None or e.command == command
        )

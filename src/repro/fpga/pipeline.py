"""Cycle-faithful dual-pipeline execution of a single query.

:class:`DualPipeline` is the scalar, stepwise counterpart of the batch
kernel: it advances the forward and reverse-complement searches **in
lockstep**, one backward-search step per tick per strand, exactly as the
paper describes ("the backward search for X and X̄ is executed in
parallel").  A strand whose interval empties — or whose pattern is
exhausted — idles while the other finishes; the query completes when both
are done, and the number of ticks equals ``max`` of the strands' step
counts.

The batch kernel derives the same statistic arithmetically; the
equivalence tests drive both against each other, so this class is the
executable specification of the lockstep semantics (and of the per-tick
memory behaviour, via the step-level hook).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bwt_structure import BWTStructure
from ..sequence.alphabet import encode, reverse_complement_codes


@dataclass
class StrandState:
    """One pipeline's architectural state."""

    codes: np.ndarray  # symbols, consumed right to left
    lo: int
    hi: int
    pos: int  # next symbol index to consume (counts down)
    steps: int = 0

    @property
    def done(self) -> bool:
        return self.pos < 0 or self.lo >= self.hi

    @property
    def found(self) -> bool:
        return self.pos < 0 and self.lo < self.hi


class DualPipeline:
    """Lockstep forward + reverse-complement backward search."""

    def __init__(self, structure: BWTStructure):
        self.structure = structure

    def _make_state(self, codes: np.ndarray) -> StrandState:
        return StrandState(
            codes=codes,
            lo=0,
            hi=self.structure.n_rows,
            pos=int(codes.size) - 1,
        )

    def _step(self, s: StrandState) -> None:
        """One pipeline tick: consume one symbol of one strand."""
        if s.done:
            return
        a = int(s.codes[s.pos])
        st = self.structure
        s.lo = st.count_smaller(a) + st.occ(a, s.lo)
        s.hi = st.count_smaller(a) + st.occ(a, s.hi)
        s.pos -= 1
        s.steps += 1
        if s.lo >= s.hi:
            s.hi = s.lo  # normalize the empty interval

    def run(self, sequence: str) -> tuple[StrandState, StrandState, int]:
        """Search both strands; returns (fwd, rc, ticks).

        ``ticks`` is the lockstep cycle count: both strands advance each
        tick until each is individually done.
        """
        fwd_codes = encode(sequence)
        rc_codes = reverse_complement_codes(fwd_codes)
        fwd = self._make_state(fwd_codes)
        rc = self._make_state(rc_codes)
        ticks = 0
        while not (fwd.done and rc.done):
            self._step(fwd)
            self._step(rc)
            ticks += 1
        return fwd, rc, ticks

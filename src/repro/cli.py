"""Command-line interface: the BWaveR workflow without writing Python.

Subcommands mirror the web workflow's stages plus the tooling a
downstream user needs:

``index``
    FASTA (plain/gzip) → persisted ``.npz`` index (steps 1 + 2).
``map``
    index + FASTQ → hits TSV (step 3), on the CPU mapper or through the
    simulated FPGA for the modeled-time report; streaming, constant
    memory.
``inspect``
    Print an index's parameters, sizes, and validation report.
``simulate``
    Generate a synthetic reference FASTA and/or a mapping-ratio-
    controlled FASTQ (the evaluation's workload generator).
``selfcheck``
    Run the differential self-check harness: seeded adversarial inputs
    through every backend/oracle pair, shrunk counterexamples on
    mismatch (DESIGN.md §9).
``serve``
    Start the web application.
``bench``
    The continuous-benchmarking platform (DESIGN.md §11):
    ``bench run`` executes a declarative experiment suite and persists
    trials (JSON + SQLite, keyed by git hash/config hash/seed/host),
    ``bench report`` renders the HTML report with trajectory plots and
    significance tests, ``bench gate`` exits non-zero on a significant
    regression of any named hot path, and ``bench migrate-seed``
    imports the legacy ``benchmarks/results/*.txt`` numbers as the
    synthetic seed baseline.

Run ``python -m repro.cli <subcommand> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path


def _cmd_index(args: argparse.Namespace) -> int:
    from .index.builder import build_index
    from .index.flat import save_index_flat, save_multiref_index_flat
    from .index.serialization import save_index
    from .io.fasta import read_fasta

    records = read_fasta(args.fasta, on_invalid=args.on_invalid)
    if not records:
        print("error: reference FASTA contains no records", file=sys.stderr)
        return 2
    if len(records) > 1:
        from .index.multiref import MultiReferenceIndex
        from .index.serialization import save_multiref_index

        if args.blockwise:
            print(
                "error: --blockwise supports single-reference FASTA only",
                file=sys.stderr,
            )
            return 2
        print(
            f"multi-sequence reference: {len(records)} records, "
            f"{sum(r.length for r in records):,} bp total"
        )
        multi = MultiReferenceIndex(
            records, b=args.block_size, sf=args.superblock_factor,
            backend=args.backend,
        )
        if args.format == "flat":
            save_multiref_index_flat(multi, args.output)
        else:
            save_multiref_index(multi, args.output)
        report = multi.build_report
        print(
            f"built in {report.sa_bwt_seconds + report.encode_seconds:.2f}s; "
            f"structure: {report.structure_bytes:,} B -> {args.output}"
        )
        return 0
    rec = records[0]
    if not rec.sequence:
        print(f"error: reference {rec.name!r} has an empty sequence", file=sys.stderr)
        return 2
    print(f"reference {rec.name}: {rec.length:,} bp")
    if args.blockwise:
        from .index.build_stream import build_index_blockwise

        if args.format != "flat":
            print(
                "note: --blockwise always writes the flat container format"
            )
        report = build_index_blockwise(
            rec.sequence,
            args.output,
            b=args.block_size,
            sf=args.superblock_factor,
            backend=args.backend,
            locate=args.locate,
            ftab_k=args.ftab_k or None,
            block_mb=args.block_mb,
            resume=args.resume,
        )
        resumed = " (resumed)" if report.resumed else ""
        stages = ", ".join(
            f"{name} {secs:.2f}s" for name, secs in report.stage_seconds.items()
        )
        print(f"blockwise build{resumed}: {stages}")
        print(
            f"structure: {report.structure_bytes:,} B "
            f"({report.space_saving_percent:.1f}% saved vs 1 B/char) "
            f"-> {args.output}"
        )
        return 0
    index, report = build_index(
        rec.sequence,
        b=args.block_size,
        sf=args.superblock_factor,
        backend=args.backend,
        locate=args.locate,
        ftab_k=args.ftab_k or None,
    )
    if args.format == "flat":
        save_index_flat(index, args.output)
    else:
        save_index(index, args.output)
    print(
        f"built in {report.sa_bwt_seconds + report.encode_seconds:.2f}s "
        f"(SA+BWT {report.sa_bwt_seconds:.2f}s, encode {report.encode_seconds:.3f}s)"
    )
    if index.ftab is not None:
        print(
            f"ftab: k={index.ftab.k}, {report.ftab_bytes:,} B "
            f"built in {report.ftab_seconds:.3f}s"
        )
    print(
        f"structure: {report.structure_bytes:,} B "
        f"({report.space_saving_percent:.1f}% saved vs 1 B/char) -> {args.output}"
    )
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from .index.flat import load_any_index_auto
    from .index.multiref import MultiReferenceIndex
    from .io.fasta import _open_text
    from .io.fastq import parse_fastq
    from .mapper.stream import map_fastq_to_tsv

    # Sniff the container format (.npz or flat) and the reference kind;
    # multi-reference archives route through the multiref mapper.
    loaded = load_any_index_auto(args.index)
    if isinstance(loaded, MultiReferenceIndex):
        return _map_multiref(args, loaded)
    index = loaded
    if args.no_ftab:
        # Drop the jump-start table before any mapping (or pool publish):
        # results are bit-identical either way, only the work changes.
        index.ftab = None
        index.use_ftab = False

    if args.pool > 1:
        return _map_pooled(args, index)

    from .fpga.accelerator import FPGAAccelerator

    if args.device == "fpga":
        from .faults import FaultPlan, RetryPolicy

        # FPGA path: functional kernel + modeled time, then host locate.
        with _open_text(args.fastq) as fh:
            reads = [r.sequence for r in parse_fastq(fh)]
        fault_plan = None
        if args.faults:
            fault_plan = FaultPlan.from_spec(args.faults, seed=args.fault_seed)
        retry_policy = RetryPolicy(
            max_retries=args.fault_retries,
            cpu_fallback=not args.no_cpu_fallback,
        )
        acc = FPGAAccelerator.for_index(
            index, fault_plan=fault_plan, retry_policy=retry_policy
        )
        run = acc.map_batch(reads, batch_size=args.batch_size)
        print(
            f"simulated FPGA: {run.n_reads} reads, "
            f"modeled {run.modeled_seconds * 1e3:.2f} ms "
            f"(load {run.modeled_load_seconds * 1e3:.2f} ms), "
            f"energy {run.energy_joules:.3f} J, "
            f"mapping ratio {run.mapping_ratio:.2f}"
        )
        if fault_plan is not None:
            injected = dict(acc.injector.injected) if acc.injector else {}
            status = "DEGRADED (CPU fallback)" if run.degraded else "recovered"
            print(
                f"faults: injected {injected or 'none'}, "
                f"detected {run.fault_counts or 'none'}, "
                f"{run.retries} retries, {run.reprograms} reprograms -> {status}"
            )

    if args.format == "sam":
        import time

        from .mapper.mapper import Mapper
        from .mapper.sam import write_sam_single

        with _open_text(args.fastq) as fh:
            records = list(parse_fastq(fh))
        reads = [r.sequence for r in records]
        t0 = time.perf_counter()
        results = Mapper(index, locate=True).map_reads(
            reads, names=[r.name for r in records]
        )
        wall = time.perf_counter() - t0
        with open(args.output, "w") as out:
            write_sam_single(
                results, reads, out, reference_name=args.reference_name,
                reference_length=index.n_rows - 1,
            )
        n_mapped = sum(1 for r in results if r.mapped)
        n_reads = len(reads)
    else:
        with open(args.output, "w") as out, _open_text(args.fastq) as fh:
            summary = map_fastq_to_tsv(
                index,
                (r.sequence for r in parse_fastq(fh)),
                out,
                batch_size=args.batch_size,
            )
        n_mapped, n_reads, wall = summary.n_mapped, summary.n_reads, summary.wall_seconds
    print(
        f"mapped {n_mapped}/{n_reads} reads "
        f"in {wall:.2f}s host time -> {args.output}"
    )
    return 0


def _map_pooled(args: argparse.Namespace, index) -> int:
    """Map through a persistent worker pool sharing one index copy."""
    import time

    from .index.flat import detect_index_format
    from .io.fasta import _open_text
    from .io.fastq import parse_fastq
    from .mapper.results import write_hits_tsv
    from .serving.pool import MapperPool

    if args.device != "cpu" or args.format != "tsv":
        print(
            "error: --pool requires --device cpu and --format tsv",
            file=sys.stderr,
        )
        return 2
    with _open_text(args.fastq) as fh:
        reads = [r.sequence for r in parse_fastq(fh)]
    # A flat container can be served in place (workers mmap the file);
    # an .npz index is published to shared memory first.  With --no-ftab
    # the stripped in-memory index is published instead of the file, so
    # workers never see the container's ftab segment.
    if detect_index_format(args.index) == "flat" and not args.no_ftab:
        pool_args = {"flat_path": args.index}
    else:
        pool_args = {"index": index}
    t0 = time.perf_counter()
    with MapperPool(workers=args.pool, **pool_args) as pool:
        results = pool.map_reads(reads, locate=True)
        attach_ms = ", ".join(f"{s * 1e3:.0f}ms" for s in pool.attach_seconds)
    wall = time.perf_counter() - t0
    with open(args.output, "w") as out:
        write_hits_tsv(results, out)
    n_mapped = sum(1 for r in results if r.mapped)
    print(f"pool: {args.pool} workers attached in [{attach_ms}]")
    print(
        f"mapped {n_mapped}/{len(reads)} reads "
        f"in {wall:.2f}s host time -> {args.output}"
    )
    return 0


def _map_multiref(args: argparse.Namespace, multi) -> int:
    """Map against a multi-sequence archive (per-chromosome coordinates)."""
    from .io.fasta import _open_text
    from .io.fastq import parse_fastq
    from .mapper.sam import write_sam_multiref

    with _open_text(args.fastq) as fh:
        records = list(parse_fastq(fh))
    reads = [r.sequence for r in records]
    names = [r.name for r in records]
    if args.format == "sam":
        with open(args.output, "w") as out:
            write_sam_multiref(multi, reads, out, read_names=names)
        mapped = None
    else:
        mapped = 0
        with open(args.output, "w") as out:
            out.write("read\tsequence\tposition\tstrand\n")
            for name, read in zip(names, reads):
                mapping = multi.map_read(read)
                if mapping.mapped:
                    mapped += 1
                    for hit in mapping.hits:
                        out.write(f"{name}\t{hit.name}\t{hit.position}\t{hit.strand}\n")
                else:
                    out.write(f"{name}\t.\t.\t.\n")
    suffix = f", {mapped}/{len(reads)} mapped" if mapped is not None else ""
    print(
        f"mapped {len(reads)} reads against {multi.n_sequences} sequences"
        f"{suffix} -> {args.output}"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .core.bwt_structure import BWTStructure
    from .index.flat import detect_index_format, load_index_auto, verify_flat_index
    from .index.serialization import IndexFormatError
    from .index.validate import IndexValidationError, validate_index

    index = load_index_auto(args.index)
    backend = index.backend
    print(f"index: {args.index}")
    print(f"  format: {detect_index_format(args.index)}")
    print(f"  backend: {type(backend).__name__}")
    print(f"  matrix rows: {backend.n_rows:,} (text {backend.n_rows - 1:,} bp)")
    if isinstance(backend, BWTStructure):
        print(f"  RRR parameters: b={backend.b}, sf={backend.sf}")
        print(f"  wavelet nodes: {len(backend.tree.nodes())}, depth {backend.tree.depth()}")
    print(f"  structure bytes: {backend.size_in_bytes():,}")
    if index.locate_structure is not None:
        print(
            f"  locate: {type(index.locate_structure).__name__}, "
            f"{index.locate_structure.size_in_bytes():,} B"
        )
    if index.ftab is not None:
        print(
            f"  ftab: k={index.ftab.k}, {index.ftab.size_in_bytes():,} B "
            f"({len(index.ftab.lo):,} entries)"
        )
    if args.validate:
        if detect_index_format(args.index) == "flat":
            try:
                names = verify_flat_index(args.index)
            except IndexFormatError as exc:
                print(f"  VALIDATION FAILED: {exc}", file=sys.stderr)
                return 1
            print(f"  checksums: OK ({len(names)} segments)")
        try:
            report = validate_index(index, samples=args.samples)
        except IndexValidationError as exc:
            print(f"  VALIDATION FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"  validation: OK ({', '.join(report.checks)})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .io.fasta import FastaRecord, read_fasta, write_fasta
    from .io.fastq import write_fastq
    from .io.readsim import simulate_reads
    from .io.refgen import CHR21_LIKE, E_COLI_LIKE, generate_reference

    profiles = {"ecoli": E_COLI_LIKE, "chr21": CHR21_LIKE}
    if args.reference_out:
        ref = generate_reference(profiles[args.profile], scale=args.scale, seed=args.seed)
        write_fasta(
            [FastaRecord(f"synthetic_{args.profile}", "generated", ref)],
            args.reference_out,
            compress=str(args.reference_out).endswith(".gz"),
        )
        print(f"reference: {len(ref):,} bp -> {args.reference_out}")
    else:
        if not args.reference_in:
            print("error: need --reference-out or --reference-in", file=sys.stderr)
            return 2
        ref = read_fasta(args.reference_in)[0].sequence
    if args.reads_out:
        readset = simulate_reads(
            ref,
            n_reads=args.n_reads,
            read_length=args.read_length,
            mapping_ratio=args.mapping_ratio,
            seed=args.seed + 1,
        )
        write_fastq(
            readset.to_fastq(),
            args.reads_out,
            compress=str(args.reads_out).endswith(".gz"),
        )
        print(
            f"reads: {readset.n_reads} x {args.read_length} bp at ratio "
            f"{readset.mapping_ratio:.2f} -> {args.reads_out}"
        )
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from .check import PROFILES, SelfCheck

    checks = args.checks.split(",") if args.checks else None
    sc = SelfCheck(
        seed=args.seed,
        profile=PROFILES[args.profile],
        checks=checks,
        corpus_dir=args.corpus_dir,
    )
    if args.replay:
        report = sc.replay(args.replay)
        if not report.outcomes:
            print(f"selfcheck: no corpus entries under {args.replay}")
            return 0
    else:
        report = sc.run(args.rounds, progress=lambda msg: print(msg, file=sys.stderr))
    print("\n".join(report.summary_lines()))
    for path in report.corpus_written:
        print(f"counterexample stored: {path}")
    return 0 if report.ok else 1


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .bench.platform import ResultsStore, resolve_suite, run_experiments

    try:
        configs = resolve_suite(args.suite)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.reps is not None:
        from dataclasses import replace

        configs = [replace(c, repetitions=args.reps) for c in configs]
    with ResultsStore(args.store) as store:
        report = run_experiments(
            configs,
            store,
            as_baseline=args.as_baseline,
            bench_json_dir=args.bench_json,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    print("\n".join(report.summary_lines()))
    if report.skipped and args.strict:
        return 1
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from .bench.platform import ResultsStore, write_report

    with ResultsStore(args.store) as store:
        if store.count() == 0:
            print(f"error: store {args.store} has no trials", file=sys.stderr)
            return 2
        path = write_report(store, args.output)
    print(f"report -> {path}")
    return 0


def _cmd_bench_gate(args: argparse.Namespace) -> int:
    from .bench.platform import ResultsStore, run_gate

    with ResultsStore(args.store) as store:
        report = run_gate(
            store,
            git_hash=args.git_hash,
            threshold_override=args.threshold,
            alpha=args.alpha,
            strict_cross_host=args.strict_cross_host,
        )
    print("\n".join(report.summary_lines()))
    if args.require_evaluated and report.evaluated == 0:
        print("error: gate evaluated no hot paths", file=sys.stderr)
        return 2
    return 0 if report.ok else 1


def _cmd_bench_migrate_seed(args: argparse.Namespace) -> int:
    from .bench.platform import ResultsStore, migrate_legacy_results

    with ResultsStore(args.store) as store:
        records = migrate_legacy_results(
            args.results, store, reps=args.reps, seed=args.seed
        )
    workloads = sorted({r.workload for r in records})
    print(
        f"migrated {len(records)} synthetic baseline trials "
        f"({len(workloads)} hot paths: {', '.join(workloads)}) -> {args.store}"
    )
    return 0 if records else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .web.server import serve

    serve(
        host=args.host,
        port=args.port,
        job_workers=args.pool,
        job_backlog=args.backlog,
        map_index_fasta=(
            str(args.map_index) if args.map_index is not None else None
        ),
        map_pool_workers=args.map_pool,
        coalesce=not args.no_coalesce,
        coalesce_window_ms=args.coalesce_window_ms,
        coalesce_max_batch=args.coalesce_max_batch,
        catalog_manifest=(
            str(args.catalog) if args.catalog is not None else None
        ),
        shard_memory_budget_mb=args.shard_memory_budget,
        shard_workers=args.shard_workers,
    )
    return 0  # pragma: no cover - serve() blocks


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("telemetry")
    g.add_argument(
        "--metrics-out", type=Path, default=None,
        help="write a Prometheus text snapshot of the run's metrics here",
    )
    g.add_argument(
        "--trace-out", type=Path, default=None,
        help="write a Chrome/Perfetto trace (JSON) of the run's spans here",
    )
    g.add_argument(
        "--log-json", type=Path, default=None,
        help="append structured JSON log lines (one object per line) here",
    )


@contextmanager
def _telemetry_session(args: argparse.Namespace):
    """Enable telemetry for the command when any output flag was given,
    and write the requested artifacts when the command finishes."""
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    log_json = getattr(args, "log_json", None)
    if metrics_out is None and trace_out is None and log_json is None:
        yield
        return
    from .telemetry import Telemetry, correlate, new_run_id, set_telemetry

    log_fh = open(log_json, "a") if log_json is not None else None
    tel = Telemetry(enabled=True, log_stream=log_fh)
    set_telemetry(tel)
    try:
        with correlate(run_id=new_run_id()):
            yield
    finally:
        set_telemetry(Telemetry(enabled=False))
        if metrics_out is not None:
            Path(metrics_out).write_text(tel.metrics.prometheus_text())
            print(f"telemetry: metrics snapshot -> {metrics_out}")
        if trace_out is not None:
            with open(trace_out, "w") as fh:
                n = tel.tracer.write_chrome_trace(fh)
            print(f"telemetry: chrome trace ({n} slices) -> {trace_out}")
        if log_fh is not None:
            log_fh.close()
            print(f"telemetry: json log -> {log_json}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bwaver-repro",
        description="BWaveR reproduction: succinct DNA sequence mapping",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("index", help="build an index from a FASTA reference")
    p.add_argument("fasta", type=Path)
    p.add_argument("-o", "--output", type=Path, required=True)
    p.add_argument("-b", "--block-size", type=int, default=15)
    p.add_argument("-s", "--superblock-factor", type=int, default=50)
    p.add_argument("--backend", choices=["rrr", "occ"], default="rrr")
    p.add_argument("--locate", choices=["full", "sampled", "none"], default="full")
    p.add_argument(
        "--ftab-k", type=int, default=0, metavar="K",
        help="precompute the k-mer jump-start table (4^K entries; 0 = off; "
        "single-reference indexes only)",
    )
    p.add_argument(
        "--format", choices=["npz", "flat"], default="npz",
        help="index container: 'npz' (compressed archive, re-encoded on "
        "load) or 'flat' (zero-copy binary, O(1) mmap open)",
    )
    p.add_argument("--on-invalid", choices=["error", "skip", "random"], default="error")
    p.add_argument(
        "--blockwise", action="store_true",
        help="out-of-core build with bounded memory (single-reference, "
        "flat format; resumable via --resume)",
    )
    p.add_argument(
        "--block-mb", type=float, default=64.0, metavar="MB",
        help="memory budget of the blockwise suffix-array rounds",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted --blockwise build from its "
        "checkpointed work directory",
    )
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser("map", help="map a FASTQ read set against an index")
    p.add_argument("index", type=Path)
    p.add_argument("fastq", type=Path)
    p.add_argument("-o", "--output", type=Path, required=True)
    p.add_argument("--device", choices=["cpu", "fpga"], default="cpu")
    p.add_argument("--batch-size", type=int, default=2048)
    p.add_argument("--format", choices=["tsv", "sam"], default="tsv")
    p.add_argument(
        "--pool", type=int, default=1,
        help="worker processes sharing one index copy (cpu/tsv only); "
        "1 maps in-process",
    )
    p.add_argument("--reference-name", default="ref")
    p.add_argument(
        "--no-ftab", action="store_true",
        help="ignore the index's k-mer jump-start table (results are "
        "bit-identical; useful for timing comparisons)",
    )
    p.add_argument(
        "--faults",
        default="",
        help="fault-injection spec for --device fpga, e.g. "
        "'bram_flip_prob=0.5,transfer_corrupt_prob=0.1,max_faults=3'",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--fault-retries", type=int, default=3,
        help="per-batch retry budget before CPU fallback",
    )
    p.add_argument(
        "--no-cpu-fallback", action="store_true",
        help="raise instead of degrading to the CPU mapper",
    )
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_map)

    p = sub.add_parser("inspect", help="print index parameters and validate")
    p.add_argument("index", type=Path)
    p.add_argument("--validate", action="store_true")
    p.add_argument("--samples", type=int, default=64)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("simulate", help="generate synthetic references/reads")
    p.add_argument("--profile", choices=["ecoli", "chr21"], default="ecoli")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--reference-out", type=Path)
    p.add_argument("--reference-in", type=Path)
    p.add_argument("--reads-out", type=Path)
    p.add_argument("--n-reads", type=int, default=1000)
    p.add_argument("--read-length", type=int, default=100)
    p.add_argument("--mapping-ratio", type=float, default=1.0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "selfcheck",
        help="run the differential self-check harness (DESIGN.md §9)",
    )
    p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    p.add_argument(
        "--rounds", type=int, default=50,
        help="rounds per check pair (default 50)",
    )
    p.add_argument(
        "--profile", choices=("quick", "default", "thorough"), default="default",
        help="input-size/expense profile (default: default)",
    )
    p.add_argument(
        "--checks", default=None,
        help="comma-separated subset of check names (default: all)",
    )
    p.add_argument(
        "--corpus-dir", type=Path, default=None,
        help="store shrunk counterexamples here (e.g. tests/corpus)",
    )
    p.add_argument(
        "--replay", type=Path, default=None, metavar="CORPUS_DIR",
        help="re-verify stored counterexamples instead of fuzzing",
    )
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_selfcheck)

    p = sub.add_parser(
        "bench",
        help="continuous-benchmarking platform: run/report/gate (DESIGN.md §11)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    bp = bench_sub.add_parser("run", help="execute a declarative experiment suite")
    bp.add_argument(
        "--suite", default="smoke",
        help="built-in suite name (smoke/hotpaths/tiny) or a suite JSON path",
    )
    bp.add_argument(
        "--store", type=Path, default=Path("bench-store"),
        help="results store directory (trials/*.json + trajectory.sqlite)",
    )
    bp.add_argument(
        "--reps", type=int, default=None,
        help="override every experiment's steady repetitions",
    )
    bp.add_argument(
        "--as-baseline", action="store_true",
        help="flag this run's trials as the gate's comparison baseline",
    )
    bp.add_argument(
        "--bench-json", type=Path, default=None, metavar="DIR",
        help="also append per-workload medians to DIR/BENCH_hotpaths.json",
    )
    bp.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any experiment in the suite failed to run",
    )
    bp.set_defaults(func=_cmd_bench_run)

    bp = bench_sub.add_parser("report", help="render the HTML perf report")
    bp.add_argument("--store", type=Path, default=Path("bench-store"))
    bp.add_argument("-o", "--output", type=Path, default=Path("bench-report.html"))
    bp.set_defaults(func=_cmd_bench_report)

    bp = bench_sub.add_parser(
        "gate",
        help="fail (exit 1) on a significant regression of a named hot path",
    )
    bp.add_argument("--store", type=Path, default=Path("bench-store"))
    bp.add_argument(
        "--git-hash", default=None,
        help="revision to gate (default: latest non-baseline run in the store)",
    )
    bp.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="override every hot path's regression threshold (e.g. 0.25)",
    )
    bp.add_argument("--alpha", type=float, default=0.01, help="significance level")
    bp.add_argument(
        "--strict-cross-host", action="store_true",
        help="hard-fail on cross-host comparisons too (default: advisory)",
    )
    bp.add_argument(
        "--require-evaluated", action="store_true",
        help="exit 2 when no hot path had both samples and a baseline",
    )
    bp.set_defaults(func=_cmd_bench_gate)

    bp = bench_sub.add_parser(
        "migrate-seed",
        help="import legacy benchmarks/results/*.txt numbers as the seed baseline",
    )
    bp.add_argument(
        "--results", type=Path, default=Path("benchmarks/results"),
        help="legacy results directory",
    )
    bp.add_argument("--store", type=Path, default=Path("bench-store"))
    bp.add_argument("--reps", type=int, default=8, help="synthetic samples per path")
    bp.add_argument("--seed", type=int, default=0)
    bp.set_defaults(func=_cmd_bench_migrate_seed)

    p = sub.add_parser("serve", help="start the web application")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument(
        "--pool", type=int, default=2,
        help="maximum concurrently running background jobs",
    )
    p.add_argument(
        "--backlog", type=int, default=8,
        help="queued jobs beyond --pool before submissions get HTTP 503",
    )
    g = p.add_argument_group("served index (POST /map)")
    g.add_argument(
        "--map-index", type=Path, default=None,
        help="reference FASTA to preload and serve on POST /map; concurrent "
        "requests against it are coalesced into shared kernel batches",
    )
    g.add_argument(
        "--map-pool", type=int, default=0,
        help="worker processes for the served index (0 = in-process mapper)",
    )
    g.add_argument(
        "--coalesce-window-ms", type=float, default=2.0,
        help="max milliseconds a /map request waits to share a batch",
    )
    g.add_argument(
        "--coalesce-max-batch", type=int, default=512,
        help="reads per merged batch before an early flush",
    )
    g.add_argument(
        "--no-coalesce", action="store_true",
        help="dispatch each /map request alone (ablation/debug)",
    )
    g = p.add_argument_group("served shard catalog (POST /map?catalog=...)")
    g.add_argument(
        "--catalog", type=Path, default=None,
        help="shard catalog manifest JSON ({'shards': [{'name', 'path'|"
        "'fasta'}, ...]}) to serve through the scatter-gather router",
    )
    g.add_argument(
        "--shard-memory-budget", type=float, default=None, metavar="MB",
        help="memory budget for resident shards in MiB; the catalog may "
        "exceed it — cold shards activate LRU-style on demand",
    )
    g.add_argument(
        "--shard-workers", type=int, default=0,
        help="worker processes per active shard (0 = in-process mappers)",
    )
    p.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    with _telemetry_session(args):
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Sharded multi-genome serving: catalog, LRU activation, scatter-gather.

The serving spine so far assumes one index = one pool.  Real deployments
serve a *catalog* of references — many genomes, not all of which fit in
memory at once.  This module adds the missing tier:

* :class:`ShardCatalog` registers N named references, each backed by its
  own flat container on disk.  Activation attaches the container
  zero-copy (mmap) and optionally spins up a per-shard
  :class:`~repro.serving.pool.MapperPool`; deactivation drops both.
  Activations are LRU-managed under a configurable memory budget, so the
  catalog may be far larger than RAM — cold shards cost only disk.
* :class:`ShardRouter` fans a read batch across the requested shards
  (scatter), maps on each shard independently, and merges the per-shard
  strand hits into :class:`~repro.index.multiref.MultiRefMapping` rows
  with stable global ordering (gather): hits sort by catalog ordinal,
  then position, then strand — exactly the order
  :class:`~repro.index.multiref.MultiReferenceIndex` produces for the
  same sequences, which makes the monolithic multi-reference index a
  bit-exact oracle for the sharded path (the ``router`` differential
  self-check enforces this).
* :class:`RouterMappingService` puts a
  :class:`~repro.serving.coalescer.RequestCoalescer` in front of the
  router so concurrent small requests share fan-out batches; demux is
  bit-identical to per-request ``ShardRouter.map_reads``.

Per-shard health (state, worker liveness, queue depth, degraded flag,
activation/eviction counters) is surfaced through :meth:`ShardRouter
.stats` and lands on the web tier's ``/healthz``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Sequence

from ..index.multiref import MultiRefMapping, ReferenceHit
from ..telemetry import get_telemetry

#: Shard lifecycle states.
SHARD_INACTIVE = "inactive"
SHARD_ACTIVE = "active"


class RouterError(RuntimeError):
    """Scatter-gather dispatch failure."""


class UnknownShardError(KeyError):
    """A request named a shard the catalog does not hold."""


class Shard:
    """One named reference: a flat container plus its serving state.

    Cold shards hold only the container path and its size; activation
    mmaps the container (O(1) in index size) and, with
    ``pool_workers > 0``, starts a :class:`~repro.serving.pool.MapperPool`
    whose workers attach to the same file zero-copy.  An in-process
    mapper over the same mmap is always kept as the fallback rung, so a
    degraded pool serves correct results while health reports the fault.
    """

    def __init__(
        self,
        name: str,
        flat_path: str | Path,
        *,
        pool_workers: int = 0,
        start_method: str | None = None,
        owns_file: bool = False,
    ):
        self.name = str(name)
        self.flat_path = str(flat_path)
        self.bytes = os.path.getsize(self.flat_path)
        self.pool_workers = int(pool_workers)
        self.start_method = start_method
        self.owns_file = bool(owns_file)
        self.state = SHARD_INACTIVE
        self.pool = None
        self._mapper = None
        self._index = None
        self.degraded = False
        self.last_error = ""
        self.activations = 0
        self.batches = 0
        self.reads = 0
        self.last_used = 0  # catalog use-sequence number (LRU key)
        self.pins = 0  # in-flight dispatches; pinned shards never evict

    # -- lifecycle ---------------------------------------------------------

    def activate(self) -> None:
        if self.state == SHARD_ACTIVE:
            return
        from ..index.flat import load_index_flat
        from ..mapper.mapper import Mapper

        self._index = load_index_flat(self.flat_path)
        self._mapper = Mapper(self._index, locate=True)
        if self.pool_workers > 0:
            from .pool import MapperPool

            self.pool = MapperPool(
                flat_path=self.flat_path,
                workers=self.pool_workers,
                start_method=self.start_method,
            )
        self.state = SHARD_ACTIVE
        self.activations += 1

    def deactivate(self) -> None:
        if self.state == SHARD_INACTIVE:
            return
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        self._mapper = None
        self._index = None
        self.state = SHARD_INACTIVE

    def restart_pool(self) -> None:
        """Recover a degraded shard: respawn its pool workers."""
        if self.pool is not None:
            self.pool.restart()
        self.degraded = False
        self.last_error = ""

    # -- serving -----------------------------------------------------------

    def map_reads(self, reads: list[str]):
        """Map a batch on this shard; falls back to the in-process mapper
        (marking the shard degraded) when the pool dispatch fails."""
        if self.state != SHARD_ACTIVE:
            raise RouterError(f"shard {self.name!r} is not active")
        self.batches += 1
        self.reads += len(reads)
        if self.pool is not None:
            try:
                return self.pool.map_reads(reads, locate=True)
            except Exception as exc:  # noqa: BLE001 - degrade, don't fail
                self.degraded = True
                self.last_error = f"{type(exc).__name__}: {exc}"
                get_telemetry().metrics.counter(
                    "router_shard_degraded_total",
                    "Shard pool dispatches recovered via the in-process rung",
                ).inc()
        return self._mapper.map_reads(reads)

    # -- introspection -----------------------------------------------------

    def health(self) -> dict:
        doc = {
            "name": self.name,
            "state": self.state,
            "bytes": self.bytes,
            "pool_workers": self.pool_workers,
            "degraded": self.degraded,
            "last_error": self.last_error,
            "activations": self.activations,
            "batches": self.batches,
            "reads": self.reads,
        }
        if self.pool is not None:
            pool = self.pool.health()
            doc["workers_alive"] = pool["workers_alive"]
            doc["queue_depth"] = pool["queue_depth"]
            doc["generation"] = pool["generation"]
            if pool["workers_alive"] < pool["workers"]:
                doc["degraded"] = True
        return doc

    def __repr__(self) -> str:
        return (
            f"Shard(name={self.name!r}, state={self.state!r}, "
            f"bytes={self.bytes}, pool_workers={self.pool_workers})"
        )


class ShardCatalog:
    """Registry of named references with LRU activation under a budget.

    Registration order defines the catalog ordinal used for cross-shard
    hit ordering (the same scheme as
    :attr:`~repro.index.multiref.MultiReferenceIndex.ordinals`).

    ``memory_budget_bytes`` bounds the summed container size of active
    shards; activating past the budget evicts the least-recently-used
    unpinned shard first.  A single shard larger than the whole budget
    still activates (serving beats the soft budget), and the overrun is
    visible in :meth:`stats`.
    """

    def __init__(
        self,
        *,
        memory_budget_bytes: int | None = None,
        pool_workers: int = 0,
        start_method: str | None = None,
    ):
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be >= 1 (or None)")
        self.memory_budget_bytes = memory_budget_bytes
        self.pool_workers = int(pool_workers)
        self.start_method = start_method
        self._shards: dict[str, Shard] = {}  # insertion order = ordinal
        self._lock = threading.RLock()
        self._use_seq = 0
        self.evictions = 0
        self._spool: tempfile.TemporaryDirectory | None = None
        self._closed = False

    # -- registration ------------------------------------------------------

    def register(self, name: str, flat_path: str | Path, *, owns_file: bool = False) -> Shard:
        """Register an on-disk flat container as shard ``name``."""
        with self._lock:
            if name in self._shards:
                raise ValueError(f"duplicate shard name {name!r}")
            shard = Shard(
                name,
                flat_path,
                pool_workers=self.pool_workers,
                start_method=self.start_method,
                owns_file=owns_file,
            )
            self._shards[shard.name] = shard
            return shard

    def register_index(self, name: str, index) -> Shard:
        """Serialize ``index`` into the catalog spool dir and register it."""
        from ..index.flat import save_index_flat

        path = Path(self._spool_dir()) / f"{len(self._shards):04d}_{name}.bwvr"
        save_index_flat(index, path)
        return self.register(name, path, owns_file=True)

    def register_sequence(
        self, name: str, sequence: str, b: int = 15, sf: int = 50, backend: str = "rrr"
    ) -> Shard:
        """Build a full-locate index for ``sequence`` and register it."""
        from ..index.builder import build_index

        index, _ = build_index(sequence, b=b, sf=sf, backend=backend, locate="full")
        return self.register_index(name, index)

    @classmethod
    def from_manifest(cls, path: str | Path, **kwargs) -> "ShardCatalog":
        """Load a catalog manifest: ``{"shards": [{"name": ..., "path":
        flat-container} | {"name": ..., "fasta": fasta-file}, ...]}``.

        ``path`` entries are registered in place (no copy); ``fasta``
        entries are indexed into the catalog spool directory.  Relative
        entry paths resolve against the manifest's directory.
        """
        path = Path(path)
        doc = json.loads(path.read_text())
        entries = doc.get("shards")
        if not isinstance(entries, list) or not entries:
            raise ValueError(f"manifest {path} has no 'shards' list")
        catalog = cls(**kwargs)
        try:
            for entry in entries:
                name = entry.get("name")
                if not name:
                    raise ValueError(f"manifest entry without a name: {entry}")
                if "path" in entry:
                    catalog.register(name, _resolve(path.parent, entry["path"]))
                elif "fasta" in entry:
                    from ..io.fasta import read_fasta

                    records = read_fasta(_resolve(path.parent, entry["fasta"]))
                    sequence = "".join(rec.sequence for rec in records)
                    catalog.register_sequence(name, sequence)
                else:
                    raise ValueError(
                        f"manifest entry {name!r} needs 'path' or 'fasta'"
                    )
        except BaseException:
            catalog.close()
            raise
        return catalog

    # -- lookup ------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._shards)

    @property
    def ordinals(self) -> dict[str, int]:
        with self._lock:
            return {n: i for i, n in enumerate(self._shards)}

    def shard(self, name: str) -> Shard:
        try:
            return self._shards[name]
        except KeyError:
            raise UnknownShardError(name) from None

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    # -- activation / LRU --------------------------------------------------

    def active_names(self) -> list[str]:
        with self._lock:
            return [s.name for s in self._shards.values() if s.state == SHARD_ACTIVE]

    def active_bytes(self) -> int:
        with self._lock:
            return sum(
                s.bytes for s in self._shards.values() if s.state == SHARD_ACTIVE
            )

    def acquire(self, names: Sequence[str]) -> list[Shard]:
        """Activate (LRU-evicting as needed) and pin the named shards.

        Pinned shards are immune to eviction until :meth:`release`; the
        pin makes a concurrent activation wave unable to evict a shard
        that is mid-dispatch.
        """
        with self._lock:
            if self._closed:
                raise RouterError("catalog is closed")
            shards = [self.shard(n) for n in names]
            wanted = set(names)
            for shard in shards:
                if shard.state != SHARD_ACTIVE:
                    self._make_room_locked(shard.bytes, keep=wanted)
                    shard.activate()
                    get_telemetry().metrics.counter(
                        "router_shard_activations_total",
                        "Shard activations (cold mmap attach)",
                    ).inc()
                self._use_seq += 1
                shard.last_used = self._use_seq
                shard.pins += 1
            return shards

    def release(self, shards: Sequence[Shard]) -> None:
        with self._lock:
            for shard in shards:
                shard.pins = max(0, shard.pins - 1)

    def _make_room_locked(self, incoming: int, keep: set[str]) -> None:
        budget = self.memory_budget_bytes
        if budget is None:
            return
        while self.active_bytes() + incoming > budget:
            victims = [
                s
                for s in self._shards.values()
                if s.state == SHARD_ACTIVE and s.pins == 0 and s.name not in keep
            ]
            if not victims:
                break  # over budget, tolerated: serving beats the soft cap
            victim = min(victims, key=lambda s: s.last_used)
            victim.deactivate()
            self.evictions += 1
            get_telemetry().metrics.counter(
                "router_shard_evictions_total",
                "Shard deactivations forced by the memory budget",
            ).inc()

    def plan_waves(self, names: Sequence[str]) -> list[list[str]]:
        """Partition a fan-out into budget-sized waves (catalog order).

        With no budget everything rides one wave; otherwise each wave's
        summed container size stays within the budget so the whole wave
        can be resident at once (an oversized single shard gets its own
        wave and activates anyway).
        """
        if self.memory_budget_bytes is None:
            return [list(names)] if names else []
        waves: list[list[str]] = []
        wave: list[str] = []
        wave_bytes = 0
        for name in names:
            size = self.shard(name).bytes
            if wave and wave_bytes + size > self.memory_budget_bytes:
                waves.append(wave)
                wave, wave_bytes = [], 0
            wave.append(name)
            wave_bytes += size
        if wave:
            waves.append(wave)
        return waves

    # -- lifecycle ---------------------------------------------------------

    def deactivate_all(self) -> None:
        with self._lock:
            for shard in self._shards.values():
                shard.deactivate()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.deactivate_all()
            for shard in self._shards.values():
                if shard.owns_file:
                    try:
                        os.unlink(shard.flat_path)
                    except OSError:
                        pass
            if self._spool is not None:
                self._spool.cleanup()
                self._spool = None

    def __enter__(self) -> "ShardCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _spool_dir(self) -> str:
        if self._spool is None:
            self._spool = tempfile.TemporaryDirectory(prefix="shard_catalog_")
        return self._spool.name

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            active = self.active_bytes()
            return {
                "shards": [s.health() for s in self._shards.values()],
                "n_shards": len(self._shards),
                "active_shards": len(self.active_names()),
                "memory_budget_bytes": self.memory_budget_bytes,
                "active_bytes": active,
                "over_budget": (
                    self.memory_budget_bytes is not None
                    and active > self.memory_budget_bytes
                ),
                "evictions": self.evictions,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (
            f"ShardCatalog(shards={len(self._shards)}, "
            f"active={len(self.active_names())}, "
            f"budget={self.memory_budget_bytes})"
        )


def _resolve(base: Path, p: str) -> Path:
    q = Path(p)
    return q if q.is_absolute() else base / q


class ShardRouter:
    """Scatter-gather dispatcher over a :class:`ShardCatalog`.

    ``map_reads`` fans one read batch across the requested shards (all
    of them by default), maps on each independently, and merges the
    per-shard strand hits into one :class:`MultiRefMapping` per read.
    Merged hits sort by ``(catalog ordinal, position, strand)`` — the
    exact order a monolithic :class:`MultiReferenceIndex` over the same
    sequences produces, which the ``router`` differential self-check
    verifies bit-for-bit.

    Shards inside one budget wave dispatch concurrently (each shard's
    pool has its own queues, so cross-shard concurrency is safe); waves
    run sequentially so the catalog never exceeds its memory budget
    mid-fan-out.
    """

    def __init__(self, catalog: ShardCatalog):
        self.catalog = catalog
        self.batches = 0
        self.reads_total = 0

    def map_reads(
        self, reads: Sequence[str], shards: Sequence[str] | None = None
    ) -> list[MultiRefMapping]:
        reads = list(reads)
        if shards is None:
            names = list(self.catalog.names)
        else:
            names = list(shards)
            for n in names:
                self.catalog.shard(n)  # raises UnknownShardError early
        if not names:
            raise UnknownShardError("no shards selected")
        self.batches += 1
        self.reads_total += len(reads)
        if not reads:
            return []
        tel = get_telemetry()
        t0 = time.perf_counter()
        per_shard: dict[str, list] = {}
        for wave in self.catalog.plan_waves(names):
            acquired = self.catalog.acquire(wave)
            try:
                if len(acquired) == 1:
                    per_shard[acquired[0].name] = acquired[0].map_reads(reads)
                else:
                    self._fan_out(acquired, reads, per_shard)
            finally:
                self.catalog.release(acquired)
        merged = self._merge(reads, names, per_shard)
        tel.metrics.histogram(
            "router_fanout_seconds", "Wall seconds per scatter-gather batch"
        ).observe(time.perf_counter() - t0)
        tel.metrics.counter(
            "router_batches_total", "Read batches through the shard router"
        ).inc()
        return merged

    def _fan_out(self, shards: list[Shard], reads: list[str], out: dict) -> None:
        errors: dict[str, BaseException] = {}

        def _run(shard: Shard) -> None:
            try:
                out[shard.name] = shard.map_reads(reads)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[shard.name] = exc

        threads = [
            threading.Thread(target=_run, args=(s,), daemon=True) for s in shards
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            name, exc = next(iter(errors.items()))
            raise RouterError(f"shard {name!r} failed: {exc}") from exc

    def _merge(
        self, reads: list[str], names: list[str], per_shard: dict[str, list]
    ) -> list[MultiRefMapping]:
        ordinals = self.catalog.ordinals
        merged: list[MultiRefMapping] = []
        for i in range(len(reads)):
            hits: list[ReferenceHit] = []
            for name in names:
                res = per_shard[name][i]
                for strand, side in (("+", res.forward), ("-", res.reverse)):
                    if side.positions is None:
                        continue
                    for p in side.positions.tolist():
                        hits.append(
                            ReferenceHit(name=name, position=int(p), strand=strand)
                        )
            hits.sort(key=lambda h: (ordinals[h.name], h.position, h.strand))
            merged.append(MultiRefMapping(read_id=i, hits=tuple(hits)))
        return merged

    def stats(self) -> dict:
        doc = self.catalog.stats()
        doc["batches_total"] = self.batches
        doc["reads_total"] = self.reads_total
        doc["degraded"] = any(s["degraded"] for s in doc["shards"])
        return doc


class RouterMappingService:
    """A served shard catalog behind a request coalescer.

    The web tier's ``POST /map?catalog=...`` path: concurrent requests
    coalesce into shared fan-out batches through
    :meth:`ShardRouter.map_reads`; demultiplexed per-request results are
    bit-identical to an independent ``map_reads`` of the same reads.
    Whole-catalog fan-out only — per-request shard subsets bypass the
    coalescer (different subsets cannot share a batch).
    """

    def __init__(self, router: ShardRouter, *, coalesce: bool = True, config=None):
        from .coalescer import RequestCoalescer

        self.router = router
        self.coalesce = bool(coalesce)
        self.coalescer = RequestCoalescer(
            lambda reads: router.map_reads(reads),
            config=config,
            name="router-service",
        )
        self._closed = False

    def map_request(
        self,
        reads: Sequence[str],
        tenant: str = "default",
        timeout: float | None = 60.0,
        shards: Sequence[str] | None = None,
    ):
        """Map one request through the (possibly shared) fan-out batch."""
        from .coalescer import CoalescedRequest, CoalescerClosed

        if self._closed:
            raise CoalescerClosed("router service is closed")
        if not self.coalesce or shards is not None:
            req = CoalescedRequest(list(reads), str(tenant), deadline=0.0)
            req._complete(self.router.map_reads(req.reads, shards=shards))
            return req
        req = self.coalescer.submit(reads, tenant=tenant)
        req.result(timeout=timeout)
        return req

    def stats(self) -> dict:
        doc = self.router.stats()
        doc["coalescer"] = self.coalescer.stats()
        doc["coalesce"] = self.coalesce
        return doc

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        self.router.catalog.close()

    def __enter__(self) -> "RouterMappingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

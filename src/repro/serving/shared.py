"""Publish one index copy; attach N processes to the same physical pages.

An index is published either as a ``multiprocessing.shared_memory`` block
holding a flat container (:class:`SharedIndexBlock`) or as a flat file on
disk attached via ``np.memmap`` (:class:`FlatFileBlock`).  Both reduce to
the same thing: a byte buffer in the flat container format that
:func:`repro.index.flat.attach_index_from_buffer` rehydrates around
without copying.  Workers receive only a small picklable *spec* dict —
``{"kind": "shm", "name": ..., "size": ...}`` or
``{"kind": "mmap", "path": ...}`` — never the index itself, so spawning a
worker ships a few hundred bytes instead of the whole structure.

Lifecycle: the publishing process owns the block and must call
:meth:`~SharedIndexBlock.unlink` (or use the block as a context manager)
when serving ends; attachers only ``close()``.  On Python < 3.13,
attaching to a named ``SharedMemory`` from a child process registers it
with the ``resource_tracker``, which would unlink the segment when the
*child* exits — :func:`attach_index` unregisters the attachment to keep
ownership with the publisher.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from ..core.counters import OpCounters
from ..index.flat import (
    attach_index_from_buffer,
    detect_index_format,
    export_index,
    flat_container_size,
    load_index_flat,
    pack_flat_into,
    save_index_flat,
)
from ..index.fm_index import FMIndex
from ..telemetry import get_telemetry


def _attach_untracked(name: str):
    """Attach to a named segment without resource-tracker registration.

    On Python < 3.13 ``SharedMemory(name=...)`` registers every attachment
    with the ``resource_tracker``, which (a) makes the tracker unlink the
    segment when an *attaching* process exits and (b) corrupts the
    tracker's cache when the owner later unregisters the same name.
    Suppressing registration for the duration of the attach keeps
    ownership solely with the publisher.  (3.13+ exposes ``track=False``
    for exactly this.)
    """
    from multiprocessing import shared_memory

    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        return shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def release_attachment(shm) -> None:
    """Best-effort close of a ``SharedMemory`` attachment.

    If index views still reference the mapping, ``mmap.close`` raises
    ``BufferError``; in that case drop the handle's own references and
    let the views' lifetime (usually process exit) reclaim the mapping —
    the alternative is a noisy exception from ``SharedMemory.__del__``.
    """
    try:
        shm.close()
    except BufferError:
        shm._mmap = None
        if getattr(shm, "_fd", -1) >= 0:
            try:
                os.close(shm._fd)
            except OSError:  # pragma: no cover
                pass
            shm._fd = -1


class SharedIndexBlock:
    """Owner-side handle for an index published in shared memory.

    Packs the flat container for ``index`` into one freshly created
    ``SharedMemory`` segment.  Every worker that attaches maps the same
    physical pages, so resident memory grows by roughly one index total,
    not one index per worker.
    """

    kind = "shm"

    def __init__(self, index: FMIndex, name: str | None = None):
        from multiprocessing import shared_memory

        meta, segments = export_index(index)
        size = flat_container_size(meta, segments)
        self.shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        self.size = int(size)
        buf = np.frombuffer(self.shm.buf, dtype=np.uint8, count=self.size)
        pack_flat_into(buf, meta, segments)
        del buf
        self._unlinked = False
        tel = get_telemetry()
        tel.metrics.gauge(
            "serving_shared_index_bytes", "Bytes of index published in shared memory"
        ).set(self.size)

    @property
    def spec(self) -> dict:
        """Picklable attachment recipe for worker processes."""
        return {"kind": "shm", "name": self.shm.name, "size": self.size}

    def attach(self, counters: OpCounters | None = None) -> FMIndex:
        """Rehydrate an index view in the *owning* process (no copy)."""
        u8 = np.frombuffer(self.shm.buf, dtype=np.uint8, count=self.size)
        return attach_index_from_buffer(u8, counters=counters)

    def close(self) -> None:
        """Release this process's mapping (owner keeps the segment)."""
        release_attachment(self.shm)

    def unlink(self) -> None:
        """Destroy the segment.  Call exactly once, after workers exit."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedIndexBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return f"SharedIndexBlock(name={self.shm.name!r}, bytes={self.size})"


class FlatFileBlock:
    """Index published as a flat container file, attached via ``mmap``.

    Used either for an existing on-disk flat index (``owns_file=False``;
    ``unlink`` leaves it alone) or as the fallback when shared memory is
    unavailable (a temp file the block deletes on ``unlink``).  Attached
    processes share pages through the OS page cache.
    """

    kind = "mmap"

    def __init__(self, path: str | Path, owns_file: bool = False):
        self.path = str(path)
        self.owns_file = bool(owns_file)
        if detect_index_format(self.path) != "flat":
            raise ValueError(
                f"{self.path} is not a flat container; convert with save_index_flat"
            )
        self.size = os.path.getsize(self.path)

    @classmethod
    def from_index(cls, index: FMIndex, dir: str | None = None) -> "FlatFileBlock":
        fd, path = tempfile.mkstemp(suffix=".bwvr", prefix="repro-index-", dir=dir)
        os.close(fd)
        save_index_flat(index, path)
        return cls(path, owns_file=True)

    @property
    def spec(self) -> dict:
        return {"kind": "mmap", "path": self.path}

    def attach(self, counters: OpCounters | None = None) -> FMIndex:
        return load_index_flat(self.path, counters=counters)

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        if self.owns_file:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
            self.owns_file = False

    def __enter__(self) -> "FlatFileBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return f"FlatFileBlock(path={self.path!r}, bytes={self.size})"


def publish_index(
    index: FMIndex, mode: str = "auto", dir: str | None = None
) -> SharedIndexBlock | FlatFileBlock:
    """Publish ``index`` for multi-process attachment.

    ``mode``: ``"shm"`` (shared memory, fail hard), ``"mmap"`` (temp flat
    file), or ``"auto"`` (shared memory with mmap fallback when segment
    creation fails, e.g. no ``/dev/shm``).
    """
    if mode not in ("auto", "shm", "mmap"):
        raise ValueError(f"unknown publish mode {mode!r}")
    if mode in ("auto", "shm"):
        try:
            return SharedIndexBlock(index)
        except (OSError, ImportError):
            if mode == "shm":
                raise
    return FlatFileBlock.from_index(index, dir=dir)


def attach_index(
    spec: dict, counters: OpCounters | None = None
) -> tuple[FMIndex, object | None]:
    """Worker-side attach from a picklable spec.

    Returns ``(index, handle)``; ``handle`` is the ``SharedMemory``
    attachment that must stay referenced (and be ``close()``-d when the
    worker exits) for shm specs, ``None`` for mmap specs.  Attach time is
    recorded on the ``serving_attach_seconds`` histogram.
    """
    tel = get_telemetry()
    t0 = time.perf_counter()
    kind = spec.get("kind")
    if kind == "shm":
        shm = _attach_untracked(spec["name"])
        u8 = np.frombuffer(shm.buf, dtype=np.uint8, count=int(spec["size"]))
        index = attach_index_from_buffer(u8, counters=counters)
        handle: object | None = shm
    elif kind == "mmap":
        index = load_index_flat(spec["path"], counters=counters)
        handle = None
    else:
        raise ValueError(f"unknown index spec kind {kind!r}")
    tel.metrics.histogram(
        "serving_attach_seconds",
        "Wall seconds to attach a process to a published index",
        labelnames=("kind",),
    ).observe(time.perf_counter() - t0, kind=kind)
    return index, handle

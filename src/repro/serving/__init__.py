"""Persistent index serving: shared-memory publication and worker pools.

The batch and web layers historically paid an index copy per consumer —
``multiprocessing.Pool(initializer=...)`` pickled the whole
:class:`~repro.index.fm_index.FMIndex` into every worker, and the web
server spawned an unbounded daemon thread per submitted job.  This
package provides the serving primitives the flat container
(:mod:`repro.index.flat`) makes possible:

* :mod:`repro.serving.shared` — publish an index once, as one
  ``multiprocessing.shared_memory`` block (or a memory-mapped flat file),
  and attach any number of processes to the same physical pages;
* :mod:`repro.serving.pool` — :class:`MapperPool`, a persistent pool of
  worker processes that attach to a published index and serve read
  batches from a task queue;
* :mod:`repro.serving.executor` — :class:`BoundedExecutor`, a bounded
  thread pool with backlog rejection for web job execution;
* :mod:`repro.serving.coalescer` — :class:`RequestCoalescer`, a
  deadline-bounded tenant-fair micro-batcher that merges concurrent
  small requests into shared kernel batches, and
  :class:`MappingService`, a served index behind one;
* :mod:`repro.serving.router` — :class:`ShardCatalog` +
  :class:`ShardRouter`, the sharded multi-genome tier: N named
  references, LRU activation under a memory budget, scatter-gather
  fan-out with stable cross-shard hit ordering, and
  :class:`RouterMappingService`, a shard catalog behind a coalescer.
"""

from .coalescer import (
    CoalescedRequest,
    CoalescerClosed,
    CoalescerConfig,
    CoalescerError,
    CoalescerFull,
    MappingService,
    RequestCoalescer,
)
from .executor import BacklogFull, BoundedExecutor
from .pool import MapperPool, PoolBatchOutcome
from .router import (
    RouterError,
    RouterMappingService,
    Shard,
    ShardCatalog,
    ShardRouter,
    UnknownShardError,
)
from .shared import (
    FlatFileBlock,
    SharedIndexBlock,
    attach_index,
    publish_index,
)

__all__ = [
    "BacklogFull",
    "BoundedExecutor",
    "CoalescedRequest",
    "CoalescerClosed",
    "CoalescerConfig",
    "CoalescerError",
    "CoalescerFull",
    "FlatFileBlock",
    "MapperPool",
    "MappingService",
    "PoolBatchOutcome",
    "RequestCoalescer",
    "RouterError",
    "RouterMappingService",
    "Shard",
    "ShardCatalog",
    "ShardRouter",
    "SharedIndexBlock",
    "UnknownShardError",
    "attach_index",
    "publish_index",
]

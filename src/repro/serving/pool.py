"""Persistent mapping pool: N worker processes, one physical index copy.

:class:`MapperPool` replaces the pickle-the-index-into-every-worker
pattern (``multiprocessing.Pool(initializer=..., initargs=(index,))``)
with publish-once / attach-everywhere: the index is published through
:mod:`repro.serving.shared` and each worker process receives only a spec
dict, attaches zero-copy, then serves read batches from a task queue
until told to stop.  Startup cost per worker is an O(1) attach instead of
an O(index) pickle round-trip, and resident memory is shared through the
segment/page cache instead of duplicated per process.

The pool is spawn-safe: the worker entry point is a module-level function
and everything shipped to it is picklable, so it behaves identically
under ``fork`` and ``spawn`` start methods (tests run both).
"""

from __future__ import annotations

import queue as _queue
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.counters import CounterScope, OpCounters
from ..index.fm_index import FMIndex
from ..mapper.mapper import Mapper
from ..mapper.results import MappingResult
from ..telemetry import get_telemetry
from .shared import FlatFileBlock, attach_index, publish_index, release_attachment

_READY_TIMEOUT = 120.0
_LIVENESS_POLL_SECONDS = 0.2


class _Stop:
    """Generation-tagged stop sentinel.

    A bare sentinel (the old ``_STOP = None``) is a restart hazard: if a
    worker dies before consuming its sentinel, the leftover sentinel sits
    in ``task_q`` and immediately kills one of the freshly spawned
    workers, leaving the pool silently under-provisioned.  Tagging the
    sentinel with the worker cohort's generation lets a new cohort skip
    sentinels addressed to a previous one.
    """

    __slots__ = ("generation",)

    def __init__(self, generation: int):
        self.generation = generation


@dataclass
class PoolBatchOutcome:
    """Aggregate of one pooled mapping run."""

    n_reads: int
    mapped: int
    wall_seconds: float
    op_counts: dict[str, int] = field(default_factory=dict)
    results: list[MappingResult] = field(default_factory=list)

    @property
    def mapping_ratio(self) -> float:
        return self.mapped / self.n_reads if self.n_reads else 0.0


def _pool_worker(worker_id: int, generation: int, spec: dict, task_q, result_q) -> None:
    """Worker loop: attach once, then serve tasks until the stop sentinel.

    Tasks: ``(task_id, reads, locate, ship_results)``.  Replies:
    ``("ready", worker_id, attach_seconds, None)`` once at startup, then
    ``("done", task_id, payload, None)`` or
    ``("error", task_id, None, message)`` per task.  Stop sentinels from
    an older generation are dropped, not obeyed.
    """
    handle = None
    try:
        counters = OpCounters()
        t0 = time.perf_counter()
        index, handle = attach_index(spec, counters=counters)
        result_q.put(("ready", worker_id, time.perf_counter() - t0, None))
    except BaseException as exc:  # startup failure must not hang the parent
        result_q.put(("ready", worker_id, -1.0, f"{type(exc).__name__}: {exc}"))
        return
    try:
        while True:
            task = task_q.get()
            if isinstance(task, _Stop):
                if task.generation >= generation:
                    break
                continue  # stale sentinel addressed to a dead cohort
            task_id, reads, locate, ship_results = task
            try:
                mapper = Mapper(index, locate=locate)
                with CounterScope(counters) as scope:
                    results = mapper.map_reads(reads)
                mapped = sum(1 for r in results if r.mapped)
                payload = (mapped, scope.delta, results if ship_results else None)
                result_q.put(("done", task_id, payload, None))
            except Exception as exc:
                result_q.put(("error", task_id, None, f"{type(exc).__name__}: {exc}"))
    finally:
        if handle is not None:
            index = mapper = None  # noqa: F841 - drop index views before closing
            release_attachment(handle)


class MapperPool:
    """Persistent pool of mapping workers attached to one published index.

    Parameters
    ----------
    index:
        The index to publish.  Alternatively pass ``flat_path`` to serve
        an on-disk flat container without materializing it in the parent.
    workers:
        Worker process count.
    mode:
        Publication mode forwarded to
        :func:`~repro.serving.shared.publish_index` (``"auto"``/``"shm"``/
        ``"mmap"``); ignored when ``flat_path`` is given.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/...);
        defaults to fork when available.
    """

    def __init__(
        self,
        index: FMIndex | None = None,
        *,
        flat_path: str | Path | None = None,
        workers: int = 2,
        mode: str = "auto",
        start_method: str | None = None,
    ):
        import multiprocessing as mp

        if workers < 1:
            raise ValueError("workers must be >= 1")
        if (index is None) == (flat_path is None):
            raise ValueError("pass exactly one of index= or flat_path=")
        if flat_path is not None:
            self.block = FlatFileBlock(flat_path, owns_file=False)
        else:
            self.block = publish_index(index, mode=mode)
        self.workers = int(workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = mp.get_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs: list = []
        self._next_task = 0
        self._generation = 0
        self._closed = False
        self.attach_seconds: list[float] = []
        try:
            self._spawn_workers()
        except BaseException:
            self._terminate()
            self.block.unlink()
            raise

    # -- lifecycle ---------------------------------------------------------

    def _spawn_workers(self) -> None:
        tel = get_telemetry()
        spec = self.block.spec
        for wid in range(self.workers):
            p = self._ctx.Process(
                target=_pool_worker,
                args=(wid, self._generation, spec, self._task_q, self._result_q),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        ready = 0
        attach_hist = tel.metrics.histogram(
            "mapper_pool_attach_seconds",
            "Per-worker wall seconds to attach to the published index",
        )
        while ready < self.workers:
            kind, wid, attach_s, err = self._get_reply()
            if kind != "ready":  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected startup message {kind!r}")
            if err is not None:
                self._terminate()
                raise RuntimeError(f"pool worker {wid} failed to attach: {err}")
            self.attach_seconds.append(attach_s)
            attach_hist.observe(attach_s)
            ready += 1
        tel.metrics.gauge(
            "mapper_pool_workers", "Live mapper pool worker processes"
        ).set(len(self._procs))

    def restart(self) -> None:
        """Stop the workers and respawn against the same published index.

        The new cohort gets a higher generation, so any stop sentinel
        left in ``task_q`` by a worker that died before consuming it is
        skipped instead of killing a fresh worker.
        """
        self._stop_workers()
        self._generation += 1
        # Recreate both queues: a worker killed mid-``get()`` can die
        # holding the queue's reader lock (poisoning it for the next
        # cohort), and dead workers strand unserved tasks and stop
        # sentinels in the old queue.  Fresh queues shed all of that;
        # the generation tag covers any sentinel still in flight.
        self._task_q.close()
        self._result_q.close()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs = []
        self.attach_seconds = []
        self._spawn_workers()

    def _stop_workers(self) -> None:
        for _ in self._procs:
            self._task_q.put(_Stop(self._generation))
        deadline = time.monotonic() + 30.0
        for p in self._procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
        self._terminate()

    def _terminate(self) -> None:
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=5.0)

    def close(self) -> None:
        """Stop workers and release/unlink the published index block."""
        if self._closed:
            return
        self._closed = True
        self._stop_workers()
        get_telemetry().metrics.gauge(
            "mapper_pool_workers", "Live mapper pool worker processes"
        ).set(0)
        self._task_q.close()
        self._result_q.close()
        self.block.unlink()

    def __enter__(self) -> "MapperPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -----------------------------------------------------------

    def _get_reply(self, timeout: float = _READY_TIMEOUT) -> tuple:
        """Read one reply, polling child liveness while waiting.

        A crashed worker never posts an ``"error"`` reply; without the
        liveness poll the caller would block for the full ``timeout`` and
        then surface a bare ``queue.Empty``.  Instead, raise a
        descriptive ``RuntimeError`` within one poll interval of the
        death — the router's per-shard health checks build on this.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                return self._result_q.get(
                    timeout=max(0.01, min(_LIVENESS_POLL_SECONDS, remaining))
                )
            except _queue.Empty:
                dead = [
                    (i, p.exitcode)
                    for i, p in enumerate(self._procs)
                    if not p.is_alive()
                ]
                if dead:
                    # A worker that replied and then exited may still have
                    # its reply in flight through the queue feeder thread;
                    # give it one short grace read before declaring death.
                    try:
                        return self._result_q.get(timeout=0.25)
                    except _queue.Empty:
                        pass
                    detail = ", ".join(
                        f"worker {i} (exitcode {code})" for i, code in dead
                    )
                    raise RuntimeError(
                        f"pool worker(s) died while a reply was outstanding: "
                        f"{detail}; restart() the pool to recover"
                    ) from None
                if remaining <= 0:
                    raise RuntimeError(
                        f"pool reply timed out after {timeout:.0f}s with all "
                        f"{len(self._procs)} workers alive"
                    ) from None

    def _submit(self, shards: list[list[str]], locate: bool, ship: bool) -> dict:
        ids = []
        for shard in shards:
            tid = self._next_task
            self._next_task += 1
            self._task_q.put((tid, shard, locate, ship))
            ids.append(tid)
        replies: dict[int, tuple] = {}
        pending = set(ids)
        while pending:
            kind, tid, payload, err = self._get_reply()
            if tid not in pending:
                continue  # orphan reply for a task abandoned by restart()
            if kind == "error":
                raise RuntimeError(f"pool task {tid} failed: {err}")
            replies[tid] = payload
            pending.discard(tid)
        return {tid: replies[tid] for tid in ids}

    def _shard_scalar(self, reads: list[str]) -> list[list[str]]:
        """Reference round-robin split (kept for the parity test)."""
        return [reads[i :: self.workers] for i in range(self.workers)]

    def _shard(self, reads: list[str]) -> list[list[str]]:
        """Round-robin split, vectorized: one numpy take per shard
        instead of a Python-level strided slice per worker.

        Must stay order-identical to :meth:`_shard_scalar` — the
        ``map_reads`` demux inverts exactly ``reads[i::workers]``.
        """
        arr = np.empty(len(reads), dtype=object)
        arr[:] = reads
        return [arr[i :: self.workers].tolist() for i in range(self.workers)]

    def run_batch(self, reads: Sequence[str], locate: bool = False) -> PoolBatchOutcome:
        """Map ``reads`` across the pool; aggregate outcome only.

        Per-read results stay in the workers (only the mapped count and
        counter deltas come back), keeping IPC out of the measurement —
        the pooled counterpart of ``run_mapping_multiprocess``.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        reads = list(reads)
        tel = get_telemetry()
        t0 = time.perf_counter()
        merged = OpCounters()
        mapped = 0
        if reads:
            replies = self._submit(self._shard(reads), locate, ship=False)
            for shard_mapped, delta, _ in replies.values():
                mapped += shard_mapped
                merged.merge(OpCounters(**delta))
        wall = time.perf_counter() - t0
        tel.metrics.counter(
            "mapper_pool_tasks_total", "Read batches served by mapper pools"
        ).inc()
        tel.metrics.histogram(
            "mapper_pool_batch_seconds", "Wall seconds per pooled batch"
        ).observe(wall)
        return PoolBatchOutcome(
            n_reads=len(reads),
            mapped=mapped,
            wall_seconds=wall,
            op_counts=merged.snapshot(),
        )

    def map_reads(self, reads: Sequence[str], locate: bool = False) -> list[MappingResult]:
        """Map ``reads`` across the pool and return per-read results.

        Results come back in input order with input-relative ``read_id``s
        (workers number reads within their shard; the pool renumbers).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        reads = list(reads)
        if not reads:
            return []
        shards = self._shard(reads)
        replies = self._submit(shards, locate, ship=True)
        out: list[MappingResult | None] = [None] * len(reads)
        for shard_idx, (shard, payload) in enumerate(zip(shards, replies.values())):
            _, _, results = payload
            if len(results) != len(shard):
                raise RuntimeError(
                    f"pool shard {shard_idx} returned {len(results)} results "
                    f"for {len(shard)} reads"
                )
            for j, res in enumerate(results):
                orig = shard_idx + j * self.workers  # inverse of reads[i::workers]
                out[orig] = MappingResult(
                    read_id=orig,
                    read_name=f"read{orig}",
                    length=res.length,
                    forward=res.forward,
                    reverse=res.reverse,
                    reason=res.reason,
                )
        missing = [i for i, r in enumerate(out) if r is None]
        if missing:
            # Never silently truncate: a shorter result list desyncs every
            # downstream read_id-based demux (coalescer, router, web tier).
            raise RuntimeError(
                f"pool returned {len(reads) - len(missing)} results for "
                f"{len(reads)} reads; missing read indices {missing[:8]}"
            )
        get_telemetry().metrics.counter(
            "mapper_pool_tasks_total", "Read batches served by mapper pools"
        ).inc()
        return out

    # -- introspection -----------------------------------------------------

    def health(self) -> dict:
        """Liveness/backpressure snapshot (feeds per-shard ``/healthz``)."""
        alive = sum(1 for p in self._procs if p.is_alive())
        try:
            depth = self._task_q.qsize()
        except (NotImplementedError, OSError, ValueError):
            depth = None  # macOS (no sem_getvalue) or closed queue
        return {
            "workers": self.workers,
            "workers_alive": alive,
            "queue_depth": depth,
            "generation": self._generation,
            "start_method": self.start_method,
            "closed": self._closed,
        }

    def __repr__(self) -> str:
        return (
            f"MapperPool(workers={self.workers}, start={self.start_method!r}, "
            f"block={self.block!r}, closed={self._closed})"
        )

"""Dynamic micro-batching: merge concurrent small requests into shared batches.

The batch kernels (``search_batch``, the fused ``occ2_many`` descent)
are fastest at high occupancy — the software mirror of the paper's FPGA
pipeline, which only earns its throughput when queries keep every stage
busy.  A flood of small independent requests (the web tier's traffic
shape) runs those kernels at their worst occupancy: each request pays
the full per-dispatch fixed cost for a handful of reads.

:class:`RequestCoalescer` sits between request producers (web jobs, the
streaming mapper, benchmarks) and a batch ``dispatch`` callable (an
in-process :class:`~repro.mapper.mapper.Mapper`, a shared-memory
:class:`~repro.serving.pool.MapperPool`, or the simulated accelerator)
and merges pending requests into shared kernel batches under two bounds:

* **deadline** — a request is dispatched at most ``window_seconds``
  after submission, even alone;
* **size** — a batch flushes early once ``max_batch_reads`` reads are
  pending, so the window never delays an already-full batch.

Admission is **tenant-fair**: pending requests queue per tenant and the
batch builder takes one request per tenant per round-robin cycle, so a
tenant with a thousand queued requests cannot starve an interactive
tenant's single read — the interactive request rides the very next
batch.

Demultiplexing is **bit-identical**: merged results are sliced back per
request and renumbered exactly as an independent ``map_reads`` call
would have numbered them, so coalescing is invisible to callers (the
differential self-check pair ``coalesce`` and the CI parity step enforce
this).

When a merged dispatch fails (a pool worker died, the device path
raised), the coalescer **falls back per request** through ``fallback`` —
by convention the in-process CPU mapper, the terminal rung of the
retry → reprogram → CPU fault ladder — so one poisoned batch degrades
to independent execution instead of failing every rider.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..mapper.results import MappingResult
from ..telemetry import get_telemetry

#: Batch-size histogram buckets (reads per merged batch).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)
#: Queue-wait histogram buckets (seconds; sub-window resolution).
_WAIT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 1.0,
)
#: Recent queue waits kept for the /healthz p95 (bounded reservoir).
_WAIT_SAMPLES = 512

#: A batch executor: reads in, one :class:`MappingResult` per read out,
#: ``read_id`` numbered by position in the batch.
Dispatch = Callable[[list[str]], list[MappingResult]]


class CoalescerError(RuntimeError):
    """Base class for coalescer lifecycle errors."""


class CoalescerClosed(CoalescerError):
    """Submission after :meth:`RequestCoalescer.close`."""


class CoalescerFull(CoalescerError):
    """Admission rejected: the pending-read queue is at capacity.

    The web tier maps this to HTTP 503 + ``Retry-After``, the same
    backpressure contract as :class:`~repro.serving.executor.BacklogFull`.
    """


@dataclass(frozen=True)
class CoalescerConfig:
    """Flush policy and admission bounds.

    ``window_seconds`` is the max added latency a request can pay for the
    chance to share a batch; ``max_batch_reads`` caps merged batch size
    (flush fires on whichever bound is hit first).  ``max_queue_reads``
    is the admission cap — reads pending beyond it get
    :class:`CoalescerFull` instead of unbounded queueing.
    """

    window_seconds: float = 0.002
    max_batch_reads: int = 512
    max_queue_reads: int = 65_536

    def __post_init__(self) -> None:
        if self.window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        if self.max_batch_reads < 1:
            raise ValueError("max_batch_reads must be >= 1")
        if self.max_queue_reads < self.max_batch_reads:
            raise ValueError("max_queue_reads must be >= max_batch_reads")


class CoalescedRequest:
    """Future-like handle for one submitted request.

    ``result()`` blocks until the request's batch has been dispatched and
    demultiplexed; results are renumbered to request-local ``read_id``s,
    bit-identical to an independent execution of the same reads.
    """

    __slots__ = (
        "reads", "tenant", "submitted_at", "deadline",
        "batch_reads", "wait_seconds", "added_wait_seconds",
        "degraded", "degraded_reason",
        "_event", "_results", "_error",
    )

    def __init__(self, reads: list[str], tenant: str, deadline: float):
        self.reads = reads
        self.tenant = tenant
        self.submitted_at = time.monotonic()
        self.deadline = deadline
        #: Size of the merged batch this request rode in (1-request
        #: batches mean no sharing happened).
        self.batch_reads = 0
        #: Queue wait: submission to batch dispatch start.
        self.wait_seconds = 0.0
        #: The part of the wait the coalescing *window* added: dispatch
        #: start minus the moment the request could first have run
        #: (submission, or the dispatcher coming free, whichever is
        #: later).  Head-of-line time behind an in-flight batch is
        #: queueing at saturation, not a cost of coalescing, and is
        #: excluded here.  This is the acceptance metric bounded by
        #: ``window_seconds``.
        self.added_wait_seconds = 0.0
        #: True when the merged dispatch failed and this request was
        #: recovered through the per-request fallback path.
        self.degraded = False
        self.degraded_reason = ""
        self._event = threading.Event()
        self._results: list[MappingResult] | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> list[MappingResult]:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"coalesced request ({len(self.reads)} reads, tenant "
                f"{self.tenant!r}) not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._results is not None
        return self._results

    def _complete(self, results: list[MappingResult]) -> None:
        self._results = results
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()


def _renumber(results: Sequence, offset: int) -> list:
    """Slice-local renumbering: what independent execution would produce.

    Handles :class:`MappingResult` (single-index dispatch) and any other
    frozen result dataclass keyed only by ``read_id`` — e.g. the shard
    router's :class:`~repro.index.multiref.MultiRefMapping`.
    """
    if offset == 0:
        return list(results)
    out: list = []
    for r in results:
        if isinstance(r, MappingResult):
            out.append(
                MappingResult(
                    read_id=r.read_id - offset,
                    read_name=f"read{r.read_id - offset}",
                    length=r.length,
                    forward=r.forward,
                    reverse=r.reverse,
                    reason=r.reason,
                )
            )
        else:
            out.append(dataclasses.replace(r, read_id=r.read_id - offset))
    return out


class RequestCoalescer:
    """Deadline-bounded, tenant-fair micro-batcher over a batch executor.

    Parameters
    ----------
    dispatch:
        Batch executor for merged read lists (``MapperPool.map_reads``,
        an in-process ``Mapper.map_reads``, ...).  Must return one
        result per read, numbered by batch position.
    fallback:
        Per-request recovery executor used when a merged dispatch
        raises; the convention is the in-process CPU mapper — the same
        terminal rung as the accelerator's retry → reprogram → CPU
        ladder.  ``None`` retries each request through ``dispatch``
        individually (so one bad rider cannot fail the others).
    config:
        Flush policy and admission bounds.
    name:
        Telemetry label.
    """

    def __init__(
        self,
        dispatch: Dispatch,
        fallback: Dispatch | None = None,
        config: CoalescerConfig | None = None,
        name: str = "coalesce",
    ):
        self.dispatch = dispatch
        self.fallback = fallback
        self.config = config if config is not None else CoalescerConfig()
        self.name = name
        self._lock = threading.RLock()  # reentrant: stats() under _cv is legal
        self._cv = threading.Condition(self._lock)
        self._queues: dict[str, deque[CoalescedRequest]] = {}
        self._rr: deque[str] = deque()  # tenant round-robin order
        self._pending_reads = 0
        self._closed = False
        self._thread: threading.Thread | None = None
        # Stats (guarded by _lock).
        self._requests_total = 0
        self._reads_total = 0
        self._batches_total = 0
        self._coalesced_requests = 0
        self._fallbacks = 0
        self._last_batch_reads = 0
        self._wait_samples: deque[float] = deque(maxlen=_WAIT_SAMPLES)
        self._added_wait_samples: deque[float] = deque(maxlen=_WAIT_SAMPLES)
        #: When the dispatcher last came free (monotonic); requests
        #: arriving before this could not have run earlier anyway.
        self._dispatch_free_at = 0.0

    # -- submission --------------------------------------------------------

    def submit(
        self, reads: Sequence[str], tenant: str = "default"
    ) -> CoalescedRequest:
        """Enqueue one request; returns immediately with a result handle."""
        reads = list(reads)
        deadline = time.monotonic() + self.config.window_seconds
        req = CoalescedRequest(reads, str(tenant), deadline)
        if not reads:  # nothing to merge; complete without a batch slot
            req._complete([])
            return req
        with self._cv:
            if self._closed:
                raise CoalescerClosed(f"{self.name}: coalescer is closed")
            if self._pending_reads + len(reads) > self.config.max_queue_reads:
                get_telemetry().metrics.counter(
                    "coalesce_rejected_total",
                    "Requests rejected by the coalescer admission cap",
                ).inc()
                raise CoalescerFull(
                    f"{self.name}: {self._pending_reads} reads pending "
                    f">= cap {self.config.max_queue_reads}"
                )
            q = self._queues.get(req.tenant)
            if q is None:
                q = self._queues[req.tenant] = deque()
                self._rr.append(req.tenant)
            q.append(req)
            self._pending_reads += len(reads)
            self._requests_total += 1
            self._reads_total += len(reads)
            self._ensure_thread()
            self._cv.notify_all()
        get_telemetry().metrics.gauge(
            "coalesce_queue_depth", "Reads pending in the request coalescer"
        ).set(self._pending_reads)
        return req

    def map_reads(
        self,
        reads: Sequence[str],
        tenant: str = "default",
        timeout: float | None = 60.0,
    ) -> list[MappingResult]:
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(reads, tenant=tenant).result(timeout=timeout)

    def map_many(
        self, request_lists: Iterable[Sequence[str]], tenant: str = "default"
    ) -> list[list[MappingResult]]:
        """Merge a known set of requests through the batch path, bypassing
        the wait window (no flusher thread, no deadline).

        Runs the exact merge → dispatch → demux code the background
        flusher uses, chunked at ``max_batch_reads``, which makes it the
        deterministic entry point for parity tests and benchmarks.
        """
        requests = [
            CoalescedRequest(list(reads), str(tenant), deadline=0.0)
            for reads in request_lists
        ]
        batch: list[CoalescedRequest] = []
        size = 0
        for req in requests:
            if not req.reads:
                req._complete([])
                continue
            if batch and size + len(req.reads) > self.config.max_batch_reads:
                self._run_batch(batch)
                batch, size = [], 0
            batch.append(req)
            size += len(req.reads)
        if batch:
            self._run_batch(batch)
        return [req.result(timeout=0.0) for req in requests]

    # -- lifecycle ---------------------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._flusher, name=f"{self.name}-flusher", daemon=True
            )
            self._thread.start()

    def flush(self) -> None:
        """Wake the flusher so pending requests dispatch without waiting
        out the window (used by shutdown paths and tests)."""
        with self._cv:
            for q in self._queues.values():
                for req in q:
                    req.deadline = 0.0
            self._cv.notify_all()

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; pending ones are drained, not failed."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            for q in self._queues.values():
                for req in q:
                    req.deadline = 0.0  # drain immediately
            self._cv.notify_all()
        if wait and self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- flusher -----------------------------------------------------------

    def _flusher(self) -> None:
        while True:
            with self._cv:
                while self._pending_reads == 0:
                    if self._closed:
                        return
                    self._cv.wait()
                # Wait for the size bound or the oldest request's deadline,
                # whichever comes first.
                while self._pending_reads < self.config.max_batch_reads:
                    now = time.monotonic()
                    oldest = min(
                        q[0].deadline for q in self._queues.values() if q
                    )
                    if now >= oldest or self._closed:
                        break
                    self._cv.wait(timeout=oldest - now)
                    if self._pending_reads == 0:
                        break
                if self._pending_reads == 0:
                    continue
                batch = self._take_batch_locked()
            self._run_batch(batch)

    def _take_batch_locked(self) -> list[CoalescedRequest]:
        """Round-robin across tenants: one whole request per tenant per
        cycle until the batch is full.  The first request is always
        admitted even when it alone exceeds ``max_batch_reads`` (a giant
        request must not deadlock the queue)."""
        batch: list[CoalescedRequest] = []
        size = 0
        while self._rr:
            progressed = False
            for _ in range(len(self._rr)):
                if not self._rr:
                    break
                tenant = self._rr[0]
                q = self._queues.get(tenant)
                if not q:
                    # Empty tenant queue: drop it from the rotation.
                    self._rr.popleft()
                    self._queues.pop(tenant, None)
                    continue
                head = q[0]
                if batch and size + len(head.reads) > self.config.max_batch_reads:
                    return batch
                q.popleft()
                self._pending_reads -= len(head.reads)
                batch.append(head)
                size += len(head.reads)
                progressed = True
                self._rr.rotate(-1)
                if size >= self.config.max_batch_reads:
                    return batch
            if not progressed:
                break
        return batch

    # -- dispatch + demux --------------------------------------------------

    def _run_batch(self, batch: list[CoalescedRequest]) -> None:
        if not batch:
            return
        tel = get_telemetry()
        started = time.monotonic()
        free_at = self._dispatch_free_at
        merged: list[str] = []
        for req in batch:
            req.wait_seconds = max(0.0, started - req.submitted_at)
            req.added_wait_seconds = max(
                0.0, started - max(req.submitted_at, free_at)
            )
            merged.extend(req.reads)
        for req in batch:
            req.batch_reads = len(merged)
        try:
            results = self.dispatch(merged)
            if len(results) != len(merged):
                raise CoalescerError(
                    f"dispatch returned {len(results)} results for "
                    f"{len(merged)} reads"
                )
            offset = 0
            for req in batch:
                req._complete(
                    _renumber(results[offset : offset + len(req.reads)], offset)
                )
                offset += len(req.reads)
        except Exception as exc:
            self._fallback_batch(batch, exc)
        self._dispatch_free_at = time.monotonic()
        with self._lock:
            self._batches_total += 1
            self._last_batch_reads = len(merged)
            if len(batch) > 1:
                self._coalesced_requests += len(batch)
            for req in batch:
                self._wait_samples.append(req.wait_seconds)
                self._added_wait_samples.append(req.added_wait_seconds)
        m = tel.metrics
        m.histogram(
            "coalesce_batch_size",
            "Reads per merged coalescer batch",
            buckets=_BATCH_SIZE_BUCKETS,
        ).observe(len(merged))
        wait_hist = m.histogram(
            "coalesce_wait_seconds",
            "Queue wait per coalesced request (submission to dispatch)",
            buckets=_WAIT_BUCKETS,
        )
        for req in batch:
            wait_hist.observe(req.wait_seconds)
        if len(batch) > 1:
            m.counter(
                "coalesced_jobs_total",
                "Requests that shared a merged kernel batch",
            ).inc(len(batch))
        m.counter(
            "coalesce_batches_total", "Merged batches dispatched"
        ).inc()
        m.gauge(
            "coalesce_queue_depth", "Reads pending in the request coalescer"
        ).set(self._pending_reads)

    def _fallback_batch(self, batch: list[CoalescedRequest], exc: Exception) -> None:
        """Merged dispatch failed: recover each rider independently.

        With a ``fallback`` executor (the CPU mapper), requests complete
        DEGRADED-but-correct; without one, each request retries through
        ``dispatch`` alone so a poisoned rider fails only itself.
        """
        tel = get_telemetry()
        reason = f"merged batch failed ({type(exc).__name__}: {exc})"
        runner = self.fallback if self.fallback is not None else self.dispatch
        for req in batch:
            tel.metrics.counter(
                "coalesce_fallback_total",
                "Requests recovered per-request after a failed merged batch",
            ).inc()
            with self._lock:
                self._fallbacks += 1
            try:
                results = runner(list(req.reads))
                if len(results) != len(req.reads):
                    raise CoalescerError(
                        f"fallback returned {len(results)} results for "
                        f"{len(req.reads)} reads"
                    )
                req.degraded = True
                req.degraded_reason = reason
                req._complete(list(results))
            except Exception as fexc:  # noqa: BLE001 - surfaced on the handle
                req._fail(
                    CoalescerError(f"{reason}; fallback also failed: {fexc}")
                )

    # -- introspection -----------------------------------------------------

    def pending_reads(self) -> int:
        with self._lock:
            return self._pending_reads

    def stats(self) -> dict:
        """JSON-able state document (surfaced on ``/healthz``)."""
        def _p95(samples: deque) -> float:
            waits = sorted(samples)
            return waits[int(0.95 * (len(waits) - 1))] if waits else 0.0

        with self._lock:
            p95 = _p95(self._wait_samples)
            added_p95 = _p95(self._added_wait_samples)
            batches = self._batches_total
            return {
                "window_ms": self.config.window_seconds * 1e3,
                "max_batch_reads": self.config.max_batch_reads,
                "max_queue_reads": self.config.max_queue_reads,
                "pending_reads": self._pending_reads,
                "pending_requests": sum(len(q) for q in self._queues.values()),
                "tenants": len(self._queues),
                "requests_total": self._requests_total,
                "reads_total": self._reads_total,
                "batches_total": batches,
                "coalesced_requests": self._coalesced_requests,
                "fallbacks": self._fallbacks,
                "last_batch_reads": self._last_batch_reads,
                "mean_batch_reads": (
                    self._reads_total / batches if batches else 0.0
                ),
                "wait_p95_ms": p95 * 1e3,
                "added_wait_p95_ms": added_p95 * 1e3,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (
            f"RequestCoalescer(name={self.name!r}, "
            f"window={self.config.window_seconds * 1e3:.1f}ms, "
            f"max_batch={self.config.max_batch_reads}, "
            f"pending_reads={self.pending_reads()})"
        )


class MappingService:
    """A served index plus the coalescer that batches requests onto it.

    This is the object the web tier's ``POST /map`` endpoint talks to:
    one published index (optionally behind a shared-memory
    :class:`~repro.serving.pool.MapperPool`), an in-process CPU mapper as
    the fallback rung, and a :class:`RequestCoalescer` merging concurrent
    requests into shared kernel batches.

    Parameters
    ----------
    index:
        The query index every request maps against.
    pool_workers:
        ``> 0`` routes merged batches through a shared-memory
        ``MapperPool`` with that many worker processes; ``0`` dispatches
        through the in-process mapper (still coalesced).
    locate:
        Resolve SA intervals to positions (the web results contract).
    coalesce:
        ``False`` bypasses merging entirely (each request dispatches
        alone) — the ablation/bench control, and ``serve --no-coalesce``.
    config:
        Coalescer flush policy and admission bounds.
    """

    def __init__(
        self,
        index,
        *,
        pool_workers: int = 0,
        locate: bool = True,
        coalesce: bool = True,
        config: CoalescerConfig | None = None,
        start_method: str | None = None,
    ):
        from ..mapper.mapper import Mapper

        self.index = index
        self.locate = bool(locate)
        self.coalesce = bool(coalesce)
        self._mapper = Mapper(index, locate=self.locate)
        self.pool = None
        if pool_workers > 0:
            from .pool import MapperPool

            self.pool = MapperPool(
                index, workers=pool_workers, start_method=start_method
            )
            dispatch: Dispatch = lambda reads: self.pool.map_reads(
                reads, locate=self.locate
            )
        else:
            dispatch = self._mapper.map_reads
        self.coalescer = RequestCoalescer(
            dispatch,
            fallback=self._mapper.map_reads,
            config=config,
            name="mapping-service",
        )
        self._closed = False

    def map_request(
        self,
        reads: Sequence[str],
        tenant: str = "default",
        timeout: float | None = 60.0,
    ) -> CoalescedRequest:
        """Map one request; blocks until its (possibly shared) batch ran.

        Returns the completed handle so callers can read wait/degraded
        bookkeeping next to the results.
        """
        if self._closed:
            raise CoalescerClosed("mapping service is closed")
        if not self.coalesce:
            # Bypass path: dispatch alone, but keep the same fallback rung.
            req = CoalescedRequest(list(reads), str(tenant), deadline=0.0)
            if not req.reads:
                req._complete([])
                return req
            try:
                req._complete(self.coalescer.dispatch(list(req.reads)))
            except Exception as exc:
                self.coalescer._fallback_batch([req], exc)
                req.result(timeout=0.0)  # re-raise if fallback failed too
            return req
        req = self.coalescer.submit(reads, tenant=tenant)
        req.result(timeout=timeout)
        return req

    def stats(self) -> dict:
        doc = self.coalescer.stats()
        doc["coalesce"] = self.coalesce
        doc["pool_workers"] = self.pool.workers if self.pool is not None else 0
        doc["locate"] = self.locate
        return doc

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "MappingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

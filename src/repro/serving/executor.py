"""Bounded thread executor with backlog rejection.

The web layer used to spawn one daemon thread per submitted job —
unbounded concurrency and an unbounded queue.  :class:`BoundedExecutor`
caps both: at most ``workers`` jobs run concurrently, at most ``backlog``
sit queued, and a submission beyond the backlog raises
:class:`BacklogFull` (the server turns that into HTTP 503).  Worker
threads start lazily on first submission so constructing an executor is
free for CLI paths that never run background jobs.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

from ..telemetry import get_telemetry

_STOP = None


class BacklogFull(RuntimeError):
    """Raised when a submission exceeds the configured backlog."""


class BoundedExecutor:
    """Fixed worker threads draining a capped FIFO of callables.

    Parameters
    ----------
    workers:
        Maximum concurrently running jobs.
    backlog:
        Maximum jobs waiting beyond the running ones; ``submit`` raises
        :class:`BacklogFull` when exceeded.
    name:
        Thread-name prefix and telemetry label.
    """

    def __init__(self, workers: int = 2, backlog: int = 16, name: str = "jobs"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backlog < 0:
            raise ValueError("backlog must be >= 0")
        self.workers = int(workers)
        self.backlog = int(backlog)
        self.name = name
        self._q: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._pending = 0  # queued + running, guarded by _lock
        self._shutdown = False

    # -- worker loop -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._q.get()
            if item is _STOP:
                break
            try:
                item()
            except Exception:  # job exceptions are the submitter's concern
                pass
            finally:
                with self._lock:
                    self._pending -= 1

    def _ensure_threads(self) -> None:
        if self._threads:
            return
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker, name=f"{self.name}-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        get_telemetry().metrics.gauge(
            "executor_workers", "Executor worker threads", labelnames=("pool",)
        ).set(self.workers, pool=self.name)

    # -- public API --------------------------------------------------------

    def submit(self, fn: Callable[[], None]) -> None:
        """Queue ``fn`` for execution; raises :class:`BacklogFull` when the
        number of jobs waiting (beyond those running) exceeds the cap."""
        tel = get_telemetry()
        with self._lock:
            if self._shutdown:
                raise RuntimeError("executor is shut down")
            # Admitting this job may not push the *queued* depth (jobs
            # beyond the running ones) past the cap; backlog=0 still
            # admits up to ``workers`` running jobs.
            queued_after = max(0, self._pending + 1 - self.workers)
            if queued_after > self.backlog:
                tel.metrics.counter(
                    "executor_rejected_total",
                    "Submissions rejected by backlog cap",
                    labelnames=("pool",),
                ).inc(pool=self.name)
                raise BacklogFull(
                    f"{self.name}: backlog full "
                    f"({queued_after - 1} queued >= cap {self.backlog})"
                )
            self._pending += 1
        self._ensure_threads()
        self._q.put(fn)
        tel.metrics.gauge(
            "executor_pending", "Jobs queued or running", labelnames=("pool",)
        ).set(self.pending(), pool=self.name)

    def pending(self) -> int:
        """Jobs currently queued or running."""
        with self._lock:
            return self._pending

    def queued(self) -> int:
        """Jobs waiting beyond the running ones (best effort)."""
        with self._lock:
            return max(0, self._pending - self.workers)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for workers to drain."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._q.put(_STOP)
        if wait:
            for t in self._threads:
                t.join(timeout=30.0)

    def __repr__(self) -> str:
        return (
            f"BoundedExecutor(name={self.name!r}, workers={self.workers}, "
            f"backlog={self.backlog}, pending={self.pending()})"
        )

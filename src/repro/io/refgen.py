"""Synthetic reference genomes (substitute for E. coli U00096.3 / Chr 21).

The paper evaluates on the complete E. coli genome (~4.64 Mbp) and Human
Chromosome 21 (GRCh38.p12, ~40.1 Mbp of usable sequence).  Real genome
files are not available offline, so this module generates synthetic
references that preserve the properties the experiments actually depend
on:

* **length** (structure size and build time scale linearly in it);
* **GC content** (symbol skew → wavelet node entropy → RRR offset size);
* **repeat structure** (duplicated segments create BWT runs and multiply
  occurrence counts, affecting locate volume and — through lowered BWT
  entropy — compression; the Chr21-like profile is markedly more
  repetitive than the E. coli-like one, as in the real genomes).

Profiles default to scaled-down lengths so pure-Python experiment runs
finish quickly; ``scale=1.0`` produces paper-scale sequences.  Every
generator is deterministic in its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..sequence.alphabet import decode

#: Mutation rate applied to repeat copies, so repeats are near- rather
#: than exact duplicates (as in real genomes).
_REPEAT_DIVERGENCE = 0.02


@dataclass(frozen=True)
class ReferenceProfile:
    """Statistical recipe for a synthetic genome."""

    name: str
    full_length: int
    gc_content: float
    repeat_fraction: float
    repeat_unit_mean: int
    tandem_fraction: float = 0.2

    def scaled(self, scale: float) -> "ReferenceProfile":
        if not 0 < scale <= 1.0:
            raise ValueError("scale must lie in (0, 1]")
        return replace(self, full_length=max(1000, int(self.full_length * scale)))


#: E. coli U00096.3-like: 4.64 Mbp, GC ~50.8 %, few repeats.
E_COLI_LIKE = ReferenceProfile(
    name="ecoli_like",
    full_length=4_641_652,
    gc_content=0.508,
    repeat_fraction=0.05,
    repeat_unit_mean=800,
)

#: Human Chr21-like: ~40.1 Mbp usable, GC ~40.8 %, highly repetitive.
CHR21_LIKE = ReferenceProfile(
    name="chr21_like",
    full_length=40_088_619,
    gc_content=0.408,
    repeat_fraction=0.45,
    repeat_unit_mean=2_000,
    tandem_fraction=0.35,
)

#: Default scale used by tests and benches: E.coli-like ≈ 200 kbp,
#: Chr21-like ≈ 1.7 Mbp — small enough for pure Python, large enough that
#: every trend (size, build time, search independence from length) shows.
DEFAULT_SCALE = 1 / 24


def generate_reference(
    profile: ReferenceProfile,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> str:
    """Generate a synthetic genome string for ``profile``.

    The sequence is assembled left to right: stretches of GC-biased
    random background interleaved with *repeat events* — either a copy of
    an earlier segment (interspersed repeat) or an immediately repeated
    short unit (tandem repeat) — until ``repeat_fraction`` of the target
    length is repeat-derived.  Copies diverge by ~2 % point mutations.
    """
    prof = profile.scaled(scale)
    rng = np.random.default_rng(seed)
    target = prof.full_length
    gc = prof.gc_content
    at_p = (1.0 - gc) / 2.0
    gc_p = gc / 2.0
    probs = np.array([at_p, gc_p, gc_p, at_p])

    chunks: list[np.ndarray] = []
    built = 0
    repeat_budget = int(target * prof.repeat_fraction)
    repeat_spent = 0

    def background(n: int) -> np.ndarray:
        return rng.choice(4, size=n, p=probs).astype(np.uint8)

    # Seed with background so repeat events have material to copy.
    first = background(min(target, max(prof.repeat_unit_mean * 2, 1000)))
    chunks.append(first)
    built += first.size

    while built < target:
        if repeat_spent < repeat_budget and built > prof.repeat_unit_mean:
            unit = max(20, int(rng.exponential(prof.repeat_unit_mean)))
            unit = min(unit, built, target - built)
            if unit >= 20:
                if rng.random() < prof.tandem_fraction:
                    # Tandem: duplicate the immediately preceding unit.
                    tail = _tail(chunks, unit)
                    copy = _mutate(tail, rng)
                else:
                    # Interspersed: copy from a uniformly random earlier locus.
                    src = int(rng.integers(0, built - unit + 1))
                    copy = _mutate(_slice(chunks, src, unit), rng)
                chunks.append(copy)
                built += copy.size
                repeat_spent += copy.size
                continue
        step = min(target - built, max(200, prof.repeat_unit_mean))
        chunk = background(step)
        chunks.append(chunk)
        built += chunk.size

    genome = np.concatenate(chunks)[:target]
    return decode(genome)


def _tail(chunks: list[np.ndarray], n: int) -> np.ndarray:
    """Last ``n`` symbols across the chunk list."""
    out: list[np.ndarray] = []
    need = n
    for chunk in reversed(chunks):
        take = min(need, chunk.size)
        out.append(chunk[chunk.size - take :])
        need -= take
        if need == 0:
            break
    return np.concatenate(list(reversed(out)))


def _slice(chunks: list[np.ndarray], start: int, n: int) -> np.ndarray:
    """Symbols ``[start, start + n)`` across the chunk list."""
    out: list[np.ndarray] = []
    pos = 0
    need = n
    for chunk in chunks:
        end = pos + chunk.size
        if end > start and need > 0:
            lo = max(0, start - pos)
            take = min(chunk.size - lo, need)
            out.append(chunk[lo : lo + take])
            need -= take
        pos = end
        if need == 0:
            break
    return np.concatenate(out)


def _mutate(segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply ~2 % random substitutions to a repeat copy."""
    copy = segment.copy()
    hits = rng.random(copy.size) < _REPEAT_DIVERGENCE
    n_hits = int(np.count_nonzero(hits))
    if n_hits:
        # Substitute with a random *different* base: add 1-3 mod 4.
        copy[hits] = (copy[hits] + rng.integers(1, 4, size=n_hits).astype(np.uint8)) % 4
    return copy


def repeat_content_estimate(sequence: str, k: int = 31) -> float:
    """Fraction of ``k``-mers occurring more than once — a repeat proxy
    used by tests to confirm the Chr21-like profile is more repetitive
    than the E. coli-like one."""
    if len(sequence) < k:
        return 0.0
    seen: dict[str, int] = {}
    step = max(1, k // 2)
    for i in range(0, len(sequence) - k + 1, step):
        kmer = sequence[i : i + k]
        seen[kmer] = seen.get(kmer, 0) + 1
    total = len(seen)
    dup = sum(1 for v in seen.values() if v > 1)
    return dup / total if total else 0.0

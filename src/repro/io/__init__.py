"""I/O substrate: FASTA/FASTQ (plain + gzip), read simulation, refgen."""

from .fasta import (
    FastaError,
    FastaRecord,
    parse_fasta,
    read_fasta,
    read_fasta_str,
    validate_record,
    write_fasta,
)
from .fastq import (
    FastqError,
    FastqRecord,
    parse_fastq,
    read_fastq,
    read_fastq_str,
    sequences,
    write_fastq,
)
from .qc import ReadSetQC, qc_reads
from .readsim import ReadTruth, SimulatedReadSet, mutate_reads, simulate_reads
from .refgen import (
    CHR21_LIKE,
    DEFAULT_SCALE,
    E_COLI_LIKE,
    ReferenceProfile,
    generate_reference,
    repeat_content_estimate,
)

__all__ = [
    "CHR21_LIKE",
    "DEFAULT_SCALE",
    "E_COLI_LIKE",
    "FastaError",
    "FastaRecord",
    "FastqError",
    "FastqRecord",
    "ReadSetQC",
    "ReadTruth",
    "ReferenceProfile",
    "SimulatedReadSet",
    "generate_reference",
    "mutate_reads",
    "parse_fasta",
    "qc_reads",
    "parse_fastq",
    "read_fasta",
    "read_fasta_str",
    "read_fastq",
    "read_fastq_str",
    "repeat_content_estimate",
    "sequences",
    "simulate_reads",
    "validate_record",
    "write_fasta",
    "write_fastq",
]

"""Read simulation with exact mapping-ratio control (Fig. 7's knob).

The paper's Fig. 7 sweeps the *percentage of mapped reads* (0-100 %)
because the backward search terminates early on reads that do not occur
in the reference — mapping time is driven by this ratio, not by the
reference length.  To reproduce that axis we need read sets whose mapped
fraction is exact by construction:

* **mapped reads** are substrings sampled uniformly from the reference
  (half of them reverse-complemented, since BWaveR searches both
  strands);
* **unmapped reads** are random sequences *rejected against the
  reference*: a candidate is regenerated until neither it nor its
  reverse complement occurs, so "unmapped" is guaranteed, not just
  probable.

Every simulator is deterministic in its seed and returns the ground
truth alongside the reads, which the accuracy tests compare against
mapper output (the paper claims "without any loss in accuracy"; our
tests hold the mapper to exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequence.alphabet import random_sequence, reverse_complement
from .fastq import FastqRecord


@dataclass(frozen=True)
class ReadTruth:
    """Ground truth for one simulated read."""

    name: str
    mapped: bool
    position: int  # sampling position for mapped reads, -1 otherwise
    strand: str  # '+', '-', or '.' for unmapped


@dataclass(frozen=True)
class SimulatedReadSet:
    """Reads plus ground truth plus the parameters that produced them."""

    reads: list[str]
    truth: list[ReadTruth]
    read_length: int
    mapping_ratio: float

    @property
    def n_reads(self) -> int:
        return len(self.reads)

    def to_fastq(self, quality_char: str = "I") -> list[FastqRecord]:
        """Render as FASTQ records (constant quality — exact matching
        never reads qualities)."""
        return [
            FastqRecord(name=t.name, sequence=r, quality=quality_char * len(r))
            for r, t in zip(self.reads, self.truth)
        ]


def simulate_reads(
    reference: str,
    n_reads: int,
    read_length: int,
    mapping_ratio: float = 1.0,
    rc_fraction: float = 0.5,
    seed: int = 0,
    max_reject_attempts: int = 100,
) -> SimulatedReadSet:
    """Simulate ``n_reads`` of ``read_length`` bp with the given mapped
    fraction.

    Parameters
    ----------
    reference:
        The genome string reads are drawn from / rejected against.
    mapping_ratio:
        Exact fraction of reads that occur in the reference (the count is
        ``round(n_reads * mapping_ratio)``); reads are then shuffled so
        mapped/unmapped interleave as they would in a real run.
    rc_fraction:
        Fraction of *mapped* reads emitted as the reverse complement of
        their source locus.
    max_reject_attempts:
        Safety bound for the unmapped-read rejection loop (hit only on
        tiny or pathological references).
    """
    if not 0.0 <= mapping_ratio <= 1.0:
        raise ValueError("mapping_ratio must lie in [0, 1]")
    if not 0.0 <= rc_fraction <= 1.0:
        raise ValueError("rc_fraction must lie in [0, 1]")
    if read_length < 1:
        raise ValueError("read_length must be >= 1")
    if read_length > len(reference):
        raise ValueError(
            f"read_length {read_length} exceeds reference length {len(reference)}"
        )
    rng = np.random.default_rng(seed)
    n_mapped = int(round(n_reads * mapping_ratio))
    reads: list[str] = []
    truth: list[ReadTruth] = []

    # Mapped reads: uniform loci; strand flips for rc_fraction of them.
    positions = rng.integers(0, len(reference) - read_length + 1, size=n_mapped)
    flips = rng.random(n_mapped) < rc_fraction
    for i, (pos, flip) in enumerate(zip(positions.tolist(), flips.tolist())):
        frag = reference[pos : pos + read_length]
        seq = reverse_complement(frag) if flip else frag
        reads.append(seq)
        truth.append(
            ReadTruth(
                name=f"mapped_{i}",
                mapped=True,
                position=int(pos),
                strand="-" if flip else "+",
            )
        )

    # Unmapped reads: rejection-sample random sequences.
    rc_ref = reverse_complement(reference)
    for i in range(n_reads - n_mapped):
        for attempt in range(max_reject_attempts):
            cand = random_sequence(read_length, rng)
            if cand not in reference and cand not in rc_ref:
                break
        else:
            raise RuntimeError(
                f"could not generate an unmapped read of length {read_length} "
                f"after {max_reject_attempts} attempts; the reference is too "
                f"saturated — use longer reads"
            )
        reads.append(cand)
        truth.append(ReadTruth(name=f"unmapped_{i}", mapped=False, position=-1, strand="."))

    # Interleave mapped and unmapped deterministically.
    order = rng.permutation(len(reads))
    reads = [reads[j] for j in order]
    truth = [truth[j] for j in order]
    return SimulatedReadSet(
        reads=reads,
        truth=truth,
        read_length=read_length,
        mapping_ratio=n_mapped / n_reads if n_reads else 0.0,
    )


def mutate_reads(
    reads: list[str],
    substitutions: int,
    seed: int = 0,
) -> list[str]:
    """Apply exactly ``substitutions`` point mutations to each read.

    Used by the mismatch-search tests and the seed-and-extend example to
    create reads that exact matching misses but ``k``-mismatch search (or
    extension) recovers.
    """
    if substitutions < 0:
        raise ValueError("substitutions must be >= 0")
    rng = np.random.default_rng(seed)
    out: list[str] = []
    bases = "ACGT"
    for read in reads:
        if substitutions > len(read):
            raise ValueError("more substitutions than read positions")
        chars = list(read)
        sites = rng.choice(len(read), size=substitutions, replace=False)
        for s in sites.tolist():
            alternatives = [b for b in bases if b != chars[s]]
            chars[s] = alternatives[int(rng.integers(0, 3))]
        out.append("".join(chars))
    return out

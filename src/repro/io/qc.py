"""Read-set quality control: the sanity pass before hours of mapping.

Mapping jobs fail in boring ways — truncated uploads, adapter dimers,
wildly mixed read lengths, all-N lanes.  A cheap QC summary up front
catches them.  This module computes the standard per-set statistics
(FastQC's core numbers) from FASTQ records or plain read strings:

* read count, length min/mean/max and histogram;
* per-set GC fraction and per-read GC distribution quartiles;
* mean Phred quality (when qualities are present) and the fraction of
  low-quality reads;
* duplication rate (exact-sequence duplicates — the PCR-duplicate
  proxy);
* invalid-character count (reads the exact mapper will reject).

The web workflow surfaces the summary on the job status; the CLI's
``simulate`` prints it for generated sets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..sequence.alphabet import is_valid
from .fastq import FastqRecord


@dataclass
class ReadSetQC:
    """The QC summary document."""

    n_reads: int = 0
    length_min: int = 0
    length_max: int = 0
    length_mean: float = 0.0
    uniform_length: bool = True
    gc_fraction: float = 0.0
    gc_quartiles: tuple[float, float, float] = (0.0, 0.0, 0.0)
    duplication_rate: float = 0.0
    invalid_reads: int = 0
    mean_quality: float | None = None
    low_quality_fraction: float | None = None
    length_histogram: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able rendering (web status document)."""
        return {
            "n_reads": self.n_reads,
            "length": {
                "min": self.length_min,
                "max": self.length_max,
                "mean": round(self.length_mean, 2),
                "uniform": self.uniform_length,
            },
            "gc_fraction": round(self.gc_fraction, 4),
            "gc_quartiles": [round(q, 4) for q in self.gc_quartiles],
            "duplication_rate": round(self.duplication_rate, 4),
            "invalid_reads": self.invalid_reads,
            "mean_quality": (
                round(self.mean_quality, 2) if self.mean_quality is not None else None
            ),
            "low_quality_fraction": (
                round(self.low_quality_fraction, 4)
                if self.low_quality_fraction is not None
                else None
            ),
        }

    def warnings(self) -> list[str]:
        """Human-readable red flags (empty when the set looks healthy)."""
        out = []
        if self.n_reads == 0:
            return ["read set is empty"]
        if self.invalid_reads:
            out.append(
                f"{self.invalid_reads} read(s) contain non-ACGT characters "
                f"and will not map"
            )
        if self.duplication_rate > 0.5:
            out.append(
                f"duplication rate {self.duplication_rate:.0%} — "
                f"possible PCR over-amplification"
            )
        if not self.uniform_length:
            out.append(
                f"mixed read lengths ({self.length_min}-{self.length_max}); "
                f"hardware query records accept up to 176 bases each"
            )
        if self.length_max > 176:
            out.append(
                f"reads up to {self.length_max} bases exceed the 176-base "
                f"hardware record; FPGA offload will reject them"
            )
        if self.mean_quality is not None and self.mean_quality < 20:
            out.append(f"mean quality Q{self.mean_quality:.0f} is low")
        return out


def partition_invalid_reads(
    reads: Sequence[str] | Sequence[FastqRecord],
) -> tuple[list, list]:
    """Split a read set into ``(mappable, invalid)`` by alphabet validity.

    The optional pre-mapping QC filter of the N-policy (DESIGN.md §9):
    the exact mapper reports invalid reads unmapped with a reason code
    anyway, but dropping them up front avoids shipping them through a
    pool or the FPGA packing path at all.  Items keep their input type
    (plain strings or :class:`FastqRecord`) and relative order.
    """
    kept: list = []
    rejected: list = []
    for r in reads:
        seq = r.sequence if isinstance(r, FastqRecord) else str(r)
        (kept if is_valid(seq) else rejected).append(r)
    return kept, rejected


def qc_reads(
    reads: Sequence[str] | Sequence[FastqRecord],
    low_quality_threshold: float = 20.0,
) -> ReadSetQC:
    """Compute the QC summary for strings or FASTQ records."""
    if not reads:
        return ReadSetQC()
    if isinstance(reads[0], FastqRecord):
        records = list(reads)  # type: ignore[arg-type]
        seqs = [r.sequence for r in records]
        quals = [r.mean_quality() for r in records if r.quality]
    else:
        seqs = [str(r) for r in reads]
        quals = []

    lengths = np.array([len(s) for s in seqs], dtype=np.int64)
    gc_per_read = np.array(
        [
            (s.count("G") + s.count("C")) / len(s) if s else 0.0
            for s in seqs
        ]
    )
    total_bases = int(lengths.sum())
    total_gc = sum(s.count("G") + s.count("C") for s in seqs)
    counts = Counter(seqs)
    duplicates = sum(c - 1 for c in counts.values())
    qc = ReadSetQC(
        n_reads=len(seqs),
        length_min=int(lengths.min()),
        length_max=int(lengths.max()),
        length_mean=float(lengths.mean()),
        uniform_length=bool(lengths.min() == lengths.max()),
        gc_fraction=(total_gc / total_bases) if total_bases else 0.0,
        gc_quartiles=tuple(np.percentile(gc_per_read, [25, 50, 75]).tolist()),
        duplication_rate=duplicates / len(seqs),
        invalid_reads=sum(1 for s in seqs if not is_valid(s)),
        length_histogram=dict(sorted(Counter(lengths.tolist()).items())),
    )
    if quals:
        qarr = np.array(quals)
        qc.mean_quality = float(qarr.mean())
        qc.low_quality_fraction = float(
            np.count_nonzero(qarr < low_quality_threshold) / qarr.size
        )
    return qc

"""FASTQ reading/writing, plain or gzipped (paper §III-D).

Query sequences arrive "as ... FASTQ files ... both in uncompressed or
gzipped formats".  The parser enforces the four-line record structure
strictly (truncated uploads are a routine failure mode of the web
workflow and must be reported, not silently half-parsed):

1. ``@name [description]``
2. sequence
3. ``+`` (optionally repeating the name)
4. quality string, same length as the sequence

Qualities are carried but not interpreted — BWaveR performs exact
matching, so base qualities never influence the search.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, Sequence

from .fasta import _open_text


class FastqError(ValueError):
    """Raised on malformed FASTQ input."""


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record."""

    name: str
    sequence: str
    quality: str
    description: str = ""

    @property
    def length(self) -> int:
        return len(self.sequence)

    def mean_quality(self, offset: int = 33) -> float:
        """Mean Phred score (Sanger offset by default)."""
        if not self.quality:
            return 0.0
        return sum(ord(c) - offset for c in self.quality) / len(self.quality)


def parse_fastq(fh: IO[str]) -> Iterator[FastqRecord]:
    """Stream records from an open text handle, validating structure."""
    lineno = 0
    while True:
        header = fh.readline()
        if not header:
            return
        lineno += 1
        header = header.rstrip("\n").rstrip("\r")
        if not header:
            continue  # tolerate blank separator lines between records
        if not header.startswith("@"):
            raise FastqError(f"line {lineno}: expected '@' header, got {header[:30]!r}")
        seq_line = fh.readline()
        plus_line = fh.readline()
        qual_line = fh.readline()
        if not qual_line:
            raise FastqError(
                f"truncated FASTQ record starting at line {lineno} "
                f"(record {header[1:].split()[0] if len(header) > 1 else ''!r})"
            )
        lineno += 3
        sequence = seq_line.strip()
        plus = plus_line.strip()
        quality = qual_line.strip()
        if not plus.startswith("+"):
            raise FastqError(f"line {lineno - 1}: expected '+' separator, got {plus[:30]!r}")
        if len(quality) != len(sequence):
            raise FastqError(
                f"line {lineno}: quality length {len(quality)} != "
                f"sequence length {len(sequence)}"
            )
        parts = header[1:].split(None, 1)
        if not parts:
            raise FastqError(f"line {lineno - 3}: empty FASTQ header")
        yield FastqRecord(
            name=parts[0],
            sequence=sequence.upper(),
            quality=quality,
            description=parts[1] if len(parts) > 1 else "",
        )


def parse_fastq_chunks(
    fh: IO[str], chunk_records: int = 2048
) -> Iterator[list[FastqRecord]]:
    """Stream records in bounded chunks (lists of ``<= chunk_records``).

    The bounded-memory ingest primitive: a giant (possibly gzipped)
    FASTQ never materializes — each chunk is parsed, yielded, and
    dropped, so peak residency is one chunk regardless of file size.
    Downstream, :func:`repro.mapper.stream.map_stream_coalesced` feeds
    these chunks to a request coalescer.
    """
    if chunk_records < 1:
        raise FastqError("chunk_records must be >= 1")
    chunk: list[FastqRecord] = []
    for rec in parse_fastq(fh):
        chunk.append(rec)
        if len(chunk) == chunk_records:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Read all records from a (possibly gzipped) FASTQ file."""
    with _open_text(path) as fh:
        return list(parse_fastq(fh))


def read_fastq_str(text: str) -> list[FastqRecord]:
    """Parse FASTQ from an in-memory string (web upload path)."""
    return list(parse_fastq(io.StringIO(text)))


def write_fastq(
    records: Sequence[FastqRecord],
    path: str | Path,
    compress: bool = False,
) -> None:
    """Write records in four-line form."""
    opener = gzip.open if compress else open
    with opener(path, "wt") as fh:  # type: ignore[operator]
        for rec in records:
            if len(rec.quality) != len(rec.sequence):
                raise FastqError(
                    f"record {rec.name!r}: quality/sequence length mismatch"
                )
            header = f"@{rec.name}"
            if rec.description:
                header += f" {rec.description}"
            fh.write(f"{header}\n{rec.sequence}\n+\n{rec.quality}\n")


def sequences(records: Sequence[FastqRecord]) -> list[str]:
    """Just the read strings, in order (what the mapper consumes)."""
    return [r.sequence for r in records]

"""FASTA reading/writing, plain or gzipped (paper §III-D).

BWaveR's web workflow accepts the reference "as FASTA ... files ... both
in uncompressed or gzipped formats"; this module is that ingestion path.

Parsing is deliberately strict by default — a truncated or malformed
reference should fail loudly before hours of index construction — with an
explicit ``on_invalid`` policy for the ambiguity codes (``N`` etc.) real
references contain:

* ``"error"`` (default): raise :class:`FastaError`;
* ``"skip"``: drop invalid characters;
* ``"random"``: replace each with a random base (deterministic per seed),
  the common practice of FM-index mappers which cannot index ``N``.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, Literal, Sequence

import numpy as np

from ..sequence.alphabet import is_valid

InvalidPolicy = Literal["error", "skip", "random"]

_VALID_BASES = frozenset("ACGTUacgtu")


class FastaError(ValueError):
    """Raised on malformed FASTA input."""


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``>name description`` plus its sequence."""

    name: str
    description: str
    sequence: str

    @property
    def length(self) -> int:
        return len(self.sequence)


def _open_text(path: str | Path, mode: str = "rt") -> IO[str]:
    """Open plain or gzip transparently (by magic bytes, not extension)."""
    path = Path(path)
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def _sanitize(seq: str, on_invalid: InvalidPolicy, rng: np.random.Generator, name: str) -> str:
    if all(ch in _VALID_BASES for ch in seq):
        return seq.upper()
    if on_invalid == "error":
        bad = next(ch for ch in seq if ch not in _VALID_BASES)
        raise FastaError(
            f"record {name!r} contains invalid character {bad!r}; "
            f"pass on_invalid='skip' or 'random' to accept it"
        )
    if on_invalid == "skip":
        return "".join(ch for ch in seq if ch in _VALID_BASES).upper()
    if on_invalid == "random":
        out = []
        for ch in seq:
            if ch in _VALID_BASES:
                out.append(ch.upper())
            else:
                out.append("ACGT"[rng.integers(0, 4)])
        return "".join(out)
    raise ValueError(f"unknown on_invalid policy {on_invalid!r}")


def parse_fasta(
    fh: IO[str],
    on_invalid: InvalidPolicy = "error",
    seed: int = 0,
) -> Iterator[FastaRecord]:
    """Stream records from an open text handle."""
    rng = np.random.default_rng(seed)
    name: str | None = None
    description = ""
    chunks: list[str] = []
    saw_header = False
    for lineno, raw in enumerate(fh, start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if not line.strip():
            continue
        if line.startswith(">"):
            saw_header = True
            if name is not None:
                yield FastaRecord(
                    name, description, _sanitize("".join(chunks), on_invalid, rng, name)
                )
            header = line[1:].strip()
            if not header:
                raise FastaError(f"line {lineno}: empty FASTA header")
            parts = header.split(None, 1)
            name = parts[0]
            description = parts[1] if len(parts) > 1 else ""
            chunks = []
        else:
            if not saw_header:
                raise FastaError(
                    f"line {lineno}: sequence data before any '>' header"
                )
            chunks.append(line.strip())
    if name is not None:
        yield FastaRecord(
            name, description, _sanitize("".join(chunks), on_invalid, rng, name)
        )
    elif not saw_header:
        raise FastaError("input contains no FASTA records")


def read_fasta(
    path: str | Path,
    on_invalid: InvalidPolicy = "error",
    seed: int = 0,
) -> list[FastaRecord]:
    """Read all records from a (possibly gzipped) FASTA file."""
    with _open_text(path) as fh:
        return list(parse_fasta(fh, on_invalid=on_invalid, seed=seed))


def read_fasta_str(
    text: str,
    on_invalid: InvalidPolicy = "error",
    seed: int = 0,
) -> list[FastaRecord]:
    """Parse FASTA from an in-memory string (used by the web upload path)."""
    return list(parse_fasta(io.StringIO(text), on_invalid=on_invalid, seed=seed))


def write_fasta(
    records: Sequence[FastaRecord],
    path: str | Path,
    line_width: int = 70,
    compress: bool = False,
) -> None:
    """Write records, wrapping sequences at ``line_width`` columns."""
    if line_width < 1:
        raise ValueError("line_width must be >= 1")
    opener = gzip.open if compress else open
    with opener(path, "wt") as fh:  # type: ignore[operator]
        for rec in records:
            header = f">{rec.name}"
            if rec.description:
                header += f" {rec.description}"
            fh.write(header + "\n")
            seq = rec.sequence
            for i in range(0, len(seq), line_width):
                fh.write(seq[i : i + line_width] + "\n")


def validate_record(rec: FastaRecord) -> None:
    """Raise :class:`FastaError` unless the record indexes cleanly."""
    if not rec.sequence:
        raise FastaError(f"record {rec.name!r} has an empty sequence")
    if not is_valid(rec.sequence):
        raise FastaError(f"record {rec.name!r} contains non-ACGTU characters")

"""Fault-injection framework and recovery-ladder tests.

Covers the injector (determinism, budget), each detection surface (BRAM
CRC, transfer CRC/length, stuck events, kernel hangs, result-record
sanity), the accelerator's retry → reprogram → CPU-fallback ladder, and
the web pipeline's DEGRADED terminal state — including the acceptance
scenario: injected faults are detected and the final results stay
bit-identical to a clean CPU run.
"""

import io
import json

import numpy as np
import pytest

from repro import build_index
from repro.faults import (
    BramIntegrityError,
    DeviceTimeoutError,
    FaultError,
    FaultPlan,
    KernelHangError,
    RetryPolicy,
    TransferError,
    ResultValidationError,
    crc32_of,
    validate_result_records,
)
from repro.fpga.accelerator import FPGAAccelerator
from repro.fpga.bram import BramModel
from repro.fpga.device import DeviceState
from repro.fpga.kernel import BackwardSearchKernel
from repro.fpga.opencl import CommandQueue, Context
from repro.mapper.mapper import Mapper
from repro.web.jobs import JobManager, JobStatus
from repro.web.server import BWaveRApp


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(19)
    text = "".join("ACGT"[c] for c in rng.integers(0, 4, 1500))
    index, _ = build_index(text, b=15, sf=8)
    reads = [text[i : i + 40] for i in range(0, 1200, 97)]
    return index, text, reads


def wsgi(app, method, path, body=b"", ctype="application/json"):
    out = {}

    def start_response(status, headers):
        out["status"] = status

    env = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": ctype,
        "wsgi.input": io.BytesIO(body),
    }
    chunks = app(env, start_response)
    return out["status"], b"".join(chunks)


class TestFaultPlan:
    def test_from_spec(self):
        plan = FaultPlan.from_spec(
            "transfer_corrupt_prob=0.5,max_faults=3,bram_flips_per_upset=2", seed=9
        )
        assert plan.seed == 9
        assert plan.transfer_corrupt_prob == 0.5
        assert plan.max_faults == 3
        assert plan.bram_flips_per_upset == 2
        assert plan.any_faults

    def test_from_spec_none_budget(self):
        assert FaultPlan.from_spec("max_faults=none").max_faults is None

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.from_spec("bogus=1")

    def test_from_dict_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.from_dict({"transfer_corrupt_prob": 1.0, "nope": 2})

    def test_empty_plan_injects_nothing(self):
        inj = FaultPlan().injector()
        data = np.arange(64, dtype=np.uint8)
        assert inj.corrupt_transfer(data) is data
        assert not inj.stick_event()
        assert not inj.hang_kernel()
        assert inj.total_injected == 0


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=5, transfer_corrupt_prob=0.5, stuck_event_prob=0.3)
        data = np.arange(256, dtype=np.uint8)

        def drive(inj):
            trace = []
            for _ in range(50):
                trace.append(crc32_of(inj.corrupt_transfer(data)))
                trace.append(inj.stick_event())
            return trace, dict(inj.injected)

        t1, c1 = drive(plan.injector())
        t2, c2 = drive(plan.injector())
        assert t1 == t2
        assert c1 == c2
        assert sum(c1.values()) > 0

    def test_max_faults_budget(self):
        inj = FaultPlan(seed=0, transfer_corrupt_prob=1.0, max_faults=2).injector()
        data = np.arange(64, dtype=np.uint8)
        for _ in range(10):
            inj.corrupt_transfer(data)
        assert inj.total_injected == 2
        # Budget exhausted: data passes through untouched.
        assert inj.corrupt_transfer(data) is data


class TestBramIntegrity:
    def test_crc_detects_flip_and_restore_recovers(self):
        bram = BramModel()
        bank = bram.allocate("C", 64, data=np.arange(8, dtype=np.int64))
        bank.verify()
        bank.contents[3] ^= 0x10
        with pytest.raises(BramIntegrityError, match="bit upset"):
            bank.verify()
        bank.restore()
        bank.verify()

    def test_injector_upset_is_detected(self):
        bram = BramModel()
        bram.allocate("partial", 128, data=np.arange(16, dtype=np.int64))
        inj = FaultPlan(seed=2, bram_flip_prob=1.0).injector()
        assert inj.upset_bram(bram)
        with pytest.raises(BramIntegrityError):
            bram.verify_integrity()
        assert bram.reprogram() >= 1
        bram.verify_integrity()

    def test_kernel_checks_banks_on_access(self, setup):
        index, _, reads = setup
        inj = FaultPlan(seed=3, bram_flip_prob=1.0).injector()
        kernel = BackwardSearchKernel(index.backend, injector=inj)
        assert inj.upset_bram(kernel.bram)
        from repro.mapper.query import pack_queries

        with pytest.raises(BramIntegrityError):
            kernel.execute(pack_queries(reads[:2]))


class TestTransferChecks:
    def test_corrupted_write_detected(self):
        plan = FaultPlan(seed=1, transfer_corrupt_prob=1.0)
        ctx = Context()
        queue = CommandQueue(ctx, injector=plan.injector())
        buf = ctx.create_buffer(64)
        with pytest.raises(TransferError, match="CRC32"):
            queue.enqueue_write_buffer(buf, np.arange(64, dtype=np.uint8))

    def test_truncated_read_detected(self):
        plan = FaultPlan(seed=1, transfer_truncate_prob=1.0)
        ctx = Context()
        queue = CommandQueue(ctx, injector=plan.injector())
        buf = ctx.create_buffer(64)
        buf.fill_from_device(np.arange(64, dtype=np.uint8))
        with pytest.raises(TransferError, match="short"):
            queue.enqueue_read_buffer(buf)

    def test_clean_transfers_pass(self):
        ctx = Context()
        queue = CommandQueue(ctx, injector=FaultPlan().injector())
        buf = ctx.create_buffer(64)
        data = np.arange(64, dtype=np.uint8)
        queue.enqueue_write_buffer(buf, data)
        ev = queue.enqueue_read_buffer(buf)
        assert np.array_equal(np.asarray(ev.wait()), data)

    def test_stuck_event_times_out(self):
        plan = FaultPlan(seed=4, stuck_event_prob=1.0)
        ctx = Context()
        queue = CommandQueue(ctx, injector=plan.injector())
        buf = ctx.create_buffer(64)
        buf.fill_from_device(np.arange(64, dtype=np.uint8))
        ev = queue.enqueue_read_buffer(buf)
        with pytest.raises(DeviceTimeoutError, match="never completed"):
            ev.wait()


class TestKernelFaults:
    def test_kernel_hang(self, setup):
        index, _, reads = setup
        inj = FaultPlan(seed=6, kernel_hang_prob=1.0).injector()
        kernel = BackwardSearchKernel(index.backend, injector=inj)
        from repro.mapper.query import pack_queries

        with pytest.raises(KernelHangError):
            kernel.execute(pack_queries(reads[:2]))

    def test_garbled_result_fails_validation(self, setup):
        index, _, reads = setup
        inj = FaultPlan(seed=8, result_garble_prob=1.0).injector()
        kernel = BackwardSearchKernel(index.backend, injector=inj)
        from repro.mapper.query import pack_queries

        run = kernel.execute(pack_queries(reads[:4]))
        with pytest.raises(ResultValidationError):
            validate_result_records(run.result_array().reshape(-1, 4), kernel.n_rows)


class TestResultValidation:
    def test_clean_records_pass(self):
        validate_result_records(np.array([[0, 5, 2, 2], [7, 7, 0, 9]]), n_rows=9)
        validate_result_records(np.empty((0, 4), dtype=np.int64), n_rows=9)

    def test_out_of_range(self):
        with pytest.raises(ResultValidationError, match="outside"):
            validate_result_records(np.array([[0, 5, 2, 100]]), n_rows=9)
        with pytest.raises(ResultValidationError, match="outside"):
            validate_result_records(np.array([[-1, 5, 2, 3]]), n_rows=9)

    def test_inverted_interval(self):
        with pytest.raises(ResultValidationError, match="start > end"):
            validate_result_records(np.array([[5, 2, 0, 0]]), n_rows=9)

    def test_bad_shape(self):
        with pytest.raises(ResultValidationError, match="shape"):
            validate_result_records(np.arange(6).reshape(2, 3), n_rows=9)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.01, backoff_factor=2.0, backoff_max_seconds=0.05
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.01)
        assert policy.backoff_seconds(2) == pytest.approx(0.02)
        assert policy.backoff_seconds(10) == pytest.approx(0.05)


class TestRecoveryLadder:
    """The acceptance scenario: inject, detect, recover, stay bit-identical."""

    def _clean_intervals(self, index, reads):
        run = FPGAAccelerator.for_index(index).map_batch(reads)
        return [
            (o.query_id, o.fwd_start, o.fwd_end, o.rc_start, o.rc_end)
            for o in run.kernel_run.outcomes
        ]

    def test_transient_burst_recovers_bit_identical(self, setup):
        index, _, reads = setup
        clean = self._clean_intervals(index, reads)
        plan = FaultPlan(
            seed=7, bram_flip_prob=1.0, transfer_corrupt_prob=0.4, max_faults=3
        )
        acc = FPGAAccelerator.for_index(
            index, fault_plan=plan, retry_policy=RetryPolicy(max_retries=6)
        )
        run = acc.map_batch(reads)
        faulty = [
            (o.query_id, o.fwd_start, o.fwd_end, o.rc_start, o.rc_end)
            for o in run.kernel_run.outcomes
        ]
        assert faulty == clean
        assert not run.degraded
        assert run.retries > 0
        assert acc.injector.total_injected > 0
        assert sum(run.fault_counts.values()) > 0
        assert run.modeled_fault_overhead_seconds > 0
        # Overhead lands on the modeled time, exactly once.
        assert run.breakdown["total_seconds"] == pytest.approx(run.modeled_seconds)

    def test_hard_failure_degrades_to_cpu_fallback(self, setup):
        index, _, reads = setup
        clean = self._clean_intervals(index, reads)
        plan = FaultPlan(seed=1, transfer_corrupt_prob=1.0)  # unbounded faults
        acc = FPGAAccelerator.for_index(
            index, fault_plan=plan, retry_policy=RetryPolicy(max_retries=2)
        )
        run = acc.map_batch(reads)
        assert run.degraded
        assert acc.health.state is DeviceState.FAILED
        faulty = [
            (o.query_id, o.fwd_start, o.fwd_end, o.rc_start, o.rc_end)
            for o in run.kernel_run.outcomes
        ]
        assert faulty == clean

    def test_reprogram_after_consecutive_faults(self, setup):
        index, _, reads = setup
        plan = FaultPlan(seed=11, bram_flip_prob=1.0, max_faults=3)
        acc = FPGAAccelerator.for_index(
            index,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=8, reprogram_after=2),
        )
        run = acc.map_batch(reads)
        assert not run.degraded
        assert run.reprograms >= 1
        assert acc.health.resets >= 1

    def test_no_cpu_fallback_raises(self, setup):
        index, _, reads = setup
        plan = FaultPlan(seed=1, transfer_corrupt_prob=1.0)
        acc = FPGAAccelerator.for_index(
            index,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=1, cpu_fallback=False),
        )
        with pytest.raises(FaultError):
            acc.map_batch(reads)

    def test_fallback_matches_host_mapper(self, setup):
        index, _, reads = setup
        plan = FaultPlan(seed=1, transfer_corrupt_prob=1.0)
        acc = FPGAAccelerator.for_index(
            index, fault_plan=plan, retry_policy=RetryPolicy(max_retries=0)
        )
        run = acc.map_batch(reads)
        assert run.degraded
        sw = Mapper(index, locate=False).map_reads(reads)
        for outcome, result in zip(run.kernel_run.outcomes, sw):
            assert outcome.mapped == result.mapped


class TestWebFaultTolerance:
    REF_LEN = 1600

    @pytest.fixture(scope="class")
    def uploads(self):
        rng = np.random.default_rng(23)
        ref = "".join("ACGT"[c] for c in rng.integers(0, 4, self.REF_LEN))
        reads = [ref[i * 31 : i * 31 + 40] for i in range(12)]
        fq = "".join(
            f"@r{i}\n{r}\n+\n{'I' * len(r)}\n" for i, r in enumerate(reads)
        )
        return f">ref\n{ref}\n", fq

    def test_degraded_job_serves_correct_results(self, uploads):
        ref_fa, fq = uploads
        clean = JobManager().submit(
            reference_fasta=ref_fa, reads_fastq=fq, sf=8, device="fpga"
        )
        assert clean.status is JobStatus.DONE

        mgr = JobManager(retry_policy=RetryPolicy(max_retries=1))
        job = mgr.submit(
            reference_fasta=ref_fa,
            reads_fastq=fq,
            sf=8,
            device="fpga",
            fault_plan=FaultPlan(seed=1, transfer_corrupt_prob=1.0),
        )
        assert job.status is JobStatus.DEGRADED
        assert job.degraded_reason
        assert sum(job.fault_counts.values()) > 0
        assert job.results_tsv == clean.results_tsv  # bit-identical output

    def test_degraded_status_via_http(self, uploads):
        ref_fa, fq = uploads
        app = BWaveRApp(retry_policy=RetryPolicy(max_retries=1))
        payload = {
            "reference_fasta": ref_fa,
            "reads_fastq": fq,
            "sf": 8,
            "device": "fpga",
            "fault_plan": {"seed": 1, "transfer_corrupt_prob": 1.0},
        }
        status, body = wsgi(app, "POST", "/jobs", json.dumps(payload).encode())
        assert status.startswith("201")
        doc = json.loads(body)
        assert doc["status"] == "degraded"
        assert doc["fault_counts"]
        assert doc["retries"] > 0
        # Degraded results stay downloadable.
        status, body = wsgi(app, "GET", f"/jobs/{doc['job_id']}/results")
        assert status.startswith("200")
        assert body.startswith(b"read\t")

    def test_invalid_fault_plan_is_400(self, uploads):
        ref_fa, fq = uploads
        app = BWaveRApp()
        payload = {
            "reference_fasta": ref_fa,
            "reads_fastq": fq,
            "fault_plan": {"bogus_knob": 1.0},
        }
        status, body = wsgi(app, "POST", "/jobs", json.dumps(payload).encode())
        assert status.startswith("400")
        assert b"fault_plan" in body

    def test_oversized_body_is_413(self, uploads):
        ref_fa, fq = uploads
        app = BWaveRApp(max_body_bytes=16)
        payload = json.dumps({"reference_fasta": ref_fa, "reads_fastq": fq}).encode()
        status, body = wsgi(app, "POST", "/jobs", payload)
        assert status.startswith("413")
        assert b"exceeds" in body

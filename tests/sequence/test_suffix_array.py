"""Unit and cross-validation tests for the three suffix-array builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import encode
from repro.sequence.suffix_array import (
    lcp_array,
    rank_array,
    sais,
    suffix_array,
    verify_suffix_array,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=120)


class TestBasics:
    def test_empty_text(self):
        sa = suffix_array(np.zeros(0, dtype=np.int64))
        assert sa.tolist() == [0]

    def test_single_char(self):
        sa = suffix_array(encode("A"))
        assert sa.tolist() == [1, 0]  # "$" < "A$"

    def test_known_example(self):
        # banana-style check on DNA: T = "ACAACG"; suffixes of "ACAACG$".
        sa = suffix_array(encode("ACAACG"))
        suffixes = sorted(range(7), key=lambda i: ("ACAACG$"[i:]).replace("$", "\0"))
        assert sa.tolist() == suffixes

    def test_sentinel_first(self):
        for method in ["naive", "doubling", "sais"]:
            sa = suffix_array(encode("GATTACA"), method=method)
            assert sa[0] == 7  # the sentinel suffix is smallest

    def test_rejects_negative_codes(self):
        with pytest.raises(ValueError, match="non-negative"):
            suffix_array(np.array([-1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            suffix_array(np.zeros((2, 2), dtype=np.int64))

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown"):
            suffix_array(encode("ACGT"), method="quantum")


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(5))
    def test_three_builders_agree_random(self, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, 150)
        a = suffix_array(codes, "naive")
        b = suffix_array(codes, "doubling")
        c = suffix_array(codes, "sais")
        assert np.array_equal(a, b)
        assert np.array_equal(b, c)

    def test_agree_on_repetitive(self):
        codes = encode("ACGT" * 50 + "AAAA" * 25)
        assert np.array_equal(
            suffix_array(codes, "doubling"), suffix_array(codes, "sais")
        )

    def test_agree_on_constant(self):
        codes = encode("A" * 100)
        a = suffix_array(codes, "doubling")
        b = suffix_array(codes, "sais")
        assert np.array_equal(a, b)
        # For A^n$, suffixes sort by decreasing start: $, A$, AA$, ...
        assert a.tolist() == list(range(100, -1, -1))

    @given(text=dna)
    @settings(max_examples=50, deadline=None)
    def test_property_doubling_equals_naive(self, text):
        codes = encode(text)
        assert np.array_equal(
            suffix_array(codes, "doubling"), suffix_array(codes, "naive")
        )

    @given(text=dna)
    @settings(max_examples=50, deadline=None)
    def test_property_sais_equals_naive(self, text):
        codes = encode(text)
        assert np.array_equal(
            suffix_array(codes, "sais"), suffix_array(codes, "naive")
        )


class TestVerify:
    def test_accepts_correct(self):
        codes = encode("GATTACAGATTACA")
        assert verify_suffix_array(codes, suffix_array(codes))

    def test_rejects_swapped(self):
        codes = encode("GATTACA")
        sa = suffix_array(codes)
        sa[2], sa[3] = sa[3], sa[2]
        assert not verify_suffix_array(codes, sa)

    def test_rejects_non_permutation(self):
        codes = encode("ACGT")
        assert not verify_suffix_array(codes, np.zeros(5, dtype=np.int64))

    def test_rejects_wrong_length(self):
        codes = encode("ACGT")
        assert not verify_suffix_array(codes, np.arange(4))

    def test_sampled_mode(self):
        codes = encode("ACGT" * 100)
        sa = suffix_array(codes)
        assert verify_suffix_array(codes, sa, sample=50)


class TestDerivedArrays:
    def test_rank_is_inverse(self):
        codes = encode("ACGTACGTTTAA")
        sa = suffix_array(codes)
        rank = rank_array(sa)
        assert np.array_equal(rank[sa], np.arange(sa.size))

    def test_lcp_values(self):
        codes = encode("AAAA")
        sa = suffix_array(codes)  # $, A$, AA$, AAA$, AAAA$
        lcp = lcp_array(codes, sa)
        assert lcp.tolist() == [0, 0, 1, 2, 3]

    def test_lcp_against_bruteforce(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, 80)
        sa = suffix_array(codes)
        lcp = lcp_array(codes, sa)
        s = "".join("ACGT"[c] for c in codes) + "$"
        for i in range(1, sa.size):
            a, b = s[sa[i - 1]:], s[sa[i]:]
            common = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                common += 1
            assert lcp[i] == common


class TestSAISInternals:
    def test_sais_direct_call(self):
        # "mississippi"-like over ints, with sentinel 0.
        s = [2, 1, 3, 3, 1, 3, 3, 1, 2, 2, 1, 0]
        got = sais(s, 4)
        expected = sorted(range(len(s)), key=lambda i: s[i:])
        assert got == expected

    def test_sais_two_chars(self):
        assert sais([1, 0], 2) == [1, 0]

    def test_sais_single(self):
        assert sais([0], 1) == [0]


class TestNumpySAISEquivalence:
    """The vectorized SA-IS path vs the legacy pure-Python oracle."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_matches_legacy(self, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, int(rng.integers(1, 800))).astype(np.uint8)
        got = suffix_array(codes, method="sais")
        s = [int(c) + 1 for c in codes] + [0]
        legacy = sais(s, 5)
        assert got.tolist() == legacy

    @pytest.mark.parametrize("text", [
        "A",
        "AAAAAAAAAA",
        "ACACACACACAC",
        "ACGTACGTACGT",
        "AACCGGTTAACCGGTT" * 8,
        "ACGT" * 100 + "A",
        "GATTACA" * 40,
    ])
    def test_periodic_matches_legacy(self, text):
        codes = encode(text)
        got = suffix_array(codes, method="sais")
        s = [int(c) + 1 for c in codes] + [0]
        legacy = sais(s, 5)
        assert got.tolist() == legacy
        assert verify_suffix_array(codes, got)

    def test_deep_recursion_case(self):
        # Thue-Morse-like string: forces LMS-name collisions and deep
        # recursion in both implementations.
        t = [0]
        for _ in range(9):
            t = t + [1 - x for x in t]
        codes = np.array([c + 1 for c in t], dtype=np.uint8)  # values 1,2
        got = suffix_array(codes, method="sais")
        s = [int(c) + 1 for c in codes] + [0]
        legacy = sais(s, 4)
        assert got.tolist() == legacy

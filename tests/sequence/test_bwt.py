"""Unit tests for the Burrows-Wheeler transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import decode, encode
from repro.sequence.bwt import (
    bwt_from_codes,
    bwt_from_string,
    count_array,
    entropy0,
    inverse_bwt,
    run_length_stats,
)
from repro.sequence.suffix_array import suffix_array

dna = st.text(alphabet="ACGT", min_size=1, max_size=100)


def bwt_bruteforce(text: str) -> str:
    """Sort all rotations of text+'$' and read the last column."""
    t = text + "$"
    rotations = sorted(t[i:] + t[:i] for i in range(len(t)))
    return "".join(r[-1] for r in rotations)


class TestConstruction:
    def test_matches_rotation_bruteforce(self):
        for text in ["GATTACA", "AAAA", "ACGTACGT", "T"]:
            assert bwt_from_string(text).char_string() == bwt_bruteforce(text)

    @given(text=dna)
    @settings(max_examples=50, deadline=None)
    def test_property_matches_bruteforce(self, text):
        assert bwt_from_string(text).char_string() == bwt_bruteforce(text)

    def test_dollar_pos_consistent(self):
        bwt = bwt_from_string("GATTACA")
        assert bwt.char_string()[bwt.dollar_pos] == "$"

    def test_empty_text(self):
        bwt = bwt_from_codes(np.zeros(0, dtype=np.uint8))
        assert bwt.length == 1
        assert bwt.dollar_pos == 0

    def test_rejects_mismatched_sa(self):
        codes = encode("ACGT")
        with pytest.raises(ValueError, match="length"):
            bwt_from_codes(codes, sa=np.arange(3))

    def test_rejects_sa_without_zero(self):
        codes = encode("ACGT")
        bad = np.array([4, 1, 2, 3, 4])
        with pytest.raises(ValueError, match="exactly once"):
            bwt_from_codes(codes, sa=bad)

    def test_accepts_precomputed_sa(self):
        codes = encode("GATTACA")
        sa = suffix_array(codes)
        a = bwt_from_codes(codes, sa=sa)
        b = bwt_from_codes(codes)
        assert a.char_string() == b.char_string()

    def test_symbols_without_sentinel_is_permutation_of_text(self):
        text = "ACGGTTACG"
        bwt = bwt_from_string(text)
        assert sorted(decode(bwt.symbols_without_sentinel())) == sorted(text)


class TestInverse:
    @given(text=dna)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, text):
        assert decode(inverse_bwt(bwt_from_string(text))) == text

    def test_roundtrip_repetitive(self):
        text = "ACGT" * 30 + "TTTT" * 10
        assert decode(inverse_bwt(bwt_from_string(text))) == text

    def test_empty(self):
        assert inverse_bwt(bwt_from_codes(np.zeros(0, dtype=np.uint8))).size == 0


class TestStats:
    def test_run_stats_repetitive_text(self):
        # Highly repetitive text -> few, long BWT runs.
        rep = bwt_from_string("ACGT" * 60)
        rnd_rng = np.random.default_rng(0)
        rnd = bwt_from_string(decode(rnd_rng.integers(0, 4, 240).astype(np.uint8)))
        s_rep = run_length_stats(rep)
        s_rnd = run_length_stats(rnd)
        assert s_rep["runs"] < s_rnd["runs"]
        assert s_rep["mean_run"] > s_rnd["mean_run"]

    def test_run_stats_empty(self):
        stats = run_length_stats(bwt_from_codes(np.zeros(0, dtype=np.uint8)))
        assert stats["runs"] == 0

    def test_entropy_bounds(self):
        assert entropy0(np.zeros(10, dtype=np.int64)) == 0.0
        balanced = np.tile(np.arange(4), 25)
        assert entropy0(balanced) == pytest.approx(2.0)
        assert entropy0(np.zeros(0, dtype=np.int64)) == 0.0

    def test_bwt_lowers_entropy_of_repetitive_text(self):
        text = "GATTACA" * 40
        bwt = bwt_from_string(text)
        sym = bwt.symbols_without_sentinel()
        # Entropy of symbols is invariant (permutation), but run structure
        # is what matters; check runs shrink dramatically.
        stats = run_length_stats(bwt)
        assert stats["mean_run"] > 3.0


class TestCountArray:
    def test_values(self):
        c = count_array(encode("AACCGGTT"))
        # $ < A(2) < C(2) < G(2) < T(2)
        assert c.tolist() == [1, 3, 5, 7, 9]

    def test_missing_symbols(self):
        c = count_array(encode("AAA"))
        assert c.tolist() == [1, 4, 4, 4, 4]

    def test_empty(self):
        c = count_array(np.zeros(0, dtype=np.uint8))
        assert c.tolist() == [1, 1, 1, 1, 1]

"""Unit tests for DNA alphabet handling."""

import numpy as np
import pytest

from repro.sequence.alphabet import (
    AlphabetError,
    decode,
    encode,
    gc_fraction,
    is_valid,
    random_sequence,
    reverse_complement,
    reverse_complement_codes,
)


class TestEncodeDecode:
    def test_codes_are_lexicographic(self):
        assert encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_case_insensitive(self):
        assert np.array_equal(encode("acgt"), encode("ACGT"))

    def test_u_maps_to_t(self):
        assert np.array_equal(encode("U"), encode("T"))
        assert np.array_equal(encode("u"), encode("t"))

    def test_roundtrip(self):
        s = "GATTACAGATTACA"
        assert decode(encode(s)) == s

    def test_decode_uppercases(self):
        assert decode(encode("acgt")) == "ACGT"

    def test_empty(self):
        assert encode("").size == 0
        assert decode(np.zeros(0, dtype=np.uint8)) == ""

    def test_invalid_char_reports_position(self):
        with pytest.raises(AlphabetError, match="position 3"):
            encode("ACGNACGT")

    def test_n_is_rejected(self):
        with pytest.raises(AlphabetError):
            encode("N")

    def test_decode_rejects_bad_codes(self):
        with pytest.raises(AlphabetError):
            decode(np.array([4], dtype=np.int64))

    def test_bytes_input(self):
        assert np.array_equal(encode(b"ACGT"), encode("ACGT"))


class TestReverseComplement:
    def test_known_value(self):
        assert reverse_complement("ACGT") == "ACGT"  # palindrome
        assert reverse_complement("AAAA") == "TTTT"
        assert reverse_complement("GATTACA") == "TGTAATC"

    def test_involution(self):
        rng = np.random.default_rng(0)
        s = random_sequence(100, rng)
        assert reverse_complement(reverse_complement(s)) == s

    def test_invalid_raises(self):
        with pytest.raises(AlphabetError):
            reverse_complement("ACNX")

    def test_codes_version_matches(self):
        s = "ACGGTTAC"
        assert decode(reverse_complement_codes(encode(s))) == reverse_complement(s)

    def test_empty(self):
        assert reverse_complement("") == ""


class TestValidation:
    def test_is_valid(self):
        assert is_valid("ACGTU")
        assert is_valid("acgt")
        assert not is_valid("ACGN")
        assert not is_valid("hello")


class TestRandomSequence:
    def test_length_and_alphabet(self):
        rng = np.random.default_rng(1)
        s = random_sequence(500, rng)
        assert len(s) == 500
        assert set(s) <= set("ACGT")

    def test_gc_content_respected(self):
        rng = np.random.default_rng(2)
        s = random_sequence(50_000, rng, gc_content=0.7)
        assert abs(gc_fraction(s) - 0.7) < 0.02

    def test_gc_bounds(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            random_sequence(10, rng, gc_content=1.5)

    def test_deterministic_per_seed(self):
        a = random_sequence(50, np.random.default_rng(9))
        b = random_sequence(50, np.random.default_rng(9))
        assert a == b


class TestGCFraction:
    def test_known_values(self):
        assert gc_fraction("GGCC") == 1.0
        assert gc_fraction("AATT") == 0.0
        assert gc_fraction("ACGT") == 0.5
        assert gc_fraction("") == 0.0

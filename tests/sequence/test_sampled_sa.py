"""Unit tests for full and sampled suffix arrays (locate structures)."""

import numpy as np
import pytest

from repro.core.bwt_structure import BWTStructure
from repro.sequence.alphabet import encode
from repro.sequence.bwt import bwt_from_codes
from repro.sequence.sampled_sa import FullSA, SampledSA


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(23)
    codes = rng.integers(0, 4, 300).astype(np.uint8)
    bwt = bwt_from_codes(codes)
    struct = BWTStructure(bwt, b=8, sf=4)
    return bwt, struct


class TestFullSA:
    def test_locate_matches_sa(self, setup):
        bwt, _ = setup
        full = FullSA(bwt.sa)
        for row in range(0, bwt.length, 13):
            assert full.locate(row) == bwt.sa[row]

    def test_locate_range(self, setup):
        bwt, _ = setup
        full = FullSA(bwt.sa)
        got = full.locate_range(10, 20)
        assert np.array_equal(got, bwt.sa[10:20])

    def test_bounds(self, setup):
        bwt, _ = setup
        full = FullSA(bwt.sa)
        with pytest.raises(IndexError):
            full.locate(bwt.length)
        with pytest.raises(IndexError):
            full.locate_range(5, bwt.length + 1)

    def test_size(self, setup):
        bwt, _ = setup
        assert FullSA(bwt.sa).size_in_bytes() == bwt.sa.nbytes


class TestSampledSA:
    @pytest.mark.parametrize("k", [1, 2, 8, 32, 64])
    def test_locate_matches_full(self, setup, k):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=k)
        for row in range(0, bwt.length, 7):
            assert sampled.locate(row, lf=struct.lf) == bwt.sa[row], (k, row)

    def test_locate_range_matches(self, setup):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=16)
        got = sampled.locate_range(50, 70, lf=struct.lf)
        assert np.array_equal(got, bwt.sa[50:70])

    def test_rejects_bad_rate(self, setup):
        bwt, _ = setup
        with pytest.raises(ValueError):
            SampledSA(bwt.sa, k=0)

    def test_bounds(self, setup):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=8)
        with pytest.raises(IndexError):
            sampled.locate(bwt.length, lf=struct.lf)

    def test_smaller_than_full(self, setup):
        bwt, _ = setup
        full = FullSA(bwt.sa)
        sampled = SampledSA(bwt.sa, k=32)
        assert sampled.size_in_bytes() < full.size_in_bytes() / 16

    def test_k1_is_full(self, setup):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=1)
        assert sampled.size_in_bytes() == bwt.sa.nbytes


class TestBatchedLocate:
    """Vectorized locate_range (lf_many) vs the scalar LF-walk oracle."""

    def test_sampled_batched_matches_scalar(self, setup):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=16)
        scalar = sampled.locate_range(0, bwt.length, lf=struct.lf)
        batched = sampled.locate_range(
            0, bwt.length, lf=struct.lf, lf_many=struct.lf_many
        )
        assert np.array_equal(batched, scalar)
        assert np.array_equal(batched, bwt.sa)

    @pytest.mark.parametrize("k", [1, 2, 8, 32, 64])
    def test_all_sample_rates(self, setup, k):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=k)
        got = sampled.locate_range(10, 90, lf=struct.lf, lf_many=struct.lf_many)
        assert np.array_equal(got, bwt.sa[10:90])

    def test_occ_backend_lf_many(self):
        from repro.index.occ_table import OccTable

        rng = np.random.default_rng(99)
        codes = rng.integers(0, 4, 500).astype(np.uint8)
        bwt = bwt_from_codes(codes)
        occ = OccTable(bwt, checkpoint_words=2)
        sampled = SampledSA(bwt.sa, k=8)
        got = sampled.locate_range(0, bwt.length, lf=occ.lf, lf_many=occ.lf_many)
        assert np.array_equal(got, bwt.sa)

    def test_lf_many_matches_scalar_lf(self, setup):
        bwt, struct = setup
        rows = np.arange(bwt.length, dtype=np.int64)
        batched = struct.lf_many(rows)
        scalar = np.array([struct.lf(int(r)) for r in rows])
        assert np.array_equal(batched, scalar)

    def test_lf_many_empty(self, setup):
        _, struct = setup
        assert struct.lf_many(np.zeros(0, dtype=np.int64)).size == 0

    def test_empty_range(self, setup):
        bwt, struct = setup
        sampled = SampledSA(bwt.sa, k=8)
        got = sampled.locate_range(5, 5, lf=struct.lf, lf_many=struct.lf_many)
        assert got.size == 0

    def test_full_sa_accepts_lf_many_kwarg(self, setup):
        bwt, _ = setup
        full = FullSA(bwt.sa)
        got = full.locate_range(3, 9, lf=None, lf_many=None)
        assert np.array_equal(got, bwt.sa[3:9])

"""Generator invariants: determinism, edge-class coverage, size bounds."""

import numpy as np

from repro.check.generators import (
    IUPAC_EXTRA,
    PROFILES,
    gen_bitvector_case,
    gen_pattern_corpus,
    gen_read_corpus,
    gen_text,
    rng_for,
)
from repro.sequence.alphabet import is_valid


def test_rng_streams_are_deterministic_and_distinct():
    a = rng_for(0, 3, 1).integers(0, 1 << 30, size=4)
    b = rng_for(0, 3, 1).integers(0, 1 << 30, size=4)
    c = rng_for(0, 3, 2).integers(0, 1 << 30, size=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_bitvector_cases_hit_boundaries():
    sizes = set()
    for i in range(200):
        bits, b, sf = gen_bitvector_case(rng_for(1, i, 0))
        assert bits.size >= 1
        assert set(np.unique(bits)) <= {0, 1}
        sizes.add((bits.size - b * sf, b, sf))
    # At least some draws land exactly one off a superblock boundary.
    assert any(delta in (-1, 0, 1) for delta, _, _ in sizes)


def test_text_bounds():
    profile = PROFILES["quick"]
    for i in range(50):
        t = gen_text(rng_for(2, i, 0), profile)
        assert 1 <= len(t) <= profile.max_text
        assert is_valid(t)


def test_pattern_corpus_contains_required_edge_classes():
    rng = rng_for(3, 0, 0)
    text = gen_text(rng, PROFILES["default"])
    corpus = gen_pattern_corpus(rng, text, 14)
    assert "" in corpus
    assert any(p and p == p.lower() for p in corpus)  # lowercase spelling
    assert text in corpus  # pattern == reference
    assert any(len(p) > len(text) for p in corpus)  # longer than reference
    assert any(not is_valid(p) and p for p in corpus)  # N/IUPAC entries
    assert any(set(p) & set(IUPAC_EXTRA) for p in corpus)


def test_pattern_corpus_can_exclude_invalid():
    rng = rng_for(3, 1, 0)
    text = gen_text(rng, PROFILES["default"])
    corpus = gen_pattern_corpus(rng, text, 14, include_invalid=False)
    assert all(is_valid(p) for p in corpus)
    assert "" in corpus


def test_read_corpus_respects_hardware_record_cap():
    for i in range(30):
        rng = rng_for(4, i, 0)
        text = gen_text(rng, PROFILES["thorough"])
        reads = gen_read_corpus(rng, text, 12)
        assert "" in reads
        assert all(len(r) <= 176 for r in reads)
        assert any(not is_valid(r) and r for r in reads)

"""The oracles must themselves be right — they are the ground truth."""

import numpy as np
import pytest

from repro.check.oracles import (
    naive_occ,
    naive_rank0,
    naive_rank1,
    naive_select1,
    normalize,
    oracle_mapping,
    oracle_occurrences,
)


class TestNormalize:
    def test_case_and_u(self):
        assert normalize("acgtU") == "ACGTT"
        assert normalize("ACGT") == "ACGT"

    def test_preserves_invalid_chars(self):
        # Invalid characters pass through so is_valid still rejects them.
        assert normalize("aNc") == "ANC"


class TestNaiveRank:
    def test_rank_and_select_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        assert [naive_rank1(bits, p) for p in range(8)] == [0, 1, 1, 2, 3, 3, 3, 4]
        assert naive_rank0(bits, 7) == 3
        for k in range(1, 5):
            pos = naive_select1(bits, k)
            assert naive_rank1(bits, pos + 1) == k

    def test_select_out_of_range(self):
        with pytest.raises(IndexError):
            naive_select1(np.array([1, 0], dtype=np.uint8), 2)

    def test_occ(self):
        codes = np.array([0, 1, 2, 1, 0], dtype=np.uint8)
        assert naive_occ(codes, 1, 4) == 2
        assert naive_occ(codes, 3, 5) == 0


class TestOracleOccurrences:
    def test_overlapping(self):
        assert oracle_occurrences("AAAA", "AA") == [0, 1, 2]

    def test_empty_pattern_semantics(self):
        # DESIGN.md 9: one match per text position, none at the sentinel.
        assert oracle_occurrences("ACG", "") == [0, 1, 2]

    def test_case_insensitive_with_u(self):
        assert oracle_occurrences("ACGT", "acgu") == [0]

    def test_invalid_is_none(self):
        assert oracle_occurrences("ACGT", "ACN") is None
        assert oracle_occurrences("ACGT", "X") is None

    def test_longer_than_text(self):
        assert oracle_occurrences("ACG", "ACGT") == []


class TestOracleMapping:
    def test_both_strands(self):
        fwd, rc = oracle_mapping("ACGTTT", "AAA")
        assert fwd == []
        assert rc == [3]

    def test_invalid_read(self):
        assert oracle_mapping("ACGT", "ANG") is None

"""The differential harness itself: clean runs, corpus replay, and the
acceptance property — reintroducing either seed bug must surface as a
shrunk, human-readable counterexample instead of a crash or a pass."""

import json

import pytest

from repro.check import PROFILES, SelfCheck, get_check
from repro.check.differential import ALL_CHECKS, CHECKS_BY_NAME
from repro.index import fm_index
from repro.mapper import mapper as mapper_mod
from repro.mapper.results import MappingResult, StrandHit
from repro.telemetry import Telemetry, get_telemetry, set_telemetry


class TestRegistry:
    def test_names_are_stable(self):
        # Registry order feeds the RNG streams; a silent reshuffle would
        # change every reproduction recipe in the corpus.
        assert [c.name for c in ALL_CHECKS] == [
            "rrr", "wavelet", "fm", "batch", "mapper", "kernel", "flat", "pool",
            "ftab", "coalesce", "router",
        ]

    def test_get_check_unknown(self):
        with pytest.raises(ValueError, match="unknown check"):
            get_check("nope")


class TestCleanRun:
    def test_two_rounds_pass(self):
        report = SelfCheck(
            seed=0, profile="quick", checks=["rrr", "wavelet", "fm", "batch", "mapper"]
        ).run(2)
        assert report.ok
        assert all(o.rounds == 2 for o in report.outcomes)
        assert "selfcheck: PASS" in report.summary_lines()[-1]

    def test_heavy_checks_gated_by_profile(self):
        report = SelfCheck(seed=0, profile="quick", checks=["kernel", "flat"]).run(5)
        assert report.ok
        # quick profile: heavy_every=5 -> round 0 only.
        assert all(o.rounds == 1 for o in report.outcomes)

    def test_determinism(self):
        a = SelfCheck(seed=7, profile="quick", checks=["rrr"]).run(3)
        b = SelfCheck(seed=7, profile="quick", checks=["rrr"]).run(3)
        assert a.ok and b.ok
        assert [o.rounds for o in a.outcomes] == [o.rounds for o in b.outcomes]


def _reintroduce_empty_pattern_bug(monkeypatch):
    """The seed off-by-one: empty pattern -> [0, n_rows), sentinel row in."""
    orig = fm_index.FMIndex.search

    def buggy(self, pattern):
        codes = self._codes(pattern)
        if codes.size == 0:
            return fm_index.SearchResult(start=0, end=self.n_rows, steps=0)
        return orig(self, pattern)

    monkeypatch.setattr(fm_index.FMIndex, "search", buggy)


def _reintroduce_n_crash_bug(monkeypatch):
    """The seed crash: no alphabet screen, AlphabetError escapes the mapper."""
    monkeypatch.setattr(mapper_mod, "is_valid", lambda s: True)

    def no_catch(self, sequence, read_id=0, read_name=None):
        fwd = self.index.search(sequence)
        rc = self.index.search(mapper_mod.reverse_complement(sequence))
        return MappingResult(
            read_id=read_id,
            read_name=read_name if read_name is not None else f"read{read_id}",
            length=len(sequence),
            forward=StrandHit(fwd, self._positions(fwd)),
            reverse=StrandHit(rc, self._positions(rc)),
        )

    monkeypatch.setattr(mapper_mod.Mapper, "map_read", no_catch)


class TestCatchesSeedBugs:
    def test_empty_pattern_bug_is_found_and_shrunk(self, monkeypatch):
        _reintroduce_empty_pattern_bug(monkeypatch)
        report = SelfCheck(seed=0, profile="quick", checks=["fm"]).run(3)
        assert not report.ok
        cx = report.failures[0]
        # Shrunk to the minimal shape: a 1-base text and the empty pattern.
        assert cx.inputs["patterns"] == [""]
        assert len(cx.inputs["text"]) == 1
        assert "count('')" in cx.expected
        assert "def test_fm_regression" in cx.snippet

    def test_n_crash_bug_is_found_and_shrunk(self, monkeypatch):
        _reintroduce_n_crash_bug(monkeypatch)
        report = SelfCheck(seed=0, profile="quick", checks=["mapper"]).run(3)
        assert not report.ok
        cx = report.failures[0]
        assert len(cx.inputs["text"]) == 1
        assert len(cx.inputs["reads"]) == 1
        assert "FAIL [mapper]" in cx.describe()

    def test_failures_capped_per_check(self, monkeypatch):
        _reintroduce_empty_pattern_bug(monkeypatch)
        report = SelfCheck(seed=0, profile="quick", checks=["fm"]).run(4)
        assert len(report.failures) == 1  # stop after the first shrunk case


class TestCorpus:
    def test_failure_writes_corpus_entry(self, monkeypatch, tmp_path):
        _reintroduce_empty_pattern_bug(monkeypatch)
        sc = SelfCheck(seed=0, profile="quick", checks=["fm"], corpus_dir=tmp_path)
        report = sc.run(2)
        assert len(report.corpus_written) == 1
        doc = json.loads(report.corpus_written[0].read_text())
        assert doc["check"] == "fm"
        assert doc["inputs"]["patterns"] == [""]

    def test_replay_flags_still_broken(self, monkeypatch, tmp_path):
        _reintroduce_empty_pattern_bug(monkeypatch)
        sc = SelfCheck(seed=0, profile="quick", checks=["fm"], corpus_dir=tmp_path)
        sc.run(2)
        replayed = SelfCheck(seed=0, profile="quick").replay(tmp_path)
        assert not replayed.ok  # bug still present -> replay fails

    def test_replay_clean_after_fix(self, tmp_path):
        # Same corpus, unpatched code: the entry replays green.
        (tmp_path / "fm-case.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "check": "fm",
                    "seed": 0,
                    "round": 0,
                    "inputs": {
                        "text": "C",
                        "patterns": [""],
                        "b": 5,
                        "sf": 8,
                        "backend": "rrr",
                    },
                    "expected": "count('') == 1",
                    "actual": "2",
                }
            )
        )
        replayed = SelfCheck(seed=0, profile="quick").replay(tmp_path)
        assert replayed.ok


def test_checked_in_corpus_replays_clean(repo_corpus_dir=None):
    """Every committed counterexample must stay fixed (the whole point)."""
    from pathlib import Path

    corpus = Path(__file__).resolve().parents[1] / "corpus"
    report = SelfCheck(seed=0, profile="quick").replay(corpus)
    assert report.outcomes, "committed corpus should not be empty"
    assert report.ok, "\n".join(
        cx.describe() for cx in report.failures
    )


class TestTelemetry:
    def test_counters_recorded(self):
        tel = Telemetry(enabled=True)
        set_telemetry(tel)
        try:
            SelfCheck(seed=0, profile="quick", checks=["rrr"]).run(2)
            c = tel.metrics.counter(
                "selfcheck_rounds_total",
                "Differential self-check rounds executed",
                labelnames=("check",),
            )
            assert c.value(check="rrr") == 2
        finally:
            set_telemetry(Telemetry(enabled=False))
        assert not get_telemetry().enabled


class TestCrashHandling:
    def test_generator_crash_becomes_counterexample(self):
        broken = CHECKS_BY_NAME["rrr"]

        class Exploding(type(broken)):
            name = "rrr"

            def generate(self, rng, profile):
                raise RuntimeError("boom in generate")

        sc = SelfCheck(seed=0, profile="quick", checks=["rrr"])
        sc.checks = [Exploding()]
        report = sc.run(1)
        assert not report.ok
        assert "boom in generate" in report.failures[0].actual

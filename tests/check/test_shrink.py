"""The shrinkers must reach (locally) minimal cases and respect budgets."""

import numpy as np

from repro.check.shrink import (
    shrink_bits,
    shrink_list,
    shrink_string,
    shrink_text_pattern,
)


def test_shrink_string_to_single_trigger():
    # Failure: contains an 'N' anywhere.
    out = shrink_string("ACGTNACGTACGT", lambda s: "N" in s)
    assert out == "N"


def test_shrink_string_budget_is_respected():
    calls = []

    def fails(s):
        calls.append(s)
        return "N" in s

    shrink_string("N" * 64 + "A" * 64, fails, budget=10)
    assert len(calls) <= 10


def test_shrink_list_keeps_only_trigger():
    out = shrink_list(list(range(20)), lambda xs: 13 in xs)
    assert out == [13]


def test_shrink_text_pattern_jointly():
    def fails(text, pattern):
        return len(pattern) <= 3 and len(text) >= 1

    text, pattern = shrink_text_pattern("ACGTACGTACGT", "ACG", fails)
    assert pattern == ""
    assert len(text) == 1  # kept non-empty by construction


def test_shrink_bits_deletes_and_sparsifies():
    bits = np.array([1, 1, 0, 1, 0, 1, 1, 0], dtype=np.uint8)
    # Failure: at least one set bit survives.
    out = shrink_bits(bits, lambda a: int(np.count_nonzero(a)) >= 1)
    assert out.size == 1 and int(out[0]) == 1


def test_shrink_preserves_failure():
    # Whatever the shrinkers return must still satisfy the predicate.
    pred = lambda s: s.count("G") >= 2  # noqa: E731
    out = shrink_string("GAGAGAGA", pred)
    assert pred(out)
    assert out == "GG"

"""Unit tests for the WSGI web workflow."""

import base64
import gzip
import io
import json

import pytest

from repro.web.jobs import JobManager, JobStatus
from repro.web.server import BWaveRApp, parse_multipart

REF = ">ref demo\n" + "ACGTAGGCTTAACGTCCATGAG" * 30 + "\n"
FQ = (
    "@r1\nACGTAGGCTTAACGTCCATGAG\n+\nIIIIIIIIIIIIIIIIIIIIII\n"
    "@r2\nAAAAAAAACCCCCCCCGGGGGGGG\n+\nIIIIIIIIIIIIIIIIIIIIIIII\n"
)


@pytest.fixture()
def app():
    return BWaveRApp()


def call(app, method, path, body=b"", ctype=""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    env = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": ctype,
        "wsgi.input": io.BytesIO(body),
    }
    payload = b"".join(app(env, start_response))
    return captured["status"], captured["headers"], payload


def submit_json(app, **overrides):
    doc = {"reference_fasta": REF, "reads_fastq": FQ, "sf": 4}
    doc.update(overrides)
    return call(app, "POST", "/jobs", json.dumps(doc).encode(), "application/json")


class TestRoutes:
    def test_index_page(self, app):
        status, headers, body = call(app, "GET", "/")
        assert status.startswith("200")
        assert b"BWaveR" in body
        assert "text/html" in headers["Content-Type"]

    def test_health(self, app):
        status, _, body = call(app, "GET", "/health")
        assert status.startswith("200")
        assert json.loads(body)["status"] == "ok"

    def test_unknown_route_404(self, app):
        status, _, _ = call(app, "GET", "/nope")
        assert status.startswith("404")

    def test_job_not_found(self, app):
        status, _, _ = call(app, "GET", "/jobs/99")
        assert status.startswith("404")


class TestSubmission:
    def test_json_submit_full_pipeline(self, app):
        status, _, body = submit_json(app)
        assert status.startswith("201")
        doc = json.loads(body)
        assert doc["status"] == "done"
        assert doc["n_reads"] == 2
        assert doc["n_mapped"] == 1
        assert set(doc["stage_seconds"]) == {
            "bwt_sa_computation",
            "bwt_encoding",
            "sequence_mapping",
        }

    def test_fpga_device_reports_modeled_time(self, app):
        status, _, body = submit_json(app, device="fpga")
        doc = json.loads(body)
        assert doc["modeled_device_seconds"] > 0

    def test_cpu_device(self, app):
        status, _, body = submit_json(app, device="cpu")
        doc = json.loads(body)
        assert doc["status"] == "done"
        assert doc["modeled_device_seconds"] is None

    def test_gzipped_upload(self, app):
        ref_gz = base64.b64encode(gzip.compress(REF.encode())).decode()
        fq_gz = base64.b64encode(gzip.compress(FQ.encode())).decode()
        body = json.dumps(
            {"reference_fasta_gzip_b64": ref_gz, "reads_fastq_gzip_b64": fq_gz, "sf": 4}
        ).encode()
        status, _, resp = call(app, "POST", "/jobs", body, "application/json")
        assert status.startswith("201")
        assert json.loads(resp)["status"] == "done"

    def test_corrupt_gzip_400(self, app):
        body = json.dumps(
            {"reference_fasta_gzip_b64": "not-gzip", "reads_fastq": FQ}
        ).encode()
        status, _, resp = call(app, "POST", "/jobs", body, "application/json")
        assert status.startswith("400")
        assert "gzip" in json.loads(resp)["error"]

    def test_missing_fields_400(self, app):
        status, _, resp = call(app, "POST", "/jobs", b"{}", "application/json")
        assert status.startswith("400")
        assert "reference_fasta" in json.loads(resp)["error"]

    def test_invalid_json_400(self, app):
        status, _, _ = call(app, "POST", "/jobs", b"{bad", "application/json")
        assert status.startswith("400")

    def test_bad_device_400(self, app):
        status, _, resp = submit_json(app, device="tpu")
        assert status.startswith("400")

    def test_bad_params_400(self, app):
        status, _, _ = submit_json(app, b="huge")
        assert status.startswith("400")

    def test_unsupported_content_type(self, app):
        status, _, _ = call(app, "POST", "/jobs", b"x", "text/plain")
        assert status.startswith("400")

    def test_multipart_submit(self, app):
        boundary = "XyZ123"
        parts = []
        for name, content in [
            ("reference_fasta", REF),
            ("reads_fastq", FQ),
            ("sf", "4"),
            ("device", "cpu"),
        ]:
            parts.append(
                f'--{boundary}\r\nContent-Disposition: form-data; name="{name}"'
                f"\r\n\r\n{content}\r\n"
            )
        body = ("".join(parts) + f"--{boundary}--\r\n").encode()
        status, _, resp = call(
            app, "POST", "/jobs", body, f"multipart/form-data; boundary={boundary}"
        )
        assert status.startswith("201")
        assert json.loads(resp)["status"] == "done"


class TestResults:
    def test_results_download(self, app):
        _, _, body = submit_json(app)
        job_id = json.loads(body)["job_id"]
        status, headers, tsv = call(app, "GET", f"/jobs/{job_id}/results")
        assert status.startswith("200")
        assert "attachment" in headers["Content-Disposition"]
        lines = tsv.decode().splitlines()
        assert lines[0].startswith("read\t")
        assert len(lines) == 3  # header + 2 reads

    def test_sam_download(self, app):
        _, _, body = submit_json(app)
        job_id = json.loads(body)["job_id"]
        status, headers, sam = call(app, "GET", f"/jobs/{job_id}/sam")
        assert status.startswith("200")
        assert "x-sam" in headers["Content-Type"]
        lines = sam.decode().splitlines()
        assert lines[0].startswith("@HD")
        assert any(l.startswith("@SQ\tSN:ref") for l in lines)
        body_lines = [l for l in lines if not l.startswith("@")]
        assert len(body_lines) >= 2  # one hit line + one unmapped line

    def test_qc_in_status(self, app):
        _, _, body = submit_json(app)
        doc = json.loads(body)
        assert doc["qc"]["n_reads"] == 2
        assert "gc_fraction" in doc["qc"]
        # The demo reads have mixed lengths -> a QC warning is expected.
        assert isinstance(doc["qc_warnings"], list)

    def test_job_listing(self, app):
        submit_json(app)
        submit_json(app)
        _, _, body = call(app, "GET", "/jobs")
        assert len(json.loads(body)["jobs"]) == 2

    def test_status_endpoint(self, app):
        _, _, body = submit_json(app)
        job_id = json.loads(body)["job_id"]
        _, _, status_body = call(app, "GET", f"/jobs/{job_id}")
        assert json.loads(status_body)["job_id"] == job_id


class TestJobErrors:
    def test_bad_reference_job_errors(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta="garbage", reads_fastq=FQ)
        assert job.status == JobStatus.ERROR
        assert job.error

    def test_empty_reads_job_errors(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta=REF, reads_fastq="")
        assert job.status == JobStatus.ERROR
        assert "no records" in job.error

    def test_multi_record_reference_rejected(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta=">a\nACGT\n>b\nACGT\n", reads_fastq=FQ)
        assert job.status == JobStatus.ERROR
        assert "multi-record" in job.error

    def test_bad_device_rejected(self):
        mgr = JobManager()
        with pytest.raises(ValueError, match="device"):
            mgr.submit(reference_fasta=REF, reads_fastq=FQ, device="quantum")

    def test_error_job_has_no_results(self, app):
        status, _, body = submit_json(app, reference_fasta="junk")
        # Submission succeeds but the job records the failure.
        doc = json.loads(body)
        assert doc["status"] == "error"
        st, _, _ = call(app, "GET", f"/jobs/{doc['job_id']}/results")
        assert st.startswith("409")


class TestMultipartParser:
    def test_parses_gzip_file_part(self):
        boundary = "bnd"
        gz = gzip.compress(b">x\nACGT\n")
        body = (
            f'--{boundary}\r\nContent-Disposition: form-data; name="reference_fasta"; '
            f'filename="ref.fa.gz"\r\nContent-Type: application/gzip\r\n\r\n'
        ).encode() + gz + f"\r\n--{boundary}--\r\n".encode()
        fields = parse_multipart(body, f"multipart/form-data; boundary={boundary}")
        assert fields["reference_fasta"] == ">x\nACGT\n"

    def test_missing_boundary(self):
        from repro.web.server import WebAppError

        with pytest.raises(WebAppError, match="boundary"):
            parse_multipart(b"x", "multipart/form-data")

"""``POST /map``: the served-index mapping endpoint over the coalescer.

Covers routing (404 without a served index), JSON and FASTQ request
bodies, TSV output (including the chunked streaming ingest path),
coalescer backpressure surfacing as 503 + Retry-After, and the
``/healthz`` coalescer stats block.
"""

import io
import json

import pytest

from repro.bench.fixtures import make_dna
from repro.index.builder import build_index
from repro.mapper.mapper import Mapper
from repro.serving.coalescer import (
    CoalescerConfig,
    CoalescerFull,
    MappingService,
)
from repro.web.server import BWaveRApp

TEXT = make_dna(600, seed=11)
READS = [TEXT[i : i + 24] for i in range(0, 120, 17)] + [
    "ACGTNNACGT",  # invalid base -> unmapped, reason invalid_base
    "",  # empty pattern -> matches everywhere
]


@pytest.fixture(scope="module")
def index():
    idx, _ = build_index(TEXT, b=15, sf=8)
    return idx


@pytest.fixture()
def service(index):
    svc = MappingService(
        index,
        locate=True,
        config=CoalescerConfig(window_seconds=0.001, max_batch_reads=64),
    )
    yield svc
    svc.close()


@pytest.fixture()
def app(service):
    a = BWaveRApp(mapping_service=service)
    yield a
    a.jobs.shutdown()


def call(app, method, path, body=b"", ctype=""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    env = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": ctype,
        "wsgi.input": io.BytesIO(body),
    }
    payload = b"".join(app(env, start_response))
    return captured["status"], captured["headers"], payload


def post_map(app, doc):
    return call(app, "POST", "/map", json.dumps(doc).encode(), "application/json")


def fastq_text(reads):
    return "".join(
        f"@r{i}\n{seq}\n+\n{'I' * len(seq)}\n" for i, seq in enumerate(reads)
    )


class TestRouting:
    def test_404_without_served_index(self):
        app = BWaveRApp()
        try:
            status, _, body = post_map(app, {"reads": ["ACGT"]})
            assert status.startswith("404")
            assert b"--map-index" in body
        finally:
            app.jobs.shutdown()

    def test_requires_json_content_type(self, app):
        status, _, _ = call(app, "POST", "/map", b"ACGT", "text/plain")
        assert status.startswith("400")

    def test_requires_reads_field(self, app):
        status, _, body = post_map(app, {"tenant": "t"})
        assert status.startswith("400")
        assert b"reads" in body

    def test_rejects_unknown_format(self, app):
        status, _, _ = post_map(app, {"reads": ["ACGT"], "format": "xml"})
        assert status.startswith("400")

    def test_oversized_body_413(self, service):
        app = BWaveRApp(mapping_service=service, max_body_bytes=64)
        try:
            status, _, _ = post_map(app, {"reads": ["A" * 200]})
            assert status.startswith("413")
        finally:
            app.jobs.shutdown()


class TestJsonMapping:
    def test_results_match_direct_mapper(self, app, index):
        status, _, body = post_map(app, {"reads": READS, "tenant": "t1"})
        assert status.startswith("200")
        doc = json.loads(body)
        direct = Mapper(index, locate=True).map_reads(READS)
        assert doc["n_reads"] == len(READS)
        assert doc["n_mapped"] == sum(1 for r in direct if r.mapped)
        assert doc["tenant"] == "t1"
        assert doc["degraded"] is False
        for got, want in zip(doc["results"], direct):
            assert got["read"] == want.read_name
            assert got["mapped"] == want.mapped
            assert got["fwd_count"] == want.forward.count
            assert got["rc_count"] == want.reverse.count
            assert got["reason"] == want.reason

    def test_fastq_body(self, app):
        valid = [r for r in READS if r]
        status, _, body = post_map(app, {"reads_fastq": fastq_text(valid)})
        assert status.startswith("200")
        assert json.loads(body)["n_reads"] == len(valid)

    def test_empty_reads(self, app):
        status, _, body = post_map(app, {"reads": []})
        assert status.startswith("200")
        assert json.loads(body)["n_reads"] == 0

    def test_coalescer_full_is_503_with_retry_after(self, app, monkeypatch):
        def full(*a, **k):
            raise CoalescerFull("queue full")

        monkeypatch.setattr(app.mapping_service, "map_request", full)
        status, headers, _ = post_map(app, {"reads": ["ACGT"]})
        assert status.startswith("503")
        assert headers["Retry-After"] == "1"


class TestTsvMapping:
    def test_tsv_from_reads_list(self, app, index):
        status, headers, body = post_map(app, {"reads": READS, "format": "tsv"})
        assert status.startswith("200")
        assert "tab-separated" in headers["Content-Type"]
        lines = body.decode().splitlines()
        assert len(lines) == len(READS) + 1  # header + one row per read

    def test_streaming_fastq_tsv_matches_list_path(self, app):
        """FASTQ+TSV takes the chunked streaming ingest path; its rows
        must be identical to the non-streaming reads-list TSV."""
        valid = [r for r in READS if r]
        _, _, via_list = post_map(app, {"reads": valid, "format": "tsv"})
        status, _, via_stream = post_map(
            app, {"reads_fastq": fastq_text(valid), "format": "tsv"}
        )
        assert status.startswith("200")

        def rows(raw):
            # Drop read names (stream renumbers globally; list path uses
            # request-local ids) — compare the mapping payload columns.
            return [ln.split("\t")[1:] for ln in raw.decode().splitlines()[1:]]

        assert rows(via_stream) == rows(via_list)


class TestHealthz:
    def test_coalescer_stats_present(self, app):
        post_map(app, {"reads": ["ACGT"]})
        _, _, body = call(app, "GET", "/healthz")
        doc = json.loads(body)
        co = doc["coalescer"]
        assert co is not None
        assert co["requests_total"] >= 1
        assert co["window_ms"] == pytest.approx(1.0)
        assert "added_wait_p95_ms" in co

    def test_coalescer_null_without_service(self):
        app = BWaveRApp()
        try:
            _, _, body = call(app, "GET", "/healthz")
            assert json.loads(body)["coalescer"] is None
        finally:
            app.jobs.shutdown()

"""Tests for the live observability endpoints: /metrics and /healthz."""

import io
import json

import pytest

from repro.faults import FaultPlan
from repro.telemetry import Telemetry, get_telemetry
from repro.web.server import BWaveRApp, _normalize_route

REFERENCE = ">ref demo\n" + "ACGTACGGTACCGTTAGCAT" * 40 + "\n"
READS = (
    "@r1\nACGTACGGTACC\n+\n############\n"
    "@r2\nTTTTTTTTTTTT\n+\n############\n"
)


def call(app, method, path, body=b"", ctype=""):
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": ctype,
        "wsgi.input": io.BytesIO(body),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    payload = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], payload


def submit(app, device="fpga", fault_plan=None):
    doc = {"reference_fasta": REFERENCE, "reads_fastq": READS, "device": device}
    if fault_plan is not None:
        doc["fault_plan"] = fault_plan
    return call(
        app, "POST", "/jobs", json.dumps(doc).encode(), "application/json"
    )


class TestMetricsEndpoint:
    def test_served_with_prometheus_content_type(self):
        app = BWaveRApp()
        status, headers, body = call(app, "GET", "/metrics")
        assert status == "200 OK"
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")

    def test_app_constructor_installs_enabled_telemetry(self):
        app = BWaveRApp()
        assert app.telemetry.enabled
        assert get_telemetry() is app.telemetry

    def test_job_metrics_appear_after_a_run(self):
        app = BWaveRApp()
        submit(app)
        _, _, body = call(app, "GET", "/metrics")
        text = body.decode()
        assert 'web_jobs_total{status="done"} 1' in text
        assert "web_job_stage_seconds_count" in text
        assert "index_builds_total 1" in text
        assert "fpga_runs_total 1" in text

    def test_request_counter_normalizes_job_routes(self):
        app = BWaveRApp()
        submit(app)
        call(app, "GET", "/jobs/1")
        call(app, "GET", "/jobs/1/results")
        _, _, body = call(app, "GET", "/metrics")
        text = body.decode()
        assert 'route="/jobs/{id}"' in text
        assert 'route="/jobs/{id}/results"' in text
        assert 'route="/jobs/1"' not in text

    def test_explicit_disabled_telemetry_respected(self):
        app = BWaveRApp(telemetry=Telemetry(enabled=False))
        submit(app)
        status, _, body = call(app, "GET", "/metrics")
        assert status == "200 OK"
        assert body == b""

    def test_normalize_route_helper(self):
        assert _normalize_route("/jobs/42") == "/jobs/{id}"
        assert _normalize_route("/jobs/42/sam") == "/jobs/{id}/sam"
        assert _normalize_route("/metrics") == "/metrics"


class TestHealthzEndpoint:
    def test_fresh_app_is_ok_and_empty(self):
        app = BWaveRApp()
        status, _, body = call(app, "GET", "/healthz")
        doc = json.loads(body)
        assert status == "200 OK"
        assert doc["status"] == "ok"
        assert doc["queue_depth"] == 0
        assert doc["device"] is None
        assert doc["jobs"] == {
            "queued": 0, "running": 0, "done": 0, "error": 0, "degraded": 0,
        }

    def test_reports_job_counts_and_device_health(self):
        app = BWaveRApp()
        submit(app)
        _, _, body = call(app, "GET", "/healthz")
        doc = json.loads(body)
        assert doc["jobs"]["done"] == 1
        assert doc["queue_depth"] == 0
        assert doc["device"]["state"] == "ok"
        assert doc["device"]["total_faults"] == 0

    def test_faulty_device_surfaces_on_healthz(self):
        app = BWaveRApp()
        plan = {"seed": 4, "transfer_corrupt_prob": 1.0}
        status, _, body = submit(app, fault_plan=plan)
        job = json.loads(body)
        assert job["status"] == "degraded"
        _, _, body = call(app, "GET", "/healthz")
        doc = json.loads(body)
        assert doc["device"]["total_faults"] > 0
        assert doc["jobs"]["degraded"] == 1

    def test_cpu_job_leaves_device_untouched(self):
        app = BWaveRApp()
        submit(app, device="cpu")
        _, _, body = call(app, "GET", "/healthz")
        assert json.loads(body)["device"] is None


class TestJobManagerTallies:
    def test_counts_by_status_and_queue_depth(self):
        app = BWaveRApp()
        submit(app)
        submit(app, device="cpu")
        counts = app.jobs.counts_by_status()
        assert counts["done"] == 2
        assert app.jobs.queue_depth() == 0

    def test_error_jobs_counted(self):
        app = BWaveRApp()
        call(
            app,
            "POST",
            "/jobs",
            json.dumps(
                {"reference_fasta": ">r\nACGT\n", "reads_fastq": "bogus"}
            ).encode(),
            "application/json",
        )
        assert app.jobs.counts_by_status()["error"] == 1
        _, _, body = call(app, "GET", "/metrics")
        assert 'web_jobs_total{status="error"} 1' in body.decode()

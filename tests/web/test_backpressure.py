"""Web job backpressure: bounded concurrency, 503 on overflow, /healthz cap."""

import io
import json
import threading
import time

import pytest

from repro.web.jobs import JobManager, JobStatus
from repro.web.server import BWaveRApp

REF = ">ref demo\n" + "ACGTAGGCTTAACGTCCATGAG" * 30 + "\n"
FQ = "@r1\nACGTAGGCTTAACGTCCATGAG\n+\nIIIIIIIIIIIIIIIIIIIIII\n"


def call(app, method, path, body=b"", ctype=""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    env = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": ctype,
        "wsgi.input": io.BytesIO(body),
    }
    payload = b"".join(app(env, start_response))
    return captured["status"], captured["headers"], payload


def submit_json(app):
    doc = {"reference_fasta": REF, "reads_fastq": FQ, "sf": 4}
    return call(app, "POST", "/jobs", json.dumps(doc).encode(), "application/json")


@pytest.fixture()
def blocked_run(monkeypatch):
    """Replace the job pipeline with one that parks until released."""
    release = threading.Event()

    def fake_run(self, job):
        job.status = JobStatus.RUNNING
        release.wait(30.0)
        job.status = JobStatus.DONE

    monkeypatch.setattr(JobManager, "_run", fake_run)
    yield release
    release.set()


class TestBackpressure:
    def test_503_beyond_backlog(self, blocked_run):
        app = BWaveRApp(background_jobs=True, job_workers=1, job_backlog=1)
        # Worker slot + one backlog slot admit two jobs; the third bounces.
        s1, _, _ = submit_json(app)
        s2, _, _ = submit_json(app)
        assert s1.startswith("202") or s1.startswith("201")
        assert s2.startswith("202") or s2.startswith("201")
        s3, headers, body = submit_json(app)
        assert s3.startswith("503")
        doc = json.loads(body)
        assert "error" in doc
        assert doc["concurrency"]["job_backlog"] == 1
        assert headers.get("Retry-After")

    def test_rejected_job_not_listed(self, blocked_run):
        app = BWaveRApp(background_jobs=True, job_workers=1, job_backlog=0)
        submit_json(app)
        status, _, _ = submit_json(app)
        assert status.startswith("503")
        _, _, body = call(app, "GET", "/jobs")
        assert len(json.loads(body)["jobs"]) == 1

    def test_healthz_exposes_concurrency(self, blocked_run):
        app = BWaveRApp(background_jobs=True, job_workers=3, job_backlog=5)
        _, _, body = call(app, "GET", "/healthz")
        doc = json.loads(body)
        assert doc["concurrency"]["job_workers"] == 3
        assert doc["concurrency"]["job_backlog"] == 5
        assert doc["concurrency"]["pending"] == 0
        submit_json(app)
        _, _, body = call(app, "GET", "/healthz")
        assert json.loads(body)["concurrency"]["pending"] == 1

    def test_accepts_again_after_drain(self, blocked_run):
        app = BWaveRApp(background_jobs=True, job_workers=1, job_backlog=0)
        submit_json(app)
        status, _, _ = submit_json(app)
        assert status.startswith("503")
        blocked_run.set()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if json.loads(call(app, "GET", "/healthz")[2])["concurrency"]["pending"] == 0:
                break
            time.sleep(0.01)
        status, _, _ = submit_json(app)
        assert not status.startswith("503")


class TestForegroundUnaffected:
    def test_synchronous_submit_ignores_backlog(self):
        """Foreground jobs run inline and never see the executor cap."""
        app = BWaveRApp(background_jobs=False, job_workers=1, job_backlog=0)
        status, _, body = submit_json(app)
        assert status.startswith("201")
        assert json.loads(body)["status"] == "done"

"""Tests for asynchronous (background-thread) job execution."""

import time

import pytest

from repro.web.jobs import JobManager, JobStatus

REF = ">bg demo\n" + "ACGTAGGCTTAACGTCCATGAG" * 40 + "\n"
FQ = "@r1\nACGTAGGCTTAACGTCCATGAG\n+\nIIIIIIIIIIIIIIIIIIIIII\n"


def wait_for(job, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if job.status in (JobStatus.DONE, JobStatus.ERROR):
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job stuck in {job.status}")


class TestBackgroundJobs:
    def test_background_job_completes(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
        wait_for(job)
        assert job.status == JobStatus.DONE
        assert job.n_mapped == 1
        assert job.results_tsv.startswith("read\t")

    def test_background_failure_captured(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta="garbage", reads_fastq=FQ, background=True)
        wait_for(job)
        assert job.status == JobStatus.ERROR
        assert job.error

    def test_concurrent_jobs_isolated(self):
        mgr = JobManager()
        jobs = [
            mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
            for _ in range(3)
        ]
        for job in jobs:
            wait_for(job)
            assert job.status == JobStatus.DONE
        assert len({j.job_id for j in jobs}) == 3
        assert [j.job_id for j in mgr.all_jobs()] == sorted(j.job_id for j in jobs)

    def test_status_visible_while_queued_or_running(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
        # Whatever phase we catch it in, the summary must be serializable.
        summary = job.summary()
        assert summary["job_id"] == job.job_id
        assert summary["status"] in {"queued", "running", "done", "error"}
        wait_for(job)

"""Tests for asynchronous (background-thread) job execution."""

import time

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.web.jobs import JobManager, JobPolicy, JobStatus

REF = ">bg demo\n" + "ACGTAGGCTTAACGTCCATGAG" * 40 + "\n"
FQ = "@r1\nACGTAGGCTTAACGTCCATGAG\n+\nIIIIIIIIIIIIIIIIIIIIII\n"

#: A fault scenario no retry budget survives (every transfer corrupted).
HARD_FAULTS = FaultPlan(seed=1, transfer_corrupt_prob=1.0)

TERMINAL = (JobStatus.DONE, JobStatus.ERROR, JobStatus.DEGRADED)


def wait_for(job, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if job.status in TERMINAL:
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job stuck in {job.status}")


class TestBackgroundJobs:
    def test_background_job_completes(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
        wait_for(job)
        assert job.status == JobStatus.DONE
        assert job.n_mapped == 1
        assert job.results_tsv.startswith("read\t")

    def test_background_failure_captured(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta="garbage", reads_fastq=FQ, background=True)
        wait_for(job)
        assert job.status == JobStatus.ERROR
        assert job.error

    def test_concurrent_jobs_isolated(self):
        mgr = JobManager()
        jobs = [
            mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
            for _ in range(3)
        ]
        for job in jobs:
            wait_for(job)
            assert job.status == JobStatus.DONE
        assert len({j.job_id for j in jobs}) == 3
        assert [j.job_id for j in mgr.all_jobs()] == sorted(j.job_id for j in jobs)

    def test_status_visible_while_queued_or_running(self):
        mgr = JobManager()
        job = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
        # Whatever phase we catch it in, the summary must be serializable.
        summary = job.summary()
        assert summary["job_id"] == job.job_id
        assert summary["status"] in {"queued", "running", "done", "error", "degraded"}
        wait_for(job)


class TestFaultedLifecycle:
    def test_background_job_degrades_not_errors(self):
        mgr = JobManager(retry_policy=RetryPolicy(max_retries=1))
        job = mgr.submit(
            reference_fasta=REF, reads_fastq=FQ, sf=4, background=True,
            fault_plan=HARD_FAULTS,
        )
        wait_for(job)
        assert job.status == JobStatus.DEGRADED
        assert job.error == ""  # degraded is success-with-caveats, not failure
        assert job.degraded_reason
        assert job.n_mapped == 1
        assert job.results_tsv.startswith("read\t")
        assert sum(job.fault_counts.values()) > 0
        assert job.retries > 0

    def test_recoverable_faults_complete_done(self):
        mgr = JobManager(retry_policy=RetryPolicy(max_retries=6))
        job = mgr.submit(
            reference_fasta=REF, reads_fastq=FQ, sf=4, background=True,
            fault_plan=FaultPlan(seed=7, transfer_corrupt_prob=0.5, max_faults=2),
        )
        wait_for(job)
        assert job.status == JobStatus.DONE
        assert not job.degraded
        assert job.n_mapped == 1

    def test_concurrent_faulted_submissions_isolated(self):
        mgr = JobManager(retry_policy=RetryPolicy(max_retries=1))
        faulted = [
            mgr.submit(
                reference_fasta=REF, reads_fastq=FQ, sf=4, background=True,
                fault_plan=HARD_FAULTS,
            )
            for _ in range(2)
        ]
        clean = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, background=True)
        for job in faulted:
            wait_for(job)
            assert job.status == JobStatus.DEGRADED
        wait_for(clean)
        # A manager-wide default would have degraded this one too.
        assert clean.status == JobStatus.DONE
        assert clean.results_tsv == faulted[0].results_tsv

    def test_job_level_retry_budget_counts_attempts(self):
        mgr = JobManager(
            policy=JobPolicy(max_map_attempts=3),
            retry_policy=RetryPolicy(max_retries=0, cpu_fallback=False),
        )
        job = mgr.submit(
            reference_fasta=REF, reads_fastq=FQ, sf=4, fault_plan=HARD_FAULTS
        )
        assert job.status == JobStatus.DEGRADED
        assert job.map_attempts == 3
        assert job.retries >= 3


class TestStageDeadlines:
    def test_build_deadline_errors_with_failed_stage(self):
        mgr = JobManager(policy=JobPolicy(stage_deadline_seconds=0.0))
        job = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4)
        assert job.status == JobStatus.ERROR
        assert "StageDeadlineExceeded" in job.error
        assert job.failed_stage
        assert job.failed_at is not None
        # Regression: failure bookkeeping must not pollute the timing dict.
        assert "failed_at" not in job.stage_seconds

    def test_mapping_deadline_degrades(self):
        mgr = JobManager(
            policy=JobPolicy(
                stage_deadline_seconds={"sequence_mapping": 0.0},
                max_map_attempts=2,
            )
        )
        job = mgr.submit(reference_fasta=REF, reads_fastq=FQ, sf=4, device="fpga")
        assert job.status == JobStatus.DEGRADED
        assert job.fault_counts.get("StageDeadlineExceeded") == 2
        assert job.n_mapped == 1  # CPU fallback still produced results

    def test_no_deadline_by_default(self):
        job = JobManager().submit(reference_fasta=REF, reads_fastq=FQ, sf=4)
        assert job.status == JobStatus.DONE
        assert job.failed_stage == ""
        assert job.failed_at is None

"""``POST /map?catalog=...``: the sharded multi-genome endpoint.

Covers routing (404 without a served catalog), full-catalog fan-out,
shard-subset selection, unknown-shard errors, and the ``/healthz``
per-shard state block.
"""

import io
import json

import numpy as np
import pytest

from repro.index.multiref import MultiReferenceIndex
from repro.serving.router import RouterMappingService, ShardCatalog, ShardRouter
from repro.web.server import BWaveRApp


def make_seq(n, seed):
    rng = np.random.default_rng(seed)
    return "".join("ACGT"[c] for c in rng.integers(0, 4, n))


RECORDS = [("refB", make_seq(500, 5)), ("refA", make_seq(300, 6))]
READS = [RECORDS[0][1][40:70], RECORDS[1][1][10:40], "ACGTNNACGT"]


@pytest.fixture(scope="module")
def oracle():
    return MultiReferenceIndex(RECORDS, b=15, sf=4)


@pytest.fixture()
def router_service():
    catalog = ShardCatalog()
    for name, seq in RECORDS:
        catalog.register_sequence(name, seq, b=15, sf=4)
    svc = RouterMappingService(ShardRouter(catalog))
    yield svc
    svc.close()


@pytest.fixture()
def app(router_service):
    a = BWaveRApp(router_service=router_service)
    yield a
    a.jobs.shutdown()


def call(app, method, path, body=b"", ctype="", query=""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    env = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": ctype,
        "wsgi.input": io.BytesIO(body),
    }
    payload = b"".join(app(env, start_response))
    return captured["status"], captured["headers"], payload


def post_map(app, doc, query="catalog"):
    return call(
        app, "POST", "/map", json.dumps(doc).encode(), "application/json", query
    )


class TestCatalogRouting:
    def test_404_without_served_catalog(self):
        app = BWaveRApp()
        try:
            status, _, body = post_map(app, {"reads": READS})
            assert status.startswith("404")
            assert b"--catalog" in body
        finally:
            app.jobs.shutdown()

    def test_full_fanout_matches_oracle(self, app, oracle):
        status, _, body = post_map(app, {"reads": READS})
        assert status.startswith("200")
        doc = json.loads(body)
        assert doc["n_reads"] == len(READS)
        assert doc["shards"] == ["refB", "refA"]
        want = oracle.map_reads(READS)
        for row, mapping in zip(doc["results"], want):
            assert row["n_hits"] == len(mapping.hits)
            assert row["hits"] == [
                {"ref": h.name, "position": h.position, "strand": h.strand}
                for h in mapping.hits
            ]

    def test_shard_subset(self, app):
        status, _, body = post_map(app, {"reads": READS}, query="catalog=refA")
        assert status.startswith("200")
        doc = json.loads(body)
        assert doc["shards"] == ["refA"]
        assert all(
            h["ref"] == "refA" for row in doc["results"] for h in row["hits"]
        )

    def test_unknown_shard_400(self, app):
        status, _, body = post_map(app, {"reads": READS}, query="catalog=nope")
        assert status.startswith("400")
        assert b"nope" in body

    def test_requires_reads(self, app):
        status, _, _ = post_map(app, {"tenant": "t"})
        assert status.startswith("400")

    def test_fastq_body(self, app, oracle):
        fastq = "".join(
            f"@r{i}\n{seq}\n+\n{'I' * len(seq)}\n"
            for i, seq in enumerate(READS)
            if seq  # FASTQ cannot carry empty sequences
        )
        status, _, body = post_map(app, {"reads_fastq": fastq})
        assert status.startswith("200")
        doc = json.loads(body)
        assert doc["n_reads"] == len(READS)

    def test_healthz_shards_block(self, app):
        post_map(app, {"reads": READS})
        status, _, body = call(app, "GET", "/healthz")
        assert status.startswith("200")
        doc = json.loads(body)
        shards = doc["shards"]
        assert shards["n_shards"] == 2
        assert [s["name"] for s in shards["shards"]] == ["refB", "refA"]
        assert all(s["state"] == "active" for s in shards["shards"])
        assert shards["degraded"] is False
        assert "coalescer" in shards

    def test_healthz_without_catalog(self):
        app = BWaveRApp()
        try:
            _, _, body = call(app, "GET", "/healthz")
            assert json.loads(body)["shards"] is None
        finally:
            app.jobs.shutdown()

"""Unit tests for the hash-table mapper baselines (paper §II competitors)."""

import numpy as np
import pytest

from repro import build_index
from repro.baseline.hash_mapper import KmerHashMapper, ReadIndexedHashMapper
from repro.baseline.naive import find_all
from repro.mapper.mapper import Mapper


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(121)
    return "".join("ACGT"[c] for c in rng.integers(0, 4, 4000))


@pytest.fixture(scope="module")
def hash_mapper(reference):
    return KmerHashMapper(reference, k=16)


class TestKmerHashMapper:
    def test_rejects_bad_k(self, reference):
        with pytest.raises(ValueError):
            KmerHashMapper(reference, k=0)
        with pytest.raises(ValueError):
            KmerHashMapper(reference, k=32)

    def test_locate_matches_oracle(self, reference, hash_mapper):
        rng = np.random.default_rng(1)
        for _ in range(20):
            start = int(rng.integers(0, len(reference) - 40))
            pat = reference[start : start + 40]
            assert hash_mapper.locate(pat) == find_all(reference, pat)

    def test_short_pattern_fallback(self, reference, hash_mapper):
        pat = reference[10:18]  # shorter than k=16
        assert hash_mapper.locate(pat) == find_all(reference, pat)

    def test_absent_pattern(self, reference, hash_mapper):
        pat = "ACGT" * 10
        assert pat not in reference
        assert hash_mapper.locate(pat) == []

    def test_agrees_with_fm_index(self, reference, hash_mapper):
        index, _ = build_index(reference, sf=8)
        mapper = Mapper(index)
        rng = np.random.default_rng(2)
        for _ in range(10):
            start = int(rng.integers(0, len(reference) - 50))
            read = reference[start : start + 50]
            fm = mapper.map_read(read)
            hm = hash_mapper.map_read(read)
            assert hm["+"] == fm.forward.positions.tolist()
            assert hm["-"] == fm.reverse.positions.tolist()

    def test_empty_pattern(self, reference, hash_mapper):
        # DESIGN.md 9: the empty pattern matches once per text position.
        assert hash_mapper.locate("") == list(range(len(reference)))

    def test_stats_memory_exceeds_succinct(self, reference, hash_mapper):
        """The paper's memory argument: hash tables pay ~10s of bytes per
        base; the succinct structure pays a fraction of one."""
        stats = hash_mapper.stats()
        assert stats.n_positions == len(reference) - 16 + 1
        assert stats.bytes_per_base > 8.0
        index, report = build_index(reference, b=15, sf=100)
        succinct_payload = index.backend.tree.size_in_bytes(include_shared=False)
        assert succinct_payload / len(reference) < 1.0
        assert stats.table_bytes > 10 * succinct_payload


class TestReadIndexedHashMapper:
    def test_finds_reads_in_reference(self, reference):
        reads = [reference[i : i + 30] for i in (100, 700, 1500)]
        mapper = ReadIndexedHashMapper(reads)
        hits = mapper.scan(reference)
        for rid, pos in zip(range(3), (100, 700, 1500)):
            assert pos in hits[rid]

    def test_reverse_complement_found(self, reference):
        from repro.sequence.alphabet import reverse_complement

        reads = [reverse_complement(reference[200:230])]
        hits = ReadIndexedHashMapper(reads).scan(reference)
        assert 200 in hits[0]

    def test_memory_grows_with_read_count(self, reference):
        """The paper's scaling claim, measured."""
        reads_small = [reference[i : i + 30] for i in range(0, 300, 10)]
        reads_large = [reference[i : i + 30] for i in range(0, 3000, 10)]
        small = ReadIndexedHashMapper(reads_small).index_bytes()
        large = ReadIndexedHashMapper(reads_large).index_bytes()
        assert large > 5 * small  # ~10x the reads -> ~10x the memory

    def test_rejects_mixed_lengths(self):
        with pytest.raises(ValueError, match="one length"):
            ReadIndexedHashMapper(["ACGT", "ACGTA"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ReadIndexedHashMapper([])

"""Unit tests for the Bowtie2-equivalent baseline and thread model."""

import numpy as np
import pytest

from repro import build_index
from repro.baseline.bowtie2_like import Bowtie2Like, assert_same_accuracy
from repro.baseline.threading_model import (
    PAPER_FITTED_SERIAL_FRACTION,
    AmdahlModel,
)
from repro.mapper.mapper import Mapper


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(61)
    text = "".join("ACGT"[c] for c in rng.integers(0, 4, 1500))
    return text, Bowtie2Like(text)


class TestBowtie2Like:
    def test_maps_exactly_like_bwaver(self, setup):
        text, bowtie = setup
        succinct, _ = build_index(text, b=15, sf=8)
        mapper = Mapper(succinct, locate=False)
        reads = [text[i : i + 36] for i in range(0, 1200, 97)] + ["ACGT" * 9]
        ours = mapper.map_reads(reads)
        theirs = bowtie.map_reads(reads).results
        assert_same_accuracy(ours, theirs)

    def test_report_fields(self, setup):
        text, bowtie = setup
        report = bowtie.map_reads([text[0:30], "ACGT" * 10])
        assert report.n_reads == 2
        assert report.mapping_ratio == pytest.approx(0.5)
        assert report.wall_seconds > 0
        assert report.op_counts["occ_checkpoint_ranks"] > 0

    def test_locate_via_sampled_sa(self, setup):
        text, _ = setup
        bowtie = Bowtie2Like(text, sa_sample_rate=8)
        report = bowtie.map_reads([text[40:80]], locate=True)
        assert 40 in report.results[0].forward.positions.tolist()

    def test_index_smaller_than_full_sa(self, setup):
        text, bowtie = setup
        # Sampled SA (k=32) is far smaller than the full one.
        assert bowtie.size_in_bytes() < len(text) * 8

    def test_projected_seconds(self, setup):
        _, bowtie = setup
        t16 = bowtie.projected_seconds(160.0, 16)
        assert 10.0 < t16 < 160.0

    def test_accepts_code_array(self, setup):
        text, _ = setup
        from repro.sequence.alphabet import encode

        b = Bowtie2Like(encode(text))
        assert b.index.count(text[10:30]) >= 1


class TestAssertSameAccuracy:
    def test_detects_count_mismatch(self, setup):
        text, bowtie = setup
        succinct, _ = build_index(text, b=15, sf=8)
        mapper = Mapper(succinct, locate=False)
        a = mapper.map_reads([text[0:30]])  # maps: counts (1, 0)
        b = mapper.map_reads(["ACGT" * 9])  # unmapped: counts (0, 0)
        assert a[0].forward.count != b[0].forward.count
        with pytest.raises(AssertionError, match="differ"):
            assert_same_accuracy(a, b)

    def test_detects_length_mismatch(self):
        with pytest.raises(AssertionError, match="result counts"):
            assert_same_accuracy([1], [])


class TestAmdahlModel:
    def test_speedup_at_one(self):
        assert AmdahlModel().speedup(1) == pytest.approx(1.0)

    def test_reproduces_paper_bowtie2_scaling(self):
        """The fitted s must recover the paper's 8/16-thread speedups."""
        m = AmdahlModel(PAPER_FITTED_SERIAL_FRACTION)
        assert m.speedup(8) == pytest.approx(176_683 / 23_016, rel=0.05)
        assert m.speedup(16) == pytest.approx(176_683 / 11_542, rel=0.05)

    def test_fit_inverts(self):
        m = AmdahlModel(0.01)
        s = m.fit_serial_fraction(16, m.speedup(16))
        assert s == pytest.approx(0.01, rel=1e-6)

    def test_fit_validation(self):
        m = AmdahlModel()
        with pytest.raises(ValueError):
            m.fit_serial_fraction(1, 1.0)
        with pytest.raises(ValueError):
            m.fit_serial_fraction(8, 0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AmdahlModel(1.0)
        with pytest.raises(ValueError):
            AmdahlModel(-0.1)

    def test_seconds_monotone_in_threads(self):
        m = AmdahlModel()
        times = [m.seconds(100.0, p) for p in [1, 2, 4, 8, 16]]
        assert times == sorted(times, reverse=True)

"""Unit tests for the brute-force oracles themselves."""

import numpy as np
import pytest

from repro.baseline.naive import (
    NaiveRank,
    count_occurrences,
    find_all,
    find_all_both_strands,
    find_with_mismatches,
)


class TestFindAll:
    def test_overlapping(self):
        assert find_all("AAAA", "AA") == [0, 1, 2]

    def test_absent(self):
        assert find_all("ACGT", "TT") == []

    def test_empty_pattern(self):
        # DESIGN.md 9: one match per text position, sentinel excluded.
        assert find_all("ACG", "") == [0, 1, 2]

    def test_count(self):
        assert count_occurrences("ACACAC", "ACA") == 2

    def test_both_strands(self):
        fwd, rc = find_all_both_strands("ACGTTT", "AAA")
        assert fwd == []
        assert rc == [3]  # revcomp(AAA)=TTT at position 3


class TestFindWithMismatches:
    def test_zero_k_equals_exact(self):
        text = "ACGTACGT"
        assert [(p, 0) for p in find_all(text, "GTA")] == find_with_mismatches(
            text, "GTA", 0
        )

    def test_distances_reported(self):
        hits = find_with_mismatches("ACGT", "ACTT", 1)
        assert hits == [(0, 1)]

    def test_pattern_longer_than_text(self):
        assert find_with_mismatches("AC", "ACGT", 2) == []

    def test_empty_pattern(self):
        assert find_with_mismatches("AC", "", 0) == []


class TestNaiveRank:
    def test_rank(self):
        nr = NaiveRank([0, 1, 0, 2, 0])
        assert nr.rank(0, 5) == 3
        assert nr.rank(0, 0) == 0
        assert nr.rank(2, 4) == 1

    def test_rank_bounds(self):
        nr = NaiveRank([0, 1])
        with pytest.raises(IndexError):
            nr.rank(0, 3)

    def test_select(self):
        nr = NaiveRank([0, 1, 0, 1, 1])
        assert nr.select(1, 1) == 1
        assert nr.select(1, 3) == 4

    def test_select_bounds(self):
        nr = NaiveRank([0, 1])
        with pytest.raises(IndexError):
            nr.select(1, 2)

"""Cross-module property-based tests: the whole pipeline as one invariant.

These hypothesis tests treat the entire system as a black box and pin it
against Python's own string machinery: for *any* DNA text and *any*
pattern, counting/locating through suffix array → BWT → wavelet-of-RRR →
backward search must agree with regex scanning, on both strands, on both
backends, and through the simulated FPGA kernel.
"""

import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_index
from repro.fpga.kernel import BackwardSearchKernel
from repro.mapper.query import pack_queries
from repro.sequence.alphabet import reverse_complement

dna_text = st.text(alphabet="ACGT", min_size=4, max_size=200)
small_params = st.tuples(st.integers(2, 15), st.integers(1, 6))


def regex_count(text: str, pattern: str) -> int:
    if not pattern:
        return len(text) + 1
    return len(re.findall(f"(?={re.escape(pattern)})", text))


@given(text=dna_text, data=st.data())
@settings(max_examples=60, deadline=None)
def test_count_matches_regex_any_text(text, data):
    b, sf = data.draw(small_params)
    index, _ = build_index(text, b=b, sf=sf, locate="none")
    # Patterns: substrings of the text, mutations, and random strings.
    start = data.draw(st.integers(0, len(text) - 1))
    length = data.draw(st.integers(1, min(20, len(text) - start)))
    substr = text[start : start + length]
    random_pat = data.draw(st.text(alphabet="ACGT", min_size=1, max_size=8))
    for pat in (substr, random_pat):
        assert index.count(pat) == regex_count(text, pat)


@given(text=dna_text, data=st.data())
@settings(max_examples=40, deadline=None)
def test_locate_matches_regex_any_text(text, data):
    index, _ = build_index(text, b=8, sf=3)
    start = data.draw(st.integers(0, len(text) - 1))
    length = data.draw(st.integers(1, min(15, len(text) - start)))
    pat = text[start : start + length]
    expected = [m.start() for m in re.finditer(f"(?={re.escape(pat)})", text)]
    assert index.locate(pat).tolist() == expected


@given(text=dna_text)
@settings(max_examples=30, deadline=None)
def test_backends_agree_any_text(text):
    rrr, _ = build_index(text, b=8, sf=3, locate="none")
    occ, _ = build_index(text, backend="occ", locate="none")
    for pat in [text[: min(6, len(text))], "ACG", "T", "GGTTAA"]:
        a = rrr.search(pat)
        b = occ.search(pat)
        assert (a.start, a.end) == (b.start, b.end), pat


@given(text=dna_text, data=st.data())
@settings(max_examples=25, deadline=None)
def test_fpga_kernel_equals_mapper_any_text(text, data):
    from repro.mapper.mapper import Mapper

    index, _ = build_index(text, b=8, sf=3, locate="none")
    kernel = BackwardSearchKernel(index.backend)
    n_reads = data.draw(st.integers(1, 4))
    reads = []
    for _ in range(n_reads):
        s = data.draw(st.integers(0, len(text) - 1))
        ln = data.draw(st.integers(1, min(30, len(text) - s)))
        reads.append(text[s : s + ln])
    run = kernel.execute(pack_queries(reads))
    sw = Mapper(index, locate=False).map_reads(reads)
    for o, m in zip(run.outcomes, sw):
        assert (o.fwd_start, o.fwd_end) == (m.forward.interval.start, m.forward.interval.end)
        assert (o.rc_start, o.rc_end) == (m.reverse.interval.start, m.reverse.interval.end)


@given(text=dna_text)
@settings(max_examples=30, deadline=None)
def test_strand_symmetry_any_text(text):
    """count(P on T) == count(revcomp(P) on revcomp(T)) — the biological
    double-strand symmetry the both-strand mapper relies on."""
    index_fwd, _ = build_index(text, b=8, sf=3, locate="none")
    index_rc, _ = build_index(reverse_complement(text), b=8, sf=3, locate="none")
    pat = text[: min(8, len(text))]
    assert index_fwd.count(pat) == index_rc.count(reverse_complement(pat))


@given(text=dna_text)
@settings(max_examples=20, deadline=None)
def test_extract_roundtrip_any_text(text):
    from repro.index.extract import TextExtractor

    index, _ = build_index(text, b=8, sf=3)
    ex = TextExtractor(index.backend, index.locate_structure.sa, sample_rate=7)
    assert ex.full_text() == text


@given(text=dna_text, data=st.data())
@settings(max_examples=20, deadline=None)
def test_mismatch_search_matches_hamming_any_text(text, data):
    from repro.baseline.naive import find_with_mismatches
    from repro.mapper.mismatch import locate_with_mismatches

    index, _ = build_index(text, b=8, sf=3)
    start = data.draw(st.integers(0, max(0, len(text) - 6)))
    pat = text[start : start + 6]
    if len(pat) < 6:
        return
    k = data.draw(st.integers(0, 2))
    assert locate_with_mismatches(index, pat, k) == find_with_mismatches(text, pat, k)


@given(text=dna_text)
@settings(max_examples=20, deadline=None)
def test_validation_passes_any_text(text):
    from repro.index.validate import validate_index

    index, _ = build_index(text, b=8, sf=3)
    validate_index(index, samples=16)
